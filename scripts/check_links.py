#!/usr/bin/env python
"""Check intra-repo Markdown links.

Scans every tracked ``*.md`` file for inline links and validates the ones
that point inside the repository:

* relative file links (``docs/TILING.md``, ``../README.md``) must exist;
* fragment-only links (``#section``) and ``file.md#section`` links must
  match a heading in the target file (GitHub's anchor slug rules,
  simplified: lowercase, spaces to dashes, punctuation dropped);
* external links (``http://``, ``https://``, ``mailto:``) are skipped —
  CI must not depend on the network.

Exit code is non-zero when any link is broken, so the script slots into
the CI docs job. Run locally with ``python scripts/check_links.py``.
"""

from __future__ import annotations

import os
import re
import sys

# inline links [text](target); images share the syntax via a leading !
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
EXTERNAL = ("http://", "https://", "mailto:")


def heading_anchors(markdown: str) -> set:
    """GitHub-style anchor slugs for every heading in ``markdown``."""
    anchors = set()
    for heading in HEADING_RE.findall(CODE_FENCE_RE.sub("", markdown)):
        slug = heading.strip().lower()
        slug = re.sub(r"[`*_]", "", slug)
        slug = re.sub(r"[^\w\- ]", "", slug)
        anchors.add(slug.replace(" ", "-"))
    return anchors


def markdown_files(root: str) -> list:
    found = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [
            d for d in dirnames if not d.startswith(".") and d != "node_modules"
        ]
        for name in filenames:
            if name.endswith(".md"):
                found.append(os.path.join(dirpath, name))
    return sorted(found)


def check_file(path: str, root: str) -> list:
    """Return a list of 'file: broken link' strings for ``path``."""
    with open(path, encoding="utf-8") as fh:
        text = fh.read()
    errors = []
    rel = os.path.relpath(path, root)
    for target in LINK_RE.findall(CODE_FENCE_RE.sub("", text)):
        if target.startswith(EXTERNAL):
            continue
        file_part, _, fragment = target.partition("#")
        if file_part:
            resolved = os.path.normpath(os.path.join(os.path.dirname(path), file_part))
            if not os.path.exists(resolved):
                errors.append(f"{rel}: broken link -> {target}")
                continue
        else:
            resolved = path
        if fragment and resolved.endswith(".md"):
            with open(resolved, encoding="utf-8") as fh:
                if fragment.lower() not in heading_anchors(fh.read()):
                    errors.append(f"{rel}: broken anchor -> {target}")
    return errors


def main() -> int:
    root = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    files = markdown_files(root)
    errors = []
    for path in files:
        errors.extend(check_file(path, root))
    for err in errors:
        print(err)
    print(f"checked {len(files)} markdown files: {len(errors)} broken link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
