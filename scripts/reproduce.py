#!/usr/bin/env python3
"""Regenerate every evaluation figure and write a consolidated report.

Runs the Figure 10-13 harnesses at the chosen scale, renders each series,
and writes ``results/REPORT.md`` summarizing paper-vs-measured alongside
the individual tables.

Usage:
    python scripts/reproduce.py                 # small scale, ~1 minute
    python scripts/reproduce.py --scale paper   # full size, several minutes
"""

from __future__ import annotations

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.bench import (  # noqa: E402
    fig10_scalability,
    fig11_size_scaling,
    fig12_overhead,
    fig13_recovery,
    format_series,
    write_series,
)
from repro.bench.figures import FIG10_NODES  # noqa: E402


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=["small", "paper"], default="small")
    parser.add_argument(
        "--out", default=os.path.join(os.path.dirname(__file__), "..", "results")
    )
    args = parser.parse_args()
    os.makedirs(args.out, exist_ok=True)
    sections = [f"# Reproduction report (scale: {args.scale})\n"]
    t0 = time.time()

    print("Figure 10 (scalability with nodes)...", flush=True)
    f10 = fig10_scalability(args.scale)
    table = format_series(
        "Figure 10: execution time vs nodes",
        "nodes",
        FIG10_NODES,
        {a: [s[n] for n in FIG10_NODES] for a, s in f10.items()},
    )
    write_series(os.path.join(args.out, "fig10_all.txt"), table)
    sections.append("## Figure 10 — strong scaling\n\n```\n" + table + "\n```\n")
    sections.append(
        "Speedups 2->12 nodes: "
        + ", ".join(f"{a} {s[2] / s[12]:.2f}x" for a, s in f10.items())
        + " (paper: ~4, ~4, ~4, ~3)\n"
    )

    print("Figure 11 (size scaling)...", flush=True)
    f11 = fig11_size_scaling(args.scale)
    sizes = sorted(next(iter(f11.values())))
    table = format_series(
        "Figure 11: execution time vs vertices on 10 nodes",
        "V",
        sizes,
        {a: [s[v] for v in sizes] for a, s in f11.items()},
    )
    write_series(os.path.join(args.out, "fig11_all.txt"), table)
    sections.append("## Figure 11 — size scaling\n\n```\n" + table + "\n```\n")

    print("Figure 12 (framework overhead)...", flush=True)
    f12 = fig12_overhead(args.scale)
    sizes12 = sorted(next(iter(f12.values())))
    table = format_series(
        "Figure 12: DPX10/X10 ratio (cache off)",
        "V",
        sizes12,
        {f"{n} nodes": [row[v][2] for v in sizes12] for n, row in f12.items()},
        unit="x",
        precision=3,
    )
    write_series(os.path.join(args.out, "fig12_all.txt"), table)
    sections.append(
        "## Figure 12 — overhead\n\n```\n" + table + "\n```\n"
        "Paper band: 1.02-1.12.\n"
    )

    print("Figure 13 (recovery)...", flush=True)
    f13 = fig13_recovery(args.scale)
    sizes13 = sorted(next(iter(f13.values())))
    rec = format_series(
        "Figure 13(a): recovery seconds",
        "V",
        sizes13,
        {f"{n} nodes": [row[v][0] for v in sizes13] for n, row in f13.items()},
    )
    norm = format_series(
        "Figure 13(b): normalized one-fault time",
        "V",
        sizes13,
        {f"{n} nodes": [row[v][1] for v in sizes13] for n, row in f13.items()},
        unit="x",
    )
    write_series(os.path.join(args.out, "fig13_all.txt"), rec + "\n\n" + norm)
    sections.append("## Figure 13 — fault tolerance\n\n```\n" + rec + "\n\n" + norm + "\n```\n")
    if args.scale == "paper":
        sections.append(
            "Paper anchors: 13->65 s on 4 nodes, ~6->30 s on 8 nodes.\n"
        )

    sections.append(f"\n_Generated in {time.time() - t0:.0f}s._\n")
    report_path = os.path.join(args.out, "REPORT.md")
    with open(report_path, "w", encoding="utf-8") as fh:
        fh.write("\n".join(sections))
    print(f"wrote {report_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
