#!/usr/bin/env python3
"""Validate an exported Chrome trace file (CI's observability smoke gate).

Checks the structural contract that Perfetto / ``chrome://tracing`` and
``repro.obs.export.trace_from_chrome`` both rely on:

* the document is an object with a ``traceEvents`` list;
* every event has ``name`` (str), ``ph`` (str), ``pid``/``tid`` (int);
* duration events (``"ph": "X"``) carry numeric ``ts`` and ``dur >= 0``;
* ``otherData.format`` is ``dpx10-trace`` with a known version;
* if a metrics snapshot rides along, every instrument entry has the
  ``kind`` / ``labelnames`` / ``values`` shape ``MetricsRegistry.merge``
  accepts;
* if a causal summary rides along (``otherData.causal``), it has the
  :func:`repro.obs.causal.causal_summary` shape: a dependency-ordered
  ``critical_path`` list, ``critical_path_fraction`` in [0, 1], and an
  ``attribution`` dict of named categories summing to ~1.

Usage: ``python scripts/check_trace_schema.py trace.json [more.json ...]``
Exits non-zero listing every violation.
"""

from __future__ import annotations

import json
import sys
from typing import List

KNOWN_PHASES = {"X", "M", "B", "E", "i", "C"}
KNOWN_KINDS = {"counter", "gauge", "histogram"}


def check_file(path: str) -> List[str]:
    errors: List[str] = []

    def err(msg: str) -> None:
        errors.append(f"{path}: {msg}")

    try:
        with open(path, encoding="utf-8") as fh:
            doc = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable ({exc})"]

    if not isinstance(doc, dict):
        return [f"{path}: top level must be an object, got {type(doc).__name__}"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return [f"{path}: traceEvents must be a list"]

    for k, ev in enumerate(events):
        where = f"traceEvents[{k}]"
        if not isinstance(ev, dict):
            err(f"{where}: not an object")
            continue
        if not isinstance(ev.get("name"), str):
            err(f"{where}: missing string 'name'")
        ph = ev.get("ph")
        if not isinstance(ph, str) or not ph:
            err(f"{where}: missing string 'ph'")
            continue
        if ph not in KNOWN_PHASES:
            err(f"{where}: unknown phase {ph!r}")
        for field in ("pid", "tid"):
            if not isinstance(ev.get(field), int):
                err(f"{where}: missing int {field!r}")
        if ph == "X":
            ts, dur = ev.get("ts"), ev.get("dur")
            if not isinstance(ts, (int, float)):
                err(f"{where}: X event missing numeric 'ts'")
            if not isinstance(dur, (int, float)) or dur < 0:
                err(f"{where}: X event needs 'dur' >= 0, got {dur!r}")

    other = doc.get("otherData", {})
    if not isinstance(other, dict):
        err("otherData must be an object")
        other = {}
    if other.get("format") != "dpx10-trace":
        err(f"otherData.format must be 'dpx10-trace', got {other.get('format')!r}")
    if other.get("version") != 1:
        err(f"otherData.version must be 1, got {other.get('version')!r}")

    metrics = other.get("metrics", {})
    if not isinstance(metrics, dict):
        err("otherData.metrics must be an object")
        metrics = {}
    for name, entry in metrics.items():
        where = f"metrics[{name!r}]"
        if not isinstance(entry, dict):
            err(f"{where}: not an object")
            continue
        if entry.get("kind") not in KNOWN_KINDS:
            err(f"{where}: kind must be one of {sorted(KNOWN_KINDS)}")
        if not isinstance(entry.get("labelnames"), list):
            err(f"{where}: labelnames must be a list")
        values = entry.get("values")
        if not isinstance(values, list):
            err(f"{where}: values must be a list")
            continue
        for row in values:
            if (
                not isinstance(row, list)
                or len(row) != 2
                or not isinstance(row[0], list)
            ):
                err(f"{where}: each value row must be [label_values, value]")
                break

    if "trace_id" in other and not (
        isinstance(other["trace_id"], str) and other["trace_id"]
    ):
        err("otherData.trace_id must be a non-empty string")
    if "meta" in other and not isinstance(other["meta"], dict):
        err("otherData.meta must be an object")

    causal = other.get("causal")
    if causal is not None:
        if not isinstance(causal, dict):
            err("otherData.causal must be an object")
        else:
            cp = causal.get("critical_path")
            if not isinstance(cp, list):
                err("causal.critical_path must be a list")
            else:
                for k, step in enumerate(cp):
                    where = f"causal.critical_path[{k}]"
                    if not isinstance(step, dict):
                        err(f"{where}: not an object")
                        continue
                    for field in ("place", "start", "end"):
                        if not isinstance(step.get(field), (int, float)):
                            err(f"{where}: missing numeric {field!r}")
                    if k and isinstance(step.get("start"), (int, float)):
                        prev_end = cp[k - 1].get("end")
                        # 5ms slack: cross-process stamps are normalized
                        # via a wall-clock offset exchange, not a shared
                        # monotonic clock
                        if (
                            isinstance(prev_end, (int, float))
                            and step["start"] < prev_end - 5e-3
                        ):
                            err(
                                f"{where}: starts before its predecessor "
                                "finishes (not a dependency-respecting chain)"
                            )
            frac = causal.get("critical_path_fraction")
            if not isinstance(frac, (int, float)) or not 0.0 <= frac <= 1.0:
                err(
                    "causal.critical_path_fraction must be in [0, 1], "
                    f"got {frac!r}"
                )
            attr = causal.get("attribution")
            if not isinstance(attr, dict) or not all(
                isinstance(v, (int, float)) for v in attr.values()
            ):
                err("causal.attribution must map category -> number")
            elif attr and abs(sum(attr.values()) - 1.0) > 1e-6:
                err(
                    "causal.attribution must sum to 1.0, got "
                    f"{sum(attr.values()):.6f}"
                )
            wf = causal.get("waterfall")
            if not isinstance(wf, dict) or not isinstance(
                wf.get("places"), dict
            ):
                err("causal.waterfall must carry a places object")

    return errors


def main(argv: List[str]) -> int:
    if not argv:
        print(__doc__)
        return 2
    failures = 0
    for path in argv:
        errors = check_file(path)
        if errors:
            failures += 1
            for e in errors:
                print(f"FAIL {e}")
        else:
            with open(path, encoding="utf-8") as fh:
                n = len(json.load(fh).get("traceEvents", []))
            print(f"ok   {path}: {n} events")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
