#!/usr/bin/env python
"""CI serving smoke: concurrent multi-tenant jobs against a live server.

Boots a real :class:`repro.serve.server.JobServer` (ephemeral port,
prewarmed place pool), then exercises the serving contract end to end
over HTTP, the way ``python -m repro serve`` clients would:

* three concurrent jobs from two tenants (differential-checked against
  the app catalog's serial oracles);
* a repeat submission that must come back ``cached: true``;
* a ``GET /metrics`` scrape validated line-by-line against the
  Prometheus text-format schema, including the per-tenant families the
  observability docs promise;
* a Chrome-trace export of the server's queue/execute spans, written
  for ``scripts/check_trace_schema.py`` and the CI artifact upload.

Usage::

    python scripts/serve_smoke.py [--trace-out serve-trace.json]
                                  [--metrics-out serve-metrics.txt]

Exits non-zero on the first broken expectation, printing what differed.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
import threading
import urllib.request

#: the three concurrent jobs: (tenant, app, params)
JOBS = (
    ("alice", "sw", {"size": 192, "seed": 11}),
    ("alice", "lcs", {"size": 160, "seed": 12}),
    ("bob", "mtp", {"size": 128, "seed": 13}),
)

#: metric families the scrape must expose (docs/OBSERVABILITY.md)
REQUIRED_FAMILIES = (
    "dpx10_jobs_total",
    "dpx10_job_seconds",
    "dpx10_job_queue_depth",
    "dpx10_jobs_in_flight",
    "dpx10_pool_workers_idle",
    "dpx10_pool_forks_total",
    "dpx10_result_cache_hits",
    "dpx10_pacer_active_jobs",
)

SAMPLE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})?\s+[0-9eE+.\-]+(\s+\d+)?$"
)


def _post(base: str, path: str, body: dict) -> tuple:
    data = json.dumps(body).encode()
    req = urllib.request.Request(
        base + path, data=data, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(req, timeout=120) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:  # 4xx/5xx still carry JSON
        return exc.code, json.loads(exc.read())


def _get(base: str, path: str, raw: bool = False):
    with urllib.request.urlopen(base + path, timeout=120) as resp:
        payload = resp.read()
        return payload.decode() if raw else json.loads(payload)


def check_prometheus(text: str) -> list:
    """Validate the text-format scrape; returns a list of violations."""
    errors = []
    seen = set()
    typed = {}
    for n, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in ("counter", "gauge", "histogram"):
                errors.append(f"line {n}: malformed TYPE line: {line!r}")
            else:
                typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            errors.append(f"line {n}: unknown comment form: {line!r}")
            continue
        if not SAMPLE_RE.match(line):
            errors.append(f"line {n}: not a valid sample line: {line!r}")
            continue
        seen.add(line.split("{")[0].split()[0])
    for family in REQUIRED_FAMILIES:
        if not any(s == family or s.startswith(family + "_") for s in seen):
            errors.append(f"required metric family missing from scrape: {family}")
    for family in ("dpx10_jobs_total", "dpx10_job_seconds"):
        if family not in typed:
            errors.append(f"missing # TYPE line for {family}")
    return errors


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trace-out", default="serve-trace.json")
    parser.add_argument("--metrics-out", default="serve-metrics.txt")
    args = parser.parse_args(argv)

    from repro.serve.api import APPS
    from repro.serve.server import JobServer, serve_background

    server = JobServer(port=0, pool_capacity=4, prewarm=True)
    failures = []
    with serve_background(server) as base:
        print(f"serving smoke against {base}")
        results = {}

        def run_job(idx, tenant, app, params):
            status, payload = _post(
                base,
                "/jobs",
                {"tenant": tenant, "app": app, "params": params},
            )
            if status != 202:
                results[idx] = ("submit", status, payload)
                return
            job = _get(base, f"/jobs/{payload['id']}?wait=90")
            results[idx] = ("done", job)

        threads = [
            threading.Thread(target=run_job, args=(i, *spec))
            for i, spec in enumerate(JOBS)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        for i, (tenant, app, params) in enumerate(JOBS):
            kind, *rest = results[i]
            if kind != "done":
                failures.append(f"job {i} ({tenant}/{app}) failed to submit: {rest}")
                continue
            job = rest[0]
            spec = APPS[app]
            want = spec.oracle(spec.normalize(dict(params)))
            got = (job.get("result") or {}).get("score")
            if job.get("status") != "done" or got != want:
                failures.append(
                    f"job {i} ({tenant}/{app}): status={job.get('status')} "
                    f"score={got} oracle={want} error={job.get('error')}"
                )
            else:
                print(f"  {tenant:>6} {app:>4} score {got} == oracle")

        # a repeat submission must hit the result cache
        tenant, app, params = JOBS[0]
        status, payload = _post(
            base, "/jobs", {"tenant": tenant, "app": app, "params": params}
        )
        if status == 202:
            payload = _get(base, f"/jobs/{payload['id']}?wait=90")
        if not payload.get("cached"):
            failures.append(f"repeat submission was not served from cache: {payload}")
        else:
            print("  repeat submission served from cache")

        scrape = _get(base, "/metrics", raw=True)
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(scrape)
        errors = check_prometheus(scrape)
        failures.extend(errors)
        if not errors:
            print(
                f"  /metrics scrape OK ({len(scrape.splitlines())} lines, "
                f"{len(REQUIRED_FAMILIES)} required families present)"
            )

    server.export_trace(args.trace_out)
    server.close()
    print(f"wrote {args.trace_out} and {args.metrics_out}")
    if failures:
        print("FAILURES:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("serving smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
