"""Warm-pool runs are bit-identical to one-shot runs, app by app.

The pool changes *how* places come to life (leased + relabeled instead
of freshly forked; pooled zero-filled segments instead of per-run
arenas) but must never change *what* a run computes. Every catalog app
runs three ways — warm lease, warm re-lease (reset-path reuse), and
classic one-shot — and all three must equal the serial oracle.
"""

import pytest

from repro.core.config import DPX10Config
from repro.serve.api import APPS, execute_job, parse_job_request
from repro.serve.pool import PlacePool


@pytest.fixture(scope="module")
def pool():
    with PlacePool(2, prewarm=True) as p:
        yield p


@pytest.mark.parametrize("app", sorted(APPS))
def test_warm_pool_matches_one_shot(app, pool):
    req = parse_job_request(
        {"app": app, "params": {"size": 12, "seed": 7}, "engine": "mp", "nplaces": 2}
    )
    warm_cfg = lambda: DPX10Config(engine="mp", nplaces=2, place_pool=pool)
    warm1 = execute_job(req, warm_cfg())
    warm2 = execute_job(req, warm_cfg())  # reuse after reset, same workers
    cold = execute_job(req, DPX10Config(engine="mp", nplaces=2))
    oracle = APPS[app].oracle(req.params)
    assert warm1["score"] == oracle
    assert warm2["score"] == oracle
    assert cold["score"] == oracle
    assert warm1["completions"] == warm2["completions"] == cold["completions"]


def test_pool_never_forked_beyond_prewarm(pool):
    # after the whole catalog ran warm twice, the two prewarmed workers
    # must still be the only ones ever forked
    assert pool.stats().forks == 2
