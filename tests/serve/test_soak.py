"""The serving acceptance case: place kills mid-request must not fail jobs.

Extends the chaos battery one layer up — the same seeded
:class:`~repro.apgas.failure.FaultPlan` kills, but injected through the
public job API against a live server, with the warm pool supplying the
mid-run replacement. Every faulted job must reach ``done`` with a score
bit-identical to the serial oracle.
"""

from repro.chaos.soak import SoakSpec, run_soak


def test_place_kill_mid_request_completes_with_oracle_score():
    spec = SoakSpec(requests=4, size=48, nplaces=3, fault_fraction=1.0)
    report = run_soak(spec)
    assert report.ok, report.describe()
    faulted = [t for t in report.trials if t.faulted]
    assert len(faulted) == 4
    # each kill was absorbed by recovery, not by luck (kill landing
    # after the run finished would show zero recoveries)
    assert all(t.recoveries >= 1 for t in faulted), report.describe()
    assert report.restarts_served >= len(faulted)


def test_place_zero_kill_survives_with_pool():
    # one-shot mode treats place 0 as unrecoverable; the pool makes even
    # the master's peer replaceable mid-run
    spec = SoakSpec(requests=1, size=48, nplaces=3, fault_fraction=1.0)
    assert spec.plan()[0][4] == 0  # the first victim in rotation is place 0
    report = run_soak(spec)
    assert report.ok, report.describe()


def test_soak_over_http_transport():
    spec = SoakSpec(requests=3, size=32, nplaces=2, fault_fraction=0.5)
    report = run_soak(spec, over_http=True)
    assert report.ok, report.describe()
    assert any(t.faulted for t in report.trials)
    assert any(not t.faulted for t in report.trials)


def test_soak_requires_fault_enabled_server():
    from repro.serve.server import JobServer

    import pytest

    srv = JobServer(port=0, pool_capacity=2, prewarm=False)
    try:
        with pytest.raises(ValueError):
            run_soak(SoakSpec(requests=1), server=srv)
    finally:
        srv.close()
