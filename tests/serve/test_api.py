"""Request parsing/validation and the app catalog's oracle consistency."""

import pytest

from repro.core.config import DPX10Config
from repro.serve.api import APPS, BadRequest, execute_job, parse_job_request


class TestParsing:
    def test_minimal_request_gets_defaults(self):
        req = parse_job_request({"app": "sw", "params": {"size": 32, "seed": 0}})
        assert req.tenant == "default"
        assert req.engine == "mp"
        assert req.nplaces == 4
        assert req.tile_shape is None
        assert req.use_cache is True
        assert req.faults == []
        assert req.pattern == "diagonal"

    def test_unknown_app_rejected(self):
        with pytest.raises(BadRequest):
            parse_job_request({"app": "tsp", "params": {"size": 8}})

    def test_bad_engine_rejected(self):
        with pytest.raises(BadRequest):
            parse_job_request(
                {"app": "sw", "params": {"size": 8}, "engine": "gpu"}
            )

    def test_nplaces_bounds(self):
        for bad in (0, 65, "four"):
            with pytest.raises(BadRequest):
                parse_job_request(
                    {"app": "sw", "params": {"size": 8}, "nplaces": bad}
                )

    def test_faults_require_server_opt_in(self):
        body = {
            "app": "sw",
            "params": {"size": 8},
            "faults": [{"place": 1, "at_fraction": 0.5}],
        }
        with pytest.raises(BadRequest):
            parse_job_request(body)
        req = parse_job_request(body, allow_faults=True)
        assert len(req.faults) == 1 and req.faults[0].place_id == 1

    def test_cache_key_ignores_engine_and_faults(self):
        base = {"app": "sw", "params": {"size": 16, "seed": 3}}
        a = parse_job_request(dict(base, engine="mp", nplaces=2))
        b = parse_job_request(dict(base, engine="inline", nplaces=8))
        c = parse_job_request(
            dict(base, faults=[{"place": 1}]), allow_faults=True
        )
        assert a.cache_key == b.cache_key == c.cache_key

    def test_explicit_and_synthetic_params_normalize_apart(self):
        synth = parse_job_request({"app": "lcs", "params": {"size": 8, "seed": 0}})
        expl = parse_job_request({"app": "lcs", "params": {"a": "AC", "b": "CA"}})
        assert synth.cache_key != expl.cache_key


class TestCatalogOracles:
    """Every app's served score equals its serial oracle (inline engine)."""

    @pytest.mark.parametrize("app", sorted(APPS))
    def test_inline_score_matches_oracle(self, app):
        req = parse_job_request(
            {"app": app, "params": {"size": 12, "seed": 5}, "engine": "inline"}
        )
        result = execute_job(req, DPX10Config(engine="inline", nplaces=2))
        assert result["score"] == APPS[app].oracle(req.params)
        assert result["app"] == app
        assert result["completions"] > 0
