"""Warm place-pool mechanics: lease/release reuse, spares, segments."""

import numpy as np
import pytest

from repro.core.shm import shm_supported
from repro.errors import DPX10Error
from repro.serve.pool import PlacePool


@pytest.fixture
def pool():
    with PlacePool(3, prewarm=True) as p:
        yield p


class TestLeasing:
    def test_prewarm_forks_full_capacity(self, pool):
        stats = pool.stats()
        assert stats.idle == 3 and stats.forks == 3

    def test_release_returns_same_processes(self, pool):
        procs = pool.lease(2)
        assert sorted(procs) == [0, 1]
        pids = {p.proc.pid for p in procs.values()}
        pool.release(list(procs.values()))
        again = pool.lease(2)
        assert {p.proc.pid for p in again.values()} == pids  # warm reuse
        pool.release(list(again.values()))
        assert pool.stats().forks == 3  # nothing new was forked

    def test_lease_beyond_capacity_rejected(self, pool):
        with pytest.raises(ValueError):
            pool.lease(4)

    def test_lease_timeout_when_all_busy(self, pool):
        procs = pool.lease(3)
        with pytest.raises(TimeoutError):
            pool.lease(1, timeout=0.05)
        pool.release(list(procs.values()))

    def test_dead_worker_retired_on_release(self, pool):
        procs = pool.lease(2)
        procs[0].kill()
        pool.release(list(procs.values()))
        stats = pool.stats()
        assert stats.retired == 1
        # capacity refills lazily: the next lease forks a replacement
        refill = pool.lease(3)
        assert all(p.alive for p in refill.values())
        pool.release(list(refill.values()))
        assert pool.stats().forks == 4


class TestSpares:
    def test_take_spare_retires_corpse(self, pool):
        procs = pool.lease(2)
        corpse = procs[1]
        corpse.kill()
        spare = pool.take_spare(corpse)
        assert spare is not None and spare.alive
        assert spare is not corpse
        stats = pool.stats()
        assert stats.restarts_served == 1 and stats.retired == 1
        pool.release([procs[0], spare])

    def test_spare_available_even_with_pool_fully_leased(self, pool):
        procs = pool.lease(3)  # nothing idle anywhere
        corpse = procs[2]
        corpse.kill()
        spare = pool.take_spare(corpse)  # the corpse's slot funds a fork
        assert spare is not None and spare.alive
        pool.release([procs[0], procs[1], spare])


class TestClose:
    def test_close_is_idempotent_and_stops_workers(self):
        pool = PlacePool(2, prewarm=True)
        procs = pool.lease(1)
        pool.release(list(procs.values()))
        pool.close()
        pool.close()
        assert pool.closed
        with pytest.raises(DPX10Error):
            pool.lease(1)

    def test_release_after_close_retires(self):
        pool = PlacePool(2, prewarm=True)
        procs = pool.lease(2)
        pool.close()
        pool.release(list(procs.values()))
        assert pool.stats().idle == 0


@pytest.mark.skipif(not shm_supported(), reason="POSIX shared memory unavailable")
class TestSegments:
    def test_segment_reuse_and_zero_fill(self, pool):
        lease = pool.segment_lease()
        arr, name = lease.create((16, 16), np.float64, "values")
        arr[:] = 7.0
        lease.close()
        again = pool.segment_lease()
        arr2, name2 = again.create((16, 16), np.float64, "values")
        assert name2 == name  # same pooled segment came back
        assert not arr2.any()  # ...zero-filled before reuse
        again.close()
        stats = pool.stats()
        assert stats.segment_creates == 1 and stats.segment_leases == 2

    def test_lru_byte_cap_unlinks_stale_segments(self):
        with PlacePool(1, prewarm=False, max_segment_bytes=4096) as pool:
            lease = pool.segment_lease()
            lease.create((64, 64), np.float64, "big")  # 32 KiB > cap
            lease.close()
            assert pool.stats().segment_bytes_total == 0

    def test_bytes_mapped_tracks_created_planes(self, pool):
        lease = pool.segment_lease()
        lease.create((8, 8), np.float64, "v")
        assert lease.bytes_mapped == 8 * 8 * 8
        lease.close()
