"""JobServer behaviour: lifecycle, backpressure, caching, HTTP transport."""

import json
import urllib.error
import urllib.request

import pytest

from repro.serve.scheduler import TenantPolicy
from repro.serve.server import JobServer, serve_background


def _job(app="sw", size=16, seed=1, **over):
    body = {"app": app, "params": {"size": size, "seed": seed}, "engine": "inline"}
    body.update(over)
    return body


@pytest.fixture
def server():
    srv = JobServer(port=0, pool_capacity=2, prewarm=False, max_queued=8)
    yield srv
    srv.close()


class TestLifecycle:
    def test_submit_runs_to_done(self, server):
        status, payload = server.submit(_job())
        assert status == 202
        final = server.wait(payload["id"])
        assert final["status"] == "done"
        assert final["result"]["score"] > 0
        assert final["tenant"] == "default"

    def test_bad_request_is_400(self, server):
        status, payload = server.submit({"app": "nope"})
        assert status == 400 and "error" in payload

    def test_unknown_job_is_none(self, server):
        assert server.job_status("missing") is None

    def test_failed_job_reports_error(self, server):
        # faults without pool capacity for replacement: place 0 kill on
        # a 1-place inline run is unrecoverable and must surface as a
        # failed job, not a crashed server
        srv = JobServer(
            port=0, pool_capacity=2, prewarm=False, allow_faults=True
        )
        try:
            status, payload = srv.submit(
                _job(engine="inline", nplaces=1,
                     faults=[{"place": 0, "at_fraction": 0.2}], cache=False)
            )
            assert status == 202
            final = srv.wait(payload["id"])
            assert final["status"] == "failed"
            assert final["error"]
        finally:
            srv.close()


class TestBackpressure:
    def test_in_flight_cap_gives_429(self, server):
        # occupy every slot by hand: deterministic, no timing games
        policy = server.admission.policy("t")
        for _ in range(policy.max_in_flight):
            assert server.admission.admit("t").admitted
        status, payload = server.submit(_job(tenant="t"))
        assert status == 429
        assert payload["reason"] == "in_flight"
        assert payload["retry_after"] > 0

    def test_rate_limit_gives_429(self):
        srv = JobServer(
            port=0,
            pool_capacity=2,
            prewarm=False,
            default_policy=TenantPolicy(rate=0.001, burst=1, max_in_flight=9),
        )
        try:
            status, payload = srv.submit(_job())
            assert status == 202
            srv.wait(payload["id"])
            status, payload = srv.submit(_job(seed=2))
            assert status == 429 and payload["reason"] == "rate"
        finally:
            srv.close()

    def test_queue_saturation_gives_429(self):
        srv = JobServer(port=0, pool_capacity=2, prewarm=False, max_queued=0)
        try:
            status, payload = srv.submit(_job())
            assert status == 429
            assert "saturated" in payload["error"]
        finally:
            srv.close()

    def test_rejections_counted_per_tenant(self, server):
        for _ in range(server.admission.policy("t").max_in_flight):
            server.admission.admit("t")
        server.submit(_job(tenant="t"))
        text = server.metrics_text()
        assert 'dpx10_jobs_total{tenant="t",status="rejected"} 1' in text


class TestCaching:
    def test_resubmit_served_from_cache(self, server):
        status, payload = server.submit(_job())
        server.wait(payload["id"])
        status2, payload2 = server.submit(_job())
        assert status2 == 200
        assert payload2["cached"] is True
        assert payload2["result"]["score"] == server.job_status(payload["id"])[
            "result"
        ]["score"]

    def test_cache_opt_out_recomputes(self, server):
        status, payload = server.submit(_job(cache=False))
        server.wait(payload["id"])
        status2, payload2 = server.submit(_job(cache=False))
        assert status2 == 202  # ran again, not served from cache
        assert server.wait(payload2["id"])["cached"] is False

    def test_cached_jobs_do_not_hold_admission_slots(self, server):
        status, payload = server.submit(_job())
        server.wait(payload["id"])
        for i in range(server.admission.policy("default").max_in_flight + 2):
            status, payload = server.submit(_job())
            assert status == 200  # cache hits release their slot instantly


class TestHTTP:
    def _post(self, base, body):
        req = urllib.request.Request(
            base + "/jobs",
            data=json.dumps(body).encode(),
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req) as resp:
            return resp.status, json.loads(resp.read())

    def test_full_roundtrip(self):
        srv = JobServer(port=0, pool_capacity=2, prewarm=False)
        with serve_background(srv) as base:
            with urllib.request.urlopen(base + "/healthz") as resp:
                assert json.loads(resp.read()) == {"status": "ok"}
            status, payload = self._post(base, _job())
            assert status == 202
            final = srv.wait(payload["id"])
            with urllib.request.urlopen(base + "/jobs/" + payload["id"]) as resp:
                assert json.loads(resp.read())["status"] == final["status"]
            with urllib.request.urlopen(base + "/metrics") as resp:
                text = resp.read().decode()
                assert resp.headers["Content-Type"].startswith("text/plain")
            assert "dpx10_jobs_total" in text
            assert "dpx10_pool_workers_idle" in text
            with urllib.request.urlopen(base + "/stats") as resp:
                stats = json.loads(resp.read())
            assert stats["jobs"].get("done", 0) >= 1
            clear = urllib.request.Request(base + "/cache", method="DELETE")
            with urllib.request.urlopen(clear) as resp:
                assert json.loads(resp.read())["cleared"] >= 1

    def test_http_error_statuses(self):
        srv = JobServer(port=0, pool_capacity=2, prewarm=False, max_queued=0)
        with serve_background(srv) as base:
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(base + "/jobs/zzz")
            assert exc.value.status == 404
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(
                    urllib.request.Request(base + "/metrics", method="POST")
                )
            assert exc.value.status == 405
            with pytest.raises(urllib.error.HTTPError) as exc:
                self._post(base, _job())  # max_queued=0: always saturated
            assert exc.value.status == 429
            assert int(exc.value.headers["Retry-After"]) >= 1
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(
                    urllib.request.Request(
                        base + "/jobs", data=b"{not json", method="POST"
                    )
                )
            assert exc.value.status == 400
