"""Result-cache semantics: key derivation, LRU behaviour, counters."""

from repro.serve.cache import (
    CACHE_EPOCH,
    ResultCache,
    cache_key,
    canonical_params,
    input_hash,
)


class TestKeyDerivation:
    def test_key_shape(self):
        key = cache_key("sw", {"size": 64, "seed": 1}, "diagonal", None)
        epoch, app, digest, pattern, tile = key.split(":")
        assert epoch == f"v{CACHE_EPOCH}"
        assert app == "sw"
        assert len(digest) == 64
        assert pattern == "diagonal"
        assert tile == "none"

    def test_tile_shape_in_key(self):
        base = cache_key("sw", {"size": 64}, "diagonal", None)
        tiled = cache_key("sw", {"size": 64}, "diagonal", (32, 16))
        assert base != tiled
        assert tiled.endswith(":32x16")

    def test_param_order_irrelevant(self):
        a = cache_key("nw", {"a": "AC", "b": "GT"}, "diagonal", None)
        b = cache_key("nw", {"b": "GT", "a": "AC"}, "diagonal", None)
        assert a == b

    def test_param_value_changes_key(self):
        a = cache_key("sw", {"size": 64, "seed": 1}, "diagonal", None)
        b = cache_key("sw", {"size": 64, "seed": 2}, "diagonal", None)
        assert a != b

    def test_canonical_json_is_compact_and_sorted(self):
        text = canonical_params({"b": 1, "a": [1, 2]})
        assert text == '{"a":[1,2],"b":1}'

    def test_input_hash_is_stable(self):
        assert input_hash({"x": 1}) == input_hash({"x": 1})


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache(4)
        assert cache.get("k") is None
        cache.put("k", {"score": 7})
        assert cache.get("k") == {"score": 7}
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1

    def test_lru_eviction_order(self):
        cache = ResultCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b is now LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.stats()["evictions"] == 1

    def test_clear_reports_count(self):
        cache = ResultCache(8)
        for i in range(3):
            cache.put(str(i), i)
        assert cache.clear() == 3
        assert len(cache) == 0

    def test_zero_capacity_never_stores(self):
        cache = ResultCache(0)
        cache.put("k", 1)
        assert cache.get("k") is None
