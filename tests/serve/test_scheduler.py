"""Admission control and weighted-fair pacing."""

import threading

import pytest

from repro.serve.scheduler import (
    AdmissionController,
    TenantPolicy,
    TokenBucket,
    WeightedFairPacer,
)


class TestTokenBucket:
    def test_burst_then_deny_with_hint(self):
        clock = [0.0]
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=lambda: clock[0])
        assert [bucket.try_acquire() for _ in range(3)] == [0.0, 0.0, 0.0]
        wait = bucket.try_acquire()
        assert wait == pytest.approx(0.5)  # 1 token at 2/s
        clock[0] += 0.5
        assert bucket.try_acquire() == 0.0

    def test_refill_caps_at_burst(self):
        clock = [0.0]
        bucket = TokenBucket(rate=100.0, burst=2.0, clock=lambda: clock[0])
        clock[0] += 10.0
        assert bucket.tokens == pytest.approx(2.0)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)


class TestAdmission:
    def test_max_in_flight_denial_and_release(self):
        ctl = AdmissionController(TenantPolicy(rate=1000, burst=1000, max_in_flight=2))
        assert ctl.admit("t").admitted
        assert ctl.admit("t").admitted
        denied = ctl.admit("t")
        assert not denied.admitted and denied.reason == "in_flight"
        assert denied.retry_after > 0
        ctl.release("t")
        assert ctl.admit("t").admitted

    def test_rate_denial_reason(self):
        ctl = AdmissionController(TenantPolicy(rate=0.001, burst=1, max_in_flight=99))
        assert ctl.admit("t").admitted
        denied = ctl.admit("t")
        assert not denied.admitted and denied.reason == "rate"
        assert denied.retry_after > 1.0

    def test_in_flight_denial_does_not_charge_bucket(self):
        ctl = AdmissionController(TenantPolicy(rate=0.001, burst=2, max_in_flight=1))
        assert ctl.admit("t").admitted
        for _ in range(5):  # hammering the full tenant must not burn tokens
            assert ctl.admit("t").reason == "in_flight"
        ctl.release("t")
        assert ctl.admit("t").admitted  # the second burst token survived

    def test_tenants_isolated(self):
        ctl = AdmissionController(TenantPolicy(max_in_flight=1))
        assert ctl.admit("a").admitted
        assert ctl.admit("b").admitted
        assert not ctl.admit("a").admitted

    def test_per_tenant_policy_pins(self):
        ctl = AdmissionController(
            TenantPolicy(max_in_flight=1),
            per_tenant={"vip": TenantPolicy(max_in_flight=3)},
        )
        assert all(ctl.admit("vip").admitted for _ in range(3))
        assert not ctl.admit("vip").admitted
        assert ctl.snapshot() == {"vip": 3}


class TestWeightedFairPacer:
    def test_lone_job_never_blocks(self):
        pacer = WeightedFairPacer(quantum_cells=10)
        pace = pacer.register("only")
        for _ in range(50):
            pace(1000)  # far beyond the quantum; no peer, no gate
        assert pacer.snapshot()["only"]["waits"] == 0

    def test_unregistered_job_is_ungated(self):
        pacer = WeightedFairPacer()
        pace = pacer.register("j")
        pacer.unregister("j")
        pace(10**9)  # must not block or raise

    def test_double_register_rejected(self):
        pacer = WeightedFairPacer()
        pacer.register("j")
        with pytest.raises(ValueError):
            pacer.register("j")

    def test_weighted_interleaving_ratio(self):
        """Two contending jobs: cells granted track the 2:1 weights."""
        pacer = WeightedFairPacer(quantum_cells=64)
        batches, cells = 60, 32
        done = {}
        # mark both jobs running (zero-cell first batch) before the
        # threads start: neither job may run a lone-job (ungated)
        # prefix, or the window measures scheduling luck instead of
        # the pacer
        paces = {
            "heavy": pacer.register("heavy", 2.0),
            "light": pacer.register("light", 1.0),
        }
        for pace in paces.values():
            pace(0)

        def run(job_id):
            for _ in range(batches):
                paces[job_id](cells)
            # record the grant-log position where this job finished
            done[job_id] = len(pacer.history)
            pacer.unregister(job_id)

        threads = [
            threading.Thread(target=run, args=("heavy",)),
            threading.Thread(target=run, args=("light",)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # judge only the contended window: grants up to the first finish
        window = list(pacer.history)[: min(done.values())]
        granted = {"heavy": 0, "light": 0}
        for job_id, ncells in window:
            granted[job_id] += ncells
        assert granted["light"] > 0
        ratio = granted["heavy"] / granted["light"]
        assert 1.4 <= ratio <= 2.8, f"heavy:light cell ratio {ratio:.2f}"

    def test_parked_job_does_not_gate_the_running_job(self):
        """Regression: a registered job that never paces (e.g. parked in
        the pool lease queue behind the running job's workers) must not
        pin the fairness floor — that deadlocked the server: the runner
        blocked on the parked jobs' clocks, the parked jobs blocked on
        the runner's workers."""
        pacer = WeightedFairPacer(quantum_cells=10)
        pace = pacer.register("runner")
        pacer.register("parked-1")
        pacer.register("parked-2")
        for _ in range(50):
            pace(1000)  # far past floor(0) + quantum if parked jobs counted
        assert pacer.snapshot()["runner"]["waits"] == 0
        assert pacer.snapshot()["parked-1"]["started"] is False

    def test_late_starter_joins_at_running_floor(self):
        """A job that finally gets workers starts at the running floor:
        no backlog credit for time spent parked, and no stall for the
        job that ran meanwhile."""
        pacer = WeightedFairPacer(quantum_cells=10)
        pace_a = pacer.register("a")
        pace_b = pacer.register("b")
        for _ in range(20):
            pace_a(100)  # "a" runs alone; "b" is parked
        pace_b(10)  # "b" finally leases workers
        snap = pacer.snapshot()
        assert snap["b"]["vtime"] >= snap["a"]["vtime"] - pacer.quantum
        # and "a" is immediately grantable again (no stall on "b")
        pace_a(100)
        assert pacer.snapshot()["a"]["waits"] == 0

    def test_equal_weights_interleave_evenly(self):
        pacer = WeightedFairPacer(quantum_cells=64)
        done = {}
        paces = {j: pacer.register(j) for j in ("a", "b")}
        for pace in paces.values():
            pace(0)  # both running before the contention window opens

        def run(job_id):
            for _ in range(40):
                paces[job_id](32)
            done[job_id] = len(pacer.history)
            pacer.unregister(job_id)

        threads = [threading.Thread(target=run, args=(j,)) for j in ("a", "b")]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        window = list(pacer.history)[: min(done.values())]
        granted = {"a": 0, "b": 0}
        for job_id, ncells in window:
            granted[job_id] += ncells
        ratio = granted["a"] / max(1, granted["b"])
        assert 0.6 <= ratio <= 1.7, f"a:b cell ratio {ratio:.2f}"
        # and they genuinely interleave rather than running back-to-back
        # (a sequential schedule would show exactly one switch; the
        # quantum bounds runs to a handful of batches, but GIL slicing
        # makes the exact count noisy — assert the floor, not the mean)
        switches = sum(
            1 for prev, cur in zip(window, window[1:]) if prev[0] != cur[0]
        )
        assert switches >= 6, f"only {switches} switches in {len(window)} grants"
