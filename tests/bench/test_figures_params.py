"""Extra coverage for figure-runner parameterizations."""

import pytest

from repro.bench.figures import _cost_for, fig13_recovery
from repro.sim.costmodel import CostModel


class TestCostScaling:
    def test_small_scale_shrinks_stencil_t_msg(self):
        assert _cost_for("swlag", "small").t_msg < _cost_for("swlag", "paper").t_msg

    def test_paper_scale_uses_presets_verbatim(self):
        assert _cost_for("mtp", "paper") == CostModel.for_app("mtp")

    def test_knapsack_t_msg_scale_free(self):
        # its communication is volume-proportional: no edge scaling
        assert _cost_for("knapsack", "small").t_msg == CostModel.for_app(
            "knapsack"
        ).t_msg


class TestFig13Params:
    def test_custom_fault_fraction(self):
        early = fig13_recovery("small", nodes_list=[4], at_fraction=0.2)
        late = fig13_recovery("small", nodes_list=[4], at_fraction=0.8)
        sizes = sorted(early[4])
        # recovery time is independent of when the fault lands (it touches
        # every vertex either way)...
        for v in sizes:
            assert early[4][v][0] == pytest.approx(late[4][v][0])
        # ...but a later fault wastes more finished work on the dead node,
        # so the normalized impact should not shrink
        assert late[4][sizes[-1]][1] >= early[4][sizes[-1]][1] * 0.9
