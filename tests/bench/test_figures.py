"""Tests for the figure-reproduction harness (tiny parameterizations)."""

import pytest

from repro.bench.figures import (
    SCALES,
    fig10_scalability,
    fig11_size_scaling,
    fig12_overhead,
    fig13_recovery,
    sim_dag_for,
)
from repro.errors import ConfigurationError
from repro.patterns import DiagonalDag, GridDag, IntervalDag
from repro.patterns.knapsack import KnapsackDag


class TestSimDagFor:
    def test_app_shapes(self):
        assert isinstance(sim_dag_for("swlag", 10_000), DiagonalDag)
        assert isinstance(sim_dag_for("mtp", 10_000), GridDag)
        assert isinstance(sim_dag_for("lps", 10_000), IntervalDag)
        assert isinstance(sim_dag_for("knapsack", 10_000), KnapsackDag)

    def test_vertex_count_approximate(self):
        dag = sim_dag_for("swlag", 250_000)
        assert dag.size == pytest.approx(250_000, rel=0.02)

    def test_lps_active_count_approximate(self):
        dag = sim_dag_for("lps", 250_000)
        active = dag.width * (dag.width + 1) // 2
        assert active == pytest.approx(250_000, rel=0.02)

    def test_knapsack_weights_deterministic(self):
        a = sim_dag_for("knapsack", 90_000)
        b = sim_dag_for("knapsack", 90_000)
        assert a.weights == b.weights

    def test_unknown_app_rejected(self):
        with pytest.raises(ConfigurationError):
            sim_dag_for("tsp", 100)


class TestScales:
    def test_both_scales_defined(self):
        assert set(SCALES) == {"small", "paper"}
        for params in SCALES.values():
            assert params["fig10_vertices"] > 0

    def test_unknown_scale_rejected(self):
        with pytest.raises(ConfigurationError):
            fig10_scalability("huge")


class TestFigureRunners:
    """Tiny sweeps: structure and basic physics, not calibration."""

    def test_fig10_structure(self):
        data = fig10_scalability("small", apps=["mtp"], nodes_list=[2, 4])
        assert set(data) == {"mtp"}
        assert set(data["mtp"]) == {2, 4}
        assert data["mtp"][4] < data["mtp"][2]

    def test_fig11_monotone(self):
        data = fig11_size_scaling("small", apps=["swlag"])
        times = list(data["swlag"].values())
        assert times == sorted(times)

    def test_fig12_ratio_above_one(self):
        data = fig12_overhead("small", nodes_list=[4])
        for _, (_, _, ratio) in data[4].items():
            assert ratio > 1.0

    def test_fig13_recovery_halves_with_places(self):
        data = fig13_recovery("small", nodes_list=[4, 8])
        for v in data[4]:
            assert data[8][v][0] == pytest.approx(data[4][v][0] * 6 / 14, rel=0.02)
