"""Tests for the series formatter."""

import os

from repro.bench.formatting import format_series, write_series


class TestFormatSeries:
    def test_contains_all_cells(self):
        out = format_series("T", "n", [1, 2], {"a": [0.5, 0.25], "b": [3.0, 4.0]})
        assert "T" in out
        assert "n=1" in out and "n=2" in out
        assert "0.50" in out and "4.00" in out
        assert out.count("\n") >= 4

    def test_custom_unit_and_precision(self):
        out = format_series("T", "v", [10], {"r": [1.2345]}, unit="x", precision=3)
        assert "1.234 x" in out or "1.235 x" in out


class TestWriteSeries:
    def test_roundtrip(self, tmp_path):
        path = os.path.join(tmp_path, "sub", "table.txt")
        write_series(path, "hello\nworld")
        with open(path) as fh:
            assert fh.read() == "hello\nworld\n"
