"""Tests for the parameter-sweep utility."""

import pytest

from repro.bench.sweep import Sweep, to_csv
from repro.errors import ConfigurationError


class TestSweep:
    def test_grid_size_and_order(self):
        s = Sweep(axes={"a": [1, 2], "b": ["x", "y", "z"]}, run=lambda a, b: {})
        assert s.size == 6
        pts = s.points()
        assert pts[0] == {"a": 1, "b": "x"}
        assert pts[-1] == {"a": 2, "b": "z"}

    def test_execute_merges_metrics(self):
        s = Sweep(axes={"n": [1, 2, 4]}, run=lambda n: {"inv": 1.0 / n, "sq": n * n})
        rows = s.execute()
        assert rows[2] == {"n": 4, "inv": 0.25, "sq": 16}
        assert s.results is rows

    def test_metric_axis_collision_rejected(self):
        s = Sweep(axes={"n": [1]}, run=lambda n: {"n": 5})
        with pytest.raises(ConfigurationError):
            s.execute()

    def test_empty_axis_rejected(self):
        with pytest.raises(ConfigurationError):
            Sweep(axes={"n": []}, run=lambda n: {})

    def test_no_axes_rejected(self):
        with pytest.raises(ConfigurationError):
            Sweep(axes={}, run=lambda: {})

    def test_real_runtime_sweep(self):
        from repro.apps.lcs import solve_lcs
        from repro.core.config import DPX10Config

        def run(nplaces, cache_size):
            _, rep = solve_lcs(
                "ABCBDAB", "BDCABA", DPX10Config(nplaces=nplaces, cache_size=cache_size)
            )
            return {"bytes": rep.network_bytes, "hits": rep.cache_hits}

        rows = Sweep(axes={"nplaces": [1, 3], "cache_size": [0, 16]}, run=run).execute()
        assert len(rows) == 4
        by_key = {(r["nplaces"], r["cache_size"]): r for r in rows}
        assert by_key[(1, 16)]["bytes"] == 0  # single place: no traffic
        assert by_key[(3, 0)]["hits"] == 0  # no cache: no hits


class TestToCSV:
    def test_roundtrip_structure(self):
        csv = to_csv([{"a": 1, "b": 2.5}, {"a": 3, "b": 0.125}])
        lines = csv.strip().split("\n")
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.5"
        assert lines[2] == "3,0.125"

    def test_quoting(self):
        csv = to_csv([{"name": 'va"l,ue', "x": 1}])
        assert '"va""l,ue"' in csv

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            to_csv([])
