"""Directed regression cases for the hard corners of the fault space.

The generated battery (test_property) only explores the survivable space
(place 0 is never targeted). These tests pin the edges: a second place
dying while recovery for the first is in flight, near-simultaneous
deaths sharing one completion threshold, losing every worker place, and
the unrecoverable cases — which must surface as a clean
:class:`UnrecoverableError`, never a hang or a wrong answer.
"""

import pytest

from repro.apgas.failure import FaultPlan
from repro.chaos.harness import CaseSpec, build_case, run_case
from repro.chaos.schedule import ChaosSchedule, KillSpec, RecoveryKillSpec
from repro.core.config import DPX10Config
from repro.core.runtime import DPX10Runtime
from repro.errors import PlaceZeroDeadError, UnrecoverableError

ENGINES = ["inline", "threaded", "mp"]


def _raw_run(engine, schedule, *, nplaces=3, fault_plans=()):
    """Run the probe app directly so exception types stay observable."""
    spec = CaseSpec(pattern="diagonal", engine=engine, nplaces=nplaces)
    app, dag, _ = build_case(spec)
    cfg = DPX10Config(nplaces=nplaces, engine=engine, chaos=schedule)
    return DPX10Runtime(app, dag, cfg, fault_plans=fault_plans).run()


def _check(spec, schedule):
    result = run_case(spec, schedule)
    assert result.ok and not result.error, result.describe()
    return result


@pytest.mark.parametrize("engine", ["inline", "threaded"])
def test_second_place_dies_mid_recovery(engine):
    spec = CaseSpec(pattern="diagonal", engine=engine, nplaces=3)
    schedule = ChaosSchedule(
        seed=1,
        kills=(KillSpec(1, after_completions=50),),
        recovery_kills=(RecoveryKillSpec(2, during_pass=1, after_progress=0),),
    )
    result = _check(spec, schedule)
    assert result.injected.get("kill") == 1
    assert result.injected.get("recovery_kill") == 1
    assert result.recoveries >= 1


def test_mp_second_place_dies_mid_recovery():
    # mp recovery progress counts *recomputed* cells (often few), so the
    # mid-recovery kill must use after_progress=0 to fire reliably
    spec = CaseSpec(pattern="diagonal", engine="mp", nplaces=4)
    schedule = ChaosSchedule(
        seed=1,
        kills=(KillSpec(1, after_completions=25),),
        recovery_kills=(RecoveryKillSpec(2, during_pass=1, after_progress=0),),
    )
    result = _check(spec, schedule)
    assert result.injected.get("recovery_kill") == 1
    assert result.recoveries >= 1


@pytest.mark.parametrize("engine", ENGINES)
def test_near_simultaneous_kills_share_threshold(engine):
    spec = CaseSpec(pattern="diagonal", engine=engine, nplaces=4)
    schedule = ChaosSchedule(
        seed=2,
        kills=(
            KillSpec(1, after_completions=40),
            KillSpec(2, after_completions=40),
        ),
    )
    result = _check(spec, schedule)
    assert result.injected.get("kill") == 2
    assert result.recoveries >= 1


@pytest.mark.parametrize("engine", ENGINES)
def test_duplicate_fault_plans_same_threshold(engine):
    # the explicit FaultPlan path must tolerate identical thresholds too
    schedule = ChaosSchedule(seed=0)
    report = _raw_run(
        engine,
        None if schedule.is_empty else schedule,
        nplaces=4,
        fault_plans=[
            FaultPlan(1, after_completions=40),
            FaultPlan(2, after_completions=40),
        ],
    )
    assert report.recoveries >= 1


@pytest.mark.parametrize("engine", ENGINES)
def test_kill_place_zero_raises_cleanly(engine):
    schedule = ChaosSchedule(
        seed=3, kills=(KillSpec(0, after_completions=30),)
    )
    with pytest.raises(UnrecoverableError) as exc_info:
        _raw_run(engine, schedule)
    assert isinstance(exc_info.value, PlaceZeroDeadError)


@pytest.mark.parametrize("engine", ["inline", "threaded"])
def test_place_zero_dies_mid_recovery(engine):
    schedule = ChaosSchedule(
        seed=4,
        kills=(KillSpec(1, after_completions=50),),
        recovery_kills=(RecoveryKillSpec(0, during_pass=1, after_progress=0),),
    )
    with pytest.raises(UnrecoverableError) as exc_info:
        _raw_run(engine, schedule)
    assert isinstance(exc_info.value, PlaceZeroDeadError)


@pytest.mark.parametrize("engine", ENGINES)
def test_cascade_killing_every_worker_completes_on_place_zero(engine):
    # lose places 1 and 2 in sequence; place 0 absorbs everything
    spec = CaseSpec(pattern="diagonal", engine=engine, nplaces=3)
    schedule = ChaosSchedule(
        seed=5,
        kills=(
            KillSpec(1, after_completions=30),
            KillSpec(2, after_completions=70),
        ),
    )
    result = _check(spec, schedule)
    assert result.injected.get("kill") == 2
    assert result.recoveries == 2


def test_harness_reports_unrecoverable_as_clean_failure():
    # the differential harness must classify place-0 death as a *clean*
    # outcome (ok, with the error recorded), not a trial failure
    spec = CaseSpec(pattern="diagonal", engine="inline")
    schedule = ChaosSchedule(seed=6, kills=(KillSpec(0, after_completions=10),))
    result = run_case(spec, schedule)
    assert result.ok
    assert "PlaceZeroDeadError" in (result.error or "")
