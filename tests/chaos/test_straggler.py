"""Straggler detection under chaos throttles, validated in both directions.

A :class:`ThrottleSpec` makes one place sleep per executed cell — the
limplock the detector exists to catch. Each engine runs twice: once
throttled (exactly the throttled place must be flagged in the
``dpx10_straggler`` gauge) and once clean (zero alerts — the
absolute-excess floor must keep scheduler noise below the bar). The mp
engine is the subtle case: its throttle sleeps in the *master* loop,
where the worker's own timer cannot see them, so the master folds the
injected sleep into the observations it feeds the detector.
"""

import pytest

from repro.apps.smith_waterman import solve_sw
from repro.chaos.schedule import ChaosSchedule, ThrottleSpec
from repro.core.config import DPX10Config
from repro.obs.metrics import by_label
from repro.util.rng import seeded_rng

THROTTLED_PLACE = 2


def _strings(size, seed=3):
    rng = seeded_rng(seed, "straggler", size)
    return (
        "".join("ACGT"[int(k)] for k in rng.integers(0, 4, size=size)),
        "".join("ACGT"[int(k)] for k in rng.integers(0, 4, size=size)),
    )


def _flags(engine, size, tile, chaos, nplaces=4, shm=None, seed=3):
    s1, s2 = _strings(size, seed=seed)
    config = DPX10Config(
        nplaces=nplaces,
        engine=engine,
        tile_shape=tile,
        metrics=True,
        chaos=chaos,
        shm=shm,
    )
    _, report = solve_sw(s1, s2, config)
    gauge = by_label(report.metrics, "dpx10_straggler", "place")
    return {int(p): v for p, v in gauge.items() if v > 0}


def _throttle(place=THROTTLED_PLACE, sleep_s=0.0005):
    return ChaosSchedule(seed=1, throttles=(ThrottleSpec(place, sleep_s=sleep_s),))


class TestThrottledPlaceIsFlagged:
    """Exactly the throttled place, nothing else."""

    def test_inline_tiled(self):
        assert set(_flags("inline", 96, (16, 16), _throttle())) == {THROTTLED_PLACE}

    def test_threaded_tiled(self):
        flags = _flags("threaded", 96, (16, 16), _throttle())
        assert set(flags) == {THROTTLED_PLACE}
        assert flags[THROTTLED_PLACE] >= 5.0  # at least the k threshold

    def test_mp_shm_tiled(self):
        # master-side sleeps are folded into the worker observations
        flags = _flags("mp", 96, (16, 16), _throttle(), shm=True)
        assert set(flags) == {THROTTLED_PLACE}

    def test_mp_pipes_per_cell(self):
        flags = _flags("mp", 48, None, _throttle(), shm=False)
        assert set(flags) == {THROTTLED_PLACE}

    def test_a_different_place_moves_the_flag(self):
        assert set(_flags("threaded", 96, (16, 16), _throttle(place=0))) == {0}


class TestCleanRunsRaiseNoAlerts:
    """Zero false positives: the other half of the detector's contract."""

    @pytest.mark.parametrize("engine,shm", [
        ("inline", None), ("threaded", None), ("mp", True),
    ])
    def test_clean_tiled_run_is_quiet(self, engine, shm):
        assert _flags(engine, 96, (16, 16), None, shm=shm) == {}

    def test_clean_mp_pipes_run_is_quiet(self):
        assert _flags("mp", 48, None, None, shm=False) == {}

    def test_clean_threaded_repeats_stay_quiet(self):
        # scheduler jitter across repetitions must stay under the
        # absolute-excess floor
        for seed in (3, 4, 5):
            assert _flags("threaded", 96, (16, 16), None, seed=seed) == {}


class TestResultsAreUnperturbed:
    def test_throttle_changes_timing_not_answers(self):
        s1, s2 = _strings(64)
        base = DPX10Config(nplaces=4, engine="threaded", tile_shape=(16, 16))
        slow = DPX10Config(
            nplaces=4, engine="threaded", tile_shape=(16, 16),
            chaos=_throttle(),
        )
        app_a, _ = solve_sw(s1, s2, base)
        app_b, _ = solve_sw(s1, s2, slow)
        assert app_a.best_score == app_b.best_score
