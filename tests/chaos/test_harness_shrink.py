"""The shrinker acceptance: a planted bug yields a tiny, replayable repro.

``buggy-probe`` plants the wrong-answer bug the ISSUE prescribes (any
cell recomputed after a fault returns a corrupted value), so any schedule
with one effective kill exposes it. The shrinker must reduce a noisy
failing schedule to <= 3 events that still reproduce deterministically,
and the replay file must round-trip losslessly.
"""

import json

import pytest

from repro.chaos.harness import CaseSpec, run_case
from repro.chaos.schedule import (
    ChaosSchedule,
    KillSpec,
    MessageChaos,
    RecoveryKillSpec,
    ThrottleSpec,
)
from repro.chaos.shrink import (
    load_replay,
    shrink_case,
    shrink_schedule,
    write_replay,
)

BUGGY = CaseSpec(app="buggy-probe", pattern="diagonal", engine="inline")

#: a deliberately noisy schedule: one load-bearing kill among bystanders
NOISY = ChaosSchedule(
    seed=0,
    kills=(KillSpec(1, after_completions=55),),
    throttles=(ThrottleSpec(2, 0.0002), ThrottleSpec(1, 0.0003)),
    message=MessageChaos(p_delay=0.1),
)


def test_planted_bug_fails_under_kills_and_passes_clean():
    assert not run_case(BUGGY, NOISY).ok
    # without faults nothing recomputes, so the planted bug stays dormant
    assert run_case(BUGGY, ChaosSchedule(seed=0)).ok


def test_shrinks_planted_bug_to_three_events_or_fewer():
    minimal, trials = shrink_case(BUGGY, NOISY)
    assert len(minimal.events()) <= 3
    assert trials <= 200
    # the minimal schedule still reproduces, deterministically
    a = run_case(BUGGY, minimal)
    b = run_case(BUGGY, minimal)
    assert not a.ok and not b.ok
    assert a.mismatches == b.mismatches
    assert a.mismatch_count == b.mismatch_count


def test_shrunk_schedule_is_one_minimal():
    minimal, _ = shrink_case(BUGGY, NOISY)
    events = minimal.events()
    for k in range(len(events)):
        candidate = ChaosSchedule.from_events(
            events[:k] + events[k + 1:], seed=minimal.seed
        )
        if candidate.is_empty:
            continue
        assert run_case(BUGGY, candidate).ok, (
            f"event {events[k]} is not load-bearing"
        )


def test_shrink_schedule_finds_the_load_bearing_event():
    # synthetic predicate: only the recovery kill of place 3 matters
    schedule = ChaosSchedule(
        seed=1,
        kills=(KillSpec(1, 10), KillSpec(2, 20)),
        recovery_kills=(RecoveryKillSpec(3),),
        throttles=(ThrottleSpec(1),),
    )

    def fails(candidate):
        return any(r.place_id == 3 for r in candidate.recovery_kills)

    minimal, trials = shrink_schedule(schedule, fails)
    assert minimal.events() == [("recovery_kill", RecoveryKillSpec(3))]
    assert trials < 50


def test_shrink_rejects_passing_schedule():
    with pytest.raises(AssertionError):
        shrink_schedule(ChaosSchedule(seed=0, kills=(KillSpec(1, 5),)), lambda c: False)


def test_replay_file_round_trip(tmp_path):
    path = tmp_path / "replay.json"
    result = run_case(BUGGY, NOISY)
    assert not result.ok
    write_replay(str(path), BUGGY, NOISY, result)

    doc = json.loads(path.read_text())
    assert doc["version"] == 1
    assert doc["failure"]["mismatch_count"] == result.mismatch_count

    spec, schedule = load_replay(str(path))
    assert spec == BUGGY
    assert schedule == NOISY
    # the reloaded pair reproduces the stored failure
    replayed = run_case(spec, schedule)
    assert not replayed.ok
    assert replayed.mismatch_count == result.mismatch_count


def test_replay_rejects_unknown_version(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"version": 99, "spec": {}, "schedule": {}}))
    with pytest.raises(ValueError):
        load_replay(str(path))


def test_shrink_demo_cli(tmp_path, capsys):
    # the CLI's --demo path is the ISSUE's acceptance check end to end
    from repro.chaos.cli import _shrink_demo

    class Args:
        places = 3
        size = 12
        seeds = 8
        seed_base = 0
        out = str(tmp_path / "demo.json")

    assert _shrink_demo(Args()) == 0
    spec, schedule = load_replay(Args.out)
    assert spec.app == "buggy-probe"
    assert len(schedule.events()) <= 3
