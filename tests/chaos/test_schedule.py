"""Schedule generation, serialization, and event-list round trips."""

import pytest

from repro.chaos.schedule import (
    ChaosSchedule,
    KillSpec,
    MessageChaos,
    RecoveryKillSpec,
    ThrottleSpec,
)
from repro.errors import DPX10Error


class TestGenerate:
    def test_same_seed_same_schedule(self):
        a = ChaosSchedule.generate(7, 4, 100, message_chaos=True)
        b = ChaosSchedule.generate(7, 4, 100, message_chaos=True)
        assert a == b

    def test_seeds_diversify(self):
        schedules = {
            ChaosSchedule.generate(s, 4, 100).describe() for s in range(30)
        }
        assert len(schedules) > 5  # the space is actually explored

    def test_never_targets_place_zero(self):
        for seed in range(100):
            s = ChaosSchedule.generate(seed, 4, 200, intensity=2.0)
            assert all(k.place_id != 0 for k in s.kills)
            assert all(r.place_id != 0 for r in s.recovery_kills)
            assert all(t.place_id != 0 for t in s.throttles)

    def test_single_place_generates_empty_kills(self):
        s = ChaosSchedule.generate(3, 1, 50)
        assert not s.kills and not s.recovery_kills and not s.throttles

    def test_near_simultaneous_kills_appear(self):
        # some seed in a modest range must produce a shared threshold
        found = False
        for seed in range(60):
            s = ChaosSchedule.generate(seed, 4, 100)
            thresholds = [k.after_completions for k in s.kills]
            if len(thresholds) != len(set(thresholds)):
                found = True
                break
        assert found

    def test_recovery_kills_appear(self):
        assert any(
            ChaosSchedule.generate(seed, 4, 100).recovery_kills
            for seed in range(40)
        )

    def test_message_chaos_only_when_asked(self):
        assert ChaosSchedule.generate(1, 3, 50).message is None
        assert ChaosSchedule.generate(1, 3, 50, message_chaos=True).message


class TestRoundTrips:
    def _busy(self) -> ChaosSchedule:
        return ChaosSchedule(
            seed=9,
            kills=(KillSpec(1, 10), KillSpec(2, 10)),
            recovery_kills=(RecoveryKillSpec(3, during_pass=1, after_progress=4),),
            throttles=(ThrottleSpec(2, 0.001),),
            message=MessageChaos(p_drop=0.1, timeout_s=0.05, max_retries=3),
        )

    def test_json_round_trip(self):
        s = self._busy()
        assert ChaosSchedule.from_dict(s.to_dict()) == s

    def test_event_round_trip(self):
        s = self._busy()
        assert ChaosSchedule.from_events(s.events(), seed=s.seed) == s

    def test_events_are_atomic(self):
        s = self._busy()
        events = s.events()
        assert len(events) == 5
        smaller = ChaosSchedule.from_events(events[:2], seed=s.seed)
        assert smaller.kills == s.kills
        assert not smaller.recovery_kills and smaller.message is None

    def test_fault_plans_view(self):
        plans = self._busy().fault_plans()
        assert [(p.place_id, p.after_completions) for p in plans] == [
            (1, 10),
            (2, 10),
        ]

    def test_describe_mentions_every_event(self):
        text = self._busy().describe()
        assert "recovery pass" in text and "throttle" in text
        assert "drop" in text

    def test_empty_schedule(self):
        s = ChaosSchedule(seed=0)
        assert s.is_empty
        assert s.describe() == "(empty schedule)"
        assert s.events() == []


class TestValidation:
    def test_bad_probability_rejected(self):
        with pytest.raises(DPX10Error):
            MessageChaos(p_drop=1.5)

    def test_bad_pass_rejected(self):
        with pytest.raises(DPX10Error):
            RecoveryKillSpec(1, during_pass=0)

    def test_unknown_event_kind_rejected(self):
        with pytest.raises(ValueError):
            ChaosSchedule.from_events([("meteor", None)])

    def test_config_rejects_non_schedule(self):
        from repro.core.config import DPX10Config

        with pytest.raises(DPX10Error):
            DPX10Config(chaos={"kills": []})
