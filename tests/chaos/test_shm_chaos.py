"""Chaos battery for the shared-memory transport (ISSUE 5 satellite).

One seeded schedule per engine kills a place mid-run with the shm data
plane forced on, then asserts two things the pickled-pipe battery cannot:

* the run still matches the serial oracle cell-for-cell (recovery
  re-materializes the dead place's plane regions by recompute), and
* no ``dpx10-`` segment is left behind in ``/dev/shm`` — the leak
  detector is the whole point of routing segment lifetime through
  :class:`~repro.core.shm.ShmArena`.

The kills land mid-wavefront (for the tiled cases: while halo strips are
in flight / prefetched), which is exactly when a leaked or stale segment
would surface.
"""

import pytest

from repro.chaos.harness import CaseSpec, run_case
from repro.chaos.schedule import ChaosSchedule, KillSpec
from repro.core.shm import leaked_segments, shm_supported

pytestmark = pytest.mark.skipif(
    not shm_supported(), reason="no usable shared memory on this platform"
)

ENGINES = ["inline", "threaded", "mp"]


def _check_no_leaks():
    leaks = leaked_segments()
    assert leaks == [], f"leaked /dev/shm segments: {leaks}"


@pytest.mark.parametrize("engine", ENGINES)
def test_kill_mid_run_shm_matches_oracle(engine):
    """sw under a seeded mid-run kill, shm forced on, untiled."""
    spec = CaseSpec(
        app="sw", pattern="diagonal", engine=engine, nplaces=4,
        height=24, width=24, shm=True,
    )
    schedule = ChaosSchedule(
        seed=101, kills=(KillSpec(2, after_completions=120),)
    )
    result = run_case(spec, schedule)
    assert result.ok and not result.error, result.describe()
    assert result.injected.get("kill") == 1
    assert result.recoveries >= 1
    _check_no_leaks()


@pytest.mark.parametrize("engine", ENGINES)
def test_kill_mid_prefetch_tiled_shm_matches_oracle(engine):
    """Tiled run with the halo prefetcher live when the place dies."""
    spec = CaseSpec(
        app="sw", pattern="diagonal", engine=engine, nplaces=4,
        height=24, width=24, tile_shape=(4, 4), shm=True,
    )
    schedule = ChaosSchedule(
        seed=202, kills=(KillSpec(1, after_completions=90),)
    )
    result = run_case(spec, schedule)
    assert result.ok and not result.error, result.describe()
    assert result.recoveries >= 1
    _check_no_leaks()


@pytest.mark.parametrize("engine", ENGINES)
def test_shm_off_still_matches_oracle(engine):
    """The forced-off leg: same schedule over the pickled/pipe transport."""
    spec = CaseSpec(
        app="sw", pattern="diagonal", engine=engine, nplaces=4,
        height=24, width=24, tile_shape=(4, 4), shm=False,
    )
    schedule = ChaosSchedule(
        seed=202, kills=(KillSpec(1, after_completions=90),)
    )
    result = run_case(spec, schedule)
    assert result.ok and not result.error, result.describe()
    _check_no_leaks()


def test_cascade_kills_under_shm_no_leaks():
    """Two sequential deaths: every re-built store generation is unlinked."""
    spec = CaseSpec(
        app="probe", pattern="diagonal", engine="mp", nplaces=4,
        height=16, width=16, tile_shape=(4, 4), shm=True,
    )
    schedule = ChaosSchedule(
        seed=303,
        kills=(
            KillSpec(1, after_completions=40),
            KillSpec(3, after_completions=100),
        ),
    )
    result = run_case(spec, schedule)
    assert result.ok and not result.error, result.describe()
    _check_no_leaks()
