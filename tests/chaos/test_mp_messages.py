"""The hardened mp message path under drop / duplicate / delay / reorder.

Covers all three layers: the :class:`ChaosPipe` fault injector itself
(against a fake connection), the worker's idempotent sequence-number
deduplication (driving ``_worker_main`` directly over a real pipe), and
full mp runs whose replies are dropped, duplicated and reordered — which
must stay cell-for-cell exact while the retry counters surface in the
merged metrics snapshot.
"""

import multiprocessing as mp
import threading
from collections import deque

from repro.chaos.harness import CaseSpec, build_case, run_case
from repro.chaos.network import DROPPED, ChaosPipe
from repro.chaos.schedule import ChaosSchedule, MessageChaos
from repro.core.config import DPX10Config
from repro.core.mp_engine import _worker_main
from repro.core.runtime import DPX10Runtime


class FakeConn:
    """An in-memory stand-in for one end of a multiprocessing pipe."""

    def __init__(self):
        self.sent = []
        self.queue = deque()

    def send(self, msg):
        self.sent.append(msg)

    def recv(self):
        return self.queue.popleft()

    def poll(self, timeout=0.0):
        return bool(self.queue)

    def close(self):
        pass


def _pipe(fake, **chaos_kwargs):
    events = []
    chaos = MessageChaos(**chaos_kwargs)
    return ChaosPipe(fake, chaos, seed=7, record_event=events.append), events


class TestChaosPipe:
    def test_certain_drop_loses_the_send(self):
        fake = FakeConn()
        pipe, events = _pipe(fake, p_drop=1.0)
        pipe.send(("hello",))
        assert fake.sent == []
        assert events == ["msg_drop"]

    def test_certain_drop_turns_recv_into_silence(self):
        fake = FakeConn()
        pipe, events = _pipe(fake, p_drop=1.0)
        fake.queue.append((1, "done"))
        assert pipe.recv() is DROPPED
        assert "msg_drop" in events

    def test_certain_dup_sends_twice(self):
        fake = FakeConn()
        pipe, events = _pipe(fake, p_dup=1.0)
        pipe.send((1, "compute"))
        assert fake.sent == [(1, "compute"), (1, "compute")]
        assert events == ["msg_dup"]

    def test_certain_reorder_swaps_queued_replies(self):
        fake = FakeConn()
        pipe, events = _pipe(fake, p_reorder=1.0)
        fake.queue.extend([(1, "first"), (2, "second")])
        assert pipe.recv() == (2, "second")
        assert pipe.recv() == (1, "first")  # served from the stash
        assert events == ["msg_reorder"]

    def test_delay_is_recorded(self):
        fake = FakeConn()
        pipe, events = _pipe(fake, p_delay=1.0, delay_s=0.0)
        pipe.send((1, "compute"))
        assert events == ["msg_delay"]
        assert fake.sent == [(1, "compute")]

    def test_poll_sees_the_stash(self):
        fake = FakeConn()
        pipe, _ = _pipe(fake, p_reorder=1.0)
        fake.queue.extend([(1, "a"), (2, "b")])
        pipe.recv()
        fake.queue.clear()
        assert pipe.poll(0)  # the stashed (1, "a") is still deliverable

    def test_raw_stays_reachable_for_teardown(self):
        fake = FakeConn()
        pipe, _ = _pipe(fake, p_drop=1.0)
        assert pipe.raw is fake


def _snapshot_value(snapshot, name):
    values = snapshot.get(name, {}).get("values", [])
    return sum(v for _, v in values)


class TestWorkerDedup:
    """Drive the worker loop directly: duplicates must not recompute."""

    def _start_worker(self):
        parent, child = mp.Pipe()
        t = threading.Thread(
            target=_worker_main, args=(1, child), daemon=True
        )
        t.start()
        return parent, t

    def test_duplicate_compute_answered_from_cache(self):
        spec = CaseSpec(pattern="diagonal", height=3, width=3)
        app, dag, _ = build_case(spec)
        parent, t = self._start_worker()
        try:
            parent.send((1, "init", app, dag, None))
            assert parent.recv() == (1, "ok")
            parent.send((2, "compute", [(0, 0)], {}))
            first = parent.recv()
            # (seq, "done", ncells, elapsed_seconds)
            assert first[:3] == (2, "done", 1)
            # the duplicate delivery (chaos dup or master retry): the
            # cached reply comes back verbatim, the kernel does not rerun
            parent.send((2, "compute", [(0, 0)], {}))
            assert parent.recv() == first
            parent.send((3, "stats"))
            snapshot = parent.recv()[2]
            assert _snapshot_value(snapshot, "dpx10_mp_worker_cells_total") == 1
            assert _snapshot_value(snapshot, "dpx10_mp_worker_dedup_total") == 1
        finally:
            parent.send((9, "stop"))
            assert parent.recv() == (9, "bye")
            t.join(timeout=5)

    def test_duplicate_stop_still_terminates(self):
        spec = CaseSpec(pattern="diagonal", height=3, width=3)
        app, dag, _ = build_case(spec)
        parent, t = self._start_worker()
        parent.send((1, "init", app, dag, None))
        assert parent.recv() == (1, "ok")
        parent.send((2, "stop"))
        assert parent.recv() == (2, "bye")
        t.join(timeout=5)
        assert not t.is_alive()


def _message_schedule(seed=0, **kwargs):
    defaults = dict(timeout_s=0.1, max_retries=12, backoff_s=0.002)
    defaults.update(kwargs)
    return ChaosSchedule(seed=seed, message=MessageChaos(**defaults))


class TestMpRuns:
    def test_dropped_replies_are_retried_and_exact(self):
        spec = CaseSpec(pattern="diagonal", engine="mp", nplaces=3)
        result = run_case(spec, _message_schedule(seed=11, p_drop=0.2))
        assert result.ok, result.describe()
        assert result.msg_retries > 0
        assert result.injected.get("msg_drop", 0) > 0

    def test_duplicated_and_reordered_replies_are_exact(self):
        spec = CaseSpec(pattern="diagonal", engine="mp", nplaces=3)
        result = run_case(
            spec, _message_schedule(seed=12, p_dup=0.5, p_reorder=0.5)
        )
        assert result.ok, result.describe()
        assert result.injected.get("msg_dup", 0) > 0
        assert result.injected.get("msg_reorder", 0) > 0
        # duplicates never inflate the work: the dedup above guarantees it
        assert result.mismatch_count == 0

    def test_retry_counter_lands_in_merged_metrics(self):
        spec = CaseSpec(pattern="diagonal", engine="mp", nplaces=3)
        app, dag, _ = build_case(spec)
        config = DPX10Config(
            nplaces=3,
            engine="mp",
            metrics=True,
            chaos=_message_schedule(seed=13, p_drop=0.25, p_dup=0.3),
        )
        report = DPX10Runtime(app, dag, config).run()
        assert report.msg_retries > 0
        assert report.metrics is not None
        assert (
            _snapshot_value(report.metrics, "dpx10_msg_retries_total")
            == report.msg_retries
        )
        injected = report.metrics.get("dpx10_chaos_injected_total", {})
        kinds = {labels[0] for labels, _ in injected.get("values", [])}
        assert "msg_drop" in kinds
        # worker-side dedup counters survive the cross-process merge
        assert (
            _snapshot_value(report.metrics, "dpx10_mp_worker_dedup_total") > 0
        )

    def test_chaos_free_mp_run_reports_zero_retries(self):
        spec = CaseSpec(pattern="diagonal", engine="mp", nplaces=3)
        result = run_case(spec, ChaosSchedule(seed=0))
        assert result.ok and result.msg_retries == 0

    def test_message_chaos_composes_with_kills(self):
        from repro.chaos.schedule import KillSpec

        spec = CaseSpec(pattern="diagonal", engine="mp", nplaces=3)
        schedule = ChaosSchedule(
            seed=14,
            kills=(KillSpec(1, after_completions=40),),
            message=MessageChaos(
                p_drop=0.15, timeout_s=0.1, max_retries=12, backoff_s=0.002
            ),
        )
        result = run_case(spec, schedule)
        assert result.ok, result.describe()
        assert result.recoveries >= 1
