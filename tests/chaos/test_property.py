"""Differential property battery: chaos runs must equal the serial oracle.

Every built-in pattern runs under seeded chaos schedules on every engine
(per-vertex and tiled); every result cell is diffed against a serial
reference by the harness. Seed counts default small so the tier-1 suite
stays fast; set ``DPX10_CHAOS_SEEDS`` to scale the battery up (the CI
chaos job and the 50-seed acceptance run use the ``repro chaos`` CLI
instead, which walks the same harness).

A failing trial fails the test with the seed, the full schedule, the
cell diff, *and* a ddmin-shrunk minimal schedule — everything needed to
reproduce with ``python -m repro chaos replay``.
"""

import os

import pytest

from repro.chaos.harness import CaseSpec, build_case, run_case
from repro.chaos.schedule import ChaosSchedule
from repro.patterns import PATTERNS

ALL_PATTERNS = sorted(PATTERNS)

_WORK_CACHE = {}


def _seeds(default: int):
    return range(int(os.environ.get("DPX10_CHAOS_SEEDS", default)))


def _total_work(spec: CaseSpec) -> int:
    key = (spec.app, spec.pattern, spec.height, spec.width, spec.salt)
    if key not in _WORK_CACHE:
        _, _, expected = build_case(spec)
        _WORK_CACHE[key] = len(expected)
    return _WORK_CACHE[key]


def check_seeded(spec: CaseSpec, seed: int, *, message_chaos: bool = False):
    """Run one seeded trial; on failure report seed + shrunk schedule."""
    schedule = ChaosSchedule.generate(
        seed, spec.nplaces, _total_work(spec), message_chaos=message_chaos
    )
    result = run_case(spec, schedule)
    if not result.ok:
        from repro.chaos.shrink import shrink_case

        minimal, trials = shrink_case(spec, schedule)
        pytest.fail(
            "chaos trial diverged from the serial oracle\n"
            + result.describe()
            + f"\nshrunk schedule ({trials} trials):\n"
            + minimal.describe()
        )
    return result


@pytest.mark.parametrize("pattern", ALL_PATTERNS)
def test_inline_every_pattern(pattern):
    spec = CaseSpec(pattern=pattern, engine="inline")
    for seed in _seeds(8):
        check_seeded(spec, seed)


@pytest.mark.parametrize("pattern", ALL_PATTERNS)
def test_threaded_every_pattern(pattern):
    spec = CaseSpec(pattern=pattern, engine="threaded")
    for seed in _seeds(3):
        check_seeded(spec, seed)


@pytest.mark.parametrize("pattern", ALL_PATTERNS)
def test_mp_every_pattern(pattern):
    spec = CaseSpec(pattern=pattern, engine="mp")
    for seed in _seeds(1):
        check_seeded(spec, seed)


@pytest.mark.parametrize("engine", ["inline", "threaded", "mp"])
@pytest.mark.parametrize("tile_shape", [(2, 2), (3, 2)])
def test_tiled_engines(engine, tile_shape):
    seeds = _seeds(2 if engine != "mp" else 1)
    for pattern in ("diagonal", "grid"):
        spec = CaseSpec(pattern=pattern, engine=engine, tile_shape=tile_shape)
        for seed in seeds:
            result = check_seeded(spec, seed)
            assert not result.skipped, result.describe()


def test_tiled_impossible_pattern_skips_cleanly():
    # square tiles coarsen antidiag into a cyclic pattern: a skip, not a hang
    spec = CaseSpec(pattern="antidiag", engine="inline", tile_shape=(2, 2))
    result = run_case(spec, ChaosSchedule(seed=0))
    assert result.ok and result.skipped


def test_mp_with_message_chaos():
    spec = CaseSpec(pattern="diagonal", engine="mp")
    for seed in _seeds(2):
        check_seeded(spec, seed, message_chaos=True)


def test_inline_with_modelled_message_chaos():
    # in-process engines route MessageChaos through ChaosNetwork (modelled)
    spec = CaseSpec(pattern="grid", engine="inline")
    for seed in _seeds(3):
        check_seeded(spec, seed, message_chaos=True)


@pytest.mark.parametrize("app", ["lcs", "sw", "knapsack"])
def test_concrete_apps_under_chaos(app):
    spec = CaseSpec(app=app, pattern="diagonal", engine="inline", nplaces=3)
    for seed in _seeds(3):
        check_seeded(spec, seed)


def test_schedules_are_replayable():
    # the harness trial is a pure function of (spec, schedule)
    spec = CaseSpec(pattern="diagonal", engine="inline")
    schedule = ChaosSchedule.generate(4, spec.nplaces, _total_work(spec))
    a = run_case(spec, schedule)
    b = run_case(spec, schedule)
    assert (a.ok, a.completions, a.recoveries, a.injected) == (
        b.ok,
        b.completions,
        b.recoveries,
        b.injected,
    )
