"""3-way MSA (3-D Needleman-Wunsch) vs its serial oracle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apgas.failure import FaultPlan
from repro.apps.msa import make_msa3_instance, solve_msa3
from repro.apps.serial import msa3_matrix, msa3_score
from repro.core.config import DPX10Config

DNA = st.text(alphabet="ACGT", min_size=0, max_size=5)
SETTINGS = dict(max_examples=15, deadline=None)


# ------------------------------------------------- hand-computed oracles


def test_oracle_hand_computed():
    # one identical column: three pairwise matches
    assert msa3_score("A", "A", "A") == 3
    # empty alignment scores zero
    assert msa3_score("", "", "") == 0
    # one residue vs two empties: two gap pairs + one gap-gap pair
    assert msa3_score("A", "", "") == -4
    # all-different column: three mismatches beats gapping each out
    assert msa3_score("A", "C", "G") == -3
    # two match + one gap column-pair structure
    # x=AC y=AC z=A: columns (A,A,A) then (C,C,-): 3 + (1 - 2 - 2) = 0
    assert msa3_score("AC", "AC", "A") == 0


def test_oracle_matrix_shape_and_corner():
    d = msa3_matrix("ACG", "AC", "A")
    assert d.shape == (4, 3, 2)
    assert d[0, 0, 0] == 0
    assert d[3, 2, 1] == msa3_score("ACG", "AC", "A")


def test_oracle_is_symmetric_under_sequence_swap():
    x, y, z = make_msa3_instance(4, seed=9)
    s = msa3_score(x, y, z)
    assert msa3_score(y, x, z) == s
    assert msa3_score(z, y, x) == s


# --------------------------------------------------- framework == oracle


@settings(**SETTINGS)
@given(x=DNA, y=DNA, z=DNA)
def test_msa3_matches_oracle(x, y, z):
    app, _ = solve_msa3(x, y, z)
    assert app.best_score == msa3_score(x, y, z)


@settings(max_examples=8, deadline=None)
@given(x=DNA, y=DNA, z=DNA)
def test_msa3_matches_oracle_threaded_3_places(x, y, z):
    cfg = DPX10Config(nplaces=3, engine="threaded")
    app, _ = solve_msa3(x, y, z, config=cfg)
    assert app.best_score == msa3_score(x, y, z)


@pytest.mark.parametrize("nplaces", [1, 4])
def test_msa3_place_counts(nplaces):
    x, y, z = make_msa3_instance(6, seed=2)
    app, _ = solve_msa3(x, y, z, config=DPX10Config(nplaces=nplaces))
    assert app.best_score == msa3_score(x, y, z)


def test_msa3_on_mp_engine():
    x, y, z = make_msa3_instance(5, seed=4)
    app, _ = solve_msa3(x, y, z, config=DPX10Config(nplaces=3, engine="mp"))
    assert app.best_score == msa3_score(x, y, z)


def test_msa3_custom_scoring():
    # with zero gap penalty, aligning "AA" against empties costs nothing
    app, _ = solve_msa3("AA", "", "", gap=0)
    assert app.best_score == 0
    # heavier mismatches push all-different columns toward gaps
    app2, _ = solve_msa3("A", "C", "G", mismatch=-10)
    assert app2.best_score == msa3_score("A", "C", "G", mismatch=-10)


# --------------------------------------------------------------- faults


@pytest.mark.parametrize("engine", ["inline", "threaded"])
def test_msa3_kill_and_recover(engine):
    x, y, z = make_msa3_instance(6, seed=7)
    cfg = DPX10Config(nplaces=4, engine=engine)
    app, report = solve_msa3(
        x, y, z, config=cfg, fault_plans=[FaultPlan(3, at_fraction=0.4)]
    )
    assert report.recoveries >= 1
    assert app.best_score == msa3_score(x, y, z)


def test_tensor_chaos_pinned_seed():
    """The pinned kill-and-recover case CI runs on the tensor domain."""
    from repro.chaos.harness import sweep

    results = sweep(
        apps=("msa3",),
        patterns=("diagonal",),
        engines=("inline",),
        seeds=(1,),
        nplaces=3,
        height=10,
        width=10,
    )
    assert results and all(r.ok and not r.skipped for r in results)
    assert any(r.recoveries >= 1 for r in results)


# ------------------------------------------------------------ edge cases


def test_all_empty_sequences():
    app, _ = solve_msa3("", "", "")
    assert app.best_score == 0


def test_single_characters():
    app, _ = solve_msa3("A", "A", "C")
    # (A,A) match + (A,C) + (A,C) mismatches = 1 - 1 - 1
    assert app.best_score == msa3_score("A", "A", "C") == -1


def test_make_instance_is_deterministic():
    assert make_msa3_instance(6, seed=1) == make_msa3_instance(6, seed=1)
    assert make_msa3_instance(6, seed=1) != make_msa3_instance(6, seed=2)
    x, y, z = make_msa3_instance(0)
    assert (x, y, z) == ("", "", "")
