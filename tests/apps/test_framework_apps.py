"""Each DPX10 application against its serial oracle (cell-for-cell)."""

import numpy as np
import pytest

from repro.apps.knapsack import make_knapsack_instance, solve_knapsack
from repro.apps.lcs import solve_lcs
from repro.apps.lps import solve_lps
from repro.apps.mtp import make_mtp_weights, solve_mtp
from repro.apps.edit_distance import solve_edit_distance
from repro.apps.serial import (
    edit_distance_matrix,
    knapsack_matrix,
    lcs_matrix,
    lps_matrix,
    mtp_matrix,
    sw_matrix,
    swlag_matrices,
)
from repro.apps.smith_waterman import solve_sw, solve_swlag
from repro.core.config import DPX10Config

CFG = DPX10Config(nplaces=3)


class TestLCSApp:
    def test_paper_figure1_walkthrough(self):
        app, _ = solve_lcs("ABC", "DBC", CFG)
        assert app.length == 2
        assert app.subsequence == "BC"

    def test_full_matrix_matches_oracle(self):
        x, y = "ABCBDAB", "BDCABA"
        app, _ = solve_lcs(x, y, CFG)
        oracle = lcs_matrix(x, y)
        assert app.length == oracle[-1, -1]

    def test_subsequence_is_common_subsequence(self):
        x, y = "XMJYAUZ", "MZJAWXU"
        app, _ = solve_lcs(x, y, CFG)
        assert app.length == len(app.subsequence)

        def is_subseq(s, t):
            it = iter(t)
            return all(c in it for c in s)

        assert is_subseq(app.subsequence, x)
        assert is_subseq(app.subsequence, y)

    def test_empty_common(self):
        app, _ = solve_lcs("AAA", "BBB", CFG)
        assert app.length == 0
        assert app.subsequence == ""


class TestSWApp:
    def test_matches_oracle(self):
        x, y = "ACACACTA", "AGCACACA"
        app, _ = solve_sw(x, y, CFG)
        assert app.best_score == sw_matrix(x, y).max()

    def test_figure7_scoring_constants(self):
        from repro.apps.smith_waterman import SWApp

        assert SWApp.MATCH_SCORE == 2
        assert SWApp.DISMATCH_SCORE == -1
        assert SWApp.GAP_PENALTY == -1

    def test_no_similarity(self):
        app, _ = solve_sw("AAAA", "TTTT", CFG)
        assert app.best_score == 0


class TestSWLAGApp:
    def test_matches_oracle(self):
        x, y = "GATTACA", "TACGACGA"
        app, _ = solve_swlag(x, y, CFG)
        h, _, _ = swlag_matrices(x, y)
        assert app.best_score == h.max()

    def test_custom_scoring(self):
        x, y = "AAAATTTTCCCC", "AAAACCCC"
        app, _ = solve_swlag(x, y, CFG, gap_open=-3, gap_extend=-1)
        h, _, _ = swlag_matrices(x, y, gap_open=-3, gap_extend=-1)
        assert app.best_score == h.max() == 10


class TestMTPApp:
    def test_matches_oracle(self):
        wd, wr = make_mtp_weights(7, 9, seed=11)
        app, _ = solve_mtp(wd, wr, CFG)
        assert app.best_path_weight == mtp_matrix(wd, wr)[-1, -1]

    def test_weight_generation_shapes(self):
        wd, wr = make_mtp_weights(5, 7, seed=0)
        assert wd.shape == (4, 7) and wr.shape == (5, 6)

    def test_weight_generation_deterministic(self):
        a = make_mtp_weights(4, 4, seed=5)
        b = make_mtp_weights(4, 4, seed=5)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])

    def test_inconsistent_shapes_rejected(self):
        from repro.apps.mtp import MTPApp
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            MTPApp(np.zeros((3, 4)), np.zeros((3, 4)))


class TestLPSApp:
    @pytest.mark.parametrize("s", ["A", "AB", "BBABCBCAB", "character"])
    def test_matches_oracle(self, s):
        app, _ = solve_lps(s, CFG)
        assert app.length == lps_matrix(s)[0, len(s) - 1]

    def test_triangular_dag_skips_inactive(self):
        _, report = solve_lps("ABCD", CFG)
        assert report.active_vertices == 10  # upper triangle of 4x4


class TestKnapsackApp:
    def test_matches_oracle(self):
        w, v = [1, 3, 4, 5], [1, 4, 5, 7]
        app, _ = solve_knapsack(w, v, 7, CFG)
        assert app.best_value == 9

    def test_chosen_items_consistent(self):
        w, v = make_knapsack_instance(10, 30, seed=4)
        app, _ = solve_knapsack(w, v, 30, CFG)
        assert app.best_value == knapsack_matrix(w, v, 30)[-1, -1]
        total_w = sum(w[k] for k in app.chosen_items)
        total_v = sum(v[k] for k in app.chosen_items)
        assert total_w <= 30
        assert total_v == app.best_value

    def test_random_instance_bounds(self):
        w, v = make_knapsack_instance(20, 50, seed=9)
        assert len(w) == len(v) == 20
        assert all(x >= 1 for x in w)


class TestEditDistanceApp:
    def test_matches_oracle(self):
        app, _ = solve_edit_distance("kitten", "sitting", CFG)
        assert app.distance == 3

    def test_random_matches_oracle(self):
        x, y = "INTENTION", "EXECUTION"
        app, _ = solve_edit_distance(x, y, CFG)
        assert app.distance == edit_distance_matrix(x, y)[-1, -1]
