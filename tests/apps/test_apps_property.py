"""Property-based: framework == oracle on random inputs."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.knapsack import solve_knapsack
from repro.apps.lcs import solve_lcs
from repro.apps.lps import solve_lps
from repro.apps.mtp import make_mtp_weights, solve_mtp
from repro.apps.serial import (
    knapsack_matrix,
    lcs_matrix,
    lps_matrix,
    mtp_matrix,
    sw_matrix,
)
from repro.apps.smith_waterman import solve_sw
from repro.core.config import DPX10Config

DNA = st.text(alphabet="ACGT", min_size=1, max_size=12)
CFG = DPX10Config(nplaces=3)
SETTINGS = dict(max_examples=20, deadline=None)


@settings(**SETTINGS)
@given(x=DNA, y=DNA)
def test_lcs_matches_oracle(x, y):
    app, _ = solve_lcs(x, y, CFG)
    assert app.length == lcs_matrix(x, y)[-1, -1]


@settings(**SETTINGS)
@given(x=DNA, y=DNA)
def test_sw_matches_oracle(x, y):
    app, _ = solve_sw(x, y, CFG)
    assert app.best_score == sw_matrix(x, y).max()


@settings(**SETTINGS)
@given(s=st.text(alphabet="ABC", min_size=1, max_size=12))
def test_lps_matches_oracle(s):
    app, _ = solve_lps(s, CFG)
    assert app.length == lps_matrix(s)[0, len(s) - 1]


@settings(**SETTINGS)
@given(
    weights=st.lists(st.integers(1, 8), min_size=1, max_size=6),
    values=st.data(),
    capacity=st.integers(0, 20),
)
def test_knapsack_matches_oracle(weights, values, capacity):
    vals = values.draw(
        st.lists(
            st.integers(1, 50), min_size=len(weights), max_size=len(weights)
        )
    )
    app, _ = solve_knapsack(weights, vals, capacity, CFG)
    assert app.best_value == knapsack_matrix(weights, vals, capacity)[-1, -1]


@settings(max_examples=10, deadline=None)
@given(
    h=st.integers(2, 7),
    w=st.integers(2, 7),
    seed=st.integers(0, 1000),
)
def test_mtp_matches_oracle(h, w, seed):
    wd, wr = make_mtp_weights(h, w, seed=seed)
    app, _ = solve_mtp(wd, wr, CFG)
    assert app.best_path_weight == mtp_matrix(wd, wr)[-1, -1]
