"""Tests for the CYK parser and longest-common-substring apps."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apgas.failure import FaultPlan
from repro.apps.common_substring import (
    common_substring_serial,
    solve_common_substring,
)
from repro.apps.cyk import CNFGrammar, cyk_serial, solve_cyk
from repro.core.config import DPX10Config
from repro.patterns.diag_chain import DiagChainDag

CFG = DPX10Config(nplaces=3)
PARENS = CNFGrammar.balanced_parentheses()


class TestDiagChainPattern:
    def test_validates(self):
        DiagChainDag(6, 9).validate()

    def test_single_dependency(self):
        d = DiagChainDag(4, 4)
        assert len(d.get_dependency(2, 2)) == 1
        assert d.get_dependency(0, 2) == []
        assert d.get_dependency(2, 0) == []

    def test_first_row_and_column_are_seeds(self):
        d = DiagChainDag(3, 3)
        seeds = [c for c in d.region if not d.get_dependency(*c)]
        assert (0, 0) in seeds and (0, 2) in seeds and (2, 0) in seeds


class TestCommonSubstring:
    @pytest.mark.parametrize(
        "x,y,length",
        [
            ("BANANAS", "KATANA", 3),  # ANA
            ("ABAB", "BABA", 3),
            ("ABC", "XYZ", 0),
            ("SAME", "SAME", 4),
            ("A", "A", 1),
        ],
    )
    def test_known_answers(self, x, y, length):
        app, _ = solve_common_substring(x, y, CFG)
        assert app.length == length
        assert len(app.substring) == length
        if length:
            assert app.substring in x and app.substring in y

    def test_differs_from_subsequence(self):
        # the paper's Figure 1 terminology quirk: for ABC/DBC the
        # subsequence answer is BC (2) and so is the substring; pick a
        # case where they differ
        from repro.apps.lcs import solve_lcs

        x, y = "AXBXC", "ABC"
        sub_app, _ = solve_lcs(x, y, CFG)
        str_app, _ = solve_common_substring(x, y, CFG)
        assert sub_app.length == 3  # ABC as a subsequence
        assert str_app.length == 1  # no common run longer than 1

    def test_survives_fault(self):
        x, y = "MISSISSIPPIRIVER", "MISSISSAUGA"
        app, rep = solve_common_substring(
            x, y, CFG, fault_plans=[FaultPlan(1, at_fraction=0.5)]
        )
        assert (app.length, app.substring) == common_substring_serial(x, y)
        assert rep.recoveries == 1

    @settings(max_examples=20, deadline=None)
    @given(x=st.text(alphabet="AB", min_size=1, max_size=10),
           y=st.text(alphabet="AB", min_size=1, max_size=10))
    def test_property_matches_oracle_length(self, x, y):
        app, _ = solve_common_substring(x, y, CFG)
        assert app.length == common_substring_serial(x, y)[0]


class TestCYK:
    @pytest.mark.parametrize(
        "s,expect",
        [
            ("()", True),
            ("(())", True),
            ("()()", True),
            ("(()())", True),
            ("(", False),
            (")(", False),
            ("(()", False),
            ("())", False),
        ],
    )
    def test_balanced_parentheses(self, s, expect):
        app, _ = solve_cyk(PARENS, s, CFG)
        assert app.derivable is expect

    def test_unknown_terminal_rejected_by_derivation(self):
        app, _ = solve_cyk(PARENS, "(a)", CFG)
        assert app.derivable is False

    def test_custom_grammar(self):
        # a^n b^n: S -> A T | A B ; T -> S B
        g = CNFGrammar(
            start="S",
            terminal_rules={"a": ["A"], "b": ["B"]},
            binary_rules=[("S", "A", "B"), ("S", "A", "T"), ("T", "S", "B")],
        )
        for s, expect in [("ab", True), ("aabb", True), ("aab", False), ("ba", False)]:
            app, _ = solve_cyk(g, s, CFG)
            assert app.derivable is expect, s

    def test_survives_fault(self):
        s = "(()())(())"
        app, rep = solve_cyk(
            PARENS, s, CFG, fault_plans=[FaultPlan(2, at_fraction=0.5)]
        )
        assert app.derivable is cyk_serial(PARENS, s)
        assert rep.recoveries == 1

    @settings(max_examples=20, deadline=None)
    @given(s=st.text(alphabet="()", min_size=1, max_size=10))
    def test_property_matches_serial(self, s):
        app, _ = solve_cyk(PARENS, s, CFG)
        assert app.derivable is cyk_serial(PARENS, s)

    def test_grammar_requires_start(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            CNFGrammar(start="", terminal_rules={}, binary_rules=[])

    def test_empty_string_not_derivable(self):
        assert cyk_serial(PARENS, "") is False
