"""Tree DP apps vs their serial oracles, across engines and faults."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apgas.failure import FaultPlan
from repro.apps.serial import (
    tree_knapsack_best,
    tree_knapsack_tables,
    tree_mis_best,
    tree_mis_tables,
)
from repro.apps.tree_knapsack import make_tree_instance, solve_tree_knapsack
from repro.apps.tree_mis import solve_tree_mis
from repro.core.config import DPX10Config

SETTINGS = dict(max_examples=15, deadline=None)


def random_parents(data, n):
    return [-1] + [
        data.draw(st.integers(0, v - 1), label=f"parent[{v}]")
        for v in range(1, n)
    ]


# ------------------------------------------------- hand-computed oracles


def test_knapsack_oracle_hand_computed():
    # root 0 (w=2, v=10); children 1 (w=1, v=6) and 2 (w=3, v=12)
    parents = [-1, 0, 0]
    weights = [2, 1, 3]
    values = [10, 6, 12]
    # capacity 5: root+child1 = 16 beats root+child2 = 22? w=5 fits: 22
    assert tree_knapsack_best(parents, weights, values, 5) == 22
    # capacity 6: all three fit (w=6) for 28
    assert tree_knapsack_best(parents, weights, values, 6) == 28
    # capacity 1: even the root alone does not fit -> empty selection
    assert tree_knapsack_best(parents, weights, values, 1) == 0
    # the root table marks infeasible budgets below its own weight
    tables = tree_knapsack_tables(parents, weights, values, 5)
    assert tables[0][0] < 0 and tables[0][1] < 0
    assert tables[0][2] == 10  # root alone
    assert tables[0][3] == 16  # root + child 1
    assert tables[0][5] == 22  # root + child 2


def test_knapsack_oracle_respects_precedence():
    # chain 0 <- 1 <- 2: node 2 is only reachable through 1
    parents = [-1, 0, 1]
    weights = [1, 5, 1]
    values = [1, 1, 100]
    # capacity 2 cannot afford node 1, so node 2's value is locked out
    assert tree_knapsack_best(parents, weights, values, 2) == 1
    assert tree_knapsack_best(parents, weights, values, 7) == 102


def test_mis_oracle_hand_computed():
    # star: center 0 with three leaves
    assert tree_mis_best([-1, 0, 0, 0], [10, 4, 4, 4]) == 12
    assert tree_mis_best([-1, 0, 0, 0], [20, 4, 4, 4]) == 20
    # path 0-1-2: endpoints beat the middle
    assert tree_mis_best([-1, 0, 1], [5, 9, 5]) == 10
    take, skip = tree_mis_tables([-1, 0, 1], [5, 9, 5])[0]
    assert (take, skip) == (10, 9)
    # single node
    assert tree_mis_best([-1], [7]) == 7


# --------------------------------------------------- framework == oracle


@settings(**SETTINGS)
@given(data=st.data(), n=st.integers(1, 12), capacity=st.integers(0, 12))
def test_tree_knapsack_matches_oracle(data, n, capacity):
    parents = random_parents(data, n)
    weights = data.draw(
        st.lists(st.integers(1, 6), min_size=n, max_size=n)
    )
    values = data.draw(
        st.lists(st.integers(1, 40), min_size=n, max_size=n)
    )
    app, _ = solve_tree_knapsack(parents, weights, values, capacity)
    assert app.best_value == tree_knapsack_best(
        parents, weights, values, capacity
    )


@settings(**SETTINGS)
@given(data=st.data(), n=st.integers(1, 16))
def test_tree_mis_matches_oracle(data, n):
    parents = random_parents(data, n)
    weights = data.draw(
        st.lists(st.integers(0, 30), min_size=n, max_size=n)
    )
    app, _ = solve_tree_mis(parents, weights)
    assert app.best_weight == tree_mis_best(parents, weights)


@pytest.mark.parametrize("engine", ["inline", "threaded"])
@pytest.mark.parametrize("nplaces", [1, 3])
def test_tree_apps_across_engines_and_places(engine, nplaces):
    parents, weights, values = make_tree_instance(17, seed=5)
    cfg = DPX10Config(nplaces=nplaces, engine=engine)
    app, _ = solve_tree_knapsack(parents, weights, values, 20, cfg)
    assert app.best_value == tree_knapsack_best(parents, weights, values, 20)
    app2, _ = solve_tree_mis(parents, weights, cfg)
    assert app2.best_weight == tree_mis_best(parents, weights)


def test_tree_apps_on_mp_engine():
    parents, weights, values = make_tree_instance(12, seed=3)
    cfg = DPX10Config(nplaces=3, engine="mp")
    app, _ = solve_tree_knapsack(parents, weights, values, 15, cfg)
    assert app.best_value == tree_knapsack_best(parents, weights, values, 15)
    app2, _ = solve_tree_mis(parents, weights, cfg)
    assert app2.best_weight == tree_mis_best(parents, weights)


def test_full_tables_match_oracle():
    parents, weights, values = make_tree_instance(10, seed=8)
    app, _ = solve_tree_knapsack(parents, weights, values, 9)
    expected = tree_knapsack_tables(parents, weights, values, 9)
    # best_value is derived from the root table; spot-check it directly
    root_table = expected[0]
    assert app.best_value == max(0, int(root_table.max()))
    assert all(isinstance(t, np.ndarray) for t in expected)


# --------------------------------------------------------------- faults


@pytest.mark.parametrize("engine", ["inline", "threaded"])
def test_tree_knapsack_kill_and_recover(engine):
    parents, weights, values = make_tree_instance(18, seed=11)
    dom_cfg = DPX10Config(nplaces=4, engine=engine)
    app, report = solve_tree_knapsack(
        parents,
        weights,
        values,
        16,
        dom_cfg,
        fault_plans=[FaultPlan(2, at_fraction=0.5)],
    )
    assert report.recoveries >= 1
    assert app.best_value == tree_knapsack_best(parents, weights, values, 16)


def test_tree_mis_kill_and_recover_with_subtree_dist():
    from repro.core.domain import TreeDomain

    parents, weights, _ = make_tree_instance(18, seed=11)
    dom = TreeDomain(parents)
    cfg = DPX10Config(nplaces=4, custom_dist=dom.make_dist)
    app, report = solve_tree_mis(
        parents, weights, cfg, fault_plans=[FaultPlan(1, at_fraction=0.4)]
    )
    assert report.recoveries >= 1
    assert app.best_weight == tree_mis_best(parents, weights)


def test_tree_chaos_pinned_seed():
    """The pinned kill-and-recover case CI runs on the tree domain."""
    from repro.chaos.harness import sweep

    results = sweep(
        apps=("tree-knapsack", "tree-mis"),
        patterns=("diagonal",),
        engines=("inline",),
        seeds=(1,),
        nplaces=3,
        height=10,
        width=10,
    )
    assert results and all(r.ok and not r.skipped for r in results)
    assert any(r.recoveries >= 1 for r in results)


# ------------------------------------------------------------ edge cases


def test_single_node_tree():
    app, _ = solve_tree_knapsack([-1], [3], [42], 3)
    assert app.best_value == 42
    app2, _ = solve_tree_knapsack([-1], [3], [42], 2)
    assert app2.best_value == 0  # does not fit
    app3, _ = solve_tree_mis([-1], [9])
    assert app3.best_weight == 9


def test_path_tree():
    n = 12
    parents = [-1] + list(range(n - 1))
    weights = [1] * n
    values = list(range(1, n + 1))
    app, _ = solve_tree_knapsack(parents, weights, values, n)
    assert app.best_value == sum(values)  # the whole chain fits
    app2, _ = solve_tree_mis(parents, weights)
    assert app2.best_weight == tree_mis_best(parents, weights)


def test_capacity_zero():
    parents, weights, values = make_tree_instance(6, seed=0)
    app, _ = solve_tree_knapsack(parents, weights, values, 0)
    assert app.best_value == 0


def test_malformed_tree_is_rejected_before_any_run():
    with pytest.raises(ValueError, match="unreachable"):
        solve_tree_mis([-1, 2, 1], [1, 1, 1])
    with pytest.raises(ValueError, match="exactly one root"):
        solve_tree_knapsack([-1, -1], [1, 1], [1, 1], 2)
