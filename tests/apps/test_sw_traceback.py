"""Tests for the Smith-Waterman alignment traceback."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.serial import sw_matrix
from repro.apps.smith_waterman import SWApp, solve_sw
from repro.core.config import DPX10Config

CFG = DPX10Config(nplaces=3)


def alignment_score(top: str, bottom: str) -> int:
    """Re-score an alignment under Figure 7's constants."""
    assert len(top) == len(bottom)
    score = 0
    for a, b in zip(top, bottom):
        if a == "-" or b == "-":
            score += SWApp.GAP_PENALTY
        elif a == b:
            score += SWApp.MATCH_SCORE
        else:
            score += SWApp.DISMATCH_SCORE
    return score


class TestTraceback:
    def test_perfect_match(self):
        app, _ = solve_sw("GATTACA", "GATTACA", CFG)
        assert app.alignment == ("GATTACA", "GATTACA")

    def test_local_region_extracted(self):
        app, _ = solve_sw("TTTACGTCC", "GGGACGTAA", CFG)
        assert app.alignment == ("ACGT", "ACGT")

    def test_no_similarity_empty_alignment(self):
        app, _ = solve_sw("AAAA", "TTTT", CFG)
        assert app.alignment == ("", "")

    def test_alignment_scores_the_reported_best(self):
        x, y = "ACACACTA", "AGCACACA"
        app, _ = solve_sw(x, y, CFG)
        top, bottom = app.alignment
        assert alignment_score(top, bottom) == app.best_score

    def test_alignment_pieces_are_substrings(self):
        x, y = "GGTTGACTA", "TGTTACGG"
        app, _ = solve_sw(x, y, CFG)
        top, bottom = app.alignment
        assert top.replace("-", "") in x
        assert bottom.replace("-", "") in y

    @settings(max_examples=20, deadline=None)
    @given(
        x=st.text(alphabet="ACGT", min_size=1, max_size=12),
        y=st.text(alphabet="ACGT", min_size=1, max_size=12),
    )
    def test_property_traceback_consistent(self, x, y):
        app, _ = solve_sw(x, y, CFG)
        top, bottom = app.alignment
        assert len(top) == len(bottom)
        assert alignment_score(top, bottom) == app.best_score == sw_matrix(x, y).max()
        assert top.replace("-", "") in x
        assert bottom.replace("-", "") in y
