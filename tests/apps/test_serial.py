"""Tests for the serial oracle implementations (known-answer checks)."""

import numpy as np
import pytest

from repro.apps.serial import (
    edit_distance_matrix,
    knapsack_matrix,
    lcs_matrix,
    lps_matrix,
    mtp_matrix,
    sw_matrix,
    swlag_matrices,
)


class TestLCS:
    def test_paper_figure1(self):
        assert lcs_matrix("ABC", "DBC")[-1, -1] == 2

    def test_identical_strings(self):
        assert lcs_matrix("HELLO", "HELLO")[-1, -1] == 5

    def test_disjoint_strings(self):
        assert lcs_matrix("AAA", "BBB")[-1, -1] == 0

    def test_classic(self):
        assert lcs_matrix("ABCBDAB", "BDCABA")[-1, -1] == 4

    def test_empty_string(self):
        assert lcs_matrix("", "ABC")[-1, -1] == 0


class TestSW:
    def test_no_similarity(self):
        assert sw_matrix("AAAA", "TTTT").max() == 0

    def test_perfect_match(self):
        assert sw_matrix("ACGT", "ACGT").max() == 8  # 4 matches x 2

    def test_local_not_global(self):
        # local alignment ignores bad prefixes
        assert sw_matrix("TTTACGT", "GGGACGT").max() == 8

    def test_gap_penalty_applied(self):
        # ACGT vs ACT: best local alignment has one gap
        assert sw_matrix("ACGT", "ACT").max() == 5  # 3 matches - 1 gap

    def test_nonnegative(self):
        m = sw_matrix("GATTACA", "TACGACG")
        assert (m >= 0).all()


class TestSWLAG:
    def test_matches_linear_when_open_equals_extend(self):
        x, y = "GATTACA", "TACGACGA"
        h_affine, _, _ = swlag_matrices(x, y, gap_open=-1, gap_extend=-1)
        h_linear = sw_matrix(x, y, gap=-1)
        np.testing.assert_array_equal(h_affine, h_linear)

    def test_affine_prefers_long_gaps(self):
        # one long gap should beat two short ones under affine scoring
        x = "AAAATTTTCCCC"
        y = "AAAACCCC"
        h, _, _ = swlag_matrices(x, y, gap_open=-3, gap_extend=-1)
        # 8 matches (16) minus open (-3) minus 3 extensions (-3) = 10
        assert h.max() == 10

    def test_nonnegative_h(self):
        h, _, _ = swlag_matrices("ACGTACGT", "TGCATGCA")
        assert (h >= 0).all()


class TestMTP:
    def test_deterministic_small_grid(self):
        w_down = np.array([[1, 2], [3, 4]])
        w_right = np.array([[5], [6], [7]])
        d = mtp_matrix(w_down, w_right)
        # paths: down-down-right = 1+3+7 = 11; others smaller or equal
        assert d[2, 1] == 11

    def test_single_row(self):
        w_down = np.zeros((0, 3), dtype=np.int64)
        w_right = np.array([[2, 3]])
        assert mtp_matrix(w_down, w_right)[0, 2] == 5

    def test_monotone_rows(self):
        w_down = np.ones((3, 4), dtype=np.int64)
        w_right = np.ones((4, 3), dtype=np.int64)
        d = mtp_matrix(w_down, w_right)
        assert d[-1, -1] == 6  # 3 downs + 3 rights, all weight 1


class TestLPS:
    @pytest.mark.parametrize(
        "s,expect",
        [
            ("A", 1),
            ("AB", 1),
            ("AA", 2),
            ("BBABCBCAB", 7),  # BABCBAB
            ("character", 5),  # carac
            ("AGBDBA", 5),
        ],
    )
    def test_known_answers(self, s, expect):
        assert lps_matrix(s)[0, len(s) - 1] == expect

    def test_diagonal_is_one(self):
        d = lps_matrix("XYZ")
        assert all(d[i, i] == 1 for i in range(3))


class TestKnapsack:
    def test_classic_instance(self):
        # weights/values from the canonical textbook example
        w, v = [1, 3, 4, 5], [1, 4, 5, 7]
        assert knapsack_matrix(w, v, 7)[-1, -1] == 9

    def test_zero_capacity(self):
        assert knapsack_matrix([2, 3], [10, 20], 0)[-1, -1] == 0

    def test_all_items_fit(self):
        assert knapsack_matrix([1, 1], [5, 7], 10)[-1, -1] == 12

    def test_item_heavier_than_capacity(self):
        assert knapsack_matrix([100], [999], 10)[-1, -1] == 0


class TestEditDistance:
    @pytest.mark.parametrize(
        "x,y,expect",
        [
            ("kitten", "sitting", 3),
            ("", "abc", 3),
            ("abc", "", 3),
            ("same", "same", 0),
            ("flaw", "lawn", 2),
        ],
    )
    def test_known_answers(self, x, y, expect):
        assert edit_distance_matrix(x, y)[-1, -1] == expect
