"""Tests for the Needleman-Wunsch and matrix-chain applications."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apgas.failure import FaultPlan
from repro.apps.matrix_chain import make_chain_dims, solve_matrix_chain
from repro.apps.needleman_wunsch import solve_nw
from repro.apps.serial import matrix_chain_matrix, nw_matrix
from repro.core.config import DPX10Config
from repro.errors import ConfigurationError

CFG = DPX10Config(nplaces=3)


class TestSerialOracles:
    def test_nw_identical_strings(self):
        assert nw_matrix("ACGT", "ACGT")[-1, -1] == 4

    def test_nw_known_alignment(self):
        # GATTACA vs GCATGCT is the classic example; score -1 with
        # +1/-1/-2 scoring... wait, canonical is +1/-1/-1 giving 0; with
        # gap -2 the optimal alignment scores -1
        assert nw_matrix("GATTACA", "GCATGCT")[-1, -1] == -1

    def test_nw_empty_prefix_row(self):
        d = nw_matrix("AB", "CD", gap=-3)
        assert d[0, 2] == -6 and d[2, 0] == -6

    def test_matrix_chain_textbook(self):
        # CLRS example: dims 30,35,15,5,10,20,25 -> 15125
        assert matrix_chain_matrix([30, 35, 15, 5, 10, 20, 25])[0, -1] == 15125

    def test_matrix_chain_two_matrices(self):
        assert matrix_chain_matrix([10, 20, 30])[0, 1] == 6000

    def test_matrix_chain_single_matrix(self):
        assert matrix_chain_matrix([5, 7])[0, 0] == 0


class TestNWApp:
    def test_matches_oracle(self):
        x, y = "GATTACA", "GCATGCT"
        app, _ = solve_nw(x, y, CFG)
        assert app.score == nw_matrix(x, y)[-1, -1]

    def test_custom_scoring(self):
        x, y = "ACGTT", "ACT"
        app, _ = solve_nw(x, y, CFG, match=2, mismatch=-2, gap=-1)
        assert app.score == nw_matrix(x, y, match=2, mismatch=-2, gap=-1)[-1, -1]

    def test_survives_fault(self):
        x, y = "ACGTACGTACGT", "TACGATCGGTAC"
        app, rep = solve_nw(
            x, y, CFG, fault_plans=[FaultPlan(1, at_fraction=0.5)]
        )
        assert app.score == nw_matrix(x, y)[-1, -1]
        assert rep.recoveries == 1

    @settings(max_examples=15, deadline=None)
    @given(
        x=st.text(alphabet="ACGT", min_size=1, max_size=10),
        y=st.text(alphabet="ACGT", min_size=1, max_size=10),
    )
    def test_property_matches_oracle(self, x, y):
        app, _ = solve_nw(x, y, CFG)
        assert app.score == nw_matrix(x, y)[-1, -1]


class TestMatrixChainApp:
    def test_clrs_example(self):
        app, _ = solve_matrix_chain([30, 35, 15, 5, 10, 20, 25], CFG)
        assert app.min_multiplications == 15125

    def test_random_matches_oracle(self):
        dims = make_chain_dims(8, seed=11)
        app, _ = solve_matrix_chain(dims, CFG)
        assert app.min_multiplications == matrix_chain_matrix(dims)[0, -1]

    def test_single_matrix_is_zero(self):
        app, _ = solve_matrix_chain([4, 9], CFG)
        assert app.min_multiplications == 0

    def test_too_short_dims_rejected(self):
        with pytest.raises(ConfigurationError):
            solve_matrix_chain([5], CFG)

    def test_survives_fault(self):
        dims = make_chain_dims(10, seed=4)
        app, rep = solve_matrix_chain(
            dims, DPX10Config(nplaces=3), fault_plans=[FaultPlan(2, at_fraction=0.5)]
        )
        assert app.min_multiplications == matrix_chain_matrix(dims)[0, -1]

    def test_dims_generator(self):
        dims = make_chain_dims(5, seed=0)
        assert len(dims) == 6
        assert all(d >= 1 for d in dims)
        assert dims == make_chain_dims(5, seed=0)

    @settings(max_examples=10, deadline=None)
    @given(n=st.integers(1, 7), seed=st.integers(0, 100))
    def test_property_matches_oracle(self, n, seed):
        dims = make_chain_dims(n, seed=seed)
        app, _ = solve_matrix_chain(dims, CFG)
        assert app.min_multiplications == matrix_chain_matrix(dims)[0, -1]
