"""Tests for the extension applications: banded ED, Viterbi, egg drop."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apgas.failure import FaultPlan
from repro.apps.banded_alignment import solve_banded_edit_distance
from repro.apps.egg_drop import EggDropDag, egg_drop_serial, solve_egg_drop
from repro.apps.serial import edit_distance_matrix
from repro.apps.viterbi import make_hmm, solve_viterbi, viterbi_serial
from repro.core.config import DPX10Config

CFG = DPX10Config(nplaces=3)


class TestBandedEditDistance:
    def test_exact_when_band_covers_distance(self):
        x, y = "kitten", "sitting"
        app, _ = solve_banded_edit_distance(x, y, bandwidth=3, config=CFG)
        assert app.distance == edit_distance_matrix(x, y)[-1, -1]

    def test_computes_fewer_vertices_than_full(self):
        x = "ACGTACGTACGTACGT"
        y = "ACGTACGAACGTACGT"
        app, rep = solve_banded_edit_distance(x, y, bandwidth=2, config=CFG)
        full = (len(x) + 1) * (len(y) + 1)
        assert rep.active_vertices < full / 2
        assert app.distance == edit_distance_matrix(x, y)[-1, -1]

    def test_identical_strings_bandwidth_zero(self):
        app, _ = solve_banded_edit_distance("HELLO", "HELLO", 0, CFG)
        assert app.distance == 0

    def test_survives_fault(self):
        x, y = "ACGTACGTACGTA", "ACGTACCTACGTA"
        app, rep = solve_banded_edit_distance(
            x, y, 3, CFG, fault_plans=[FaultPlan(1, at_fraction=0.5)]
        )
        assert app.distance == edit_distance_matrix(x, y)[-1, -1]
        assert rep.recoveries == 1

    @settings(max_examples=15, deadline=None)
    @given(s=st.text(alphabet="AB", min_size=1, max_size=10), flips=st.integers(0, 2))
    def test_property_exact_within_band(self, s, flips):
        # mutate up to `flips` characters: distance <= flips <= bandwidth
        t = list(s)
        for k in range(min(flips, len(t))):
            t[k] = "A" if t[k] == "B" else "B"
        t = "".join(t)
        app, _ = solve_banded_edit_distance(s, t, bandwidth=3, config=CFG)
        assert app.distance == edit_distance_matrix(s, t)[-1, -1]


class TestViterbi:
    def test_matches_serial_oracle(self):
        li, lt, le, obs = make_hmm(5, 4, 15, seed=7)
        app, _ = solve_viterbi(li, lt, le, obs, CFG)
        assert app.best_log_prob == pytest.approx(viterbi_serial(li, lt, le, obs))

    def test_single_state(self):
        li, lt, le, obs = make_hmm(1, 3, 8, seed=1)
        app, _ = solve_viterbi(li, lt, le, obs, CFG)
        assert app.best_log_prob == pytest.approx(viterbi_serial(li, lt, le, obs))

    def test_single_observation(self):
        li, lt, le, obs = make_hmm(4, 2, 1, seed=2)
        app, _ = solve_viterbi(li, lt, le, obs, CFG)
        assert app.best_log_prob == pytest.approx(float((li + le[:, obs[0]]).max()))

    def test_survives_fault(self):
        li, lt, le, obs = make_hmm(4, 3, 20, seed=3)
        app, rep = solve_viterbi(
            li, lt, le, obs, CFG, fault_plans=[FaultPlan(2, at_fraction=0.5)]
        )
        assert app.best_log_prob == pytest.approx(viterbi_serial(li, lt, le, obs))

    @settings(max_examples=10, deadline=None)
    @given(
        n_states=st.integers(1, 5),
        length=st.integers(1, 12),
        seed=st.integers(0, 50),
    )
    def test_property_matches_oracle(self, n_states, length, seed):
        li, lt, le, obs = make_hmm(n_states, 3, length, seed=seed)
        app, _ = solve_viterbi(li, lt, le, obs, CFG)
        assert app.best_log_prob == pytest.approx(viterbi_serial(li, lt, le, obs))


class TestEggDrop:
    def test_pattern_validates(self):
        EggDropDag(3, 10).validate()

    @pytest.mark.parametrize(
        "eggs,floors,expect",
        [
            (1, 10, 10),  # linear search with one egg
            (2, 20, 6),
            (2, 36, 8),
            (3, 14, 4),
            (2, 0, 0),
        ],
    )
    def test_known_answers(self, eggs, floors, expect):
        app, _ = solve_egg_drop(eggs, floors, CFG)
        assert app.trials == expect

    def test_matches_oracle_matrix(self):
        app, _ = solve_egg_drop(3, 12, CFG)
        assert app.trials == egg_drop_serial(3, 12)[3, 12]

    def test_more_eggs_never_worse(self):
        a, _ = solve_egg_drop(2, 15, CFG)
        b, _ = solve_egg_drop(3, 15, CFG)
        assert b.trials <= a.trials

    def test_survives_fault(self):
        app, rep = solve_egg_drop(
            3, 15, CFG, fault_plans=[FaultPlan(1, at_fraction=0.5)]
        )
        assert app.trials == egg_drop_serial(3, 15)[3, 15]
        assert rep.recoveries == 1

    @settings(max_examples=10, deadline=None)
    @given(eggs=st.integers(1, 4), floors=st.integers(0, 12))
    def test_property_matches_oracle(self, eggs, floors):
        app, _ = solve_egg_drop(eggs, floors, CFG)
        assert app.trials == egg_drop_serial(eggs, floors)[eggs, floors]
