"""Tests for unbounded knapsack (custom same-row-jump pattern)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apgas.failure import FaultPlan
from repro.apps.unbounded_knapsack import (
    UnboundedKnapsackDag,
    solve_unbounded_knapsack,
    unbounded_knapsack_serial,
)
from repro.core.config import DPX10Config
from repro.errors import PatternError

CFG = DPX10Config(nplaces=3)


class TestPattern:
    def test_validates(self):
        UnboundedKnapsackDag([2, 3, 5], 11).validate()

    def test_same_row_jump(self):
        from repro.core.api import VertexId

        d = UnboundedKnapsackDag([3], 9)
        assert VertexId(1, 4) in d.get_dependency(1, 7)  # take edge in-row
        assert VertexId(0, 7) in d.get_dependency(1, 7)  # skip edge above

    def test_bad_weights_rejected(self):
        with pytest.raises(PatternError):
            UnboundedKnapsackDag([0], 5)
        with pytest.raises(PatternError):
            UnboundedKnapsackDag([], 5)

    def test_static_order_is_topological(self):
        d = UnboundedKnapsackDag([2, 5], 12)
        order = d.static_order()
        pos = {c: k for k, c in enumerate(order)}
        for i, j in order:
            for dep in d.get_dependency(i, j):
                assert pos[(dep.i, dep.j)] < pos[(i, j)]

    @settings(max_examples=25, deadline=None)
    @given(
        weights=st.lists(st.integers(1, 6), min_size=1, max_size=4),
        capacity=st.integers(0, 14),
    )
    def test_property_validates(self, weights, capacity):
        UnboundedKnapsackDag(weights, capacity).validate()


class TestApp:
    def test_classic_coin_change_style(self):
        # items (w=2, v=3) and (w=3, v=5): capacity 7 -> 2+2+3 = 11
        app, _ = solve_unbounded_knapsack([2, 3], [3, 5], 7, CFG)
        assert app.best_value == 11

    def test_repetition_beats_single_copy(self):
        from repro.apps.knapsack import solve_knapsack

        w, v, cap = [3], [10], 9
        unbounded, _ = solve_unbounded_knapsack(w, v, cap, CFG)
        zero_one, _ = solve_knapsack(w, v, cap, CFG)
        assert unbounded.best_value == 30
        assert zero_one.best_value == 10

    def test_zero_capacity(self):
        app, _ = solve_unbounded_knapsack([2], [5], 0, CFG)
        assert app.best_value == 0

    def test_survives_fault(self):
        w, v = [2, 5, 7], [3, 8, 11]
        app, rep = solve_unbounded_knapsack(
            w, v, 20, CFG, fault_plans=[FaultPlan(2, at_fraction=0.5)]
        )
        assert app.best_value == unbounded_knapsack_serial(w, v, 20)[-1, -1]
        assert rep.recoveries == 1

    @pytest.mark.parametrize("engine", ["inline", "threaded", "mp"])
    def test_engines_agree(self, engine):
        w, v = [2, 3, 4], [3, 5, 9]
        app, _ = solve_unbounded_knapsack(
            w, v, 13, DPX10Config(nplaces=2, engine=engine)
        )
        assert app.best_value == unbounded_knapsack_serial(w, v, 13)[-1, -1]

    def test_static_schedule(self):
        w, v = [2, 3], [3, 5]
        app, _ = solve_unbounded_knapsack(
            w, v, 15, DPX10Config(nplaces=2, static_schedule=True)
        )
        assert app.best_value == unbounded_knapsack_serial(w, v, 15)[-1, -1]

    @settings(max_examples=15, deadline=None)
    @given(
        weights=st.lists(st.integers(1, 5), min_size=1, max_size=4),
        data=st.data(),
        capacity=st.integers(0, 16),
    )
    def test_property_matches_oracle(self, weights, data, capacity):
        values = data.draw(
            st.lists(st.integers(1, 20), min_size=len(weights), max_size=len(weights))
        )
        app, _ = solve_unbounded_knapsack(weights, values, capacity, CFG)
        assert (
            app.best_value
            == unbounded_knapsack_serial(weights, values, capacity)[-1, -1]
        )
