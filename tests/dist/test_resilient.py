"""Tests for the snapshot-based ResilientDistArray baseline."""

import pytest

from repro.apgas.place import PlaceGroup
from repro.dist.dist import Dist
from repro.dist.region import Region2D
from repro.dist.resilient import ResilientDistArray
from repro.errors import RecoveryError

REGION = Region2D.of_shape(4, 4)


@pytest.fixture()
def setup():
    group = PlaceGroup(3)
    dist = Dist.block_rows(REGION, [0, 1, 2])
    return ResilientDistArray(dist, group), group


class TestSnapshotRestore:
    def test_restore_without_snapshot_fails(self, setup):
        arr, group = setup
        new_dist = Dist.block_rows(REGION, [0, 1])
        with pytest.raises(RecoveryError):
            arr.restore(new_dist)

    def test_snapshot_counts_cells(self, setup):
        arr, _ = setup
        arr.set(0, 0, 1)
        arr.set(3, 3, 2)
        assert arr.snapshot() == 2
        assert arr.snapshots_taken == 1
        assert arr.cells_copied_total == 2

    def test_restore_recovers_snapshot_state(self, setup):
        arr, group = setup
        arr.set(0, 0, "kept")
        arr.snapshot()
        arr.set(1, 1, "lost-after-snapshot")
        group.kill(2)
        new_dist = Dist.block_rows(REGION, [0, 1])
        restored = arr.restore(new_dist)
        assert restored.get(0, 0) == "kept"
        # progress after the snapshot is rolled back
        assert not restored.contains(1, 1)

    def test_restore_moves_cells_to_new_homes(self, setup):
        arr, group = setup
        # (3,3) homed at place 2; after place 2 dies it must land on a survivor
        arr.set(3, 3, 7)
        arr.snapshot()
        group.kill(2)
        restored = arr.restore(Dist.block_rows(REGION, [0, 1]))
        assert restored.get(3, 3) == 7
        assert restored.home_of(3, 3) in (0, 1)

    def test_restore_onto_dead_place_rejected(self, setup):
        arr, group = setup
        arr.snapshot()
        group.kill(1)
        with pytest.raises(RecoveryError):
            arr.restore(Dist.block_rows(REGION, [0, 1]))

    def test_snapshot_volume_grows_with_progress(self, setup):
        # the paper's argument against periodic snapshots: cost tracks the
        # amount of intermediate state
        arr, _ = setup
        arr.set(0, 0, 1)
        first = arr.snapshot()
        for i, j in REGION:
            arr.set(i, j, i + j)
        second = arr.snapshot()
        assert second > first
        assert arr.cells_copied_total == first + second

    def test_restore_preserves_snapshot_store(self, setup):
        arr, group = setup
        arr.set(0, 0, 1)
        arr.snapshot()
        group.kill(2)
        restored = arr.restore(Dist.block_rows(REGION, [0, 1]))
        assert restored.snapshots_taken == 1
        restored.set(0, 1, 2)
        assert restored.snapshot() == 2
