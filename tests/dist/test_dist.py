"""Tests for all Dist kinds: every cell mapped, partitions exact."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.dist import Dist
from repro.dist.region import Region2D
from repro.errors import DistributionError

REGION = Region2D.of_shape(6, 8)
PLACES = [0, 1, 2]


def all_dist_kinds(region=REGION, places=PLACES):
    return {
        "block_rows": Dist.block_rows(region, places),
        "block_cols": Dist.block_cols(region, places),
        "cyclic_rows": Dist.cyclic_rows(region, places),
        "cyclic_cols": Dist.cyclic_cols(region, places),
        "block_cyclic": Dist.block_cyclic(region, places, 2, 2),
        "custom": Dist.custom(region, places, lambda i, j: (i + j) % 3),
    }


class TestEveryKind:
    @pytest.mark.parametrize("kind", list(all_dist_kinds()))
    def test_every_cell_mapped_to_member_place(self, kind):
        d = all_dist_kinds()[kind]
        for i, j in REGION:
            assert d.place_of(i, j) in PLACES

    @pytest.mark.parametrize("kind", list(all_dist_kinds()))
    def test_owned_coords_partition_region(self, kind):
        d = all_dist_kinds()[kind]
        seen = {}
        for pid in PLACES:
            for coord in d.owned_coords(pid):
                assert coord not in seen, f"{coord} owned twice"
                seen[coord] = pid
        assert len(seen) == REGION.size
        for (i, j), pid in seen.items():
            assert d.place_of(i, j) == pid

    @pytest.mark.parametrize("kind", list(all_dist_kinds()))
    def test_owned_count_consistent(self, kind):
        d = all_dist_kinds()[kind]
        assert sum(d.owned_count(pid) for pid in PLACES) == REGION.size

    @pytest.mark.parametrize("kind", list(all_dist_kinds()))
    def test_out_of_region_rejected(self, kind):
        d = all_dist_kinds()[kind]
        with pytest.raises(DistributionError):
            d.place_of(-1, 0)
        with pytest.raises(DistributionError):
            d.place_of(0, 99)


class TestBlockKinds:
    def test_block_rows_bands(self):
        d = Dist.block_rows(REGION, PLACES)
        assert d.place_of(0, 0) == 0
        assert d.place_of(5, 7) == 2
        parts = d.partitions(0)
        assert parts == [Region2D(0, 2, 0, 8)]

    def test_block_cols_is_paper_default_shape(self):
        d = Dist.block_cols(Region2D.of_shape(4, 9), PLACES)
        # columns 0-2 -> place 0, 3-5 -> 1, 6-8 -> 2
        assert d.place_of(3, 2) == 0
        assert d.place_of(0, 3) == 1
        assert d.place_of(2, 8) == 2

    def test_cyclic_has_no_rect_partitions(self):
        d = Dist.cyclic_rows(REGION, PLACES)
        assert d.partitions(0) is None

    def test_more_places_than_rows(self):
        region = Region2D.of_shape(2, 3)
        d = Dist.block_rows(region, [0, 1, 2, 3])
        assert d.owned_count(2) == 0
        assert sum(d.owned_count(p) for p in [0, 1, 2, 3]) == region.size


class TestCyclic:
    def test_round_robin_rows(self):
        d = Dist.cyclic_rows(REGION, PLACES)
        assert [d.place_of(i, 0) for i in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_round_robin_cols(self):
        d = Dist.cyclic_cols(REGION, PLACES)
        assert [d.place_of(0, j) for j in range(6)] == [0, 1, 2, 0, 1, 2]

    def test_offset_region(self):
        region = Region2D(10, 13, 5, 8)
        d = Dist.cyclic_rows(region, [4, 7])
        assert d.place_of(10, 5) == 4
        assert d.place_of(11, 5) == 7


class TestCustom:
    def test_map_to_nonmember_rejected_at_query(self):
        d = Dist.custom(REGION, [0, 1], lambda i, j: 5)
        with pytest.raises(DistributionError):
            d.place_of(0, 0)

    def test_duplicate_places_rejected(self):
        with pytest.raises(DistributionError):
            Dist.block_rows(REGION, [0, 0, 1])

    def test_empty_places_rejected(self):
        with pytest.raises(DistributionError):
            Dist.block_rows(REGION, [])


@settings(max_examples=30)
@given(
    h=st.integers(1, 12),
    w=st.integers(1, 12),
    nplaces=st.integers(1, 5),
    kind=st.sampled_from(
        ["block_rows", "block_cols", "cyclic_rows", "cyclic_cols", "block_cyclic"]
    ),
)
def test_property_all_kinds_tile_exactly(h, w, nplaces, kind):
    region = Region2D.of_shape(h, w)
    places = list(range(nplaces))
    factory = {
        "block_rows": lambda: Dist.block_rows(region, places),
        "block_cols": lambda: Dist.block_cols(region, places),
        "cyclic_rows": lambda: Dist.cyclic_rows(region, places),
        "cyclic_cols": lambda: Dist.cyclic_cols(region, places),
        "block_cyclic": lambda: Dist.block_cyclic(region, places, 2, 3),
    }[kind]
    d = factory()
    seen = set()
    for pid in places:
        owned = list(d.owned_coords(pid))
        assert len(owned) == d.owned_count(pid)
        for coord in owned:
            assert coord not in seen
            seen.add(coord)
            assert d.place_of(*coord) == pid
    assert len(seen) == region.size
