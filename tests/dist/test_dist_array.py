"""Tests for DistArray over live and dead places."""

import pytest

from repro.apgas.place import PlaceGroup
from repro.dist.dist import Dist
from repro.dist.dist_array import DistArray
from repro.dist.region import Region2D
from repro.errors import DeadPlaceException, DistributionError


@pytest.fixture()
def arr():
    group = PlaceGroup(3)
    dist = Dist.block_rows(Region2D.of_shape(6, 4), [0, 1, 2])
    return DistArray(dist, group), group


class TestDistArray:
    def test_set_get_roundtrip(self, arr):
        a, _ = arr
        a.set(0, 0, 42)
        a.set(5, 3, "x")
        assert a.get(0, 0) == 42
        assert a.get(5, 3) == "x"

    def test_unset_cell_raises_keyerror(self, arr):
        a, _ = arr
        with pytest.raises(KeyError):
            a.get(1, 1)
        assert not a.contains(1, 1)

    def test_home_of_matches_dist(self, arr):
        a, _ = arr
        assert a.home_of(0, 0) == 0
        assert a.home_of(5, 0) == 2

    def test_local_items_and_sizes(self, arr):
        a, _ = arr
        a.set(0, 0, 1)
        a.set(1, 1, 2)
        a.set(4, 0, 3)
        assert dict(a.local_items(0)) == {(0, 0): 1, (1, 1): 2}
        assert a.local_size(0) == 2
        assert a.local_size(1) == 0
        assert a.total_set() == 3

    def test_access_on_dead_place_raises(self, arr):
        a, group = arr
        a.set(0, 0, 1)
        group.kill(0)
        with pytest.raises(DeadPlaceException):
            a.get(0, 0)
        with pytest.raises(DeadPlaceException):
            a.set(1, 0, 2)
        # other places still fine
        a.set(4, 0, 3)
        assert a.get(4, 0) == 3

    def test_alive_home_ids(self, arr):
        a, group = arr
        assert a.alive_home_ids() == [0, 1, 2]
        group.kill(1)
        assert a.alive_home_ids() == [0, 2]

    def test_total_set_skips_dead(self, arr):
        a, group = arr
        a.set(0, 0, 1)
        a.set(4, 0, 2)
        group.kill(0)
        assert a.total_set() == 1

    def test_dist_onto_missing_place_rejected(self):
        group = PlaceGroup(2)
        dist = Dist.block_rows(Region2D.of_shape(4, 2), [0, 5])
        with pytest.raises(DistributionError):
            DistArray(dist, group)

    def test_two_arrays_do_not_collide(self):
        group = PlaceGroup(1)
        dist = Dist.block_rows(Region2D.of_shape(2, 2), [0])
        a = DistArray(dist, group)
        b = DistArray(dist, group)
        a.set(0, 0, "a")
        b.set(0, 0, "b")
        assert a.get(0, 0) == "a"
        assert b.get(0, 0) == "b"
