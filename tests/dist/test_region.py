"""Tests for Region2D geometry and algebra."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dist.region import Region2D
from repro.errors import ConfigurationError

regions = st.builds(
    lambda r0, h, c0, w: Region2D(r0, r0 + h, c0, c0 + w),
    st.integers(-20, 20),
    st.integers(0, 30),
    st.integers(-20, 20),
    st.integers(0, 30),
)


class TestBasics:
    def test_of_shape(self):
        r = Region2D.of_shape(3, 4)
        assert (r.height, r.width, r.size) == (3, 4, 12)

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ConfigurationError):
            Region2D(2, 1, 0, 0)
        with pytest.raises(ConfigurationError):
            Region2D(0, 1, 5, 4)

    def test_empty(self):
        assert Region2D(0, 0, 0, 5).is_empty
        assert not Region2D.of_shape(1, 1).is_empty

    def test_contains(self):
        r = Region2D(1, 3, 2, 5)
        assert r.contains(1, 2)
        assert r.contains(2, 4)
        assert not r.contains(3, 2)  # row end exclusive
        assert not r.contains(1, 5)  # col end exclusive
        assert not r.contains(0, 2)

    def test_iteration_row_major(self):
        r = Region2D(0, 2, 0, 2)
        assert list(r) == [(0, 0), (0, 1), (1, 0), (1, 1)]

    @given(regions)
    def test_iteration_matches_size_and_contains(self, r):
        cells = list(r)
        assert len(cells) == r.size
        assert all(r.contains(i, j) for i, j in cells)


class TestIntersect:
    def test_overlap(self):
        a = Region2D(0, 4, 0, 4)
        b = Region2D(2, 6, 1, 3)
        assert a.intersect(b) == Region2D(2, 4, 1, 3)

    def test_disjoint(self):
        a = Region2D(0, 2, 0, 2)
        b = Region2D(2, 4, 0, 2)
        assert a.intersect(b) is None

    @given(regions, regions)
    def test_commutative(self, a, b):
        assert a.intersect(b) == b.intersect(a)

    @given(regions)
    def test_self_intersection_identity(self, r):
        if r.is_empty:
            assert r.intersect(r) is None
        else:
            assert r.intersect(r) == r


class TestSplit:
    @given(regions, st.integers(1, 8))
    def test_split_rows_tiles_exactly(self, r, parts):
        bands = r.split_rows(parts)
        assert len(bands) == parts
        assert sum(b.size for b in bands) == r.size
        # contiguous, ordered, non-overlapping
        row = r.row0
        for b in bands:
            assert b.row0 == row
            assert (b.col0, b.col1) == (r.col0, r.col1)
            row = b.row1
        assert row == r.row1

    @given(regions, st.integers(1, 8))
    def test_split_cols_tiles_exactly(self, r, parts):
        bands = r.split_cols(parts)
        assert len(bands) == parts
        assert sum(b.size for b in bands) == r.size
        col = r.col0
        for b in bands:
            assert b.col0 == col
            assert (b.row0, b.row1) == (r.row0, r.row1)
            col = b.col1
        assert col == r.col1

    def test_split_balanced(self):
        bands = Region2D.of_shape(10, 1).split_rows(3)
        assert [b.height for b in bands] == [4, 3, 3]

    def test_split_more_parts_than_rows(self):
        bands = Region2D.of_shape(2, 3).split_rows(4)
        assert [b.height for b in bands] == [1, 1, 0, 0]

    def test_invalid_parts(self):
        with pytest.raises(ConfigurationError):
            Region2D.of_shape(2, 2).split_rows(0)


class TestTile:
    def test_exact_tiling(self):
        tiles = Region2D.of_shape(4, 6).tile(2, 3)
        assert len(tiles) == 2 and len(tiles[0]) == 2
        assert all(t.size == 6 for row in tiles for t in row)

    def test_clipped_edges(self):
        tiles = Region2D.of_shape(5, 5).tile(2, 2)
        assert len(tiles) == 3 and len(tiles[0]) == 3
        assert tiles[2][2] == Region2D(4, 5, 4, 5)

    @given(regions.filter(lambda r: not r.is_empty), st.integers(1, 7), st.integers(1, 7))
    def test_tiles_cover_exactly(self, r, th, tw):
        tiles = [t for row in r.tile(th, tw) for t in row]
        assert sum(t.size for t in tiles) == r.size
        seen = set()
        for t in tiles:
            for cell in t:
                assert cell not in seen
                seen.add(cell)
        assert len(seen) == r.size
