"""Tests for Dist.make dispatch and the block_flat distribution."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dist.dist import Dist
from repro.dist.region import Region2D
from repro.errors import DistributionError

REGION = Region2D.of_shape(5, 6)


class TestMake:
    @pytest.mark.parametrize(
        "kind",
        ["block_rows", "block_cols", "block_flat", "cyclic_rows", "cyclic_cols"],
    )
    def test_dispatch(self, kind):
        d = Dist.make(kind, REGION, [0, 1])
        assert d.kind == kind

    def test_block_cyclic_takes_block_shape(self):
        d = Dist.make("block_cyclic", REGION, [0, 1], block_h=2, block_w=3)
        assert d.place_of(0, 0) == d.place_of(1, 2)

    def test_unknown_kind_rejected(self):
        with pytest.raises(DistributionError):
            Dist.make("hilbert", REGION, [0])


class TestBlockFlat:
    def test_paper_figure6_shape(self):
        # 12 cells over 2 places: 6 cells each, splitting row 1
        region = Region2D.of_shape(3, 4)
        d = Dist.block_flat(region, [0, 1])
        assert d.place_of(0, 0) == 0
        assert d.place_of(1, 1) == 0  # flat index 5, last of place 0
        assert d.place_of(1, 2) == 1  # flat index 6, first of place 1
        assert d.place_of(2, 3) == 1

    def test_unbalanced_remainder_to_first(self):
        region = Region2D.of_shape(1, 7)
        d = Dist.block_flat(region, [0, 1, 2])
        counts = [d.owned_count(p) for p in (0, 1, 2)]
        assert counts == [3, 2, 2]

    def test_offset_region(self):
        region = Region2D(2, 4, 3, 6)
        d = Dist.block_flat(region, [0, 1])
        assert d.place_of(2, 3) == 0
        assert d.place_of(3, 5) == 1

    @settings(max_examples=25, deadline=None)
    @given(
        h=st.integers(1, 8),
        w=st.integers(1, 8),
        n=st.integers(1, 5),
    )
    def test_property_contiguous_balanced_partition(self, h, w, n):
        region = Region2D.of_shape(h, w)
        d = Dist.block_flat(region, list(range(n)))
        # partition: every cell exactly once
        owners = [d.place_of(i, j) for i, j in region]
        # flat ordering means owners are non-decreasing
        assert owners == sorted(owners)
        # balanced: counts differ by at most one
        counts = [d.owned_count(p) for p in range(n)]
        assert sum(counts) == region.size
        assert max(counts) - min(counts) <= 1
