"""Every shipped example must run clean end to end (its asserts included)."""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

FAST_EXAMPLES = [
    "quickstart.py",
    "sequence_alignment.py",
    "knapsack_custom_pattern.py",
    "fault_tolerance.py",
    "matrix_chain_2d1d.py",
    "execution_trace.py",
    "parameter_sweep.py",
    "snapshot_vs_recovery.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs_clean(script):
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert proc.returncode == 0, f"{script} failed:\n{proc.stderr}"
    assert proc.stdout.strip(), f"{script} produced no output"


def test_cluster_simulation_runs_clean():
    # the figure sweep example; small scale, but the longest example
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, "cluster_simulation.py")],
        capture_output=True,
        text=True,
        timeout=600,
        env={**os.environ, "REPRO_SCALE": "small"},
    )
    assert proc.returncode == 0, f"cluster_simulation failed:\n{proc.stderr}"
    assert "speedup 2->12 nodes" in proc.stdout
    assert "recovery" in proc.stdout
