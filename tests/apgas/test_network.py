"""Tests for the postal-model network accounting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.apgas.network import NetworkModel
from repro.errors import ConfigurationError


class TestNetworkModel:
    def test_zero_bytes_costs_nothing(self):
        assert NetworkModel().transfer_cost(0) == 0.0

    def test_local_transfer_free(self):
        assert NetworkModel().transfer_cost(1024, local=True) == 0.0

    def test_postal_formula(self):
        net = NetworkModel(alpha=1e-6, beta=1e9)
        assert net.transfer_cost(1000) == pytest.approx(1e-6 + 1000 / 1e9)

    def test_record_accumulates(self):
        net = NetworkModel()
        net.record(0, 1, 100)
        net.record(0, 1, 50)
        net.record(1, 2, 10)
        assert net.stats.messages == 3
        assert net.stats.bytes == 160
        assert net.stats.by_pair[(0, 1)] == 150
        assert net.stats.by_pair[(1, 2)] == 10

    def test_record_same_place_is_free_and_uncounted(self):
        net = NetworkModel()
        assert net.record(2, 2, 100) == 0.0
        assert net.stats.messages == 0

    def test_reset(self):
        net = NetworkModel()
        net.record(0, 1, 100)
        net.reset()
        assert net.stats.bytes == 0

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigurationError):
            NetworkModel(alpha=-1)
        with pytest.raises(ConfigurationError):
            NetworkModel(beta=0)

    @given(st.integers(min_value=1, max_value=10**12))
    def test_cost_monotone_in_bytes(self, n):
        net = NetworkModel()
        assert net.transfer_cost(n + 1) >= net.transfer_cost(n) > 0
