"""Tests for Place and PlaceGroup."""

import pytest

from repro.apgas.place import Place, PlaceGroup
from repro.errors import (
    AllPlacesDeadError,
    ConfigurationError,
    DeadPlaceException,
)


class TestPlace:
    def test_starts_alive(self):
        assert Place(0).alive

    def test_negative_id_rejected(self):
        with pytest.raises(ConfigurationError):
            Place(-1)

    def test_storage_roundtrip(self):
        p = Place(3)
        p.put("k", [1, 2])
        assert p.get("k") == [1, 2]
        assert "k" in p

    def test_pop_with_default(self):
        p = Place(0)
        assert p.pop("missing", "dflt") == "dflt"

    def test_kill_clears_storage_and_blocks_access(self):
        p = Place(1)
        p.put("k", 1)
        p.kill()
        assert not p.alive
        with pytest.raises(DeadPlaceException) as exc:
            p.get("k")
        assert exc.value.place_id == 1
        with pytest.raises(DeadPlaceException):
            p.put("k2", 2)
        with pytest.raises(DeadPlaceException):
            p.check_alive()

    def test_kill_idempotent(self):
        p = Place(0)
        p.kill()
        p.kill()
        assert not p.alive


class TestPlaceGroup:
    def test_size_and_iteration(self):
        g = PlaceGroup(4)
        assert g.size == len(g) == 4
        assert [p.id for p in g] == [0, 1, 2, 3]

    def test_needs_at_least_one_place(self):
        with pytest.raises(ConfigurationError):
            PlaceGroup(0)

    def test_alive_bookkeeping(self):
        g = PlaceGroup(3)
        assert g.alive_ids() == [0, 1, 2]
        g.kill(1)
        assert g.alive_ids() == [0, 2]
        assert g.alive_count() == 2
        assert not g.is_alive(1)
        assert g.is_alive(0)

    def test_check_alive_returns_place(self):
        g = PlaceGroup(2)
        assert g.check_alive(1) is g[1]
        g.kill(1)
        with pytest.raises(DeadPlaceException):
            g.check_alive(1)

    def test_require_any_alive(self):
        g = PlaceGroup(2)
        g.require_any_alive()
        g.kill(0)
        g.kill(1)
        with pytest.raises(AllPlacesDeadError):
            g.require_any_alive()
