"""Concurrency stress: the substrate under heavy threaded churn."""

import threading


from repro.apgas.activity import Activity
from repro.apgas.engine import ThreadedEngine
from repro.apgas.place import PlaceGroup
from repro.dist.dist import Dist
from repro.dist.dist_array import DistArray
from repro.dist.region import Region2D


class TestThreadedEngineStress:
    def test_many_activities_counted_exactly(self):
        group = PlaceGroup(4)
        engine = ThreadedEngine(group, threads_per_place=3)
        counter = {"n": 0}
        lock = threading.Lock()

        def bump():
            with lock:
                counter["n"] += 1

        for k in range(2000):
            engine.submit(Activity(k % 4, bump))
        engine.run_all()
        assert counter["n"] == 2000
        assert sum(p.activities_run for p in group) == 2000
        engine.shutdown()

    def test_deep_nested_spawning(self):
        group = PlaceGroup(2)
        engine = ThreadedEngine(group, threads_per_place=2)
        done = []
        lock = threading.Lock()

        def spawn(depth):
            if depth == 0:
                with lock:
                    done.append(1)
                return
            for _ in range(2):
                engine.submit(Activity(depth % 2, spawn, (depth - 1,)))

        engine.submit(Activity(0, spawn, (6,)))
        engine.run_all()
        assert len(done) == 64  # 2^6 leaves
        engine.shutdown()

    def test_reuse_across_many_rounds(self):
        group = PlaceGroup(2)
        engine = ThreadedEngine(group)
        for round_ in range(30):
            out = []
            lock = threading.Lock()
            for k in range(20):
                engine.submit(
                    Activity(k % 2, lambda v=k: (lock.acquire(), out.append(v), lock.release()))
                )
            engine.run_all()
            assert sorted(out) == list(range(20))
        engine.shutdown()


class TestDistArrayConcurrency:
    def test_concurrent_disjoint_writers(self):
        group = PlaceGroup(4)
        region = Region2D.of_shape(40, 40)
        arr = DistArray(Dist.block_rows(region, [0, 1, 2, 3]), group)

        def writer(band):
            for i in range(band * 10, (band + 1) * 10):
                for j in range(40):
                    arr.set(i, j, i * 100 + j)

        threads = [threading.Thread(target=writer, args=(b,)) for b in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert arr.total_set() == 1600
        assert arr.get(35, 7) == 3507

    def test_concurrent_read_write_same_place(self):
        group = PlaceGroup(1)
        region = Region2D.of_shape(10, 10)
        arr = DistArray(Dist.block_rows(region, [0]), group)
        errors = []

        def writer():
            try:
                for k in range(500):
                    arr.set(k % 10, (k // 10) % 10, k)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def reader():
            try:
                for _ in range(500):
                    arr.local_size(0)
                    arr.contains(3, 3)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=writer), threading.Thread(target=reader)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors


class TestThreadedRuntimeStress:
    def test_repeated_threaded_runs_stable(self):
        from repro.apps.lcs import solve_lcs
        from repro.apps.serial import lcs_matrix
        from repro.core.config import DPX10Config

        x, y = "ACGTACGGT", "TACGATCGG"
        expect = int(lcs_matrix(x, y)[-1, -1])
        for seed in range(8):
            cfg = DPX10Config(
                nplaces=4,
                engine="threaded",
                threads_per_place=3,
                scheduler="random",
                seed=seed,
                work_stealing=bool(seed % 2),
            )
            app, _ = solve_lcs(x, y, cfg)
            assert app.length == expect
