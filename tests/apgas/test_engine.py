"""Tests for the inline and threaded execution engines."""

import threading

import pytest

from repro.apgas.activity import Activity
from repro.apgas.engine import InlineEngine, ThreadedEngine
from repro.apgas.place import PlaceGroup
from repro.errors import DeadPlaceException


def make_engines(nplaces=3):
    g1 = PlaceGroup(nplaces)
    g2 = PlaceGroup(nplaces)
    return [InlineEngine(g1), ThreadedEngine(g2, threads_per_place=2)]


class TestEnginesCommon:
    @pytest.mark.parametrize("engine", make_engines(), ids=["inline", "threaded"])
    def test_runs_submitted_activities(self, engine):
        results = []
        lock = threading.Lock()

        def record(x):
            with lock:
                results.append(x)

        for i in range(10):
            engine.submit(Activity(i % 3, record, (i,)))
        engine.run_all()
        assert sorted(results) == list(range(10))
        engine.shutdown()

    @pytest.mark.parametrize("engine", make_engines(), ids=["inline", "threaded"])
    def test_nested_spawns_complete(self, engine):
        seen = []
        lock = threading.Lock()

        def child(x):
            with lock:
                seen.append(x)

        def parent():
            for i in range(5):
                engine.submit(Activity(0, child, (i,)))

        engine.submit(Activity(1, parent))
        engine.run_all()
        assert sorted(seen) == [0, 1, 2, 3, 4]
        engine.shutdown()

    @pytest.mark.parametrize("engine", make_engines(), ids=["inline", "threaded"])
    def test_activity_on_dead_place_raises_dead_place(self, engine):
        engine.group.kill(1)
        engine.submit(Activity(1, lambda: None))
        with pytest.raises(DeadPlaceException) as exc:
            engine.run_all()
        assert exc.value.place_id == 1
        engine.shutdown()

    @pytest.mark.parametrize("engine", make_engines(), ids=["inline", "threaded"])
    def test_dead_place_preferred_over_other_errors(self, engine):
        def boom():
            raise ValueError("app error")

        engine.group.kill(2)
        engine.submit(Activity(0, boom))
        engine.submit(Activity(2, lambda: None))
        with pytest.raises(DeadPlaceException):
            engine.run_all()
        engine.shutdown()

    @pytest.mark.parametrize("engine", make_engines(), ids=["inline", "threaded"])
    def test_app_errors_propagate(self, engine):
        def boom():
            raise ValueError("app error")

        engine.submit(Activity(0, boom))
        with pytest.raises(ValueError, match="app error"):
            engine.run_all()
        engine.shutdown()

    @pytest.mark.parametrize("engine", make_engines(), ids=["inline", "threaded"])
    def test_activity_count_attributed_to_place(self, engine):
        for _ in range(4):
            engine.submit(Activity(2, lambda: None))
        engine.run_all()
        assert engine.group[2].activities_run == 4
        engine.shutdown()


class TestInlineDeterminism:
    def test_fifo_order(self):
        g = PlaceGroup(2)
        eng = InlineEngine(g)
        order = []
        for i in range(6):
            eng.submit(Activity(i % 2, order.append, (i,)))
        eng.run_all()
        assert order == [0, 1, 2, 3, 4, 5]

    def test_run_all_idempotent_when_empty(self):
        eng = InlineEngine(PlaceGroup(1))
        eng.run_all()
        eng.run_all()


class TestThreadedEngine:
    def test_parallel_execution_across_places(self):
        g = PlaceGroup(2)
        eng = ThreadedEngine(g, threads_per_place=1)
        barrier = threading.Barrier(2, timeout=5)

        def meet():
            barrier.wait()

        eng.submit(Activity(0, meet))
        eng.submit(Activity(1, meet))
        eng.run_all()  # would deadlock if places did not run concurrently
        eng.shutdown()

    def test_shutdown_idempotent(self):
        eng = ThreadedEngine(PlaceGroup(1))
        eng.shutdown()
        eng.shutdown()

    def test_run_all_clears_errors(self):
        eng = ThreadedEngine(PlaceGroup(1))
        eng.submit(Activity(0, lambda: 1 / 0))
        with pytest.raises(ZeroDivisionError):
            eng.run_all()
        # subsequent quiescence is clean
        eng.submit(Activity(0, lambda: None))
        eng.run_all()
        eng.shutdown()
