"""Tests for the APGAS GlobalRuntime facade."""

import pytest

from repro.apgas.runtime import GlobalRuntime
from repro.errors import ConfigurationError, DeadPlaceException


class TestGlobalRuntime:
    def test_rejects_unknown_engine(self):
        with pytest.raises(ConfigurationError):
            GlobalRuntime(2, engine="mpi")

    @pytest.mark.parametrize("engine", ["inline", "threaded"])
    def test_at_runs_synchronously(self, engine):
        with GlobalRuntime(2, engine=engine) as rt:
            assert rt.at(1, lambda a, b: a + b, 2, 3) == 5
            assert rt.group[1].activities_run == 1

    @pytest.mark.parametrize("engine", ["inline", "threaded"])
    def test_at_dead_place_raises(self, engine):
        with GlobalRuntime(2, engine=engine) as rt:
            rt.kill_place(1)
            with pytest.raises(DeadPlaceException):
                rt.at(1, lambda: None)

    @pytest.mark.parametrize("engine", ["inline", "threaded"])
    def test_finish_waits_for_async(self, engine):
        with GlobalRuntime(3, engine=engine) as rt:
            out = []
            with rt.finish():
                for i in range(9):
                    rt.async_at(i % 3, out.append, i)
            assert sorted(out) == list(range(9))

    def test_nplaces(self):
        with GlobalRuntime(5) as rt:
            assert rt.nplaces == 5

    def test_network_default_attached(self):
        with GlobalRuntime(2) as rt:
            assert rt.network.transfer_cost(0) == 0.0
