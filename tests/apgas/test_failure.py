"""Tests for fault plans and the fault injector."""

import pytest

from repro.apgas.failure import FaultInjector, FaultPlan
from repro.errors import ConfigurationError


class TestFaultPlan:
    def test_requires_exactly_one_trigger(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(place_id=1)
        with pytest.raises(ConfigurationError):
            FaultPlan(place_id=1, after_completions=1, at_fraction=0.5)

    def test_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(place_id=0, at_fraction=1.5)
        FaultPlan(place_id=0, at_fraction=1.0)

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(place_id=0, after_completions=-1)


class TestFaultInjector:
    def test_count_trigger_fires_once(self):
        inj = FaultInjector([FaultPlan(1, after_completions=5)], total_work=100)
        assert inj.poll_completions(4) == []
        assert inj.poll_completions(5) == [1]
        assert inj.poll_completions(6) == []
        assert inj.pending == 0

    def test_fraction_resolved_against_total(self):
        inj = FaultInjector([FaultPlan(2, at_fraction=0.5)], total_work=10)
        assert inj.poll_completions(4) == []
        assert inj.poll_completions(5) == [2]

    def test_multiple_plans_fire_in_threshold_order(self):
        plans = [
            FaultPlan(3, after_completions=8),
            FaultPlan(1, after_completions=2),
        ]
        inj = FaultInjector(plans, total_work=10)
        assert inj.poll_completions(10) == [1, 3]

    def test_time_triggers(self):
        inj = FaultInjector([FaultPlan(0, at_time=3.5)], total_work=0)
        assert inj.next_time_trigger() == 3.5
        assert inj.poll_time(3.4) == []
        assert inj.poll_time(3.5) == [0]
        assert inj.next_time_trigger() is None

    def test_mixed_plan_kinds(self):
        inj = FaultInjector(
            [FaultPlan(0, at_time=1.0), FaultPlan(1, after_completions=1)],
            total_work=2,
        )
        assert inj.poll_completions(1) == [1]
        assert inj.poll_time(2.0) == [0]
        assert inj.pending == 0
