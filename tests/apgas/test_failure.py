"""Tests for fault plans and the fault injector."""

import threading

import pytest

from repro.apgas.failure import FaultInjector, FaultPlan
from repro.errors import ConfigurationError


class TestFaultPlan:
    def test_requires_exactly_one_trigger(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(place_id=1)
        with pytest.raises(ConfigurationError):
            FaultPlan(place_id=1, after_completions=1, at_fraction=0.5)

    def test_fraction_bounds(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(place_id=0, at_fraction=1.5)
        FaultPlan(place_id=0, at_fraction=1.0)

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(place_id=0, after_completions=-1)


class TestFaultInjector:
    def test_count_trigger_fires_once(self):
        inj = FaultInjector([FaultPlan(1, after_completions=5)], total_work=100)
        assert inj.poll_completions(4) == []
        assert inj.poll_completions(5) == [1]
        assert inj.poll_completions(6) == []
        assert inj.pending == 0

    def test_fraction_resolved_against_total(self):
        inj = FaultInjector([FaultPlan(2, at_fraction=0.5)], total_work=10)
        assert inj.poll_completions(4) == []
        assert inj.poll_completions(5) == [2]

    def test_multiple_plans_fire_in_threshold_order(self):
        plans = [
            FaultPlan(3, after_completions=8),
            FaultPlan(1, after_completions=2),
        ]
        inj = FaultInjector(plans, total_work=10)
        assert inj.poll_completions(10) == [1, 3]

    def test_time_triggers(self):
        inj = FaultInjector([FaultPlan(0, at_time=3.5)], total_work=0)
        assert inj.next_time_trigger() == 3.5
        assert inj.poll_time(3.4) == []
        assert inj.poll_time(3.5) == [0]
        assert inj.next_time_trigger() is None

    def test_mixed_plan_kinds(self):
        inj = FaultInjector(
            [FaultPlan(0, at_time=1.0), FaultPlan(1, after_completions=1)],
            total_work=2,
        )
        assert inj.poll_completions(1) == [1]
        assert inj.poll_time(2.0) == [0]
        assert inj.pending == 0

    def test_same_threshold_plans_both_fire(self):
        inj = FaultInjector(
            [
                FaultPlan(1, after_completions=5),
                FaultPlan(2, after_completions=5),
            ],
            total_work=10,
        )
        assert sorted(inj.poll_completions(5)) == [1, 2]
        assert inj.pending == 0


class TestFractionBoundaries:
    def test_fraction_zero_resolves_to_zero_and_fires_first_poll(self):
        inj = FaultInjector([FaultPlan(1, at_fraction=0.0)], total_work=10)
        assert inj.resolved_thresholds() == [(0, 1)]
        assert inj.poll_completions(0) == [1]

    def test_fraction_one_fires_only_at_final_completion(self):
        inj = FaultInjector([FaultPlan(2, at_fraction=1.0)], total_work=10)
        assert inj.resolved_thresholds() == [(10, 2)]
        assert inj.poll_completions(9) == []
        assert inj.poll_completions(10) == [2]

    def test_resolved_thresholds_shrink_as_plans_fire(self):
        inj = FaultInjector(
            [FaultPlan(1, at_fraction=0.2), FaultPlan(2, at_fraction=0.8)],
            total_work=10,
        )
        assert inj.resolved_thresholds() == [(2, 1), (8, 2)]
        inj.poll_completions(2)
        assert inj.resolved_thresholds() == [(8, 2)]


class TestConcurrentPolling:
    def test_each_plan_fires_exactly_once_across_pollers(self):
        # many threads racing poll_completions with a monotone counter:
        # the union of everything fired must contain each plan once
        plans = [FaultPlan(p, after_completions=p * 10) for p in range(1, 9)]
        inj = FaultInjector(plans, total_work=100)
        fired: list = []
        fired_lock = threading.Lock()
        barrier = threading.Barrier(4)

        def poller():
            barrier.wait()
            for completed in range(0, 101):
                victims = inj.poll_completions(completed)
                if victims:
                    with fired_lock:
                        fired.extend(victims)

        threads = [threading.Thread(target=poller) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(fired) == list(range(1, 9))
        assert inj.pending == 0

    def test_monotonicity_not_required_of_callers(self):
        # a poller reporting an older count must not re-fire or unfire
        inj = FaultInjector([FaultPlan(1, after_completions=5)], total_work=10)
        assert inj.poll_completions(7) == [1]
        assert inj.poll_completions(3) == []
        assert inj.poll_completions(7) == []
