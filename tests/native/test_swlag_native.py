"""The hand-written baseline must agree with the oracle and the framework."""

import numpy as np

from repro.apps.serial import swlag_matrices
from repro.apps.smith_waterman import solve_swlag
from repro.core.config import DPX10Config
from repro.native.swlag_native import swlag_native, swlag_native_score


class TestAgainstOracle:
    def test_matrices_identical(self):
        x, y = "GATTACAACGT", "TACGACGATTT"
        hn, en, fn = swlag_native(x, y)
        ho, eo, fo = swlag_matrices(x, y)
        np.testing.assert_array_equal(hn, ho)
        np.testing.assert_array_equal(en, eo)
        np.testing.assert_array_equal(fn, fo)

    def test_custom_scoring(self):
        x, y = "AAAATTTTCCCC", "AAAACCCC"
        hn, _, _ = swlag_native(x, y, gap_open=-3, gap_extend=-1)
        ho, _, _ = swlag_matrices(x, y, gap_open=-3, gap_extend=-1)
        np.testing.assert_array_equal(hn, ho)


class TestAgainstFramework:
    def test_same_best_score(self):
        x, y = "ACACACTAGT", "AGCACACAGT"
        app, _ = solve_swlag(x, y, DPX10Config(nplaces=2))
        assert swlag_native_score(x, y) == app.best_score

    def test_score_helper(self):
        assert swlag_native_score("ACGT", "ACGT") == 8
