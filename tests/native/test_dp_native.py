"""The hand-vectorized dp_native sweeps mirror their apps bit-for-bit."""

import numpy as np

from repro.analysis.registry import app_fixture
from repro.apps.msa import make_msa3_instance
from repro.apps.mtp import MTPApp, make_mtp_weights
from repro.apps.serial import msa3_matrix
from repro.core.config import DPX10Config
from repro.core.runtime import DPX10Runtime
from repro.native import (
    edit_distance_native,
    lcs_native,
    msa3_native,
    mtp_native,
    sw_native,
)
from repro.patterns.grid import GridDag


def test_mtp_native_matches_interpreted_run():
    for seed in (0, 3, 11):
        w_down, w_right = make_mtp_weights(9, 7, seed=seed)
        app = MTPApp(w_down, w_right)
        dag = GridDag(w_right.shape[0], w_down.shape[1])
        DPX10Runtime(app, dag, DPX10Config(engine="inline")).run()
        want = dag.to_array(fill=-1, dtype=np.int64)
        assert np.array_equal(want, mtp_native(w_down, w_right))


def test_mtp_native_single_row_and_column():
    w_down, w_right = make_mtp_weights(1, 5, seed=1)
    assert mtp_native(w_down, w_right)[0, -1] == int(w_right[0].sum())
    w_down, w_right = make_mtp_weights(5, 1, seed=1)
    assert mtp_native(w_down, w_right)[-1, 0] == int(w_down[:, 0].sum())


def test_msa3_native_matches_serial_matrix():
    cases = [
        ("ACG", "AC", "A"),
        ("", "", ""),
        ("A", "", ""),
        ("", "AC", "G"),
        make_msa3_instance(6, seed=2),
        make_msa3_instance(9, seed=5),
    ]
    for x, y, z in cases:
        want = np.asarray(msa3_matrix(x, y, z))
        assert np.array_equal(want, msa3_native(x, y, z)), (x, y, z)


def test_pairwise_natives_match_registry_fixtures():
    # the 2D sweeps against the exact fixture apps the classifier sees
    for name, native in [
        ("sw", sw_native),
        ("lcs", lcs_native),
        ("edit_distance", edit_distance_native),
    ]:
        app, dag = app_fixture(name)
        DPX10Runtime(app, dag, DPX10Config(engine="inline")).run()
        want = dag.to_array(fill=-1, dtype=np.int64)
        s1 = getattr(app, "str1", None) or getattr(app, "x")
        s2 = getattr(app, "str2", None) or getattr(app, "y")
        assert np.array_equal(want, native(s1, s2)), name
