"""Tests for the metrics registry: instruments, snapshots, merge, render."""

import pickle
import sys
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BYTES_BUCKETS,
    MetricsRegistry,
    NULL_REGISTRY,
    merge_snapshots,
    render_prometheus,
    by_label,
    scalar,
)
from repro.obs.metrics import NULL_INSTRUMENT


class TestInstruments:
    def test_counter_inc(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total", "requests")
        c.inc()
        c.inc(4)
        snap = reg.collect()
        assert snap["requests_total"]["values"] == [[[], 5]]

    def test_gauge_set(self):
        reg = MetricsRegistry()
        g = reg.gauge("queue_depth", "depth")
        g.set(7)
        g.set(3)
        assert scalar(reg.collect(), "queue_depth") == 3

    def test_labels_positional_and_keyword_same_child(self):
        reg = MetricsRegistry()
        fam = reg.counter("hits_total", "hits", labelnames=("place",))
        fam.labels(2).inc()
        fam.labels(place=2).inc()
        fam.labels(3).inc()
        assert by_label(reg.collect(), "hits_total", "place") == {"2": 2, "3": 1}

    def test_label_arity_mismatch_raises(self):
        reg = MetricsRegistry()
        fam = reg.counter("hits_total", "hits", labelnames=("place",))
        with pytest.raises(ValueError):
            fam.labels()
        with pytest.raises(ValueError):
            fam.labels(1, 2)

    def test_registration_idempotent_but_kind_conflict_raises(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", "x")
        b = reg.counter("x_total", "x")
        assert a is b
        with pytest.raises(ValueError):
            reg.gauge("x_total", "x")
        with pytest.raises(ValueError):
            reg.counter("x_total", "x", labelnames=("place",))

    def test_invalid_name_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("bad name", "nope")


class TestHistogramBuckets:
    def test_boundary_value_lands_in_its_bucket(self):
        # Prometheus le semantics: observation == bound counts in that bucket
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", "latency", buckets=(1.0, 2.0))
        h.observe(1.0)
        h.observe(2.0)
        h.observe(1.5)
        h.observe(2.5)  # above the last bound -> +Inf bucket
        value = reg.collect()["lat_seconds"]["values"][0][1]
        assert value["counts"] == [1, 2, 1]
        assert value["count"] == 4
        assert value["sum"] == pytest.approx(7.0)

    def test_below_first_bound(self):
        reg = MetricsRegistry()
        h = reg.histogram("b", buckets=DEFAULT_BYTES_BUCKETS)
        h.observe(0)
        counts = reg.collect()["b"]["values"][0][1]["counts"]
        assert counts[0] == 1 and sum(counts) == 1

    def test_prometheus_buckets_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", "latency", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 3.0):
            h.observe(v)
        text = reg.render_prometheus()
        assert 'lat_seconds_bucket{le="1"} 1' in text
        assert 'lat_seconds_bucket{le="2"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 3' in text
        assert "lat_seconds_count 3" in text


class TestSnapshotAndMerge:
    def test_snapshot_is_picklable_and_json_shaped(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "c", ("place",)).labels(0).inc(2)
        reg.histogram("h_seconds", "h").observe(0.01)
        snap = reg.collect()
        assert pickle.loads(pickle.dumps(snap)) == snap

    def test_merge_counters_add_gauges_overwrite(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg, n in ((a, 2), (b, 5)):
            reg.counter("c_total", "c", ("place",)).labels(1).inc(n)
            reg.gauge("g").set(n)
        a.merge(b.collect())
        snap = a.collect()
        assert by_label(snap, "c_total", "place") == {"1": 7}
        assert scalar(snap, "g") == 5

    def test_merge_histograms_bucketwise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0, 2.0)).observe(0.5)
        b.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        a.merge(b.collect())
        value = a.collect()["h"]["values"][0][1]
        assert value["counts"] == [1, 1, 0]
        assert value["count"] == 2

    def test_merge_histogram_bound_mismatch_raises(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b.histogram("h", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge(b.collect())

    def test_merge_snapshots_helper(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("c_total").inc(1)
        b.counter("c_total").inc(2)
        merged = merge_snapshots(a.collect(), None, b.collect())
        assert scalar(merged, "c_total") == 3

    def test_collectors_scraped_at_collect_time(self):
        reg = MetricsRegistry()
        live = {"n": 0}
        g = reg.gauge("n")
        reg.register_collector(lambda r: g.set(live["n"]))
        live["n"] = 42
        assert scalar(reg.collect(), "n") == 42

    def test_render_prometheus_module_level(self):
        reg = MetricsRegistry()
        reg.counter("c_total", "help text", ("place",)).labels(0).inc()
        text = render_prometheus(reg.collect())
        assert "# HELP c_total help text" in text
        assert "# TYPE c_total counter" in text
        assert 'c_total{place="0"} 1' in text


class TestConcurrency:
    def test_concurrent_inc_from_worker_threads(self):
        reg = MetricsRegistry()
        fam = reg.counter("c_total", "c", ("place",))
        per_thread, nthreads = 200, 8

        def work(place):
            child = fam.labels(place % 2)
            for _ in range(per_thread):
                child.inc()

        threads = [threading.Thread(target=work, args=(k,)) for k in range(nthreads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # child creation is lock-protected; increments on int are GIL-atomic
        # enough for the test's purposes — totals must match exactly here
        # because each label's children were created before racing updates
        totals = by_label(reg.collect(), "c_total", "place")
        assert totals["0"] + totals["1"] == per_thread * nthreads


class TestDisabledRegistry:
    def test_null_registry_hands_out_shared_singleton(self):
        c = NULL_REGISTRY.counter("anything", "x", ("place",))
        assert c is NULL_INSTRUMENT
        assert c.labels(1) is c
        assert NULL_REGISTRY.gauge("g") is c
        assert NULL_REGISTRY.histogram("h") is c

    def test_null_registry_collect_empty_and_collectors_dropped(self):
        calls = []
        NULL_REGISTRY.register_collector(lambda r: calls.append(1))
        assert NULL_REGISTRY.collect() == {}
        assert calls == []

    def test_disabled_hot_path_allocates_nothing(self):
        fam = NULL_REGISTRY.counter("hot_total", "hot", ("place",))
        child = fam.labels(3)
        # warm up, then assert the steady-state loop does not allocate
        for _ in range(10):
            child.inc()
        before = sys.getallocatedblocks()
        for _ in range(1000):
            fam.labels(3).inc()
            child.observe(1.0)
        after = sys.getallocatedblocks()
        # unrelated interpreter activity gets a little slack; 1000 real
        # allocations would blow far past it
        assert after - before < 50

    def test_merge_into_disabled_registry_is_noop(self):
        reg = MetricsRegistry()
        reg.counter("c_total").inc()
        NULL_REGISTRY.merge(reg.collect())
        assert NULL_REGISTRY.collect() == {}
