"""Trace context propagation: span ids, trace ids, and the cross-process
clock normalization regression test.

The mp workers time events with their own ``perf_counter``, whose origin
is unrelated to the master's; before the t0-offset exchange in the init
envelope, worker stamps landed arbitrarily far outside the master
timeline. The regression tests here pin the contract: every worker event
must fall inside the master's run window (within wall-clock-exchange
slack), on every mp transport.
"""

import pytest

from repro.core.config import DPX10Config
from repro.core.trace import ExecutionTrace, Span
from repro.serve.server import JobServer

_SLACK = 0.25  # generous: an un-normalized perf_counter misses by hours


def _run_sw(config, size=48):
    from repro.apps.smith_waterman import solve_sw
    from repro.util.rng import seeded_rng

    rng = seeded_rng(3, "ctx-test", size)
    s1 = "".join("ACGT"[int(k)] for k in rng.integers(0, 4, size=size))
    s2 = "".join("ACGT"[int(k)] for k in rng.integers(0, 4, size=size))
    _, report = solve_sw(s1, s2, config)
    return report


class TestSpanIdentity:
    def test_every_run_gets_a_trace_id(self):
        a, b = ExecutionTrace(), ExecutionTrace()
        assert a.trace_id and b.trace_id and a.trace_id != b.trace_id
        assert ExecutionTrace(trace_id="feed1234").trace_id == "feed1234"

    def test_spans_get_ids_and_parent_links(self):
        trace = ExecutionTrace()
        with trace.phase("execute"):
            with trace.phase("halo fetch", category="halo"):
                pass
        by_name = {s.name: s for s in trace.spans}
        assert by_name["execute"].span_id is not None
        assert by_name["halo fetch"].parent_id == by_name["execute"].span_id
        assert by_name["execute"].parent_id is None

    def test_span_ids_are_unique_within_a_trace(self):
        trace = ExecutionTrace()
        for k in range(5):
            with trace.phase(f"p{k}"):
                pass
        ids = [s.span_id for s in trace.spans]
        assert len(set(ids)) == len(ids)

    def test_bare_span_constructor_still_works(self):
        # pre-context call sites construct Spans without ids
        s = Span("legacy", 0.0, 1.0)
        assert s.span_id is None and s.parent_id is None and s.pid == 0


class TestMpClockNormalization:
    """Satellite 1 regression: worker stamps on the master timeline."""

    def _assert_events_inside_master_window(self, report):
        trace = report.trace
        assert trace is not None and trace.events
        containers = [s for s in trace.spans if s.name == "execute"]
        assert containers, "mp master must record an execute span"
        lo = min(s.start for s in containers) - _SLACK
        hi = max(s.end for s in containers) + _SLACK
        for e in trace.events:
            assert lo <= e.start <= e.end <= hi, (
                f"worker event {e} escaped the master window [{lo}, {hi}]: "
                "the perf_counter offset exchange is broken"
            )

    def test_mp_shm_tiled(self):
        config = DPX10Config(
            nplaces=3, engine="mp", tile_shape=(16, 16), trace=True, shm=True
        )
        self._assert_events_inside_master_window(_run_sw(config))

    def test_mp_pipes_per_cell(self):
        config = DPX10Config(nplaces=3, engine="mp", trace=True, shm=False)
        self._assert_events_inside_master_window(_run_sw(config, size=24))

    def test_mp_trace_carries_dependency_meta(self):
        config = DPX10Config(
            nplaces=3, engine="mp", tile_shape=(16, 16), trace=True, shm=True
        )
        report = _run_sw(config)
        assert report.trace.meta.get("tile_offsets"), (
            "mp tiled traces must carry tile_offsets for the causal model"
        )


class TestServeTraceContext:
    """trace_id threads from the HTTP request to the exported trace."""

    def test_traced_job_exposes_trace_endpoint(self):
        server = JobServer(port=0, pool_capacity=2, prewarm=False)
        try:
            status, payload = server.submit(
                {
                    "app": "sw",
                    "params": {"size": 48, "seed": 5},
                    "engine": "threaded",
                    "nplaces": 2,
                    "tile_shape": [16, 16],
                    "trace": True,
                }
            )
            assert status == 202
            done = server.wait(payload["id"], timeout=60)
            assert done["status"] == "done"
            assert done["trace_id"], "status payload must carry the trace id"
            code, doc = server.job_trace(payload["id"])
            assert code == 200
            other = doc["otherData"]
            assert other["trace_id"] == done["trace_id"]
            causal = other["causal"]
            assert causal["critical_path"]
            assert sum(causal["attribution"].values()) == pytest.approx(1.0)
            # request-side serving spans live on the server trace
            names = {s.name.split(":", 1)[0] for s in server.trace.spans}
            assert {"admission", "queue", "execute"} <= names
        finally:
            server.close()

    def test_untraced_job_404s_on_trace(self):
        server = JobServer(port=0, pool_capacity=2, prewarm=False)
        try:
            status, payload = server.submit(
                {
                    "app": "sw",
                    "params": {"size": 24, "seed": 5},
                    "engine": "inline",
                    "nplaces": 1,
                }
            )
            assert status == 202
            done = server.wait(payload["id"], timeout=60)
            assert "trace_id" not in done
            code, err = server.job_trace(payload["id"])
            assert code == 404 and "trace" in err["error"]
            assert server.job_trace("nonexistent")[0] == 404
        finally:
            server.close()
