"""The causal model: critical-path validity, waterfall exactness, and the
acceptance audit that attribution explains (>= 95% of) wall-clock time.

The audit runs the exact configuration the issue names — a traced mp_shm
tiled SW 512x512 run — plus cheaper in-process variants, and checks the
two load-bearing properties end to end:

* every instant of every place is attributed to exactly one named
  category (fractions sum to 1.0; the >= 0.95 bar follows a fortiori);
* the critical path is a dependency-respecting chain: consecutive
  events are joined by real (tiled) DAG dependency edges and each
  predecessor finishes before its consumer starts.
"""

import pytest

from repro.core.config import DPX10Config
from repro.core.trace import ExecutionTrace, Span, TraceEvent
from repro.obs.causal import (
    PLACE_CATEGORIES,
    attribution,
    causal_summary,
    classify_span,
    critical_path,
    critical_path_fraction,
    detect_stragglers,
    explain_text,
    diff_text,
    waterfall,
)

#: cross-process stamps are normalized via a wall-clock offset exchange,
#: not a shared monotonic clock; allow this much ordering slack for mp
_MP_CLOCK_SLACK = 5e-3


def _traced_sw(size, engine, tile, nplaces=4, shm=None):
    from repro.apps.smith_waterman import solve_sw
    from repro.util.rng import seeded_rng

    rng = seeded_rng(7, "causal-test", size)
    s1 = "".join("ACGT"[int(k)] for k in rng.integers(0, 4, size=size))
    s2 = "".join("ACGT"[int(k)] for k in rng.integers(0, 4, size=size))
    config = DPX10Config(
        nplaces=nplaces, engine=engine, tile_shape=tile, trace=True, shm=shm
    )
    _, report = solve_sw(s1, s2, config)
    assert report.trace is not None
    return report.trace


def _assert_dependency_chain(trace, slack=0.0):
    path = critical_path(trace)
    assert path, "critical path must not be empty on a traced run"
    offsets = {
        (int(a), int(b))
        for a, b in (
            trace.meta.get("tile_offsets") or trace.meta.get("offsets") or []
        )
    }
    assert offsets, "runtime must stash dependency offsets in trace.meta"

    def key(e):
        return e.tile if e.tile is not None else (e.i, e.j)

    for dep, consumer in zip(path, path[1:]):
        dk, ck = key(dep), key(consumer)
        assert (dk[0] - ck[0], dk[1] - ck[1]) in offsets, (
            f"{dk} -> {ck} is not a dependency edge"
        )
        assert dep.end <= consumer.start + slack, (
            f"dependency {dk} (end={dep.end}) finishes after its consumer "
            f"{ck} (start={consumer.start}) starts"
        )
    return path


class TestCriticalPath:
    def test_threaded_tiled_path_is_dependency_chain(self):
        trace = _traced_sw(64, "threaded", (16, 16))
        path = _assert_dependency_chain(trace)
        # the chain reaches back to the DAG's source corner
        assert path[0].tile == (0, 0)
        # and starts from the latest-finishing event
        assert path[-1].end == max(e.end for e in trace.events)

    def test_per_vertex_path_uses_cell_offsets(self):
        trace = _traced_sw(24, "threaded", None, nplaces=2)
        assert "offsets" in trace.meta
        _assert_dependency_chain(trace)

    def test_fraction_is_bounded_and_positive(self):
        trace = _traced_sw(64, "threaded", (16, 16))
        frac = critical_path_fraction(trace)
        assert 0.0 < frac <= 1.0

    def test_no_dependency_meta_degenerates_to_longest_event(self):
        trace = ExecutionTrace()
        trace.record(TraceEvent(0, 0, 0, 0, start=0.0, end=1.0))
        trace.record(TraceEvent(0, 1, 0, 0, start=1.0, end=4.0))
        assert critical_path(trace) == [trace.events[1]]


class TestWaterfallExactness:
    def test_place_rows_sum_to_wall_exactly(self):
        trace = _traced_sw(64, "threaded", (16, 16))
        wf = waterfall(trace)
        wall = wf["wall"]
        assert wall > 0
        for place, row in wf["places"].items():
            assert sum(row.values()) == pytest.approx(wall, rel=1e-9), (
                f"place {place} categories do not sum to wall"
            )

    def test_overlapping_spans_never_double_count(self):
        # a synthetic place timeline where halo-wait overlaps compute:
        # the overlap must be attributed once (compute wins by priority)
        trace = ExecutionTrace()
        trace.record(TraceEvent(0, 0, 0, 0, start=0.0, end=6.0))
        trace.record_span(Span("halo fetch", 4.0, 8.0, category="halo", place=0))
        trace.record_span(Span("pace wait", 7.0, 9.0, category="pace", place=0))
        row = waterfall(trace)["places"][0]
        assert row["compute"] == pytest.approx(6.0)
        assert row["halo-wait"] == pytest.approx(2.0)  # only the 6..8 part
        assert row["pacing"] == pytest.approx(1.0)  # only the 8..9 part
        assert row["idle"] == pytest.approx(0.0)
        assert sum(row.values()) == pytest.approx(9.0)

    def test_runtime_row_collects_master_spans(self):
        trace = _traced_sw(64, "threaded", (16, 16))
        runtime = waterfall(trace)["runtime"]
        assert "partition" in runtime and runtime["partition"] > 0
        # the "execute" container wraps everything; counting it would
        # double-attribute, so it must be excluded
        assert classify_span(Span("execute", 0, 1)) is None


class TestAttributionAudit:
    """The acceptance audit: >= 95% of wall-clock attributed by name."""

    def _audit(self, trace):
        attr = attribution(trace)
        assert attr, "traced run must produce an attribution"
        named = {c: f for c, f in attr.items() if c in PLACE_CATEGORIES or c == "idle"}
        assert sum(named.values()) >= 0.95
        assert sum(attr.values()) == pytest.approx(1.0, abs=1e-9)
        for cat, frac in attr.items():
            assert 0.0 <= frac <= 1.0, f"{cat} fraction out of range"

    def test_threaded_tiled(self):
        self._audit(_traced_sw(128, "threaded", (32, 32)))

    def test_inline_tiled(self):
        self._audit(_traced_sw(96, "inline", (32, 32)))

    def test_mp_shm_tiled_512(self):
        trace = _traced_sw(512, "mp", (64, 64), shm=True)
        self._audit(trace)
        _assert_dependency_chain(trace, slack=_MP_CLOCK_SLACK)
        # worker events landed on the master timeline (clock exchange):
        # nothing may start before the run window opens
        wf = waterfall(trace)
        assert wf["wall"] > 0
        assert all(e.start >= wf["t0"] - 1e-9 for e in trace.events)


class TestStragglersPostMortem:
    def test_slow_place_flagged_from_trace(self):
        trace = ExecutionTrace()
        for p in range(4):
            per_tile = 0.05 if p == 2 else 0.005
            for n in range(4):
                t0 = n * 0.06
                trace.record(
                    TraceEvent(
                        p, n, p, p, start=t0, end=t0 + per_tile,
                        tile=(p, n), cells=100,
                    )
                )
        flags = detect_stragglers(trace)
        assert set(flags) == {2}
        assert flags[2] >= 5.0

    def test_uniform_fleet_is_clean(self):
        trace = ExecutionTrace()
        for p in range(4):
            for n in range(4):
                trace.record(
                    TraceEvent(
                        p, n, p, p, start=n * 0.01, end=n * 0.01 + 0.005,
                        tile=(p, n), cells=100,
                    )
                )
        assert detect_stragglers(trace) == {}


class TestHumanSurfaces:
    def test_explain_text_sections(self):
        trace = _traced_sw(64, "threaded", (16, 16))
        text = explain_text(trace)
        assert trace.trace_id in text
        assert "latency waterfall" in text
        assert "critical path:" in text
        assert "stragglers:" in text

    def test_diff_text_reports_deltas(self):
        a = _traced_sw(48, "threaded", (16, 16))
        b = _traced_sw(96, "threaded", (16, 16))
        text = diff_text("a.json", a, "b.json", b)
        assert "wall delta:" in text
        assert "category totals" in text
        assert "critical-path fraction:" in text

    def test_causal_summary_is_json_shaped(self):
        import json

        trace = _traced_sw(64, "threaded", (16, 16))
        doc = causal_summary(trace)
        json.dumps(doc)  # must be JSON-able verbatim
        assert doc["trace_id"] == trace.trace_id
        assert doc["critical_path"]
        assert 0.0 <= doc["critical_path_fraction"] <= 1.0
        assert sum(doc["attribution"].values()) == pytest.approx(1.0)
