"""End-to-end tests for ``python -m repro obs`` and run-level metrics.

The faithfulness contract: the post-mortem summary is rendered purely
from exported data, and must agree with the live ``RunReport``.
"""

import json
import re

import pytest

from repro.__main__ import main
from repro.apps.lcs import solve_lcs
from repro.core.config import DPX10Config
from repro.obs.dashboard import LiveDashboard, summary_text
from repro.obs.export import load_chrome_trace
from repro.obs.metrics import MetricsRegistry, by_label, scalar

X, Y = "ABCBDABABCBDAB", "BDCABABDCABA"


class TestRunMetrics:
    @pytest.mark.parametrize("engine", ["inline", "threaded"])
    def test_report_metrics_match_legacy_fields(self, engine):
        cfg = DPX10Config(nplaces=3, engine=engine, metrics=True)
        _, rep = solve_lcs(X, Y, cfg)
        snap = rep.metrics
        assert snap is not None
        assert scalar(snap, "dpx10_completions_total") == rep.completions
        assert scalar(snap, "dpx10_cache_hits_total") == rep.cache_hits
        assert scalar(snap, "dpx10_cache_misses_total") == rep.cache_misses
        assert scalar(snap, "dpx10_net_messages_total") == rep.network_messages
        assert scalar(snap, "dpx10_net_bytes_total") == rep.network_bytes
        assert by_label(snap, "dpx10_vertices_computed_total", "place") == {
            str(p): n for p, n in rep.per_place_executed.items()
        }
        assert scalar(snap, "dpx10_places_alive") == rep.final_alive_places
        assert scalar(snap, "dpx10_run_wall_seconds") == pytest.approx(
            rep.wall_time, abs=1e-3
        )

    def test_metrics_off_by_default(self):
        _, rep = solve_lcs(X, Y, DPX10Config(nplaces=2))
        assert rep.metrics is None

    def test_injected_registry_is_used(self):
        reg = MetricsRegistry()
        cfg = DPX10Config(nplaces=2, metrics_registry=reg)
        _, rep = solve_lcs(X, Y, cfg)
        assert scalar(reg.collect(), "dpx10_completions_total") == rep.completions

    def test_tiled_run_records_tile_and_halo_metrics(self):
        cfg = DPX10Config(
            nplaces=2, engine="threaded", tile_shape=(4, 4), metrics=True
        )
        _, rep = solve_lcs(X, Y, cfg)
        snap = rep.metrics
        assert scalar(snap, "dpx10_tiles_executed_total") > 0
        fetches = scalar(snap, "dpx10_halo_fetches_total")
        hist = snap["dpx10_halo_fetch_bytes"]["values"][0][1]
        assert hist["count"] == fetches > 0

    def test_mp_engine_merges_worker_snapshots(self):
        cfg = DPX10Config(nplaces=2, engine="mp", metrics=True)
        _, rep = solve_lcs(X, Y, cfg)
        snap = rep.metrics
        assert scalar(snap, "dpx10_completions_total") == rep.completions
        cells = by_label(snap, "dpx10_mp_worker_cells_total", "place")
        assert sum(cells.values()) == rep.completions
        assert scalar(snap, "dpx10_mp_worker_compute_seconds_total") > 0

    def test_recovery_metrics(self):
        from repro.apgas.failure import FaultPlan

        cfg = DPX10Config(nplaces=3, metrics=True)
        _, rep = solve_lcs(X, Y, cfg)
        total = rep.active_vertices
        cfg = DPX10Config(nplaces=3, metrics=True)
        _, rep = solve_lcs(
            X, Y, cfg, fault_plans=[FaultPlan(place_id=2, after_completions=total // 2)]
        )
        assert rep.recoveries == 1
        snap = rep.metrics
        assert scalar(snap, "dpx10_recoveries_total") == 1
        hist = snap["dpx10_recovery_seconds"]["values"][0][1]
        assert hist["count"] == 1
        actions = by_label(snap, "dpx10_recovery_cells_total", "action")
        assert actions.get("preserved", 0) + actions.get("discarded", 0) > 0


class TestSummaryFaithfulness:
    def test_summary_matches_report(self, tmp_path):
        cfg = DPX10Config(nplaces=3, engine="threaded", trace=True, metrics=True)
        _, rep = solve_lcs(X, Y, cfg)
        path = str(tmp_path / "trace.json")
        from repro.obs.export import write_chrome_trace

        write_chrome_trace(path, rep.trace, metrics=rep.metrics)
        trace, metrics = load_chrome_trace(path)
        text = summary_text(trace, metrics)
        # per-place utilization recomputed from the exported events matches
        # the live trace's analysis
        for place, frac in rep.trace.utilization().items():
            m = re.search(rf"place\s+{place} \|[#.]+\|\s+([0-9.]+)%", text)
            assert m, f"place {place} missing from summary"
            assert float(m.group(1)) == pytest.approx(frac * 100, abs=0.1)
        # cache hit rate string matches the report's
        m = re.search(r"\((\d+\.\d)% hit rate\)", text)
        assert m and float(m.group(1)) == pytest.approx(
            rep.cache_hit_rate * 100, abs=0.05
        )


class TestCli:
    def test_obs_run_exports_and_summary(self, tmp_path, capsys):
        trace_path = str(tmp_path / "t.json")
        jsonl_path = str(tmp_path / "t.jsonl")
        prom_path = str(tmp_path / "m.txt")
        rc = main(
            [
                "obs", "run", "--app", "lcs", "--size", "12",
                "--engine", "inline", "--export", trace_path,
                "--jsonl", jsonl_path, "--metrics-out", prom_path,
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "run summary" in out and "per-place utilization" in out
        doc = json.load(open(trace_path))
        assert doc["otherData"]["format"] == "dpx10-trace"
        assert "dpx10_completions_total" in open(prom_path).read()

        rc = main(["obs", "summary", trace_path])
        assert rc == 0
        assert "run summary" in capsys.readouterr().out
        rc = main(["obs", "summary", jsonl_path])
        assert rc == 0
        assert "run summary" in capsys.readouterr().out

    def test_obs_run_tiled(self, capsys):
        rc = main(
            ["obs", "run", "--app", "sw", "--size", "24", "--tile", "8x8"]
        )
        assert rc == 0
        assert "best local score" in capsys.readouterr().out

    def test_schema_script_accepts_export(self, tmp_path):
        import subprocess
        import sys as _sys

        trace_path = str(tmp_path / "t.json")
        assert main(
            ["obs", "run", "--app", "lcs", "--size", "10",
             "--engine", "inline", "--export", trace_path]
        ) == 0
        proc = subprocess.run(
            [_sys.executable, "scripts/check_trace_schema.py", trace_path],
            capture_output=True, text=True,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_schema_script_rejects_malformed(self, tmp_path):
        import subprocess
        import sys as _sys

        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"traceEvents": [{"ph": "X"}]}))
        proc = subprocess.run(
            [_sys.executable, "scripts/check_trace_schema.py", str(bad)],
            capture_output=True, text=True,
        )
        assert proc.returncode == 1
        assert "FAIL" in proc.stdout


class TestLiveDashboard:
    def test_dashboard_refreshes_during_run(self):
        import io

        reg = MetricsRegistry()
        stream = io.StringIO()
        dash = LiveDashboard(reg, stream=stream, interval=0.01, ansi=False)
        cfg = DPX10Config(nplaces=2, engine="threaded", metrics_registry=reg)
        with dash:
            solve_lcs(X * 4, Y * 4, cfg)
        assert dash.frames >= 1
        out = stream.getvalue()
        assert "progress" in out and "cache" in out

    def test_final_frame_shows_closing_numbers(self):
        import io

        reg = MetricsRegistry()
        stream = io.StringIO()
        cfg = DPX10Config(nplaces=2, metrics_registry=reg)
        with LiveDashboard(reg, stream=stream, interval=5.0, ansi=False):
            _, rep = solve_lcs(X, Y, cfg)
        last_frame = stream.getvalue().strip().rsplit("progress", 1)[-1]
        assert f"{rep.completions}/{rep.active_vertices}" in last_frame
