"""Prometheus text-exposition conformance, checked line by line.

The exposition format is a real protocol, not printf output: label
values must escape backslash, double-quote and newline; HELP text must
escape backslash and newline; histograms must end in a ``+Inf`` bucket
whose count equals ``_count``; counters follow the ``_total`` naming
convention. A scraper that chokes on one malformed line drops the whole
scrape, so each rule gets a dedicated test.
"""

import re

from repro.obs.metrics import MetricsRegistry, render_prometheus

#: metric line: name, optional {labels}, one value (int/float/+Inf/NaN)
_LINE_RE = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\\\|\\\"|\\n)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\\\|\\\"|\\n)*\")*\})?"
    r" [^ \n]+$"
)


def _render(build):
    reg = MetricsRegistry()
    build(reg)
    return render_prometheus(reg.collect())


class TestLabelEscaping:
    def test_double_quote_is_escaped(self):
        text = _render(
            lambda r: r.counter("x_total", "x", ("tag",)).labels('say "hi"').inc()
        )
        assert 'tag="say \\"hi\\""' in text

    def test_backslash_is_escaped(self):
        text = _render(
            lambda r: r.counter("x_total", "x", ("path",)).labels("C:\\tmp").inc()
        )
        assert 'path="C:\\\\tmp"' in text

    def test_newline_is_escaped(self):
        text = _render(
            lambda r: r.counter("x_total", "x", ("msg",)).labels("a\nb").inc()
        )
        assert 'msg="a\\nb"' in text
        # the rendered output must never contain a raw newline mid-line
        for line in text.splitlines():
            assert _LINE_RE.match(line) or line.startswith("#"), line

    def test_help_text_escapes_newline_and_backslash(self):
        text = _render(lambda r: r.counter("x_total", "one\ntwo \\ three").inc())
        assert "# HELP x_total one\\ntwo \\\\ three" in text
        assert all("\n" not in line for line in text.splitlines())


class TestSchemaLineByLine:
    def _snapshot_text(self):
        def build(reg):
            reg.counter("dpx10_demo_total", "a counter", ("place",)).labels(0).inc(3)
            reg.gauge("dpx10_demo_depth", "a gauge").set(2.5)
            h = reg.histogram(
                "dpx10_demo_seconds", "a histogram", buckets=(0.1, 1.0)
            )
            for v in (0.05, 0.5, 5.0):
                h.observe(v)

        return _render(build)

    def test_every_line_is_well_formed(self):
        for line in self._snapshot_text().splitlines():
            if line.startswith("# HELP ") or line.startswith("# TYPE "):
                continue
            assert _LINE_RE.match(line), f"malformed exposition line: {line!r}"

    def test_type_lines_precede_their_samples(self):
        text = self._snapshot_text()
        lines = text.splitlines()
        for name in ("dpx10_demo_total", "dpx10_demo_depth", "dpx10_demo_seconds"):
            type_at = next(
                k for k, l in enumerate(lines) if l.startswith(f"# TYPE {name} ")
            )
            sample_at = next(
                k for k, l in enumerate(lines)
                if not l.startswith("#") and l.startswith(name)
            )
            assert type_at < sample_at

    def test_counter_names_end_in_total(self):
        text = self._snapshot_text()
        for line in text.splitlines():
            if line.startswith("# TYPE ") and line.endswith(" counter"):
                name = line.split()[2]
                assert name.endswith("_total"), (
                    f"counter {name} violates the _total naming convention"
                )

    def test_histogram_has_inf_bucket_sum_and_count(self):
        text = self._snapshot_text()
        assert 'dpx10_demo_seconds_bucket{le="+Inf"} 3' in text
        assert "dpx10_demo_seconds_count 3" in text
        assert re.search(r"^dpx10_demo_seconds_sum 5\.55", text, re.M)

    def test_histogram_buckets_are_cumulative(self):
        text = self._snapshot_text()
        counts = [
            int(m.group(2))
            for m in re.finditer(
                r'^dpx10_demo_seconds_bucket\{le="([^"]+)"\} (\d+)$', text, re.M
            )
        ]
        assert counts == sorted(counts), "le buckets must be cumulative"
        count = int(re.search(r"^dpx10_demo_seconds_count (\d+)$", text, re.M)[1])
        assert counts[-1] == count, "+Inf bucket must equal _count"

    def test_real_registry_surface_is_conformant(self):
        """The straggler gauge (and everything else the runtime emits)
        renders cleanly end to end."""
        from repro.apps.smith_waterman import solve_sw
        from repro.core.config import DPX10Config

        config = DPX10Config(
            nplaces=2, engine="threaded", tile_shape=(16, 16), metrics=True
        )
        _, report = solve_sw("ACGTACGTACGTACGT", "ACGTTGCAACGTTGCA", config)
        text = render_prometheus(report.metrics)
        assert text
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            assert _LINE_RE.match(line), f"malformed exposition line: {line!r}"
