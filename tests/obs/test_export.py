"""Round-trip tests for the Chrome-trace and JSONL exporters."""

import json

from repro.core.trace import ExecutionTrace, Span, TraceEvent
from repro.obs.export import (
    chrome_trace,
    load_chrome_trace,
    read_jsonl,
    trace_from_chrome,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import MetricsRegistry


def sample_trace() -> ExecutionTrace:
    t = ExecutionTrace()
    t.record(TraceEvent(0, 0, 0, 0, 0.0, 0.5))
    t.record(TraceEvent(0, 1, 0, 1, 0.5, 1.0))
    t.record(TraceEvent(8, 8, 1, 1, 1.0, 1.5, tile=(1, 1), cells=64))
    t.record_span(Span("partition", 0.0, 0.1))
    t.record_span(Span("halo fetch", 0.9, 1.0, category="halo", place=1))
    return t


def sample_metrics() -> dict:
    reg = MetricsRegistry()
    reg.counter("dpx10_cache_hits_total", "hits", ("place",)).labels(0).inc(5)
    reg.histogram(
        "dpx10_halo_fetch_bytes", "bytes", ("transport",), buckets=(64, 1024)
    ).labels("store").observe(128)
    return reg.collect()


class TestChromeTrace:
    def test_structure(self):
        doc = chrome_trace(sample_trace(), metrics=sample_metrics())
        assert doc["otherData"]["format"] == "dpx10-trace"
        x_events = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        assert len(x_events) == 5  # 3 events + 2 spans
        # process_name x2 + thread_name per place {0, 1}
        assert len(meta) == 4
        assert all(e["dur"] >= 0 for e in x_events)

    def test_round_trip_same_counts_and_values(self, tmp_path):
        path = str(tmp_path / "trace.json")
        original = sample_trace()
        metrics = sample_metrics()
        write_chrome_trace(path, original, metrics=metrics, report={"completions": 3})
        loaded, loaded_metrics = load_chrome_trace(path)
        assert len(loaded.events) == len(original.events)
        assert len(loaded.spans) == len(original.spans)
        assert loaded_metrics == metrics
        # event identity survives (timestamps round-trip through microseconds)
        assert {(e.i, e.j, e.exec_place) for e in loaded.events} == {
            (e.i, e.j, e.exec_place) for e in original.events
        }
        tiles = loaded.tile_events()
        assert len(tiles) == 1 and tiles[0].cells == 64
        halo = [s for s in loaded.spans if s.category == "halo"]
        assert halo and halo[0].place == 1

    def test_analyses_work_on_loaded_trace(self, tmp_path):
        path = str(tmp_path / "trace.json")
        write_chrome_trace(path, sample_trace())
        loaded, _ = load_chrome_trace(path)
        assert loaded.utilization()
        assert "place " in loaded.render_gantt(width=20)
        assert loaded.phase_totals()["partition"] > 0

    def test_empty_trace(self, tmp_path):
        path = str(tmp_path / "empty.json")
        doc = write_chrome_trace(path, ExecutionTrace())
        assert all(e["ph"] == "M" for e in doc["traceEvents"])
        loaded, metrics = load_chrome_trace(path)
        assert len(loaded) == 0 and loaded.spans == [] and metrics == {}

    def test_trace_from_chrome_ignores_foreign_phases(self):
        doc = chrome_trace(sample_trace())
        doc["traceEvents"].append(
            {"name": "marker", "ph": "i", "ts": 0, "pid": 0, "tid": 0}
        )
        loaded, _ = trace_from_chrome(doc)
        assert len(loaded.events) == 3


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        original = sample_trace()
        metrics = sample_metrics()
        lines = write_jsonl(path, original, metrics=metrics)
        # one line per event, per span, plus the metrics record
        assert lines == len(original.events) + len(original.spans) + 1
        with open(path) as fh:
            assert sum(1 for _ in fh) == lines
        loaded, loaded_metrics = read_jsonl(path)
        assert len(loaded.events) == len(original.events)
        assert len(loaded.spans) == len(original.spans)
        assert loaded_metrics == metrics
        assert loaded.events[2].tile == (1, 1)

    def test_every_line_is_json(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        write_jsonl(path, sample_trace(), metrics=sample_metrics())
        with open(path) as fh:
            kinds = [json.loads(line)["type"] for line in fh]
        assert kinds.count("event") == 3
        assert kinds.count("span") == 2
        assert kinds.count("metrics") == 1

    def test_empty_trace_no_metrics(self, tmp_path):
        path = str(tmp_path / "empty.jsonl")
        assert write_jsonl(path, ExecutionTrace()) == 0
        loaded, metrics = read_jsonl(path)
        assert len(loaded) == 0 and metrics == {}


def _context_trace() -> ExecutionTrace:
    t = ExecutionTrace(trace_id="cafe0123")
    t.meta["tile_offsets"] = [[-1, 0], [0, -1], [-1, -1]]
    t.record(TraceEvent(0, 0, 0, 0, 0.0, 0.5, tile=(0, 0), cells=64))
    t.record(TraceEvent(8, 8, 1, 1, 0.5, 1.5, tile=(1, 1), cells=64))
    with t.phase("execute"):
        with t.phase("halo fetch", category="halo"):
            pass
    return t


class TestCausalContextRoundTrip:
    """trace_id, meta, span ids and the causal summary survive export."""

    def _causal(self, trace):
        from repro.obs.causal import causal_summary

        return causal_summary(trace)

    def test_chrome_round_trip_preserves_context(self, tmp_path):
        path = str(tmp_path / "ctx.json")
        original = _context_trace()
        write_chrome_trace(path, original, causal=self._causal(original))
        loaded, _ = load_chrome_trace(path)
        assert loaded.trace_id == "cafe0123"
        assert loaded.meta["tile_offsets"] == [[-1, 0], [0, -1], [-1, -1]]
        by_name = {s.name: s for s in loaded.spans}
        assert by_name["halo fetch"].parent_id == by_name["execute"].span_id
        # the mirrored critical-path row must not duplicate events on load
        assert len(loaded.events) == len(original.events)
        assert len(loaded.spans) == len(original.spans)

    def test_chrome_marks_critical_path_events(self, tmp_path):
        original = _context_trace()
        doc = chrome_trace(original, causal=self._causal(original))
        marked = [
            e for e in doc["traceEvents"]
            if e.get("args", {}).get("critical_path")
            and e.get("cat") != "critical-path"
        ]
        mirror = [e for e in doc["traceEvents"] if e.get("cat") == "critical-path"]
        assert len(marked) == len(mirror) == 2  # (0,0) -> (1,1) chain
        assert doc["otherData"]["causal"]["critical_path"]
        assert doc["otherData"]["trace_id"] == "cafe0123"

    def test_jsonl_meta_record_round_trips(self, tmp_path):
        path = str(tmp_path / "ctx.jsonl")
        original = _context_trace()
        lines = write_jsonl(path, original, causal=self._causal(original))
        # meta record + events + spans (no metrics)
        assert lines == 1 + len(original.events) + len(original.spans)
        with open(path) as fh:
            first = json.loads(fh.readline())
        assert first["type"] == "meta"
        assert first["trace_id"] == "cafe0123"
        assert first["causal"]["critical_path"]
        loaded, _ = read_jsonl(path)
        assert loaded.trace_id == "cafe0123"
        assert loaded.meta["tile_offsets"] == [[-1, 0], [0, -1], [-1, -1]]
        assert loaded.spans[0].span_id is not None
