"""Tests for disk-spilled vertex values (the paper's future-work item)."""

import glob
import os

import numpy as np

from repro.apgas.failure import FaultPlan
from repro.apgas.place import PlaceGroup
from repro.apps.lcs import solve_lcs
from repro.apps.serial import lcs_matrix
from repro.apps.smith_waterman import solve_swlag
from repro.core.config import DPX10Config
from repro.core.vertex_store import build_stores
from repro.dist.dist import Dist
from repro.patterns.diagonal import DiagonalDag

X, Y = "ACGTACGGTACG", "TACGATCGGG"
EXPECT = int(lcs_matrix(X, Y)[-1, -1])


class TestSpilledStore:
    def test_values_are_memmapped(self, tmp_path):
        group = PlaceGroup(2)
        dag = DiagonalDag(6, 6)
        dist = Dist.block_rows(dag.region, [0, 1])
        stores = build_stores(
            group, dag, dist, np.int64, lambda i, j: None, spill_dir=str(tmp_path)
        )
        assert all(s.spilled for s in stores.values())
        assert isinstance(stores[0].values, np.memmap)
        files = glob.glob(os.path.join(tmp_path, "dpx10-place*.npy"))
        assert len(files) == 2

    def test_object_dtype_stays_in_ram(self, tmp_path):
        group = PlaceGroup(1)
        dag = DiagonalDag(3, 3)
        dist = Dist.block_rows(dag.region, [0])
        stores = build_stores(
            group, dag, dist, None, lambda i, j: None, spill_dir=str(tmp_path)
        )
        assert not stores[0].spilled
        assert glob.glob(os.path.join(tmp_path, "*.npy")) == []

    def test_roundtrip_through_disk(self, tmp_path):
        group = PlaceGroup(1)
        dag = DiagonalDag(4, 4)
        dist = Dist.block_rows(dag.region, [0])
        stores = build_stores(
            group, dag, dist, np.int64, lambda i, j: None, spill_dir=str(tmp_path)
        )
        s = stores[0]
        s.set_result(2, 3, 777)
        s.mark_finished(2, 3)
        assert s.get_result(2, 3) == 777

    def test_file_removed_on_gc(self, tmp_path):
        import gc

        group = PlaceGroup(1)
        dag = DiagonalDag(3, 3)
        dist = Dist.block_rows(dag.region, [0])
        stores = build_stores(
            group, dag, dist, np.int64, lambda i, j: None, spill_dir=str(tmp_path)
        )
        assert len(glob.glob(os.path.join(tmp_path, "*.npy"))) == 1
        group[0].pop("vertex_store")  # drop the place's reference too
        del stores
        gc.collect()
        assert glob.glob(os.path.join(tmp_path, "*.npy")) == []


class TestSpilledRuns:
    def test_lcs_answer_unchanged(self, tmp_path):
        cfg = DPX10Config(nplaces=3, spill_dir=str(tmp_path))
        app, _ = solve_lcs(X, Y, cfg)
        assert app.length == EXPECT

    def test_threaded_with_spill(self, tmp_path):
        cfg = DPX10Config(nplaces=3, engine="threaded", spill_dir=str(tmp_path))
        app, _ = solve_lcs(X, Y, cfg)
        assert app.length == EXPECT

    def test_recovery_with_spill(self, tmp_path):
        cfg = DPX10Config(nplaces=4, spill_dir=str(tmp_path))
        app, rep = solve_lcs(
            X, Y, cfg, fault_plans=[FaultPlan(2, at_fraction=0.5)]
        )
        assert app.length == EXPECT
        assert rep.recoveries == 1

    def test_object_valued_app_ignores_spill(self, tmp_path):
        # SWLAG vertices are (H, E, F) tuples -> object dtype -> RAM
        cfg = DPX10Config(nplaces=2, spill_dir=str(tmp_path))
        app, _ = solve_swlag("ACGTA", "ACTGA", cfg)
        assert app.best_score is not None
        assert glob.glob(os.path.join(tmp_path, "*.npy")) == []
