"""Tests for the user-facing API types."""

import pytest

from repro.core.api import DPX10App, Vertex, VertexId, dependency_map


class TestVertexId:
    def test_is_tuple_like(self):
        v = VertexId(2, 3)
        assert v.i == 2 and v.j == 3
        assert tuple(v) == (2, 3)
        assert v == (2, 3)

    def test_hashable(self):
        assert len({VertexId(1, 2), VertexId(1, 2), VertexId(2, 1)}) == 2


class TestVertex:
    def test_accessors(self):
        v = Vertex(1, 2, "val")
        assert (v.i, v.j) == (1, 2)
        assert v.get_result() == "val"
        assert v.id == VertexId(1, 2)

    def test_slots(self):
        v = Vertex(0, 0, 0)
        with pytest.raises(AttributeError):
            v.extra = 1


class TestDependencyMap:
    def test_maps_by_coordinate(self):
        vs = [Vertex(0, 1, "a"), Vertex(1, 0, "b")]
        assert dependency_map(vs) == {(0, 1): "a", (1, 0): "b"}

    def test_empty(self):
        assert dependency_map([]) == {}


class TestDPX10App:
    def test_compute_is_abstract(self):
        with pytest.raises(TypeError):
            DPX10App()

    def test_default_hooks(self):
        class App(DPX10App):
            def compute(self, i, j, vertices):
                return 0

        app = App()
        assert app.value_dtype is None
        assert app.init_value(0, 0) is None
        app.app_finished(None)  # default no-op
