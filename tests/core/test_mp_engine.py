"""Tests for the multiprocessing engine (places as real OS processes)."""

import pytest

from repro.apgas.failure import FaultPlan
from repro.apps.knapsack import make_knapsack_instance, solve_knapsack
from repro.apps.lcs import solve_lcs
from repro.apps.lps import solve_lps
from repro.apps.serial import knapsack_matrix, lcs_matrix, lps_matrix
from repro.core.config import DPX10Config
from repro.core.mp_engine import _topological_levels
from repro.errors import PlaceZeroDeadError
from repro.patterns import DiagonalDag, GridDag, IntervalDag

X, Y = "ABCBDABACGTACGT", "BDCABAACGGTTAC"
EXPECT = int(lcs_matrix(X, Y)[-1, -1])


class TestTopologicalLevels:
    def test_diagonal_levels_are_antidiagonals(self):
        levels = _topological_levels(DiagonalDag(3, 3))
        assert levels[0] == [(0, 0)]
        assert sorted(levels[1]) == [(0, 1), (1, 0)]
        assert len(levels) == 5  # anti-diagonals of a 3x3

    def test_grid_levels_cover_all(self):
        levels = _topological_levels(GridDag(4, 5))
        assert sum(len(lv) for lv in levels) == 20

    def test_interval_levels_respect_triangle(self):
        levels = _topological_levels(IntervalDag(4, 4))
        assert sorted(levels[0]) == [(0, 0), (1, 1), (2, 2), (3, 3)]
        assert sum(len(lv) for lv in levels) == 10

    def test_no_cell_before_its_dependency(self):
        dag = DiagonalDag(5, 5)
        levels = _topological_levels(dag)
        depth = {}
        for k, lv in enumerate(levels):
            for c in lv:
                depth[c] = k
        for i, j in dag.region:
            for d in dag.get_dependency(i, j):
                assert depth[(d.i, d.j)] < depth[(i, j)]


class TestMPExecution:
    def test_lcs_matches_oracle(self):
        app, rep = solve_lcs(X, Y, DPX10Config(nplaces=3, engine="mp"))
        assert app.length == EXPECT
        assert rep.completions == rep.active_vertices

    def test_single_place(self):
        app, rep = solve_lcs(X, Y, DPX10Config(nplaces=1, engine="mp"))
        assert app.length == EXPECT
        assert rep.network_bytes == 0  # nothing crosses a process boundary

    def test_cross_place_bytes_are_real(self):
        _, rep = solve_lcs(X, Y, DPX10Config(nplaces=3, engine="mp"))
        assert rep.network_bytes > 0
        assert rep.network_messages > 0

    def test_work_split_across_processes(self):
        _, rep = solve_lcs(X, Y, DPX10Config(nplaces=3, engine="mp"))
        assert set(rep.per_place_executed) == {0, 1, 2}
        assert sum(rep.per_place_executed.values()) == rep.completions

    def test_triangular_pattern(self):
        s = "ABCBACBDDBACB"
        app, _ = solve_lps(s, DPX10Config(nplaces=2, engine="mp"))
        assert app.length == lps_matrix(s)[0, len(s) - 1]

    def test_custom_knapsack_pattern(self):
        w, v = make_knapsack_instance(7, 18, seed=5)
        app, _ = solve_knapsack(w, v, 18, DPX10Config(nplaces=2, engine="mp"))
        assert app.best_value == knapsack_matrix(w, v, 18)[-1, -1]

    @pytest.mark.parametrize("dist", ["block_rows", "block_cols", "cyclic_cols"])
    def test_distribution_axis(self, dist):
        cfg = DPX10Config(nplaces=3, engine="mp", distribution=dist)
        app, _ = solve_lcs(X, Y, cfg)
        assert app.length == EXPECT


class TestMPFaults:
    def test_sigkill_recovery_preserves_answer(self):
        cfg = DPX10Config(nplaces=3, engine="mp")
        app, rep = solve_lcs(
            X, Y, cfg, fault_plans=[FaultPlan(2, at_fraction=0.5)]
        )
        assert app.length == EXPECT
        assert rep.recoveries == 1
        assert rep.final_alive_places == 2
        # the dead partition was recomputed
        assert rep.completions > rep.active_vertices

    def test_place_zero_kill_unrecoverable(self):
        cfg = DPX10Config(nplaces=2, engine="mp")
        with pytest.raises(PlaceZeroDeadError):
            solve_lcs(X, Y, cfg, fault_plans=[FaultPlan(0, at_fraction=0.4)])

    def test_two_sequential_faults(self):
        cfg = DPX10Config(nplaces=4, engine="mp")
        plans = [FaultPlan(3, at_fraction=0.3), FaultPlan(2, at_fraction=0.7)]
        app, rep = solve_lcs(X, Y, cfg, fault_plans=plans)
        assert app.length == EXPECT
        assert rep.recoveries == 2
        assert rep.final_alive_places == 2
