"""Unit tests for the per-vertex execution path (execute_vertex)."""

from collections import deque

import numpy as np
import pytest

from repro.apgas.failure import FaultInjector, FaultPlan
from repro.apgas.network import NetworkModel
from repro.apgas.place import PlaceGroup
from repro.core.api import DPX10App
from repro.core.cache import RemoteCache
from repro.core.config import DPX10Config
from repro.core.scheduler import make_strategy
from repro.core.vertex_store import build_stores
from repro.core.worker import ExecutionState, execute_vertex, run_inline, try_steal
from repro.errors import DeadPlaceException, PatternError
from repro.patterns.diagonal import DiagonalDag
from repro.patterns.grid import GridDag


class RecordingApp(DPX10App[int]):
    """Returns a function of (i, j) and records dependency order."""

    value_dtype = np.int64

    def __init__(self):
        self.seen_deps = {}

    def compute(self, i, j, vertices):
        self.seen_deps[(i, j)] = [(v.i, v.j) for v in vertices]
        return i * 10 + j


def make_state(dag=None, nplaces=2, cache_size=8, dist_kind="block_rows", plans=()):
    dag = dag or GridDag(4, 4)
    group = PlaceGroup(nplaces)
    cfg = DPX10Config(nplaces=nplaces, cache_size=cache_size, distribution=dist_kind)
    app = RecordingApp()
    dist = cfg.make_dist(dag.region, group.alive_ids())
    stores = build_stores(group, dag, dist, app.value_dtype, app.init_value)
    ready = {pid: deque(stores[pid].zero_indegree_unfinished()) for pid in dist.place_ids}
    caches = {pid: RemoteCache(cache_size) for pid in range(nplaces)}
    total = sum(s.active_count for s in stores.values())
    state = ExecutionState(
        app=app,
        dag=dag,
        config=cfg,
        group=group,
        network=NetworkModel(),
        strategy=make_strategy("local"),
        dist=dist,
        stores=stores,
        ready=ready,
        caches=caches,
        injector=FaultInjector(list(plans), total) if plans else None,
        total_active=total,
    )
    return state, app


class TestExecuteVertex:
    def test_seed_vertex_lifecycle(self):
        state, app = make_state()
        execute_vertex(state, (0, 0), 0)
        store = state.stores[0]
        assert store.is_finished(0, 0)
        assert store.get_result(0, 0) == 0
        assert state.completions == 1
        # anti-deps notified: (0,1) and (1,0) had indegree 1 -> now ready
        ready_all = {c for q in state.ready.values() for c in q}
        assert {(0, 1), (1, 0)} <= ready_all

    def test_dependency_order_matches_pattern(self):
        dag = DiagonalDag(3, 3)
        state, app = make_state(dag=dag, nplaces=1)
        run_inline(state)
        assert app.seen_deps[(1, 1)] == [(0, 0), (0, 1), (1, 0)]
        assert app.seen_deps[(0, 0)] == []

    def test_local_dep_fetch_free(self):
        state, app = make_state(nplaces=1)
        run_inline(state)
        assert state.network.stats.bytes == 0

    def test_remote_dep_recorded_and_cached(self):
        # block_rows over 2 places on a 4x4 grid: rows 0-1 on place 0
        state, app = make_state(nplaces=2, cache_size=8)
        run_inline(state)
        # cells (2, j) fetch (1, j) remotely exactly once each
        assert state.network.stats.by_pair[(0, 1)] == 4 * state.config.value_nbytes
        assert state.caches[1].misses == 4

    def test_cache_hit_avoids_second_fetch(self):
        dag = DiagonalDag(4, 4)
        state, app = make_state(dag=dag, nplaces=2, cache_size=16)
        run_inline(state)
        assert state.caches[1].hits > 0

    def test_cacheless_fetches_every_time(self):
        dag = DiagonalDag(4, 4)
        s_cache, _ = make_state(dag=dag, nplaces=2, cache_size=16)
        s_nocache, _ = make_state(dag=dag, nplaces=2, cache_size=0)
        run_inline(s_cache)
        run_inline(s_nocache)
        assert s_nocache.network.stats.bytes > s_cache.network.stats.bytes

    def test_remote_execution_writes_back(self):
        state, app = make_state(nplaces=2)
        # execute (0,0) [home place 0] at place 1: result write-back 0<-1
        execute_vertex(state, (0, 0), 1)
        assert state.stores[0].is_finished(0, 0)
        assert state.network.stats.by_pair[(1, 0)] == state.config.value_nbytes
        assert state.executed_by[1] == 1

    def test_fault_trigger_kills_and_raises(self):
        state, app = make_state(plans=[FaultPlan(1, after_completions=1)])
        with pytest.raises(DeadPlaceException) as exc:
            execute_vertex(state, (0, 0), 0)
        assert exc.value.place_id == 1
        assert not state.group.is_alive(1)
        # the completed vertex's result survived on place 0
        assert state.stores[0].is_finished(0, 0)

    def test_notification_to_dead_place_skipped(self):
        state, app = make_state()
        state.group.kill(1)
        # (3,0) lives on dead place 1; finishing (0,0) must not raise
        execute_vertex(state, (0, 0), 0)
        assert state.completions == 1


class TestRunInline:
    def test_completes_whole_dag(self):
        state, app = make_state()
        run_inline(state)
        assert state.completions == 16
        assert all(s.all_done() for s in state.stores.values())

    def test_deadlock_detected(self):
        state, app = make_state()
        # drain the seed: nothing will ever become ready
        state.ready[0].clear()
        with pytest.raises(PatternError, match="deadlock"):
            run_inline(state)


class TestTrySteal:
    def test_disabled_returns_none(self):
        state, _ = make_state()
        assert try_steal(state, 0) is None

    def test_steals_from_longest_queue(self):
        state, _ = make_state()
        state.config.work_stealing = True
        state.ready[0].clear()
        state.ready[1].extend([(9, 9), (8, 8)])
        stolen = try_steal(state, 0)
        assert stolen == (8, 8)  # from the tail
        assert list(state.ready[1]) == [(9, 9)]

    def test_never_steals_from_self(self):
        state, _ = make_state()
        state.config.work_stealing = True
        state.ready[1].clear()
        state.ready[0].clear()
        state.ready[0].append((1, 1))
        assert try_steal(state, 0) is None

    def test_skips_dead_places(self):
        state, _ = make_state()
        state.config.work_stealing = True
        state.ready[1].append((9, 9))
        state.group.kill(1)
        assert try_steal(state, 0) is None
