"""Tests for DPX10Config validation and dist construction."""

import pytest

from repro.core.config import DPX10Config
from repro.dist.dist import Dist
from repro.dist.region import Region2D
from repro.errors import ConfigurationError


class TestValidation:
    def test_defaults_are_paper_faithful(self):
        cfg = DPX10Config()
        assert cfg.distribution == "block_cols"  # "spliced along with column"
        assert cfg.scheduler == "local"
        assert cfg.restore_manner == "discard"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"nplaces": 0},
            {"engine": "gpu"},
            {"threads_per_place": 0},
            {"distribution": "hilbert"},
            {"scheduler": "greedy"},
            {"cache_size": -1},
            {"value_nbytes": 0},
            {"restore_manner": "replicate"},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            DPX10Config(**kwargs)


class TestMakeDist:
    REGION = Region2D.of_shape(6, 6)

    def test_named_kind(self):
        cfg = DPX10Config(distribution="block_rows")
        d = cfg.make_dist(self.REGION, [0, 1])
        assert d.kind == "block_rows"

    def test_block_cyclic_uses_dist_block(self):
        cfg = DPX10Config(distribution="block_cyclic", dist_block=(2, 3))
        d = cfg.make_dist(self.REGION, [0, 1])
        assert d.kind == "block_cyclic"
        # cells inside one 2x3 block share a place
        assert d.place_of(0, 0) == d.place_of(1, 2)

    def test_custom_dist_wins(self):
        def factory(region, alive):
            return Dist.cyclic_rows(region, alive)

        cfg = DPX10Config(distribution="block_cols", custom_dist=factory)
        d = cfg.make_dist(self.REGION, [0, 1, 2])
        assert d.kind == "cyclic_rows"

    def test_custom_dist_skips_name_check(self):
        # an unknown name is fine when custom_dist is supplied
        cfg = DPX10Config(distribution="block_cols", custom_dist=lambda r, a: Dist.block_rows(r, a))
        assert cfg.make_dist(self.REGION, [0]).kind == "block_rows"
