"""Tests for the shared-memory segment lifecycle and the shm data plane.

Covers :mod:`repro.core.shm` directly (arena create/attach/close, leak
detection, creator-only unlink) and the transport end-to-end: mp runs
must produce identical results over shm and pickled pipes, object-dtype
apps must fall back to pipes, and recovery must re-materialize a dead
place's plane regions. Everything here skips cleanly on platforms
without usable shared memory.
"""

import numpy as np
import pytest

from repro.core import shm
from repro.core.config import DPX10Config
from repro.core.shm import ShmArena, leaked_segments, shm_supported

pytestmark = pytest.mark.skipif(
    not shm_supported(), reason="no usable shared memory on this platform"
)


class TestArena:
    def test_create_returns_zeroed_view_and_name(self):
        with ShmArena() as arena:
            arr, name = arena.create((4, 5), np.int64, "t")
            assert name.startswith(shm.SEGMENT_PREFIX)
            assert arr.shape == (4, 5) and arr.dtype == np.int64
            assert not arr.any()  # fresh segments read as zero

    def test_attach_sees_creator_writes(self):
        with ShmArena() as arena:
            arr, name = arena.create((8,), np.float64, "t")
            arr[3] = 2.5
            view = arena.attach(name, (8,), np.float64)
            assert view[3] == 2.5
            view[4] = 7.0
            assert arr[4] == 7.0

    def test_bytes_mapped_counts_live_segments(self):
        arena = ShmArena()
        assert arena.bytes_mapped == 0
        arena.ndarray((10,), np.int64)
        assert arena.bytes_mapped == 80
        arena.ndarray((2, 2), np.uint8, "b")
        assert arena.bytes_mapped == 84
        arena.close()
        assert arena.bytes_mapped == 0

    def test_close_unlinks_and_is_idempotent(self):
        arena = ShmArena()
        _, name = arena.create((16,), np.int32)
        assert name in leaked_segments()
        arena.close()
        assert name not in leaked_segments()
        arena.close()  # second close is a no-op
        assert arena.closed

    def test_attachments_closed_but_not_unlinked(self):
        owner = ShmArena()
        _, name = owner.create((16,), np.int32)
        other = ShmArena()
        other.attach(name, (16,), np.int32)
        other.close()
        # the attaching arena must not have unlinked the owner's segment
        assert name in leaked_segments()
        owner.close()
        assert name not in leaked_segments()

    def test_attach_array_detach_all(self):
        with ShmArena() as arena:
            arr, name = arena.create((6,), np.int64)
            arr[:] = np.arange(6)
            view = shm.attach_array(name, (6,), np.int64)
            assert list(view) == list(range(6))
            shm.detach_all()

    def test_no_leaks_after_probe(self):
        assert shm_supported()
        assert leaked_segments() == []


def _dna(n, seed):
    from repro.util.rng import seeded_rng

    rng = seeded_rng(seed, "test-shm")
    return "".join(rng.choice(list("ACGT"), size=n))


def _solve(engine, *, shm_flag, tile_shape=None, fault_plans=(), size=48):
    from repro.apps.smith_waterman import solve_sw

    cfg = DPX10Config(
        nplaces=4, engine=engine, shm=shm_flag, tile_shape=tile_shape
    )
    app, report = solve_sw(
        _dna(size, 1), _dna(size - 3, 2), cfg, fault_plans=fault_plans
    )
    return app.best_score, report


class TestMpTransportEquivalence:
    @pytest.mark.parametrize("tile_shape", [None, (8, 8)])
    def test_shm_matches_pipes(self, tile_shape):
        pipe_score, _ = _solve("mp", shm_flag=False, tile_shape=tile_shape)
        shm_score, _ = _solve("mp", shm_flag=True, tile_shape=tile_shape)
        assert shm_score == pipe_score
        assert leaked_segments() == []

    def test_object_dtype_falls_back_to_pipes(self):
        from repro.apps.smith_waterman import solve_swlag

        cfg = DPX10Config(nplaces=3, engine="mp", shm=True)
        app, _ = solve_swlag(_dna(20, 3), _dna(18, 4), cfg)
        base_cfg = DPX10Config(nplaces=3, engine="mp", shm=False)
        base, _ = solve_swlag(_dna(20, 3), _dna(18, 4), base_cfg)
        assert app.best_score == base.best_score
        assert leaked_segments() == []

    def test_recovery_rematerializes_dead_plane(self):
        from repro.apgas.failure import FaultPlan

        base_score, _ = _solve("mp", shm_flag=False)
        score, report = _solve(
            "mp",
            shm_flag=True,
            tile_shape=(8, 8),
            fault_plans=[FaultPlan(2, after_completions=400)],
        )
        assert score == base_score
        assert report.recoveries >= 1
        assert leaked_segments() == []


class TestInProcessShmStores:
    @pytest.mark.parametrize("engine", ["inline", "threaded"])
    def test_results_and_cleanup(self, engine):
        base_score, _ = _solve(engine, shm_flag=False)
        score, report = _solve(engine, shm_flag=True, tile_shape=(8, 8))
        assert score == base_score
        assert leaked_segments() == []

    def test_bytes_mapped_gauge_survives_close(self):
        from repro.apps.smith_waterman import solve_sw

        cfg = DPX10Config(nplaces=3, engine="inline", shm=True, metrics=True)
        _, report = solve_sw(_dna(30, 5), _dna(28, 6), cfg)
        fam = report.metrics["dpx10_shm_bytes_mapped"]
        assert fam["values"] and fam["values"][0][1] > 0

    def test_post_run_result_reads_survive_arena_close(self):
        from repro.apps.smith_waterman import SWApp
        from repro.core.runtime import DPX10Runtime
        from repro.patterns.diagonal import DiagonalDag

        a, b = _dna(24, 7), _dna(20, 8)
        app = SWApp(a, b)
        dag = DiagonalDag(len(a) + 1, len(b) + 1)
        DPX10Runtime(
            app, dag, DPX10Config(nplaces=3, engine="inline", shm=True)
        ).run()
        # the store views were copied to heap before the arena unlinked
        assert dag.get_vertex(len(a), len(b)).get_result() is not None
        assert leaked_segments() == []
