"""Tests for the periodic-snapshot FT mode (the baseline of section VI-D).

DPX10's argument: snapshots copy large intermediate state repeatedly and
roll back healthy places' progress; the new recovery keeps surviving
results in place. Both modes must produce the oracle answer.
"""

import pytest

from repro.apgas.failure import FaultPlan
from repro.apps.lcs import solve_lcs
from repro.apps.serial import lcs_matrix
from repro.core.config import DPX10Config
from repro.errors import ConfigurationError

X, Y = "ACGTACGGTACGATCGAT", "TACGATCGGGACGTGG"
EXPECT = int(lcs_matrix(X, Y)[-1, -1])
PLANS = [FaultPlan(2, at_fraction=0.6)]


class TestConfig:
    def test_bad_values_rejected(self):
        with pytest.raises(ConfigurationError):
            DPX10Config(ft_mode="raid")
        with pytest.raises(ConfigurationError):
            DPX10Config(snapshot_interval=-1)

    def test_default_is_paper_mechanism(self):
        assert DPX10Config().ft_mode == "recovery"


class TestSnapshotMode:
    @pytest.mark.parametrize("engine", ["inline", "threaded"])
    def test_answer_preserved(self, engine):
        cfg = DPX10Config(
            nplaces=4, engine=engine, ft_mode="snapshot", snapshot_interval=50
        )
        app, rep = solve_lcs(X, Y, cfg, fault_plans=PLANS)
        assert app.length == EXPECT
        assert rep.recoveries == 1
        assert rep.recovery_stats[0].mechanism == "snapshot"

    def test_snapshots_are_taken_periodically(self):
        cfg = DPX10Config(nplaces=3, ft_mode="snapshot", snapshot_interval=40)
        _, rep = solve_lcs(X, Y, cfg)
        # initial + one per 40 completions
        vertices = (len(X) + 1) * (len(Y) + 1)
        assert rep.snapshots_taken == 1 + vertices // 40
        assert rep.snapshot_cells_copied > 0

    def test_no_snapshots_in_recovery_mode(self):
        _, rep = solve_lcs(X, Y, DPX10Config(nplaces=3))
        assert rep.snapshots_taken == 0
        assert rep.snapshot_cells_copied == 0

    def test_rollback_loses_progress_since_snapshot(self):
        # a sparse snapshot interval forces a big rollback: more vertices
        # must be recomputed than under the paper's recovery
        common = dict(nplaces=4)
        cfg_snap = DPX10Config(
            ft_mode="snapshot", snapshot_interval=200, **common
        )
        cfg_rec = DPX10Config(ft_mode="recovery", **common)
        _, rep_snap = solve_lcs(X, Y, cfg_snap, fault_plans=PLANS)
        _, rep_rec = solve_lcs(X, Y, cfg_rec, fault_plans=PLANS)
        assert rep_snap.recomputed > rep_rec.recomputed

    def test_interval_zero_rolls_back_to_start(self):
        cfg = DPX10Config(nplaces=4, ft_mode="snapshot", snapshot_interval=0)
        app, rep = solve_lcs(X, Y, cfg, fault_plans=PLANS)
        assert app.length == EXPECT
        stats = rep.recovery_stats[0]
        assert stats.restored_from_snapshot == 0  # only the empty checkpoint
        # every vertex completed before the fault is recomputed
        assert rep.recomputed >= stats.lost_on_dead > 0

    def test_denser_snapshots_less_recompute_more_copying(self):
        results = {}
        for interval in (30, 150):
            cfg = DPX10Config(
                nplaces=4, ft_mode="snapshot", snapshot_interval=interval
            )
            _, rep = solve_lcs(X, Y, cfg, fault_plans=PLANS)
            results[interval] = rep
        assert results[30].recomputed <= results[150].recomputed
        assert results[30].snapshot_cells_copied > results[150].snapshot_cells_copied

    def test_place_zero_still_fatal(self):
        from repro.errors import PlaceZeroDeadError

        cfg = DPX10Config(nplaces=3, ft_mode="snapshot", snapshot_interval=20)
        with pytest.raises(PlaceZeroDeadError):
            solve_lcs(X, Y, cfg, fault_plans=[FaultPlan(0, at_fraction=0.5)])
