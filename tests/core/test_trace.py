"""Tests for execution tracing."""

import threading

import pytest

from repro.apps.lcs import solve_lcs
from repro.core.config import DPX10Config
from repro.core.trace import ExecutionTrace, Span, TraceEvent

X, Y = "ABCBDAB", "BDCABA"


class TestExecutionTrace:
    def test_empty_trace(self):
        t = ExecutionTrace()
        assert len(t) == 0
        assert t.span == 0.0
        assert t.utilization() == {}
        assert t.render_gantt() == "(empty trace)"
        assert t.spans == []
        assert t.phase_totals() == {}
        assert t.completion_profile(buckets=4) == [0, 0, 0, 0]
        assert t.executed_per_place() == {}

    def test_record_and_span(self):
        t = ExecutionTrace()
        t.record(TraceEvent(0, 0, 0, 0, 1.0, 2.0))
        t.record(TraceEvent(0, 1, 0, 1, 2.0, 4.0))
        assert len(t) == 2
        assert t.span == pytest.approx(3.0)

    def test_utilization(self):
        t = ExecutionTrace()
        t.record(TraceEvent(0, 0, 0, 0, 0.0, 3.0))
        t.record(TraceEvent(0, 1, 0, 1, 0.0, 1.5))
        util = t.utilization()
        assert util[0] == pytest.approx(1.0)
        assert util[1] == pytest.approx(0.5)

    def test_completion_profile_buckets(self):
        t = ExecutionTrace()
        for k in range(10):
            t.record(TraceEvent(0, k, 0, 0, k * 1.0, k + 0.5))
        profile = t.completion_profile(buckets=5)
        assert len(profile) == 5
        assert sum(profile) == 10

    def test_executed_per_place(self):
        t = ExecutionTrace()
        t.record(TraceEvent(0, 0, 0, 1, 0, 1))
        t.record(TraceEvent(0, 1, 0, 1, 0, 1))
        t.record(TraceEvent(0, 2, 0, 0, 0, 1))
        assert t.executed_per_place() == {0: 1, 1: 2}

    def test_gantt_contains_place_rows(self):
        t = ExecutionTrace()
        t.record(TraceEvent(0, 0, 0, 0, 0.0, 1.0))
        t.record(TraceEvent(0, 1, 0, 2, 0.5, 1.0))
        out = t.render_gantt(width=20)
        assert "place   0" in out and "place   2" in out
        assert "#" in out

    def test_gantt_bucket_boundary_no_bleed(self):
        # an event ending exactly on a column boundary must not paint the
        # next column: with width=10 over span [0, 1], [0, 0.5) is columns
        # 0-4 and column 5 belongs to the second event only
        t = ExecutionTrace()
        t.record(TraceEvent(0, 0, 0, 0, 0.0, 0.5))
        t.record(TraceEvent(0, 1, 0, 1, 0.5, 1.0))
        rows = t.render_gantt(width=10).splitlines()[1:]
        row0 = rows[0].split("|")[1]
        row1 = rows[1].split("|")[1]
        assert row0 == "#####     "
        assert row1 == "     #####"

    def test_gantt_zero_duration_event_paints_one_column(self):
        t = ExecutionTrace()
        t.record(TraceEvent(0, 0, 0, 0, 0.0, 1.0))
        t.record(TraceEvent(0, 1, 0, 1, 0.5, 0.5))
        rows = t.render_gantt(width=10).splitlines()[1:]
        assert rows[1].split("|")[1] == "     #    "

    def test_concurrent_record_from_worker_threads(self):
        t = ExecutionTrace()
        per_thread, nthreads = 250, 8

        def work(place):
            for k in range(per_thread):
                t.record(TraceEvent(place, k, place, place, 0.0, 1.0))
                if k % 50 == 0:
                    t.record_span(Span(f"phase-{place}", 0.0, 0.1, place=place))

        threads = [threading.Thread(target=work, args=(p,)) for p in range(nthreads)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        assert len(t) == per_thread * nthreads
        assert len(t.spans) == nthreads * (per_thread // 50)
        assert sum(t.executed_per_place().values()) == per_thread * nthreads


class TestSpans:
    def test_phase_records_span(self):
        t = ExecutionTrace()
        with t.phase("partition"):
            pass
        with t.phase("halo fetch", category="halo", place=2):
            pass
        spans = t.spans
        assert [s.name for s in spans] == ["partition", "halo fetch"]
        assert spans[0].category == "phase" and spans[0].place == -1
        assert spans[1].category == "halo" and spans[1].place == 2
        assert all(s.end >= s.start for s in spans)
        # spans stay out of the event list: len() keeps meaning events
        assert len(t) == 0

    def test_phase_records_span_on_exception(self):
        t = ExecutionTrace()
        with pytest.raises(RuntimeError):
            with t.phase("execute"):
                raise RuntimeError("boom")
        assert [s.name for s in t.spans] == ["execute"]

    def test_phase_totals_sums_by_name(self):
        t = ExecutionTrace()
        t.record_span(Span("execute", 0.0, 2.0))
        t.record_span(Span("execute", 3.0, 4.0))
        t.record_span(Span("partition", 0.0, 0.5))
        totals = t.phase_totals()
        assert totals["execute"] == pytest.approx(3.0)
        assert totals["partition"] == pytest.approx(0.5)

    def test_runtime_records_phase_spans(self):
        cfg = DPX10Config(nplaces=2, trace=True)
        _, rep = solve_lcs(X, Y, cfg)
        names = {s.name for s in rep.trace.spans}
        assert {"partition", "schedule", "execute"} <= names


class TestRuntimeIntegration:
    def test_trace_off_by_default(self):
        _, rep = solve_lcs(X, Y, DPX10Config(nplaces=2))
        assert rep.trace is None

    @pytest.mark.parametrize("engine", ["inline", "threaded"])
    def test_trace_covers_every_vertex(self, engine):
        cfg = DPX10Config(nplaces=2, engine=engine, trace=True)
        _, rep = solve_lcs(X, Y, cfg)
        assert rep.trace is not None
        assert len(rep.trace) == rep.completions
        coords = {(e.i, e.j) for e in rep.trace.events}
        assert len(coords) == rep.active_vertices

    def test_trace_places_match_report(self):
        cfg = DPX10Config(nplaces=3, trace=True)
        _, rep = solve_lcs(X, Y, cfg)
        assert rep.trace.executed_per_place() == rep.per_place_executed

    def test_utilization_bounded(self):
        cfg = DPX10Config(nplaces=2, trace=True)
        _, rep = solve_lcs(X, Y, cfg)
        for frac in rep.trace.utilization().values():
            assert 0.0 < frac <= 1.0
