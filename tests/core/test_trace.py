"""Tests for execution tracing."""

import pytest

from repro.apps.lcs import solve_lcs
from repro.core.config import DPX10Config
from repro.core.trace import ExecutionTrace, TraceEvent

X, Y = "ABCBDAB", "BDCABA"


class TestExecutionTrace:
    def test_empty_trace(self):
        t = ExecutionTrace()
        assert len(t) == 0
        assert t.span == 0.0
        assert t.utilization() == {}
        assert t.render_gantt() == "(empty trace)"

    def test_record_and_span(self):
        t = ExecutionTrace()
        t.record(TraceEvent(0, 0, 0, 0, 1.0, 2.0))
        t.record(TraceEvent(0, 1, 0, 1, 2.0, 4.0))
        assert len(t) == 2
        assert t.span == pytest.approx(3.0)

    def test_utilization(self):
        t = ExecutionTrace()
        t.record(TraceEvent(0, 0, 0, 0, 0.0, 3.0))
        t.record(TraceEvent(0, 1, 0, 1, 0.0, 1.5))
        util = t.utilization()
        assert util[0] == pytest.approx(1.0)
        assert util[1] == pytest.approx(0.5)

    def test_completion_profile_buckets(self):
        t = ExecutionTrace()
        for k in range(10):
            t.record(TraceEvent(0, k, 0, 0, k * 1.0, k + 0.5))
        profile = t.completion_profile(buckets=5)
        assert len(profile) == 5
        assert sum(profile) == 10

    def test_executed_per_place(self):
        t = ExecutionTrace()
        t.record(TraceEvent(0, 0, 0, 1, 0, 1))
        t.record(TraceEvent(0, 1, 0, 1, 0, 1))
        t.record(TraceEvent(0, 2, 0, 0, 0, 1))
        assert t.executed_per_place() == {0: 1, 1: 2}

    def test_gantt_contains_place_rows(self):
        t = ExecutionTrace()
        t.record(TraceEvent(0, 0, 0, 0, 0.0, 1.0))
        t.record(TraceEvent(0, 1, 0, 2, 0.5, 1.0))
        out = t.render_gantt(width=20)
        assert "place   0" in out and "place   2" in out
        assert "#" in out


class TestRuntimeIntegration:
    def test_trace_off_by_default(self):
        _, rep = solve_lcs(X, Y, DPX10Config(nplaces=2))
        assert rep.trace is None

    @pytest.mark.parametrize("engine", ["inline", "threaded"])
    def test_trace_covers_every_vertex(self, engine):
        cfg = DPX10Config(nplaces=2, engine=engine, trace=True)
        _, rep = solve_lcs(X, Y, cfg)
        assert rep.trace is not None
        assert len(rep.trace) == rep.completions
        coords = {(e.i, e.j) for e in rep.trace.events}
        assert len(coords) == rep.active_vertices

    def test_trace_places_match_report(self):
        cfg = DPX10Config(nplaces=3, trace=True)
        _, rep = solve_lcs(X, Y, cfg)
        assert rep.trace.executed_per_place() == rep.per_place_executed

    def test_utilization_bounded(self):
        cfg = DPX10Config(nplaces=2, trace=True)
        _, rep = solve_lcs(X, Y, cfg)
        for frac in rep.trace.utilization().values():
            assert 0.0 < frac <= 1.0
