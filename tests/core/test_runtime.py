"""Tests for DPX10Runtime: execution flow, reports, error paths."""

import numpy as np
import pytest

from repro.apgas.failure import FaultPlan
from repro.core.api import DPX10App, dependency_map
from repro.core.config import DPX10Config
from repro.core.runtime import DPX10Runtime
from repro.errors import PatternError, PlaceZeroDeadError
from repro.patterns.grid import GridDag


class SumApp(DPX10App[int]):
    """D[i,j] = D[i-1,j] + D[i,j-1], seeds 1 — Pascal-like counts."""

    value_dtype = np.int64

    def compute(self, i, j, vertices):
        if i == 0 and j == 0:
            return 1
        dep = dependency_map(vertices)
        return dep.get((i - 1, j), 0) + dep.get((i, j - 1), 0)

    def app_finished(self, dag):
        self.corner = int(dag.get_vertex(dag.height - 1, dag.width - 1).get_result())


def pascal_corner(h, w):
    import math

    return math.comb(h + w - 2, h - 1)


class TestBasicExecution:
    @pytest.mark.parametrize("engine", ["inline", "threaded"])
    def test_computes_correct_values(self, engine):
        app = SumApp()
        dag = GridDag(6, 7)
        report = DPX10Runtime(app, dag, DPX10Config(nplaces=3, engine=engine)).run()
        assert app.corner == pascal_corner(6, 7)
        assert report.completions == 42
        assert report.active_vertices == 42
        assert report.recoveries == 0

    def test_single_place(self):
        app = SumApp()
        DPX10Runtime(app, GridDag(4, 4), DPX10Config(nplaces=1)).run()
        assert app.corner == pascal_corner(4, 4)

    def test_single_vertex_dag(self):
        app = SumApp()
        DPX10Runtime(app, GridDag(1, 1), DPX10Config(nplaces=2)).run()
        assert app.corner == 1

    def test_more_places_than_columns(self):
        app = SumApp()
        DPX10Runtime(app, GridDag(3, 2), DPX10Config(nplaces=5)).run()
        assert app.corner == pascal_corner(3, 2)

    def test_dag_bound_after_run(self):
        dag = GridDag(3, 3)
        DPX10Runtime(SumApp(), dag).run()
        assert dag.get_vertex(0, 0).get_result() == 1

    def test_report_property_accessible(self):
        rt = DPX10Runtime(SumApp(), GridDag(3, 3))
        assert rt.report is None
        rep = rt.run()
        assert rt.report is rep


class TestReportAccounting:
    def test_network_traffic_zero_on_single_place(self):
        rep = DPX10Runtime(SumApp(), GridDag(5, 5), DPX10Config(nplaces=1)).run()
        assert rep.network_bytes == 0

    def test_network_traffic_positive_across_places(self):
        rep = DPX10Runtime(
            SumApp(), GridDag(5, 5), DPX10Config(nplaces=3, cache_size=0)
        ).run()
        assert rep.network_bytes > 0
        assert rep.network_messages > 0

    def test_cache_reduces_traffic(self):
        # the diagonal stencil reuses each boundary-row vertex for two
        # consumers in the next row band, so a warm cache saves a fetch
        from repro.patterns.diagonal import DiagonalDag

        class DiagSumApp(SumApp):
            def compute(self, i, j, vertices):
                dep = dependency_map(vertices)
                if i == 0 and j == 0:
                    return 1
                return (
                    dep.get((i - 1, j), 0)
                    + dep.get((i, j - 1), 0)
                    + dep.get((i - 1, j - 1), 0)
                )

        cfg0 = DPX10Config(nplaces=3, cache_size=0, distribution="block_rows")
        cfg1 = DPX10Config(nplaces=3, cache_size=64, distribution="block_rows")
        rep0 = DPX10Runtime(DiagSumApp(), DiagonalDag(8, 8), cfg0).run()
        rep1 = DPX10Runtime(DiagSumApp(), DiagonalDag(8, 8), cfg1).run()
        assert rep1.cache_hits > 0
        assert rep1.network_bytes < rep0.network_bytes

    def test_recomputed_zero_without_faults(self):
        rep = DPX10Runtime(SumApp(), GridDag(4, 4)).run()
        assert rep.recomputed == 0

    def test_wall_time_positive(self):
        rep = DPX10Runtime(SumApp(), GridDag(4, 4)).run()
        assert rep.wall_time > 0

    def test_cache_hit_rate_bounds(self):
        rep = DPX10Runtime(SumApp(), GridDag(6, 6), DPX10Config(nplaces=2)).run()
        assert 0.0 <= rep.cache_hit_rate <= 1.0


class TestFaults:
    @pytest.mark.parametrize("engine", ["inline", "threaded"])
    def test_recovery_preserves_answer(self, engine):
        app = SumApp()
        cfg = DPX10Config(nplaces=3, engine=engine)
        rep = DPX10Runtime(
            app,
            GridDag(8, 8),
            cfg,
            fault_plans=[FaultPlan(1, at_fraction=0.5)],
        ).run()
        assert app.corner == pascal_corner(8, 8)
        assert rep.recoveries == 1
        assert rep.final_alive_places == 2
        assert rep.completions >= rep.active_vertices

    def test_place_zero_fault_unrecoverable(self):
        with pytest.raises(PlaceZeroDeadError):
            DPX10Runtime(
                SumApp(),
                GridDag(6, 6),
                DPX10Config(nplaces=2),
                fault_plans=[FaultPlan(0, at_fraction=0.2)],
            ).run()

    def test_two_sequential_faults(self):
        app = SumApp()
        rep = DPX10Runtime(
            app,
            GridDag(8, 8),
            DPX10Config(nplaces=4),
            fault_plans=[
                FaultPlan(2, at_fraction=0.25),
                FaultPlan(3, at_fraction=0.75),
            ],
        ).run()
        assert app.corner == pascal_corner(8, 8)
        assert rep.recoveries == 2
        assert rep.final_alive_places == 2

    def test_restore_copy_transfers_results(self):
        cfg_discard = DPX10Config(nplaces=3, restore_manner="discard")
        cfg_copy = DPX10Config(nplaces=3, restore_manner="copy")
        plans = [FaultPlan(2, at_fraction=0.6)]
        app1 = SumApp()
        rep_d = DPX10Runtime(app1, GridDag(9, 9), cfg_discard, plans).run()
        app2 = SumApp()
        rep_c = DPX10Runtime(app2, GridDag(9, 9), cfg_copy, plans).run()
        assert app1.corner == app2.corner == pascal_corner(9, 9)
        # copying preserved vertices means fewer recomputations
        assert rep_c.recomputed <= rep_d.recomputed
        stats_c = rep_c.recovery_stats[0]
        stats_d = rep_d.recovery_stats[0]
        assert stats_c.copied > 0 and stats_c.discarded == 0
        assert stats_d.discarded > 0 and stats_d.copied == 0


class TestValidateFlag:
    def test_broken_pattern_caught_when_enabled(self):
        class BrokenDag(GridDag):
            def get_anti_dependency(self, i, j):
                return []  # never notifies anyone

        with pytest.raises(PatternError):
            DPX10Runtime(
                SumApp(), BrokenDag(3, 3), DPX10Config(validate=True)
            ).run()

    def test_broken_pattern_deadlocks_inline_without_validate(self):
        class BrokenDag(GridDag):
            def get_anti_dependency(self, i, j):
                return []

        with pytest.raises(PatternError, match="deadlock"):
            DPX10Runtime(SumApp(), BrokenDag(3, 3), DPX10Config()).run()


class TestAppFinishedContract:
    def test_app_finished_sees_all_results(self):
        seen = {}

        class Collector(SumApp):
            def app_finished(self, dag):
                for i in range(dag.height):
                    for j in range(dag.width):
                        seen[(i, j)] = int(dag.get_vertex(i, j).get_result())

        DPX10Runtime(Collector(), GridDag(3, 3), DPX10Config(nplaces=2)).run()
        assert len(seen) == 9
        assert seen[(0, 0)] == 1 and seen[(2, 2)] == pascal_corner(3, 3)
