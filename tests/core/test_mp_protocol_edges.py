"""Edge cases of the mp engine's protocol and level computation."""

import numpy as np
import pytest

from repro.core.api import DPX10App, VertexId
from repro.core.config import DPX10Config
from repro.core.dag import Dag
from repro.core.mp_engine import _topological_levels, run_mp
from repro.core.runtime import DPX10Runtime
from repro.errors import DPX10Error
from repro.patterns import GridDag, RowChainDag


class AddApp(DPX10App[int]):
    value_dtype = np.int64

    def compute(self, i, j, vertices):
        return sum(v.get_result() for v in vertices) + 1


class TupleApp(DPX10App):
    """Object-valued app; must be module-level to pickle across the pipe."""

    value_dtype = None

    def compute(self, i, j, vertices):
        inner = max((v.get_result()[0] for v in vertices), default=0)
        return (inner + 1, f"cell{i}{j}")


class TestLevels:
    def test_row_chain_levels_are_columns(self):
        levels = _topological_levels(RowChainDag(3, 4))
        assert sorted(levels[0]) == [(0, 0), (1, 0), (2, 0)]
        assert len(levels) == 4

    def test_cyclic_pattern_detected(self):
        class Cyclic(Dag):
            def get_dependency(self, i, j):
                return [VertexId(i, 1 - j)]

            def get_anti_dependency(self, i, j):
                return [VertexId(i, 1 - j)]

        with pytest.raises(DPX10Error, match="cyclic"):
            _topological_levels(Cyclic(1, 2))

    def test_single_cell(self):
        levels = _topological_levels(GridDag(1, 1))
        assert levels == [[(0, 0)]]


class TestRunMP:
    def test_direct_api(self):
        app = AddApp()
        dag = GridDag(4, 4)
        results, stats = run_mp(app, dag, DPX10Config(nplaces=2, engine="mp"))
        assert len(results) == 16
        assert stats.completions == 16
        assert stats.levels == 7  # anti-diagonals of 4x4
        assert stats.final_alive_places == 2

    def test_more_places_than_columns(self):
        app = AddApp()
        dag = GridDag(3, 2)
        results, stats = run_mp(app, dag, DPX10Config(nplaces=5, engine="mp"))
        assert len(results) == 6

    def test_object_values_cross_processes(self):
        app = TupleApp()
        dag = GridDag(3, 3)
        cfg = DPX10Config(nplaces=2, engine="mp")
        report = DPX10Runtime(app, dag, cfg).run()
        assert dag.get_vertex(2, 2).get_result() == (5, "cell22")
        assert report.completions == 9
