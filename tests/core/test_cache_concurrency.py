"""Concurrency stress for the FIFO remote-vertex cache."""

import threading

from repro.core.cache import RemoteCache


class TestCacheUnderThreads:
    def test_capacity_never_exceeded_under_contention(self):
        cache = RemoteCache(32)
        errors = []

        def churn(seed):
            try:
                for k in range(2000):
                    key = (seed, k % 100)
                    cache.put(key, k)
                    hit, value = cache.get(key)
                    if hit:
                        assert value is not None
                    assert len(cache) <= 32
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=churn, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 32
        assert cache.hits + cache.misses == 8000

    def test_clear_during_churn_is_safe(self):
        cache = RemoteCache(16)
        stop = threading.Event()
        errors = []

        def churn():
            k = 0
            try:
                while not stop.is_set():
                    cache.put(("k", k % 50), k)
                    cache.get(("k", (k + 1) % 50))
                    k += 1
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def clearer():
            try:
                for _ in range(50):
                    cache.clear()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        t1 = threading.Thread(target=churn)
        t2 = threading.Thread(target=clearer)
        t1.start()
        t2.start()
        t2.join()
        stop.set()
        t1.join()
        assert not errors
        assert len(cache) <= 16
