"""Tests for report serialization, sim profiles, and the stencil renderer."""

import json


from repro.apps.lcs import solve_lcs
from repro.core.config import DPX10Config
from repro.patterns import DiagonalDag, GridDag, IntervalDag
from repro.sim import ClusterSpec, CostModel, simulate


class TestReportToDict:
    def test_json_roundtrip(self):
        _, rep = solve_lcs("ABCBDAB", "BDCABA", DPX10Config(nplaces=3))
        payload = json.dumps(rep.to_dict())
        back = json.loads(payload)
        assert back["completions"] == rep.completions
        assert back["recoveries"] == 0
        assert back["per_place_executed"]["0"] > 0

    def test_contains_all_headline_metrics(self):
        _, rep = solve_lcs("ABC", "ABD", DPX10Config(nplaces=2))
        d = rep.to_dict()
        for key in (
            "wall_time",
            "completions",
            "active_vertices",
            "network_bytes",
            "cache_hit_rate",
            "final_alive_places",
        ):
            assert key in d


class TestSimCompletionProfile:
    def test_profile_sums_to_tiles(self):
        r = simulate(
            DiagonalDag(600, 600),
            ClusterSpec.tianhe1a(2),
            CostModel.for_app("sw"),
            tile_size=100,
        )
        profile = r.completion_profile(buckets=10)
        assert len(profile) == 10
        assert sum(profile) == r.ntiles

    def test_wavefront_shape(self):
        # the diagonal wavefront starts narrow: the first bucket should not
        # dominate
        r = simulate(
            DiagonalDag(1200, 1200),
            ClusterSpec.tianhe1a(4),
            CostModel.for_app("sw"),
            tile_size=100,
        )
        profile = r.completion_profile(buckets=8)
        assert profile[0] < max(profile)

    def test_empty_edge(self):
        r = simulate(
            GridDag(10, 10), ClusterSpec.tianhe1a(1), CostModel.for_app("sw"),
            tile_size=100,
        )
        assert sum(r.completion_profile(5)) == 1


class TestStencilRenderer:
    def test_marks_cell_and_deps(self):
        out = DiagonalDag(9, 9).render_stencil()
        assert out.count("@") == 1
        assert out.count("o") == 3

    def test_explicit_cell(self):
        out = GridDag(9, 9).render_stencil(0, 0)
        assert out.count("@") == 1
        assert out.count("o") == 0  # the corner seed has no deps

    def test_shaped_pattern_shows_blanks(self):
        out = IntervalDag(9, 9).render_stencil()
        assert "@" in out and "o" in out
        # the inactive lower triangle leaves blanks
        assert any(line.rstrip() != line.rstrip(".") or "  " in line
                   for line in out.splitlines())
