"""Tests for the tile-granular execution engine (repro.core.tiling).

The load-bearing property: for every built-in pattern and any tile shape
the coarsening accepts, tiled execution produces exactly the matrix the
per-vertex path produces — including under an injected place failure —
and ``tile_shape=(1, 1)`` routes through the legacy path untouched.
"""

import numpy as np
import pytest

import repro.patterns  # noqa: F401 - registers the built-in patterns
from repro.apgas.failure import FaultPlan
from repro.apps.lps import solve_lps
from repro.apps.smith_waterman import solve_sw
from repro.core.api import DPX10App
from repro.core.config import DPX10Config
from repro.core.runtime import DPX10Runtime
from repro.core.tiling import TileGrid, coarsen_offsets
from repro.errors import PatternError
from repro.patterns.antidiag_band import AntiDiagonalDag
from repro.patterns.base import PATTERNS, get_pattern
from repro.patterns.diagonal import DiagonalDag
from repro.patterns.full_row import FullRowDag
from repro.patterns.grid import GridDag
from repro.patterns.interval import IntervalDag
from repro.util.rng import seeded_rng


class MixApp(DPX10App[int]):
    """Deterministic int app whose value depends on every dependency."""

    value_dtype = np.int64

    def compute(self, i, j, vertices):
        acc = i * 31 + j * 7
        for v in vertices:
            acc = (acc * 13 + int(v.get_result())) % 100003
        return acc


def make_dag(name, h=13, w=13):
    cls = get_pattern(name)
    return cls(h, w, 4) if name == "banded" else cls(h, w)


def run_matrix(name, tile_shape, engine="inline", fault_plans=()):
    dag = make_dag(name)
    cfg = DPX10Config(engine=engine, tile_shape=tile_shape)
    report = DPX10Runtime(
        MixApp(), dag, cfg, fault_plans=list(fault_plans)
    ).run()
    return dag.to_array(fill=-1, dtype=np.int64), report


# -- coarsening ----------------------------------------------------------------------
class TestCoarsen:
    def test_offset_clipping_rule(self):
        # (-1, -1) with 3x3 tiles stays within the neighbouring tiles
        assert coarsen_offsets(((-1, -1),), 3, 3) == (
            (-1, -1),
            (-1, 0),
            (0, -1),
        )
        # an offset that is a multiple of the tile edge maps to one tile
        assert coarsen_offsets(((-3, 0),), 3, 3) == ((-1, 0),)
        # a long reach spans several tile offsets
        assert coarsen_offsets(((-4, 0),), 3, 3) == ((-2, 0), (-1, 0))

    def test_tile_grid_geometry(self):
        g = TileGrid(10, 7, 4, 3)
        assert (g.nti, g.ntj) == (3, 3)
        assert g.tile_of(9, 6) == (2, 2)
        assert g.bounds(2, 2) == (8, 10, 6, 7)  # clipped at the edge

    def test_diagonal_coarsens_to_diagonal(self):
        tiled = DiagonalDag(6, 6).coarsen(3, 3)
        assert (tiled.height, tiled.width) == (2, 2)
        assert sorted((d.i, d.j) for d in tiled.get_dependency(1, 1)) == [
            (0, 0),
            (0, 1),
            (1, 0),
        ]

    def test_degenerate_one_by_one(self):
        base = DiagonalDag(5, 5)
        tiled = base.coarsen(1, 1)
        assert (tiled.height, tiled.width) == (5, 5)
        assert sorted((d.i, d.j) for d in tiled.get_dependency(2, 2)) == [
            (1, 1),
            (1, 2),
            (2, 1),
        ]

    def test_cyclic_coarsening_rejected(self):
        # {(-2, 1), (1, -2)} is acyclic per cell (ranking vector (-1, -1))
        # but its 3x3 coarsening contains both (0, 1) and (0, -1): a
        # genuine tile-level cycle the verifier must reject
        from repro.patterns.base import StencilDag

        class ZZ(StencilDag):
            offsets = ((-2, 1), (1, -2))

        with pytest.raises(PatternError, match="cyclic"):
            ZZ(9, 9).coarsen(3, 3)
        # the per-cell DAG itself is fine
        ZZ(9, 9).validate()

    def test_antidiag_needs_full_width_tiles(self):
        with pytest.raises(PatternError, match="cyclic"):
            AntiDiagonalDag(9, 9).coarsen(3, 3)
        # row strips prune the (0, +-1) tile offsets off the grid
        tiled = AntiDiagonalDag(9, 9).coarsen(3, 9)
        assert (tiled.height, tiled.width) == (3, 1)

    def test_full_row_enumerated_coarsening(self):
        # full_row depends on the whole previous row, so narrow tiles
        # create mutual same-row tile deps (rejected); full-width strips
        # coarsen to a clean chain
        with pytest.raises(PatternError, match="cyclic"):
            FullRowDag(6, 6).coarsen(3, 3)
        tiled = FullRowDag(6, 6).coarsen(2, 6)
        assert [
            sorted((d.i, d.j) for d in tiled.get_dependency(ti, 0))
            for ti in range(3)
        ] == [[], [(0, 0)], [(1, 0)]]

    def test_halo_is_exact_not_padded_frame(self):
        # grid pattern: the (-1, -1) corner cell is NOT a dependency of
        # any tile cell and must not be fetched (its tile may be running)
        tiled = GridDag(9, 9).coarsen(3, 3)
        rows, cols = tiled.halo_of(1, 1)
        halo = set(zip(rows.tolist(), cols.tolist()))
        assert halo == {(2, 3), (2, 4), (2, 5), (3, 2), (4, 2), (5, 2)}
        assert (2, 2) not in halo  # the corner

    def test_halo_skips_inactive_cells(self):
        tiled = IntervalDag(9, 9).coarsen(3, 3)
        rows, cols = tiled.halo_of(0, 1)
        for i, j in zip(rows.tolist(), cols.tolist()):
            assert i <= j

    def test_cells_in_wavefront_order(self):
        for name in sorted(PATTERNS):
            try:
                tiled = make_dag(name, 9, 9).coarsen(4, 4)
            except PatternError:
                # e.g. antidiag / full_row need full-width strips
                tiled = make_dag(name, 9, 9).coarsen(4, 9)
            base = tiled.base
            for ti in range(tiled.height):
                for tj in range(tiled.width):
                    if not tiled.is_active(ti, tj):
                        continue
                    rows, cols = tiled.cells_of(ti, tj)
                    seen = set()
                    for i, j in zip(rows.tolist(), cols.tolist()):
                        for d in base.get_dependency(i, j):
                            key = (d.i, d.j)
                            in_tile = (key[0], key[1]) in set(
                                zip(rows.tolist(), cols.tolist())
                            )
                            if in_tile:
                                assert key in seen, (name, (ti, tj), (i, j))
                        seen.add((i, j))

    def test_tiled_dag_validates(self):
        # the coarsened DAG is itself a well-formed Dag
        DiagonalDag(20, 20).coarsen(4, 4).validate()
        IntervalDag(20, 20).coarsen(4, 4).validate()

    def test_bad_tile_shape_rejected(self):
        with pytest.raises(Exception):
            DiagonalDag(6, 6).coarsen(0, 3)


# -- equivalence properties ------------------------------------------------------------
SHAPE_POOL = [(2, 2), (3, 5), (4, 4), (5, 3), (7, 7), (13, 13), (16, 16)]


class TestEquivalence:
    @pytest.mark.parametrize("name", sorted(PATTERNS))
    def test_tiled_matches_per_vertex_all_patterns(self, name):
        ref, _ = run_matrix(name, None)
        rng = seeded_rng(11, "tiling-prop", name)
        shapes = [(1, 1)] + [
            SHAPE_POOL[int(k)]
            for k in rng.choice(len(SHAPE_POOL), size=3, replace=False)
        ] + [(13, 13)]
        accepted = 0
        for shape in shapes:
            for engine in ("inline", "threaded"):
                try:
                    arr, _ = run_matrix(name, shape, engine=engine)
                except PatternError:
                    break  # this shape coarsens cyclically; fine
                np.testing.assert_array_equal(arr, ref, err_msg=f"{name} {shape} {engine}")
                accepted += 1
        assert accepted >= 2, f"no tile shape accepted for {name}"

    @pytest.mark.parametrize("name", sorted(PATTERNS))
    def test_tiled_survives_place_failure(self, name):
        ref, _ = run_matrix(name, None)
        # find a workable non-trivial shape for this pattern
        for shape in ((4, 4), (4, 13), (13, 13)):
            try:
                make_dag(name).coarsen(*shape)
            except PatternError:
                continue
            break
        arr, report = run_matrix(
            name,
            shape,
            engine="threaded",
            fault_plans=[FaultPlan(place_id=2, after_completions=40)],
        )
        np.testing.assert_array_equal(arr, ref, err_msg=f"{name} fault {shape}")
        assert report.recoveries == 1

    def test_sw_kernel_matches_per_vertex(self):
        rng = seeded_rng(3, "tiling-sw")
        s1 = "".join(rng.choice(list("ACGT"), 60))
        s2 = "".join(rng.choice(list("ACGT"), 45))
        app0, _ = solve_sw(s1, s2, DPX10Config())
        for shape in ((7, 5), (16, 16), (64, 64)):
            app1, _ = solve_sw(
                s1, s2, DPX10Config(engine="threaded", tile_shape=shape)
            )
            assert app1.best_score == app0.best_score
            assert app1.alignment == app0.alignment

    def test_lps_kernel_matches_per_vertex(self):
        rng = seeded_rng(3, "tiling-lps")
        s = "".join(rng.choice(list("abc"), 57))
        app0, _ = solve_lps(s, DPX10Config())
        for shape in ((6, 9), (16, 16), (64, 64)):
            app1, _ = solve_lps(
                s, DPX10Config(engine="threaded", tile_shape=shape)
            )
            assert app1.length == app0.length

    def test_sw_kernel_whole_matrix(self):
        # compare cell-for-cell, not just the headline score
        rng = seeded_rng(9, "tiling-sw-matrix")
        s1 = "".join(rng.choice(list("ACGT"), 33))
        s2 = "".join(rng.choice(list("ACGT"), 39))
        mats = []
        for shape in (None, (8, 8)):
            from repro.apps.smith_waterman import SWApp

            app = SWApp(s1, s2)
            dag = DiagonalDag(len(s1) + 1, len(s2) + 1)
            DPX10Runtime(app, dag, DPX10Config(tile_shape=shape)).run()
            mats.append(dag.to_array(fill=0, dtype=np.int64))
        np.testing.assert_array_equal(mats[0], mats[1])

    def test_mp_engine_tiled(self):
        rng = seeded_rng(5, "tiling-mp")
        s1 = "".join(rng.choice(list("ACGT"), 24))
        s2 = "".join(rng.choice(list("ACGT"), 24))
        a0, _ = solve_sw(s1, s2, DPX10Config(engine="mp", nplaces=2))
        a1, _ = solve_sw(
            s1, s2, DPX10Config(engine="mp", nplaces=2, tile_shape=(8, 8))
        )
        assert a1.best_score == a0.best_score
        assert a1.alignment == a0.alignment


# -- legacy routing ---------------------------------------------------------------------
class TestLegacyRouting:
    def test_one_by_one_routes_through_per_vertex_path(self):
        cfg = DPX10Config(tile_shape=(1, 1), trace=True)
        assert not cfg.tiling_enabled
        dag = DiagonalDag(6, 6)
        report = DPX10Runtime(MixApp(), dag, cfg).run()
        # legacy path: per-vertex trace events carry no tile id
        assert report.trace is not None
        assert all(ev.tile is None for ev in report.trace.events)
        assert all(ev.cells == 1 for ev in report.trace.events)

    def test_none_is_legacy_too(self):
        assert not DPX10Config().tiling_enabled
        assert not DPX10Config(tile_shape=None).tiling_enabled
        assert DPX10Config(tile_shape=(4, 4)).tiling_enabled

    def test_tiled_trace_events_carry_tile_ids(self):
        cfg = DPX10Config(tile_shape=(3, 3), trace=True)
        dag = DiagonalDag(9, 9)
        report = DPX10Runtime(MixApp(), dag, cfg).run()
        events = report.trace.tile_events()
        assert len(events) == 9  # one event per tile
        assert {ev.tile for ev in events} == {
            (ti, tj) for ti in range(3) for tj in range(3)
        }
        assert sum(ev.cells for ev in events) == 81

    def test_static_schedule_conflicts_with_tiling(self):
        with pytest.raises(Exception):
            DPX10Config(static_schedule=True, tile_shape=(4, 4))


# -- sanitizer and completions interplay ------------------------------------------------
class TestTiledRuntimeDetails:
    def test_completions_count_cells_not_tiles(self):
        dag = DiagonalDag(12, 12)
        report = DPX10Runtime(
            MixApp(), dag, DPX10Config(tile_shape=(4, 4))
        ).run()
        assert report.completions == 144
        assert report.active_vertices == 144

    def test_sanitized_tiled_run_passes(self):
        # sanitize forces the per-cell path inside tiles; a correct
        # pattern must still run clean
        dag = GridDag(10, 10)
        arr_ref, _ = run_matrix("grid", None)
        cfg = DPX10Config(tile_shape=(4, 4), sanitize=True)
        dag = make_dag("grid")
        DPX10Runtime(MixApp(), dag, cfg).run()
        np.testing.assert_array_equal(
            dag.to_array(fill=-1, dtype=np.int64), arr_ref
        )

    def test_progress_callback_fires_on_interval_crossings(self):
        seen = []
        cfg = DPX10Config(
            tile_shape=(4, 4),
            on_progress=lambda done, total: seen.append((done, total)),
            progress_interval=50,
        )
        dag = DiagonalDag(12, 12)
        DPX10Runtime(MixApp(), dag, cfg).run()
        # 144 cells in 16-cell tiles: crossings at 50 and 100 happen
        # mid-tile, so the callback fires on the covering tile boundary
        assert len(seen) == 2
        assert all(total == 144 for _, total in seen)

    def test_work_stealing_tiled(self):
        ref, _ = run_matrix("diagonal", None)
        dag = make_dag("diagonal")
        cfg = DPX10Config(
            engine="threaded", tile_shape=(3, 3), work_stealing=True
        )
        DPX10Runtime(MixApp(), dag, cfg).run()
        np.testing.assert_array_equal(
            dag.to_array(fill=-1, dtype=np.int64), ref
        )

    def test_mincomm_scheduler_tiled(self):
        ref, _ = run_matrix("grid", None)
        dag = make_dag("grid")
        cfg = DPX10Config(tile_shape=(3, 3), scheduler="mincomm")
        DPX10Runtime(MixApp(), dag, cfg).run()
        np.testing.assert_array_equal(
            dag.to_array(fill=-1, dtype=np.int64), ref
        )
