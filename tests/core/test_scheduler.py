"""Tests for the three scheduling strategies."""

import numpy as np
import pytest

from repro.core.api import VertexId
from repro.core.scheduler import (
    LocalScheduling,
    MinCommScheduling,
    RandomScheduling,
    make_strategy,
)
from repro.errors import ConfigurationError, SchedulingError

RNG = np.random.default_rng(0)
VID = VertexId(1, 1)


class TestMakeStrategy:
    @pytest.mark.parametrize(
        "name,cls",
        [("local", LocalScheduling), ("random", RandomScheduling), ("mincomm", MinCommScheduling)],
    )
    def test_by_name(self, name, cls):
        assert isinstance(make_strategy(name), cls)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            make_strategy("work-stealing")


class TestLocal:
    def test_always_home(self):
        s = LocalScheduling()
        assert s.choose_place(VID, 2, [0, 1], [0, 1, 2, 3], RNG, 8) == 2


class TestRandom:
    def test_only_alive_places(self):
        s = RandomScheduling()
        alive = [1, 3]
        picks = {
            s.choose_place(VID, 1, [], alive, np.random.default_rng(k), 8)
            for k in range(50)
        }
        assert picks <= set(alive)
        assert len(picks) == 2  # both get picked eventually

    def test_deterministic_given_rng(self):
        a = RandomScheduling().choose_place(VID, 0, [], [0, 1, 2], np.random.default_rng(7), 8)
        b = RandomScheduling().choose_place(VID, 0, [], [0, 1, 2], np.random.default_rng(7), 8)
        assert a == b

    def test_no_alive_raises(self):
        with pytest.raises(SchedulingError):
            RandomScheduling().choose_place(VID, 0, [], [], RNG, 8)


class TestMinComm:
    def test_prefers_dep_majority_place(self):
        s = MinCommScheduling()
        # both deps at place 1, home 0: running at 1 costs one write-back (8);
        # running at 0 costs two fetches (16)
        assert s.choose_place(VID, 0, [1, 1], [0, 1], RNG, 8) == 1

    def test_home_wins_ties(self):
        s = MinCommScheduling()
        # one dep at each place: cost(home=0) = 8, cost(1) = 8 + 8 writeback
        assert s.choose_place(VID, 0, [0, 1], [0, 1], RNG, 8) == 0

    def test_no_deps_stays_home(self):
        s = MinCommScheduling()
        assert s.choose_place(VID, 2, [], [0, 1, 2], RNG, 8) == 2

    def test_three_way(self):
        s = MinCommScheduling()
        # deps at 1,1,2; home 0.
        # cost(0)=3 fetches=24; cost(1)=1 fetch + writeback=16; cost(2)=2+wb=24
        assert s.choose_place(VID, 0, [1, 1, 2], [0, 1, 2], RNG, 8) == 1

    def test_dead_home_dep_counted(self):
        # deps on places not in alive set still cost a transfer everywhere
        s = MinCommScheduling()
        assert s.choose_place(VID, 0, [5, 5], [0, 1], RNG, 8) == 0

    def test_no_alive_raises(self):
        with pytest.raises(SchedulingError):
            MinCommScheduling().choose_place(VID, 0, [], [], RNG, 8)
