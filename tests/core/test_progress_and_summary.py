"""Tests for the progress callback and RunReport.summary()."""

import pytest

from repro.apgas.failure import FaultPlan
from repro.apps.lcs import solve_lcs
from repro.core.config import DPX10Config
from repro.errors import ConfigurationError

X, Y = "ABCBDABACGT", "BDCABAACGG"


class TestProgressCallback:
    def test_called_at_interval(self):
        seen = []
        cfg = DPX10Config(
            nplaces=2,
            on_progress=lambda done, total: seen.append((done, total)),
            progress_interval=25,
        )
        _, rep = solve_lcs(X, Y, cfg)
        total = rep.active_vertices
        assert seen == [(k, total) for k in range(25, total + 1, 25)]

    def test_disabled_by_default(self):
        seen = []
        cfg = DPX10Config(nplaces=2, on_progress=lambda d, t: seen.append(d))
        solve_lcs(X, Y, cfg)  # interval stays 0 -> never called
        assert seen == []

    def test_negative_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            DPX10Config(progress_interval=-5)

    def test_completions_exceed_total_under_fault(self):
        seen = []
        cfg = DPX10Config(
            nplaces=3,
            on_progress=lambda d, t: seen.append((d, t)),
            progress_interval=10,
        )
        solve_lcs(X, Y, cfg, fault_plans=[FaultPlan(2, at_fraction=0.8)])
        assert seen, "progress should fire"
        # with recomputation, the last reported count can pass the total
        done, total = seen[-1]
        assert done >= total - 10


class TestSummary:
    def test_contains_key_lines(self):
        _, rep = solve_lcs(X, Y, DPX10Config(nplaces=3))
        text = rep.summary()
        assert "vertices:" in text
        assert "network:" in text
        assert "cache:" in text
        assert "wall time:" in text
        assert "snapshots" not in text  # not in snapshot mode

    def test_mentions_recomputation_and_snapshots(self):
        cfg = DPX10Config(nplaces=3, ft_mode="snapshot", snapshot_interval=30)
        _, rep = solve_lcs(X, Y, cfg, fault_plans=[FaultPlan(1, at_fraction=0.5)])
        text = rep.summary()
        assert "recomputed" in text
        assert "snapshots:" in text
