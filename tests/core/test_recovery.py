"""Tests for the recovery protocol, including the paper's Figure 6 example."""

import numpy as np
import pytest

from repro.apgas.network import NetworkModel
from repro.apgas.place import PlaceGroup
from repro.core.api import DPX10App
from repro.core.cache import RemoteCache
from repro.core.config import DPX10Config
from repro.core.recovery import recover
from repro.core.scheduler import make_strategy
from repro.core.vertex_store import build_stores
from repro.core.worker import ExecutionState
from repro.errors import PlaceZeroDeadError
from repro.patterns.grid import GridDag

from collections import deque


class NullApp(DPX10App[int]):
    value_dtype = np.int64

    def compute(self, i, j, vertices):
        return i * 100 + j


def make_state(nplaces=3, height=3, width=4, dist_kind="block_rows", restore="discard"):
    group = PlaceGroup(nplaces)
    dag = GridDag(height, width)
    cfg = DPX10Config(
        nplaces=nplaces, distribution=dist_kind, restore_manner=restore
    )
    app = NullApp()
    dist = cfg.make_dist(dag.region, group.alive_ids())
    stores = build_stores(group, dag, dist, app.value_dtype, app.init_value)
    ready = {pid: deque(stores[pid].zero_indegree_unfinished()) for pid in dist.place_ids}
    caches = {pid: RemoteCache(0) for pid in range(nplaces)}
    return ExecutionState(
        app=app,
        dag=dag,
        config=cfg,
        group=group,
        network=NetworkModel(),
        strategy=make_strategy("local"),
        dist=dist,
        stores=stores,
        ready=ready,
        caches=caches,
    )


def finish(state, coords):
    for i, j in coords:
        store = state.stores[state.dist.place_of(i, j)]
        store.set_result(i, j, i * 100 + j)
        store.mark_finished(i, j)
        state.completions += 1


class TestRecoverBasics:
    def test_all_dead_unrecoverable(self):
        state = make_state(nplaces=1)
        state.group.kill(0)
        with pytest.raises(Exception):
            recover(state)

    def test_place_zero_dead_unrecoverable(self):
        state = make_state()
        state.group.kill(0)
        with pytest.raises(PlaceZeroDeadError):
            recover(state)

    def test_new_dist_covers_survivors_only(self):
        state = make_state()
        state.group.kill(2)
        recover(state)
        assert state.dist.place_ids == (0, 1)
        assert 2 not in state.stores

    def test_indegrees_reset_from_finished_flags(self):
        state = make_state()
        finish(state, [(0, 0), (0, 1)])
        state.group.kill(2)
        recover(state)
        # (0,2) has its single remaining dep (0,1) finished -> ready
        # (1,1) deps (0,1) finished and (1,0) unfinished -> indegree 1
        ready_all = {c for q in state.ready.values() for c in q}
        assert (0, 2) in ready_all
        assert (1, 1) not in ready_all
        s = state.stores[state.dist.place_of(1, 1)]
        assert s.indegree[s.slot(1, 1)] == 1

    def test_finished_cells_not_rescheduled(self):
        state = make_state()
        finish(state, [(0, 0)])
        state.group.kill(2)
        recover(state)
        ready_all = {c for q in state.ready.values() for c in q}
        assert (0, 0) not in ready_all

    def test_abort_latch_cleared(self):
        state = make_state()
        state.abort_event.set()
        state.group.kill(1)
        recover(state)
        assert not state.abort_event.is_set()
        assert state.abort_exc is None


class TestRestoreManners:
    def test_discard_drops_migrated_results(self):
        state = make_state(restore="discard")
        # (1,*) homed at place 1 under block_rows over 3 places of 3 rows
        finish(state, [(1, 0), (1, 1)])
        state.group.kill(2)
        stats = recover(state)
        # under the new 2-place block_rows, row 1 straddles/moves: results
        # whose home changed are discarded
        assert stats.discarded + stats.preserved_in_place == 2
        assert stats.copied == 0

    def test_copy_preserves_migrated_results(self):
        state = make_state(restore="copy")
        finish(state, [(1, 0), (1, 1)])
        before = state.network.stats.bytes
        state.group.kill(2)
        stats = recover(state)
        assert stats.discarded == 0
        assert stats.copied + stats.preserved_in_place == 2
        if stats.copied:
            assert state.network.stats.bytes > before
        # values survived the move
        for c in [(1, 0), (1, 1)]:
            s = state.stores[state.dist.place_of(*c)]
            assert s.is_finished(*c)
            assert s.get_result(*c) == c[0] * 100 + c[1]

    def test_dead_place_results_always_lost(self):
        state = make_state(restore="copy")
        finish(state, [(2, 0), (2, 1)])  # homed at place 2
        state.group.kill(2)
        stats = recover(state)
        assert stats.preserved_in_place == 0
        assert stats.copied == 0
        assert stats.to_recompute == 12  # everything again


class TestFigure6Scenario:
    """The paper's Figure 6: 12 vertices (3 rows x 4 cols) on 3 places by
    row; place 3 (our place 2) fails; the survivors split the cells."""

    def test_example(self):
        state = make_state(nplaces=3, height=3, width=4, dist_kind="block_flat")
        # paper (1-based): finished = (1,1), (1,2), (2,2), (2,3)
        # 0-based:                    (0,0), (0,1), (1,1), (1,2)
        finish(state, [(0, 0), (0, 1), (1, 1), (1, 2)])
        state.group.kill(2)
        stats = recover(state)
        assert stats.alive_places == (0, 1)
        # new block_flat over 2 places: cells 0..5 -> place 0, 6..11 -> place 1
        # (0,0),(0,1) stay on place 0 (flat 0,1); (1,1) flat 5 stays on
        # place 0?  old home of row 1 cells was place 1... check which
        # results survive: a result survives iff old home == new home.
        d = state.dist
        survived = [
            c
            for c in [(0, 0), (0, 1), (1, 1), (1, 2)]
            if state.stores[d.place_of(*c)].is_finished(*c)
        ]
        # old homes (block_flat over 3 places, 4 cells each):
        #   (0,0) flat 0 -> old place 0, new place 0: survives
        #   (0,1) flat 1 -> old place 0, new place 0: survives
        #   (1,1) flat 5 -> old place 1, new place 0: DROPPED (paper's (2,2))
        #   (1,2) flat 6 -> old place 1, new place 1: survives (paper's (2,3))
        assert survived == [(0, 0), (0, 1), (1, 2)]
        assert stats.preserved_in_place == 3
        assert stats.discarded == 1
