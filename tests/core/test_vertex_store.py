"""Tests for the per-place vertex store."""

import numpy as np
import pytest

from repro.apgas.place import PlaceGroup
from repro.core.vertex_store import build_stores
from repro.dist.dist import Dist
from repro.errors import DeadPlaceException, DPX10Error
from repro.patterns.diagonal import DiagonalDag
from repro.patterns.interval import IntervalDag


def make_store(nplaces=2, height=4, width=4, dag_cls=DiagonalDag, dtype=np.int64):
    group = PlaceGroup(nplaces)
    dag = dag_cls(height, width)
    dist = Dist.block_rows(dag.region, list(range(nplaces)))
    stores = build_stores(group, dag, dist, dtype, lambda i, j: None)
    return group, dag, dist, stores


class TestInit:
    def test_coords_cover_partition(self):
        _, _, dist, stores = make_store()
        assert sorted(stores[0].coords) == sorted(dist.owned_coords(0))
        assert stores[0].size == 8

    def test_indegrees_match_pattern(self):
        _, dag, _, stores = make_store()
        s = stores[0]
        assert s.indegree[s.slot(0, 0)] == 0  # corner seed
        assert s.indegree[s.slot(0, 1)] == 1  # depends on (0,0)
        assert s.indegree[s.slot(1, 1)] == 3

    def test_inactive_cells_born_finished(self):
        group = PlaceGroup(1)
        dag = IntervalDag(4, 4)
        dist = Dist.block_rows(dag.region, [0])
        stores = build_stores(group, dag, dist, np.int64, lambda i, j: None)
        s = stores[0]
        assert s.is_finished(2, 0)  # lower triangle inactive
        assert not s.is_finished(0, 0)
        assert s.active_count == 10  # upper triangle of 4x4

    def test_inactive_init_value_object_dtype(self):
        group = PlaceGroup(1)
        dag = IntervalDag(3, 3)
        dist = Dist.block_rows(dag.region, [0])
        stores = build_stores(group, dag, dist, None, lambda i, j: f"init{i}{j}")
        assert stores[0].get_result(1, 0) == "init10"

    def test_zero_indegree_unfinished(self):
        _, _, _, stores = make_store()
        assert stores[0].zero_indegree_unfinished() == [(0, 0)]


class TestStateTransitions:
    def test_result_lifecycle(self):
        _, _, _, stores = make_store()
        s = stores[0]
        with pytest.raises(DPX10Error, match="not finished"):
            s.get_result(0, 0)
        s.set_result(0, 0, 7)
        s.mark_finished(0, 0)
        assert s.get_result(0, 0) == 7
        assert s.finished_active == 1

    def test_mark_finished_idempotent_for_counter(self):
        _, _, _, stores = make_store()
        s = stores[0]
        s.set_result(0, 0, 1)
        s.mark_finished(0, 0)
        s.mark_finished(0, 0)
        assert s.finished_active == 1

    def test_dec_indegree_signals_ready(self):
        _, _, _, stores = make_store()
        s = stores[0]
        assert not s.dec_indegree(1, 1)  # 3 -> 2
        assert not s.dec_indegree(1, 1)  # 2 -> 1
        assert s.dec_indegree(1, 1)  # 1 -> 0: schedulable

    def test_all_done(self):
        _, _, _, stores = make_store(nplaces=1, height=2, width=2)
        s = stores[0]
        assert not s.all_done()
        for c in [(0, 0), (0, 1), (1, 0), (1, 1)]:
            s.set_result(*c, 1)
            s.mark_finished(*c)
        assert s.all_done()

    def test_finished_items_only_active_finished(self):
        group = PlaceGroup(1)
        dag = IntervalDag(3, 3)
        dist = Dist.block_rows(dag.region, [0])
        stores = build_stores(group, dag, dist, np.int64, lambda i, j: None)
        s = stores[0]
        s.set_result(0, 0, 5)
        s.mark_finished(0, 0)
        items = dict(s.finished_items())
        assert items == {(0, 0): 5}  # inactive finished cells excluded


class TestDeadPlace:
    def test_access_after_kill_raises(self):
        group, _, _, stores = make_store()
        group.kill(0)
        s = stores[0]
        for op in (
            lambda: s.get_result(0, 0),
            lambda: s.set_result(0, 0, 1),
            lambda: s.mark_finished(0, 0),
            lambda: s.dec_indegree(1, 1),
            lambda: s.all_done(),
            lambda: s.is_finished(0, 0),
            lambda: list(s.finished_items()),
        ):
            with pytest.raises(DeadPlaceException):
                op()

    def test_other_place_unaffected(self):
        group, _, _, stores = make_store()
        group.kill(0)
        stores[1].set_result(2, 0, 9)
        stores[1].mark_finished(2, 0)
        assert stores[1].get_result(2, 0) == 9


class TestDtypes:
    def test_typed_array_for_int_dtype(self):
        _, _, _, stores = make_store(dtype=np.int64)
        assert stores[0].values.dtype == np.int64

    def test_object_array_for_none(self):
        _, _, _, stores = make_store(dtype=None)
        s = stores[0]
        assert s.values.dtype == object
        s.set_result(0, 0, (1, 2, 3))
        s.mark_finished(0, 0)
        assert s.get_result(0, 0) == (1, 2, 3)


class TestBlockAPIs:
    """get_block / set_block: the tiled engine's bulk data plane."""

    def _finish(self, s, coords, base=10):
        for k, c in enumerate(coords):
            s.set_result(*c, base + k)
            s.mark_finished(*c)

    def test_get_block_roundtrip_in_memory(self):
        _, _, _, stores = make_store(nplaces=1)
        s = stores[0]
        coords = [(0, 0), (0, 1), (0, 2)]
        self._finish(s, coords)
        assert s.get_block(coords) == [10, 11, 12]

    def test_get_block_rejects_unfinished(self):
        _, _, _, stores = make_store(nplaces=1)
        s = stores[0]
        s.set_result(0, 0, 1)
        s.mark_finished(0, 0)
        with pytest.raises(DPX10Error, match=r"\(0, 1\) is not finished"):
            s.get_block([(0, 0), (0, 1)])

    def test_set_block_counts_newly_finished_once(self):
        _, _, _, stores = make_store(nplaces=1)
        s = stores[0]
        coords = [(0, 0), (0, 1)]
        assert s.set_block(coords, [3, 4]) == 2
        # re-writing finished cells (post-recovery re-execution) is a no-op
        # for the counter but overwrites with the identical value
        assert s.set_block(coords, [3, 4]) == 0
        assert s.finished_active == 2
        assert s.get_block(coords) == [3, 4]

    def test_set_block_object_dtype(self):
        _, _, _, stores = make_store(nplaces=1, dtype=None)
        s = stores[0]
        coords = [(0, 0), (0, 1)]
        s.set_block(coords, [(1, 2), (3, 4)])
        assert s.get_block(coords) == [(1, 2), (3, 4)]

    def test_block_roundtrip_spilled(self, tmp_path):
        group = PlaceGroup(1)
        dag = DiagonalDag(4, 4)
        dist = Dist.block_rows(dag.region, [0])
        stores = build_stores(
            group, dag, dist, np.int64, lambda i, j: None,
            spill_dir=str(tmp_path),
        )
        s = stores[0]
        assert s.spilled
        coords = [(0, 0), (0, 1), (1, 0)]
        assert s.set_block(coords, [7, 8, 9]) == 3
        assert s.get_block(coords) == [7, 8, 9]
        # the values really live in the memmap file
        assert isinstance(s.values, np.memmap)

    def test_open_spill_creates_npy_memmap(self, tmp_path):
        group = PlaceGroup(1)
        dag = DiagonalDag(3, 3)
        dist = Dist.block_rows(dag.region, [0])
        stores = build_stores(
            group, dag, dist, np.int64, lambda i, j: None,
            spill_dir=str(tmp_path),
        )
        s = stores[0]
        files = list(tmp_path.glob("dpx10-place0-*.npy"))
        assert len(files) == 1
        assert s._spill_path == str(files[0])

    def test_finished_items_after_partial_recovery(self):
        """finished_items drives recovery salvage: only the surviving
        place's finished active cells are re-homed."""
        from repro.apgas.failure import FaultPlan
        from repro.apps.smith_waterman import solve_sw
        from repro.core.config import DPX10Config

        a, b = "ACGTACGTACGT", "ACGTTACGTAC"
        base_cfg = DPX10Config(nplaces=3, engine="inline")
        base, _ = solve_sw(a, b, base_cfg)
        cfg = DPX10Config(nplaces=3, engine="inline")
        app, report = solve_sw(
            a, b, cfg, fault_plans=[FaultPlan(1, after_completions=40)]
        )
        assert report.recoveries == 1
        assert app.best_score == base.best_score
