"""The cross-domain battery: index domains and their layout embeddings.

Every domain must be a true bijection between native indices and active
layout cells; GridDomain must be the identity (so existing apps are
untouched); TreeDomain/TensorDomain must reject malformed inputs with
clear errors instead of hanging or silently relabeling.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dag import Dag
from repro.core.domain import GridDomain, TensorDomain, TreeDomain
from repro.errors import DPX10Error, PatternError
from repro.patterns.tensor import TensorWavefrontDag, dense_corner_offsets
from repro.patterns.tree import TreeDag

SETTINGS = dict(max_examples=25, deadline=None)


def _roundtrip(dom):
    """Assert to_cell/from_cell are inverse over the whole domain."""
    seen = set()
    for idx in dom.indices():
        cell = dom.to_cell(idx)
        assert dom.from_cell(*cell) == idx
        assert dom.cell_active(*cell)
        assert dom.contains_index(idx)
        seen.add(cell)
    assert len(seen) == dom.nindices
    h, w = dom.layout_shape
    active = sum(
        dom.cell_active(i, j) for i in range(h) for j in range(w)
    )
    assert active == dom.nindices


# ---------------------------------------------------------------- grid


def test_grid_is_identity():
    d = GridDomain(3, 5)
    assert d.kind == "grid"
    assert d.layout_shape == (3, 5)
    assert d.to_cell((2, 4)) == (2, 4)
    assert d.from_cell(1, 3) == (1, 3)
    assert d.describe_cell(1, 3) == "(1, 3)"
    _roundtrip(d)


def test_grid_rejects_empty():
    with pytest.raises(ValueError, match="at least 1x1"):
        GridDomain(0, 4)


def test_dag_default_domain_is_grid():
    dag = Dag(4, 6)
    assert dag.domain.kind == "grid"
    assert dag.domain.layout_shape == (4, 6)
    assert dag.describe_cell(2, 3) == "(2, 3)"


# -------------------------------------------------------------- tensor


def test_tensor_layout_example():
    d = TensorDomain((2, 3, 4))
    assert d.kind == "tensor"
    assert d.layout_shape == (6, 4)
    assert d.to_cell((1, 2, 3)) == (5, 3)
    assert d.from_cell(5, 3) == (1, 2, 3)
    assert d.describe_cell(5, 3) == "(1, 2, 3)"
    _roundtrip(d)


def test_tensor_one_dimensional():
    d = TensorDomain((5,))
    assert d.layout_shape == (1, 5)
    assert d.to_cell((3,)) == (0, 3)
    _roundtrip(d)


def test_tensor_size_one_dims():
    _roundtrip(TensorDomain((1, 1, 1)))
    _roundtrip(TensorDomain((1, 4, 1)))
    d = TensorDomain((4, 1))
    assert d.layout_shape == (4, 1)
    _roundtrip(d)


def test_tensor_rejects_empty():
    with pytest.raises(ValueError, match="empty domains are not allowed"):
        TensorDomain((3, 0, 2))
    with pytest.raises(ValueError, match="at least one dimension"):
        TensorDomain(())


def test_tensor_contains_index():
    d = TensorDomain((2, 3))
    assert d.contains_index((1, 2))
    assert not d.contains_index((2, 0))
    assert not d.contains_index((0, 0, 0))
    assert not d.contains_index(7)


@settings(**SETTINGS)
@given(shape=st.lists(st.integers(1, 4), min_size=1, max_size=4))
def test_tensor_roundtrip_random_shapes(shape):
    _roundtrip(TensorDomain(tuple(shape)))


def test_tensor_wavefront_dag_validates():
    dag = TensorWavefrontDag((3, 3, 3))
    dag.validate()
    assert sorted(dag.get_dependency(0, 0)) == []
    # the far corner depends on all 7 in-bounds corner neighbours
    corner = dag.domain.to_cell((2, 2, 2))
    assert len(dag.get_dependency(*corner)) == 7


def test_tensor_wavefront_rejects_bad_offsets():
    with pytest.raises(PatternError, match="nonzero"):
        TensorWavefrontDag((2, 2), offsets=[(0, 0)])
    with pytest.raises(PatternError, match="<= 0"):
        TensorWavefrontDag((2, 2), offsets=[(1, -1)])
    with pytest.raises(PatternError, match="components"):
        TensorWavefrontDag((2, 2), offsets=[(-1, 0, 0)])


def test_dense_corner_offsets():
    assert dense_corner_offsets(1) == ((-1,),)
    assert len(dense_corner_offsets(3)) == 7
    assert (0, 0, 0) not in dense_corner_offsets(3)


# ---------------------------------------------------------------- tree


def test_tree_layout_example():
    t = TreeDomain([-1, 0, 0, 1, 1])
    assert t.kind == "tree"
    assert t.root == 0
    assert t.children(0) == (1, 2)
    assert t.parent(4) == 1
    assert (t.height_of(0), t.height_of(1), t.height_of(2)) == (2, 1, 0)
    # leaves 2, 3, 4 share row 0 in id order
    assert t.level(0) == (2, 3, 4)
    assert t.to_cell(3) == (0, 1)
    assert t.describe_cell(0, 1) == "node 3"
    _roundtrip(t)


def test_tree_padding_cells():
    t = TreeDomain([-1, 0, 0, 1, 1])  # 3 leaves, 1 mid, 1 root -> 3x3 layout
    assert t.layout_shape == (3, 3)
    assert not t.cell_active(2, 1)
    assert "padding" in t.describe_cell(2, 1)
    with pytest.raises(KeyError, match="padding"):
        t.from_cell(2, 1)


def test_tree_single_node():
    t = TreeDomain([-1])
    assert t.layout_shape == (1, 1)
    assert t.root == 0 and t.post_order == (0,)
    _roundtrip(t)


def test_tree_path():
    n = 40
    t = TreeDomain([-1] + list(range(n - 1)))  # 0 <- 1 <- 2 <- ...
    assert t.layout_shape == (n, 1)
    assert t.height_of(0) == n - 1
    assert t.post_order == tuple(reversed(range(n)))
    _roundtrip(t)


def test_tree_accepts_mapping_and_none_root():
    t = TreeDomain({0: 1, 1: None, 2: 1})
    assert t.root == 1
    assert t.children(1) == (0, 2)


def test_tree_rejects_non_contiguous_ids():
    with pytest.raises(ValueError, match="contiguous"):
        TreeDomain({0: -1, 2: 0, 3: 0})


def test_tree_rejects_malformed():
    with pytest.raises(ValueError, match="empty domain"):
        TreeDomain([])
    with pytest.raises(ValueError, match="exactly one root"):
        TreeDomain([-1, -1])
    with pytest.raises(ValueError, match="own parent"):
        TreeDomain([0, -1])
    with pytest.raises(ValueError, match="own parent"):
        TreeDomain([-1, 1])
    with pytest.raises(ValueError, match="outside"):
        TreeDomain([-1, 5])
    with pytest.raises(ValueError, match="unreachable"):
        TreeDomain([-1, 2, 1])  # 1 <-> 2 cycle off to the side


def test_tree_post_order_properties():
    t = TreeDomain([-1, 0, 0, 1, 1, 2, 2, 2])
    pos = {v: k for k, v in enumerate(t.post_order)}
    for v in range(t.n):
        for c in t.children(v):
            assert pos[c] < pos[v], "children before their parent"
    # every subtree occupies a contiguous post-order span
    for v in range(t.n):
        span = sorted(
            pos[u] for u in range(t.n) if _in_subtree(t, u, v)
        )
        assert span == list(range(span[0], span[0] + len(span)))
    # the heavy (largest) child's span ends right before the parent
    for v in range(t.n):
        if t.children(v):
            heavy = max(
                t.children(v), key=lambda c: (t.subtree_sizes[c], c)
            )
            assert pos[heavy] == pos[v] - 1


def _in_subtree(t, u, v):
    while u != -1:
        if u == v:
            return True
        u = t.parent(u)
    return False


def test_tree_make_dist_covers_and_balances():
    t = TreeDomain([-1, 0, 0, 1, 1, 2, 2, 2, 3])
    dag = TreeDag(t)
    dist = t.make_dist(dag.region, [0, 1, 2])
    counts = {0: 0, 1: 0, 2: 0}
    for v in range(t.n):
        counts[dist.place_of(*t.to_cell(v))] += 1
    assert sum(counts.values()) == t.n
    assert max(counts.values()) - min(counts.values()) <= 1
    # padding cells have an owner too (never computed, but mapped)
    h, w = t.layout_shape
    for i in range(h):
        for j in range(w):
            assert dist.place_of(i, j) in (0, 1, 2)


@settings(**SETTINGS)
@given(data=st.data(), n=st.integers(1, 24))
def test_tree_roundtrip_random(data, n):
    parents = [-1] + [
        data.draw(st.integers(0, v - 1), label=f"parent[{v}]")
        for v in range(1, n)
    ]
    t = TreeDomain(parents)
    _roundtrip(t)
    pos = {v: k for k, v in enumerate(t.post_order)}
    for v in range(n):
        for c in t.children(v):
            assert pos[c] < pos[v]
            assert t.height_of(c) < t.height_of(v)


# ------------------------------------------------- domain-term errors


def test_tree_dag_validates_and_describes():
    dag = TreeDag([-1, 0, 0, 1, 1])
    dag.validate()
    assert dag.describe_cell(*dag.domain.to_cell(3)) == "node 3"
    with pytest.raises(DPX10Error, match="not bound"):
        dag.get_vertex(*dag.domain.to_cell(3))


def test_tree_dag_validate_errors_in_domain_terms():
    class Broken(TreeDag):
        def get_anti_dependency(self, i, j):
            return []  # drop every child -> parent edge

    with pytest.raises(PatternError, match="node 1.*node 0|node 0.*node 1"):
        Broken([-1, 0]).validate()


def test_tensor_dag_validate_errors_in_domain_terms():
    class Broken(TensorWavefrontDag):
        def get_anti_dependency(self, i, j):
            return []

    with pytest.raises(PatternError, match=r"\(0, 0\)"):
        Broken((2, 2)).validate()


# ------------------------------------------- grid no-regression probe


def test_grid_apps_unchanged_by_domain_layer():
    """Existing 2-D apps still match their oracles and emit no domain
    trace metadata (the grid path is the identity embedding)."""
    from repro.apps.lcs import solve_lcs
    from repro.apps.serial import lcs_matrix
    from repro.core.config import DPX10Config

    cfg = DPX10Config(nplaces=3, trace=True)
    app, report = solve_lcs("GATTACA", "GCATGCT", cfg)
    assert app.length == lcs_matrix("GATTACA", "GCATGCT")[-1, -1]
    assert report.trace is not None
    assert "domain" not in report.trace.meta


def test_nongrid_runs_tag_their_traces():
    from repro.apps.msa import solve_msa3
    from repro.core.config import DPX10Config

    app, report = solve_msa3("AC", "AG", "AT", config=DPX10Config(trace=True))
    assert report.trace is not None
    assert report.trace.meta["domain"] == "tensor"


def test_object_store_roundtrips_arrays():
    """The object store carries composite per-vertex values (numpy
    budget tables) across places without mangling them."""
    from repro.apps.serial import tree_knapsack_tables
    from repro.apps.tree_knapsack import TreeKnapsackApp, solve_tree_knapsack
    from repro.core.runtime import DPX10Runtime

    parents, weights, values = [-1, 0, 0], [1, 2, 3], [5, 7, 9]
    dom = TreeDomain(parents)
    app = TreeKnapsackApp(dom, weights, values, 4)
    dag = TreeDag(dom)
    DPX10Runtime(app, dag).run()
    expected = tree_knapsack_tables(parents, weights, values, 4)
    for v in range(dom.nindices):
        got = dag.get_vertex(*dom.to_cell(v)).get_result()
        assert isinstance(got, np.ndarray)
        assert np.array_equal(got, expected[v])
