"""Tests for the FIFO remote-vertex cache."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.cache import RemoteCache
from repro.errors import ConfigurationError


class TestBasics:
    def test_miss_then_hit(self):
        c = RemoteCache(4)
        hit, val = c.get("k")
        assert not hit and val is None
        c.put("k", 42)
        hit, val = c.get("k")
        assert hit and val == 42

    def test_stats(self):
        c = RemoteCache(4)
        c.get("a")
        c.put("a", 1)
        c.get("a")
        c.get("b")
        assert c.hits == 1 and c.misses == 2
        assert c.hit_rate == pytest.approx(1 / 3)

    def test_hit_rate_zero_when_unused(self):
        assert RemoteCache(4).hit_rate == 0.0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            RemoteCache(-1)

    def test_len_and_contains(self):
        c = RemoteCache(4)
        c.put("a", 1)
        assert len(c) == 1 and "a" in c and "b" not in c

    def test_clear(self):
        c = RemoteCache(2)
        c.put("a", 1)
        c.clear()
        assert len(c) == 0
        c.put("b", 2)  # reusable after clear
        assert c.get("b") == (True, 2)


class TestFIFO:
    def test_evicts_oldest_not_lru(self):
        c = RemoteCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.get("a")  # a hit must NOT refresh "a" (FIFO, not LRU)
        c.put("c", 3)  # evicts "a", the oldest insertion
        assert "a" not in c
        assert "b" in c and "c" in c

    def test_reinsert_keeps_position(self):
        c = RemoteCache(2)
        c.put("a", 1)
        c.put("b", 2)
        c.put("a", 99)  # value refresh, position unchanged
        c.put("c", 3)  # still evicts "a"
        assert "a" not in c
        assert c.get("b") == (True, 2)

    def test_capacity_zero_disables(self):
        c = RemoteCache(0)
        c.put("a", 1)
        assert c.get("a") == (False, None)
        assert len(c) == 0

    def test_capacity_one(self):
        c = RemoteCache(1)
        c.put("a", 1)
        c.put("b", 2)
        assert "a" not in c and c.get("b") == (True, 2)

    @given(
        capacity=st.integers(1, 8),
        keys=st.lists(st.integers(0, 20), min_size=1, max_size=60),
    )
    def test_property_capacity_never_exceeded_and_fifo_order(self, capacity, keys):
        c = RemoteCache(capacity)
        inserted = []  # insertion order of currently-distinct keys
        for k in keys:
            if k not in inserted:
                inserted.append(k)
                if len(inserted) > capacity:
                    inserted.pop(0)
            c.put(k, k * 10)
            assert len(c) <= capacity
        # exactly the most recent `capacity` distinct insertions survive
        for k in inserted:
            assert c.get(k) == (True, k * 10)
