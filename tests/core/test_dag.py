"""Tests for the Dag base class and its structural validation."""

import pytest

from repro.core.api import VertexId
from repro.core.dag import Dag, ResultView
from repro.errors import ConfigurationError, DPX10Error, PatternError


class ChainDag(Dag):
    """Minimal valid pattern: 1-D chain along columns."""

    def get_dependency(self, i, j):
        return [VertexId(i, j - 1)] if j > 0 else []

    def get_anti_dependency(self, i, j):
        return [VertexId(i, j + 1)] if j + 1 < self.width else []


class TestDagBasics:
    def test_geometry(self):
        d = ChainDag(3, 4)
        assert d.size == 12
        assert d.region.height == 3
        assert d.contains(2, 3) and not d.contains(3, 0)

    def test_min_size_enforced(self):
        with pytest.raises(ConfigurationError):
            ChainDag(0, 4)

    def test_active_cells_default_all(self):
        assert len(ChainDag(2, 3).active_cells()) == 6

    def test_get_vertex_before_run_raises(self):
        with pytest.raises(DPX10Error, match="not bound"):
            ChainDag(2, 2).get_vertex(0, 0)

    def test_get_vertex_after_bind(self):
        d = ChainDag(2, 2)
        d.bind_results(ResultView(lambda i, j: i * 10 + j, lambda i, j: True))
        assert d.get_vertex(1, 1).get_result() == 11


class TestValidate:
    def test_valid_chain_passes(self):
        ChainDag(3, 5).validate()

    def test_out_of_bounds_dependency(self):
        class Bad(ChainDag):
            def get_dependency(self, i, j):
                return [VertexId(i, j - 1)]  # (i, -1) for j == 0

        with pytest.raises(PatternError, match="out of bounds"):
            Bad(2, 2).validate()

    def test_self_dependency(self):
        class Bad(ChainDag):
            def get_dependency(self, i, j):
                return [VertexId(i, j)]

        with pytest.raises(PatternError, match="itself"):
            Bad(2, 2).validate()

    def test_duplicate_dependency(self):
        class Bad(ChainDag):
            def get_dependency(self, i, j):
                return [VertexId(i, j - 1), VertexId(i, j - 1)] if j > 0 else []

        with pytest.raises(PatternError, match="twice"):
            Bad(2, 2).validate()

    def test_missing_anti_edge(self):
        class Bad(ChainDag):
            def get_anti_dependency(self, i, j):
                return []

        with pytest.raises(PatternError, match="missing"):
            Bad(2, 2).validate()

    def test_spurious_anti_edge(self):
        class Bad(ChainDag):
            def get_anti_dependency(self, i, j):
                extra = [VertexId(i, j + 1)] if j + 1 < self.width else []
                if i + 1 < self.height:
                    extra.append(VertexId(i + 1, j))  # nobody depends this way
                return extra

        with pytest.raises(PatternError, match="does not depend"):
            Bad(2, 2).validate()

    def test_cycle_detected(self):
        class Cyclic(Dag):
            # (i,0) <-> (i,1) two-cycles
            def get_dependency(self, i, j):
                return [VertexId(i, 1 - j)]

            def get_anti_dependency(self, i, j):
                return [VertexId(i, 1 - j)]

        with pytest.raises(PatternError, match="cycle"):
            Cyclic(1, 2).validate()

    def test_dependency_on_inactive_cell(self):
        class Bad(ChainDag):
            def is_active(self, i, j):
                return j != 0

        with pytest.raises(PatternError, match="inactive"):
            Bad(2, 3).validate()
