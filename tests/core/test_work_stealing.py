"""Tests for the work-stealing extension.

Beyond the paper (its future work cites X10's work-stealing schedulers):
idle places steal ready vertices from the longest queue. Results must be
unchanged; load balance should improve on skewed DAGs.
"""

import pytest

from repro.apps.lcs import solve_lcs
from repro.apps.lps import solve_lps
from repro.apps.serial import lcs_matrix, lps_matrix
from repro.core.config import DPX10Config
from repro.apgas.failure import FaultPlan

X, Y = "ACGTACGGTACGATCG", "TACGATCGGGACGT"
EXPECT = int(lcs_matrix(X, Y)[-1, -1])


class TestCorrectness:
    @pytest.mark.parametrize("engine", ["inline", "threaded"])
    def test_answer_unchanged(self, engine):
        cfg = DPX10Config(nplaces=4, engine=engine, work_stealing=True)
        app, _ = solve_lcs(X, Y, cfg)
        assert app.length == EXPECT

    @pytest.mark.parametrize("engine", ["inline", "threaded"])
    def test_with_fault(self, engine):
        cfg = DPX10Config(nplaces=4, engine=engine, work_stealing=True)
        app, rep = solve_lcs(
            X, Y, cfg, fault_plans=[FaultPlan(2, at_fraction=0.5)]
        )
        assert app.length == EXPECT
        assert rep.recoveries == 1

    def test_skewed_triangular_dag(self):
        # the interval pattern under column splicing gives place 0 far less
        # work than the last place; stealing must not change the answer
        s = "ABCBACBDDBACBA"
        cfg = DPX10Config(nplaces=4, work_stealing=True)
        app, _ = solve_lps(s, cfg)
        assert app.length == lps_matrix(s)[0, len(s) - 1]


class TestLoadBalance:
    def test_stealing_spreads_activities_on_skewed_dag(self):
        # under block_cols, the LPS triangle loads later places much more
        # heavily; stealing should tighten the per-place activity spread
        s = "ABCBACBDDBACBACDDA" * 3

        def spread(work_stealing):
            cfg = DPX10Config(
                nplaces=4, work_stealing=work_stealing, distribution="block_cols"
            )
            _, rep = solve_lps(s, cfg)
            counts = [rep.per_place_executed.get(p, 0) for p in range(4)]
            return max(counts) - min(counts)

        assert spread(True) < spread(False)

    def test_default_off(self):
        assert DPX10Config().work_stealing is False
