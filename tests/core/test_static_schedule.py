"""Tests for the static-schedule optimization (precomputed topological order)."""

import pytest

from repro.apgas.failure import FaultPlan
from repro.apps.knapsack import make_knapsack_instance, solve_knapsack
from repro.apps.lcs import solve_lcs
from repro.apps.lps import solve_lps
from repro.apps.matrix_chain import make_chain_dims, solve_matrix_chain
from repro.apps.serial import (
    knapsack_matrix,
    lcs_matrix,
    lps_matrix,
    matrix_chain_matrix,
)
from repro.core.config import DPX10Config
from repro.errors import ConfigurationError
from repro.patterns import (
    DiagonalDag,
    FullRowDag,
    GridDag,
    IntervalDag,
    TriangularDag,
)
from repro.patterns.knapsack import KnapsackDag

X, Y = "ABCBDABACGTAC", "BDCABAACGGTT"
EXPECT = int(lcs_matrix(X, Y)[-1, -1])
STATIC = DPX10Config(nplaces=3, static_schedule=True)


def order_is_topological(dag):
    order = dag.static_order()
    assert order is not None
    pos = {c: k for k, c in enumerate(order)}
    assert len(pos) == len(dag.active_cells())
    for i, j in order:
        for d in dag.get_dependency(i, j):
            assert pos[(d.i, d.j)] < pos[(i, j)], f"({d.i},{d.j}) !< ({i},{j})"


class TestStaticOrders:
    @pytest.mark.parametrize(
        "dag",
        [
            GridDag(6, 7),
            DiagonalDag(5, 5),
            IntervalDag(6, 6),
            FullRowDag(4, 5),
            TriangularDag(6, 6),
            KnapsackDag([2, 3, 1], 8),
        ],
        ids=lambda d: type(d).__name__,
    )
    def test_order_respects_dependencies(self, dag):
        order_is_topological(dag)

    def test_default_is_none(self):
        from repro.core.dag import Dag

        class Custom(Dag):
            def get_dependency(self, i, j):
                return []

            def get_anti_dependency(self, i, j):
                return []

        assert Custom(2, 2).static_order() is None

    def test_mixed_direction_stencil_declines(self):
        from repro.patterns.base import StencilDag

        class Mixed(StencilDag):
            offsets = ((-1, 0), (1, -1))  # points both up and down

        assert Mixed(4, 4).static_order() is None


class TestStaticExecution:
    def test_lcs(self):
        app, rep = solve_lcs(X, Y, STATIC)
        assert app.length == EXPECT
        assert rep.completions == rep.active_vertices

    def test_lps_interval_order(self):
        s = "BBABCBCABBA"
        app, _ = solve_lps(s, STATIC)
        assert app.length == lps_matrix(s)[0, len(s) - 1]

    def test_matrix_chain_triangular_order(self):
        dims = make_chain_dims(8, seed=3)
        app, _ = solve_matrix_chain(dims, STATIC)
        assert app.min_multiplications == matrix_chain_matrix(dims)[0, -1]

    def test_knapsack(self):
        w, v = make_knapsack_instance(8, 20, seed=6)
        app, _ = solve_knapsack(w, v, 20, STATIC)
        assert app.best_value == knapsack_matrix(w, v, 20)[-1, -1]

    def test_fault_recovery_resumes(self):
        app, rep = solve_lcs(
            X, Y, STATIC, fault_plans=[FaultPlan(2, at_fraction=0.5)]
        )
        assert app.length == EXPECT
        assert rep.recoveries == 1
        assert rep.completions > rep.active_vertices  # recomputation happened

    def test_stats_match_dynamic(self):
        _, dyn = solve_lcs(X, Y, DPX10Config(nplaces=3))
        _, sta = solve_lcs(X, Y, STATIC)
        assert sta.completions == dyn.completions
        # same home placement, same remote fetch pattern
        assert sta.network_bytes == dyn.network_bytes


class TestConfigGuards:
    def test_requires_inline_engine(self):
        with pytest.raises(ConfigurationError):
            DPX10Config(engine="threaded", static_schedule=True)

    def test_pattern_without_order_rejected_at_run(self):
        from repro.core.api import DPX10App
        from repro.core.dag import Dag
        from repro.core.runtime import DPX10Runtime

        class NoOrderDag(GridDag):
            def static_order(self):
                return None

        class App(DPX10App):
            def compute(self, i, j, vertices):
                return 0

        with pytest.raises(ConfigurationError, match="static_order"):
            DPX10Runtime(App(), NoOrderDag(3, 3), STATIC).run()
