"""Coverage for the less-travelled remote-fetch estimation branches."""

import pytest

from repro.core.api import VertexId
from repro.core.dag import Dag
from repro.patterns import IntervalDag, TriangularDag
from repro.patterns.knapsack import KnapsackDag
from repro.sim.costmodel import CostModel
from repro.sim.tiles import TileGrid

COST = CostModel.for_app("sw")


class TestKnapsackBlockRows:
    def test_band_boundary_pays_double(self):
        dag = KnapsackDag([3] * 199, 99)
        g = TileGrid(dag, tile_size=50, nplaces=4, dist="block_rows")
        # tile (2, 0): first tile row of place 1's band -> both deps remote
        fetches = g.remote_fetches((2, 0), COST)
        assert fetches == 2.0 * 50  # two edges per boundary cell

    def test_interior_tile_free(self):
        dag = KnapsackDag([3] * 199, 99)
        g = TileGrid(dag, tile_size=50, nplaces=2, dist="block_rows")
        assert g.remote_fetches((1, 0), COST) == 0.0


class TestIntervalBlockRows:
    def test_downward_deps_cross_row_bands(self):
        dag = IntervalDag(200, 200)
        g = TileGrid(dag, tile_size=50, nplaces=4, dist="block_rows")
        # interval reads (i+1, *): the band *below* — tile (1, 2)'s lower
        # neighbour (2, 2) belongs to place 2, so the last row fetches
        fetches = g.remote_fetches((1, 2), COST)
        assert fetches > 0

    def test_triangular_mostly_remote(self):
        dag = TriangularDag(200, 200)
        g = TileGrid(dag, tile_size=50, nplaces=4)
        cells = g.cells((0, 3))
        assert g.remote_fetches((0, 3), COST) == pytest.approx(cells * 3 / 4)


class TestUnknownPatternFallback:
    def test_custom_dag_gets_stencil_like_estimate(self):
        class MyDag(Dag):
            def get_dependency(self, i, j):
                return [VertexId(i, j - 1)] if j > 0 else []

            def get_anti_dependency(self, i, j):
                return [VertexId(i, j + 1)] if j + 1 < self.width else []

            def tile_deps(self, ti, tj, nti, ntj):
                return [(ti, tj - 1)] if tj > 0 else []

        dag = MyDag(100, 200)
        g = TileGrid(dag, tile_size=50, nplaces=4)
        # band-boundary tile: left-boundary estimate applies
        assert g.remote_fetches((0, 1), COST) == 50 * COST.fetches_per_boundary_cell
        assert g.remote_fetches((0, 0), COST) == 0

    def test_exec_time_uses_estimate(self):
        dag = KnapsackDag([5] * 99, 199)
        g = TileGrid(dag, tile_size=50, nplaces=4)
        t_seed = g.exec_time((0, 1), COST)
        t_jump = g.exec_time((1, 1), COST)
        assert t_jump > t_seed  # jump fetches cost time
