"""Tests for the discrete-event simulation engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.patterns import ColumnChainDag, DiagonalDag, GridDag, RowChainDag
from repro.sim.cluster import ClusterSpec
from repro.sim.costmodel import CostModel
from repro.sim.engine import simulate, simulate_with_fault
from repro.sim.recovery_model import recovery_time

COST = CostModel.for_app("swlag")
SMALL = ClusterSpec(nodes=2, places_per_node=2, threads_per_place=2)


class TestLowerBounds:
    """A feasible schedule can never beat work/cores or the critical path."""

    @pytest.mark.parametrize("dag_cls", [GridDag, DiagonalDag, RowChainDag])
    def test_work_bound(self, dag_cls):
        dag = dag_cls(600, 600)
        r = simulate(dag, SMALL, COST, tile_size=100)
        assert r.makespan >= r.work_seconds / r.workers * 0.999

    def test_critical_path_bound_chain(self):
        # column_chain with a single tile column: pure chain of nti tiles
        dag = ColumnChainDag(1000, 50)
        r = simulate(dag, SMALL, COST, tile_size=50)
        chain = 20 * 50 * 50 * COST.t_cell  # 20 tiles, fully serialized
        assert r.makespan == pytest.approx(chain, rel=1e-6)

    def test_single_tile(self):
        dag = GridDag(10, 10)
        r = simulate(dag, SMALL, COST, tile_size=100)
        assert r.ntiles == 1
        assert r.makespan == pytest.approx(100 * COST.t_cell)


class TestParallelism:
    def test_row_chain_scales_nearly_ideally(self):
        # independent rows under a row distribution: every place owns
        # whole chains, so scaling is near-ideal (the per-row chain length
        # and pipeline fill keep it just below the place count)
        dag = RowChainDag(6400, 200)
        t1 = simulate(dag, ClusterSpec(nodes=1, places_per_node=1, threads_per_place=4), COST, tile_size=100, dist="block_rows").makespan
        t4 = simulate(dag, ClusterSpec(nodes=1, places_per_node=4, threads_per_place=4), COST, tile_size=100, dist="block_rows").makespan
        assert t1 / t4 > 2.5

    def test_more_nodes_never_meaningfully_slower(self):
        # scaling helps while work-bound, then flattens once the wavefront
        # critical path dominates — it must never get meaningfully worse
        dag = DiagonalDag(3200, 3200)
        times = [
            simulate(dag, ClusterSpec.tianhe1a(n), COST, tile_size=100).makespan
            for n in (2, 4, 8)
        ]
        assert times[1] <= times[0]
        assert times[2] <= times[1] * 1.05

    def test_speedup_saturates(self):
        # doubling nodes twice must not give 4x on a wavefront DAG
        dag = DiagonalDag(1200, 1200)
        t2 = simulate(dag, ClusterSpec.tianhe1a(2), COST, tile_size=100).makespan
        t8 = simulate(dag, ClusterSpec.tianhe1a(8), COST, tile_size=100).makespan
        assert t2 / t8 < 4.0

    def test_parallel_efficiency_bounds(self):
        r = simulate(DiagonalDag(600, 600), SMALL, COST, tile_size=100)
        assert 0 < r.parallel_efficiency <= 1.0


class TestDeterminism:
    def test_repeatable(self):
        dag = DiagonalDag(500, 500)
        a = simulate(dag, SMALL, COST, tile_size=100)
        b = simulate(dag, SMALL, COST, tile_size=100)
        assert a.makespan == b.makespan
        assert a.work_seconds == b.work_seconds

    def test_completion_log_complete(self):
        r = simulate(GridDag(300, 300), SMALL, COST, tile_size=100)
        assert len(r.completions) == r.ntiles
        finishes = [t for t, _ in r.completions]
        assert finishes == sorted(finishes)


class TestFaultSimulation:
    def test_fault_costs_more_than_no_fault(self):
        dag = DiagonalDag(1000, 1000)
        r = simulate_with_fault(dag, ClusterSpec.tianhe1a(4), COST, fail_node=3, tile_size=100)
        assert r.normalized > 1.0
        assert r.total == pytest.approx(
            r.fail_time + r.recovery_seconds + r.resume_makespan
        )

    def test_recovery_time_matches_model(self):
        dag = DiagonalDag(1000, 1000)
        r = simulate_with_fault(dag, ClusterSpec.tianhe1a(4), COST, fail_node=3, tile_size=100)
        assert r.recovery_seconds == pytest.approx(
            recovery_time(1000 * 1000, 6, COST)
        )

    def test_impact_shrinks_with_more_nodes(self):
        # Figure 13b's claim
        dag = DiagonalDag(1400, 1400)
        n4 = simulate_with_fault(dag, ClusterSpec.tianhe1a(4), COST, fail_node=3, tile_size=100)
        n8 = simulate_with_fault(dag, ClusterSpec.tianhe1a(8), COST, fail_node=7, tile_size=100)
        assert n8.normalized < n4.normalized

    def test_copy_preserves_more_than_discard(self):
        dag = DiagonalDag(1000, 1000)
        kw = dict(cluster=ClusterSpec.tianhe1a(4), cost=COST, fail_node=3, tile_size=100)
        rd = simulate_with_fault(dag, restore_manner="discard", **kw)
        rc = simulate_with_fault(dag, restore_manner="copy", **kw)
        assert rc.tiles_preserved >= rd.tiles_preserved
        assert rc.total <= rd.total

    def test_fault_at_zero_fraction(self):
        dag = DiagonalDag(600, 600)
        r = simulate_with_fault(
            dag, ClusterSpec.tianhe1a(2), COST, fail_node=1, at_fraction=0.0, tile_size=100
        )
        assert r.fail_time == 0.0
        assert r.tiles_preserved == 0

    def test_bad_args_rejected(self):
        from repro.errors import ConfigurationError

        dag = GridDag(100, 100)
        with pytest.raises(ConfigurationError):
            simulate_with_fault(dag, ClusterSpec.tianhe1a(2), COST, fail_node=5)
        with pytest.raises(ConfigurationError):
            simulate_with_fault(dag, ClusterSpec.tianhe1a(1), COST, fail_node=0)
        with pytest.raises(ConfigurationError):
            simulate_with_fault(
                dag, ClusterSpec.tianhe1a(2), COST, fail_node=1, at_fraction=1.5
            )


@settings(max_examples=12, deadline=None)
@given(
    n=st.integers(100, 600),
    nodes=st.integers(1, 6),
    tile=st.integers(20, 120),
)
def test_property_makespan_bounds(n, nodes, tile):
    """work/cores <= makespan <= total work (never faster than perfect,
    never slower than fully serial)."""
    dag = GridDag(n, n)
    cluster = ClusterSpec.tianhe1a(nodes)
    r = simulate(dag, cluster, COST, tile_size=tile)
    assert r.makespan <= r.work_seconds * (1 + 1e-9)
    assert r.makespan >= r.work_seconds / r.workers * (1 - 1e-9)


@settings(max_examples=10, deadline=None)
@given(size=st.integers(200, 900))
def test_property_makespan_monotone_in_size(size):
    dag_small = DiagonalDag(size, size)
    dag_big = DiagonalDag(size + 100, size + 100)
    c = ClusterSpec.tianhe1a(3)
    assert (
        simulate(dag_big, c, COST, tile_size=100).makespan
        > simulate(dag_small, c, COST, tile_size=100).makespan
    )
