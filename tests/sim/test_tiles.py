"""Tests for the tile decomposition and its cost estimates."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.patterns import DiagonalDag, GridDag, IntervalDag, TriangularDag, FullRowDag
from repro.patterns.knapsack import KnapsackDag
from repro.sim.costmodel import CostModel
from repro.sim.tiles import TileGrid, active_cells_in_rect

COST = CostModel.for_app("swlag")


class TestActiveCellsInRect:
    def test_dense_is_area(self):
        assert active_cells_in_rect(GridDag(10, 10), 2, 5, 3, 7) == 12

    def test_empty_rect(self):
        assert active_cells_in_rect(GridDag(10, 10), 2, 2, 0, 5) == 0

    def test_triangular_full_matrix(self):
        n = 7
        dag = IntervalDag(n, n)
        assert active_cells_in_rect(dag, 0, n, 0, n) == n * (n + 1) // 2

    @settings(max_examples=60, deadline=None)
    @given(
        r0=st.integers(0, 10),
        h=st.integers(0, 10),
        c0=st.integers(0, 10),
        w=st.integers(0, 10),
    )
    def test_triangular_matches_bruteforce(self, r0, h, c0, w):
        dag = TriangularDag(25, 25)
        got = active_cells_in_rect(dag, r0, r0 + h, c0, c0 + w)
        want = sum(
            1
            for i in range(r0, r0 + h)
            for j in range(c0, c0 + w)
            if i <= j
        )
        assert got == want


class TestTileGrid:
    def test_tile_counts(self):
        g = TileGrid(GridDag(100, 150), tile_size=50, nplaces=3)
        assert (g.nti, g.ntj) == (2, 3)
        assert len(g.tiles) == 6
        assert g.total_cells == 100 * 150

    def test_edge_tiles_clipped(self):
        g = TileGrid(GridDag(10, 10), tile_size=7, nplaces=1)
        assert g.cells((0, 0)) == 49
        assert g.cells((1, 1)) == 9

    def test_interval_skips_inactive_tiles(self):
        g = TileGrid(IntervalDag(100, 100), tile_size=50, nplaces=1)
        assert (1, 0) not in g._cells
        assert g.total_cells == 100 * 101 // 2

    def test_deps_filtered_to_active(self):
        g = TileGrid(IntervalDag(100, 100), tile_size=50, nplaces=1)
        assert set(g.deps((0, 1))) == {(1, 1), (0, 0)}


class TestPlacement:
    def test_block_cols_bands(self):
        g = TileGrid(GridDag(100, 400), tile_size=50, nplaces=4)  # 8 tile cols
        places = [g.place_of((0, tj)) for tj in range(8)]
        assert places == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_block_rows_bands(self):
        g = TileGrid(GridDag(400, 100), tile_size=50, nplaces=4, dist="block_rows")
        places = [g.place_of((ti, 0)) for ti in range(8)]
        assert places == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_uneven_bands(self):
        g = TileGrid(GridDag(10, 50), tile_size=10, nplaces=3)  # 5 tile cols
        places = [g.place_of((0, tj)) for tj in range(5)]
        assert places == [0, 0, 1, 1, 2]  # first band gets the extra

    def test_survivor_remap(self):
        g = TileGrid(GridDag(100, 400), tile_size=50, nplaces=4)
        # over survivors [0, 2, 3], bands are recomputed
        places = [g.place_of((0, tj), [0, 2, 3]) for tj in range(8)]
        assert places == [0, 0, 0, 2, 2, 2, 3, 3]

    def test_more_places_than_tile_columns(self):
        g = TileGrid(GridDag(10, 20), tile_size=10, nplaces=5)
        for tj in range(2):
            assert 0 <= g.place_of((0, tj)) < 5

    def test_invalid_args(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            TileGrid(GridDag(4, 4), tile_size=0, nplaces=1)
        with pytest.raises(ConfigurationError):
            TileGrid(GridDag(4, 4), tile_size=2, nplaces=1, dist="cyclic_rows")


class TestRemoteFetches:
    def test_interior_tile_no_fetches(self):
        g = TileGrid(DiagonalDag(100, 400), tile_size=50, nplaces=4)
        assert g.remote_fetches((0, 1), COST) == 0  # same band as (0, 0)

    def test_band_boundary_tile_fetches(self):
        g = TileGrid(DiagonalDag(100, 400), tile_size=50, nplaces=4)
        # tile (0, 2) is the first column of place 1's band
        fetches = g.remote_fetches((0, 2), COST)
        assert fetches == 50 * COST.fetches_per_boundary_cell

    def test_cacheless_fetches_more(self):
        g = TileGrid(DiagonalDag(100, 400), tile_size=50, nplaces=4)
        assert g.remote_fetches((0, 2), COST.cacheless()) == 3 * g.remote_fetches(
            (0, 2), COST
        )

    def test_first_band_never_remote(self):
        g = TileGrid(DiagonalDag(100, 400), tile_size=50, nplaces=4)
        assert g.remote_fetches((1, 0), COST) == 0

    def test_block_rows_crossing(self):
        g = TileGrid(DiagonalDag(400, 100), tile_size=50, nplaces=4, dist="block_rows")
        assert g.remote_fetches((2, 0), COST) == 50  # first row of place 1's band
        assert g.remote_fetches((1, 0), COST) == 0

    def test_full_row_pattern_mostly_remote(self):
        g = TileGrid(FullRowDag(100, 400), tile_size=50, nplaces=4)
        cells = g.cells((1, 0))
        assert g.remote_fetches((1, 0), COST) == pytest.approx(cells * 3 / 4)

    def test_knapsack_jump_fraction(self):
        dag = KnapsackDag([3] * 99, 399)
        g = TileGrid(dag, tile_size=50, nplaces=4)
        cells = g.cells((1, 1))
        expect = cells * min(1.0, COST.knapsack_weight_fraction * 4)
        assert g.remote_fetches((1, 1), COST) == pytest.approx(expect)

    def test_knapsack_seed_row_free(self):
        dag = KnapsackDag([3] * 99, 399)
        g = TileGrid(dag, tile_size=50, nplaces=4)
        assert g.remote_fetches((0, 1), COST) == 0

    def test_exec_time_positive_and_additive(self):
        g = TileGrid(DiagonalDag(100, 400), tile_size=50, nplaces=4)
        t_interior = g.exec_time((0, 1), COST)
        t_boundary = g.exec_time((0, 2), COST)
        assert t_interior == pytest.approx(2500 * COST.t_cell)
        assert t_boundary > t_interior
