"""Tests for the calibrated cost model."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.costmodel import CostModel


class TestCostModel:
    def test_t_cell_composition(self):
        c = CostModel(t_vertex=1e-6, framework_overhead=0.1, dep_factor=0.5)
        assert c.t_cell == pytest.approx(1e-6 * 1.1 * 1.5)

    def test_native_drops_framework_overhead_only(self):
        c = CostModel.for_app("swlag")
        n = c.native()
        assert n.framework_overhead == 0.0
        assert n.t_vertex == c.t_vertex
        assert n.t_msg == c.t_msg
        assert n.t_cell < c.t_cell

    def test_cacheless_triples_boundary_fetches(self):
        c = CostModel.for_app("swlag").cacheless()
        assert c.fetches_per_boundary_cell == 3.0

    def test_presets_exist_for_evaluation_apps(self):
        for app in ("swlag", "sw", "mtp", "lps", "knapsack"):
            assert CostModel.for_app(app).t_vertex > 0

    def test_unknown_app_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel.for_app("tsp")

    def test_knapsack_has_dep_resolution_surcharge(self):
        # "0/1KP takes a little longer since it needs more time to resolve
        # the dependencies"
        assert CostModel.for_app("knapsack").dep_factor > 0
        assert CostModel.for_app("mtp").dep_factor == 0

    def test_recovery_constant_matches_fig13a_anchor(self):
        # 500M vertices, 4-node cluster -> 3 surviving nodes = 6 places
        c = CostModel.for_app("swlag")
        assert 500e6 * c.t_recover / 6 == pytest.approx(65.0, rel=0.01)

    def test_invalid_values_rejected(self):
        with pytest.raises(ConfigurationError):
            CostModel(t_vertex=0)
        with pytest.raises(ConfigurationError):
            CostModel(t_vertex=1e-6, framework_overhead=-0.1)
