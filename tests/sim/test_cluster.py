"""Tests for ClusterSpec."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.cluster import ClusterSpec


class TestClusterSpec:
    def test_tianhe1a_matches_paper_setup(self):
        c = ClusterSpec.tianhe1a(10)
        assert c.nplaces == 20  # X10_NPLACES = 2 x nodes
        assert c.threads_per_place == 6  # X10_NTHREADS
        assert c.workers == 120  # "10 nodes (120 cores)"

    def test_invalid_specs_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec(nodes=0)
        with pytest.raises(ConfigurationError):
            ClusterSpec(nodes=1, threads_per_place=0)
        with pytest.raises(ConfigurationError):
            ClusterSpec(nodes=1, beta=0)

    def test_without_node(self):
        c = ClusterSpec.tianhe1a(4).without_node(2)
        assert c.nodes == 3
        assert c.workers == 36

    def test_without_only_node_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec.tianhe1a(1).without_node(0)

    def test_without_bad_node_rejected(self):
        with pytest.raises(ConfigurationError):
            ClusterSpec.tianhe1a(2).without_node(5)

    def test_frozen(self):
        import dataclasses

        with pytest.raises(dataclasses.FrozenInstanceError):
            ClusterSpec.tianhe1a(2).nodes = 5
