"""Tests for the snapshot-FT simulation baseline."""

import pytest

from repro.errors import ConfigurationError
from repro.patterns import DiagonalDag
from repro.sim.cluster import ClusterSpec
from repro.sim.costmodel import CostModel
from repro.sim.engine import simulate, simulate_with_fault_snapshot

COST = CostModel.for_app("swlag")
DAG = DiagonalDag(1200, 1200)
CLUSTER = ClusterSpec.tianhe1a(4)
KW = dict(fail_node=3, tile_size=100)


class TestSnapshotSim:
    def test_total_decomposition(self):
        r = simulate_with_fault_snapshot(DAG, CLUSTER, COST, **KW)
        assert r.total == pytest.approx(
            r.fail_time + r.checkpoint_seconds + r.restore_seconds + r.resume_makespan
        )
        assert r.normalized > 1.0

    def test_denser_checkpoints_cost_more_save_more(self):
        dense = simulate_with_fault_snapshot(
            DAG, CLUSTER, COST, checkpoint_every=0.05, **KW
        )
        sparse = simulate_with_fault_snapshot(
            DAG, CLUSTER, COST, checkpoint_every=0.45, **KW
        )
        assert dense.snapshots_taken > sparse.snapshots_taken
        assert dense.checkpoint_seconds > sparse.checkpoint_seconds
        # denser checkpoints roll back less work
        assert dense.resume_makespan <= sparse.resume_makespan

    def test_no_checkpoint_before_first_interval(self):
        r = simulate_with_fault_snapshot(
            DAG, CLUSTER, COST, at_fraction=0.2, checkpoint_every=0.5, **KW
        )
        assert r.snapshots_taken == 0
        assert r.checkpoint_seconds == 0.0
        # full rollback: resume redoes everything
        base = simulate(DAG, CLUSTER, COST, tile_size=100).makespan
        assert r.resume_makespan >= base * 0.5

    def test_checkpoint_tax_grows_with_progress(self):
        early = simulate_with_fault_snapshot(
            DAG, CLUSTER, COST, at_fraction=0.2, checkpoint_every=0.1, **KW
        )
        late = simulate_with_fault_snapshot(
            DAG, CLUSTER, COST, at_fraction=0.9, checkpoint_every=0.1, **KW
        )
        # the paper's volume argument: later snapshots copy more
        assert late.checkpoint_seconds > 3 * early.checkpoint_seconds

    def test_bad_args_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate_with_fault_snapshot(
                DAG, CLUSTER, COST, fail_node=3, checkpoint_every=0.0
            )
        with pytest.raises(ConfigurationError):
            simulate_with_fault_snapshot(
                DAG, ClusterSpec.tianhe1a(1), COST, fail_node=0
            )
