"""Tests for the multi-fault simulation and per-place utilization."""

import pytest

from repro.errors import ConfigurationError
from repro.patterns import DiagonalDag
from repro.sim.cluster import ClusterSpec
from repro.sim.costmodel import CostModel
from repro.sim.engine import simulate, simulate_with_fault, simulate_with_faults

COST = CostModel.for_app("swlag")
DAG = DiagonalDag(1000, 1000)
CLUSTER = ClusterSpec.tianhe1a(4)


class TestMultiFault:
    def test_single_fault_consistent_with_dedicated_path(self):
        multi = simulate_with_faults(
            DAG, CLUSTER, COST, [(3, 0.5)], tile_size=100
        )
        single = simulate_with_fault(
            DAG, CLUSTER, COST, fail_node=3, at_fraction=0.5, tile_size=100
        )
        assert multi.total == pytest.approx(single.total, rel=1e-9)
        assert multi.no_fault_makespan == single.no_fault_makespan

    def test_two_faults_cost_more_than_one(self):
        one = simulate_with_faults(DAG, CLUSTER, COST, [(3, 0.4)], tile_size=100)
        two = simulate_with_faults(
            DAG, CLUSTER, COST, [(3, 0.4), (2, 0.7)], tile_size=100
        )
        assert two.total > one.total
        assert len(two.recoveries) == 2
        assert two.surviving_nodes == 2

    def test_no_faults_equals_baseline(self):
        r = simulate_with_faults(DAG, CLUSTER, COST, [], tile_size=100)
        assert r.total == pytest.approx(r.no_fault_makespan)
        assert r.recoveries == []

    def test_duplicate_node_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate_with_faults(DAG, CLUSTER, COST, [(1, 0.2), (1, 0.6)])

    def test_killing_everything_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate_with_faults(
                DAG, CLUSTER, COST, [(0, 0.1), (1, 0.2), (2, 0.3), (3, 0.4)]
            )

    def test_copy_restores_at_least_as_much(self):
        kw = dict(tile_size=100)
        d = simulate_with_faults(
            DAG, CLUSTER, COST, [(3, 0.5), (2, 0.8)], restore_manner="discard", **kw
        )
        c = simulate_with_faults(
            DAG, CLUSTER, COST, [(3, 0.5), (2, 0.8)], restore_manner="copy", **kw
        )
        assert c.total <= d.total


class TestPlaceUtilization:
    def test_bounds_and_coverage(self):
        r = simulate(DAG, CLUSTER, COST, tile_size=100)
        util = r.place_utilization()
        assert set(util) == set(range(CLUSTER.nplaces))
        assert all(0.0 <= u <= 1.0 for u in util.values())
        assert max(util.values()) > 0.0  # someone worked
        # utilization is consistent with the aggregate efficiency
        mean_util = sum(util.values()) / len(util)
        assert mean_util == pytest.approx(r.parallel_efficiency, rel=0.05)

    def test_busy_sums_to_work(self):
        r = simulate(DAG, CLUSTER, COST, tile_size=100)
        assert sum(r.busy_by_place.values()) == pytest.approx(r.work_seconds)
