"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.__main__ import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tsp"])

    def test_runtime_flags(self):
        args = build_parser().parse_args(
            ["lcs", "AB", "BA", "--places", "7", "--engine", "threaded",
             "--scheduler", "mincomm", "--cache-size", "9"]
        )
        assert args.places == 7
        assert args.engine == "threaded"
        assert args.scheduler == "mincomm"
        assert args.cache_size == 9


class TestCommands:
    def test_lcs(self, capsys):
        assert main(["lcs", "ABC", "DBC", "--places", "2"]) == 0
        out = capsys.readouterr().out
        assert "'BC'" in out and "length 2" in out

    def test_sw(self, capsys):
        assert main(["sw", "ACGT", "ACGT", "--places", "2"]) == 0
        assert "best local score: 8" in capsys.readouterr().out

    def test_nw(self, capsys):
        assert main(["nw", "GATTACA", "GCATGCT", "--places", "2"]) == 0
        assert "global score: -1" in capsys.readouterr().out

    def test_lps(self, capsys):
        assert main(["lps", "character", "--places", "2"]) == 0
        assert "length 5" in capsys.readouterr().out

    def test_knapsack(self, capsys):
        assert main(["knapsack", "--items", "6", "--capacity", "15"]) == 0
        out = capsys.readouterr().out
        assert "best value" in out and "chosen items" in out

    def test_matrix_chain(self, capsys):
        assert main(["matrix-chain", "--n", "5"]) == 0
        assert "minimal multiplications" in capsys.readouterr().out

    def test_egg_drop(self, capsys):
        assert main(["egg-drop", "--eggs", "2", "--floors", "36"]) == 0
        assert "8 trials" in capsys.readouterr().out

    def test_substring(self, capsys):
        assert main(["substring", "BANANAS", "KATANA"]) == 0
        assert "'ANA'" in capsys.readouterr().out

    def test_cyk(self, capsys):
        assert main(["cyk", "(()())"]) == 0
        assert "is derivable" in capsys.readouterr().out
        assert main(["cyk", "(()"]) == 0
        assert "NOT derivable" in capsys.readouterr().out

    def test_patterns_lists_all_eight(self, capsys):
        assert main(["patterns"]) == 0
        out = capsys.readouterr().out
        for name in ("grid", "diagonal", "row_chain", "column_chain",
                     "interval", "antidiag", "full_row", "triangular"):
            assert name in out

    def test_threaded_engine(self, capsys):
        assert main(["lcs", "ABCD", "BCDA", "--engine", "threaded"]) == 0
        assert "length 3" in capsys.readouterr().out


class TestFigureCommands:
    def test_fig12_small(self, capsys):
        assert main(["fig12", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "Figure 12" in out and "4 nodes" in out

    def test_fig13_small(self, capsys):
        assert main(["fig13", "--scale", "small"]) == 0
        out = capsys.readouterr().out
        assert "recovery seconds" in out and "normalized" in out
