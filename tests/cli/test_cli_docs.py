"""The CLI registration table vs what the documentation promises.

Subcommands used to be wired into ``build_parser`` piecemeal, which let
a documented command silently miss registration. Now every subsystem
registers through ``SUBSYSTEM_PARSERS`` and this test closes the loop:
any ``python -m repro <command>`` mentioned in README or docs/ must be a
real registered command.
"""

import argparse
import importlib
import re
from pathlib import Path

from repro.__main__ import SUBSYSTEM_PARSERS, build_parser

REPO = Path(__file__).resolve().parents[2]

_CMD_RE = re.compile(r"python -m repro ([a-z][a-z0-9_-]*)")


def _registered_commands():
    parser = build_parser()
    sub = next(
        a for a in parser._actions if isinstance(a, argparse._SubParsersAction)
    )
    return set(sub.choices)


def _documented_commands():
    found = {}
    for path in [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]:
        for cmd in _CMD_RE.findall(path.read_text()):
            found.setdefault(cmd, []).append(path.name)
    return found


def test_every_documented_command_is_registered():
    registered = _registered_commands()
    documented = _documented_commands()
    assert documented, "no documented commands found — regex or layout drift"
    missing = {c: docs for c, docs in documented.items() if c not in registered}
    assert not missing, (
        f"commands documented but not registered on the CLI: {missing}"
    )


def test_subsystem_table_entries_resolve():
    seen_before = _registered_commands()
    for module_name, fn_name in SUBSYSTEM_PARSERS:
        fn = getattr(importlib.import_module(module_name), fn_name)
        assert callable(fn), f"{module_name}.{fn_name} is not callable"
    # the table is the only registration path: removing it would lose
    # every subsystem command
    core_only = {"lcs", "sw", "nw", "patterns", "fig10"}
    assert core_only < seen_before
    for expected in ("lint", "analyze", "obs", "chaos", "serve"):
        assert expected in seen_before, f"{expected} lost from the CLI"


def test_serve_command_parses():
    args = build_parser().parse_args(["serve", "--port", "0", "--no-prewarm"])
    assert args.port == 0 and args.no_prewarm
    assert callable(args.fn)


def test_chaos_soak_command_parses():
    args = build_parser().parse_args(
        ["chaos", "soak", "--requests", "2", "--size", "24"]
    )
    assert args.requests == 2 and callable(args.fn)
