"""Differential testing with randomly generated stencil patterns.

Any offset set whose members all point "into the past" (lexicographically
negative: ``di < 0``, or ``di == 0 and dj < 0``) induces an acyclic DAG,
so hypothesis can generate whole pattern families the hand-written tests
never thought of. Each random pattern runs a generic recurrence through
the framework and through a direct row-major evaluation; the matrices
must match cell for cell.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apgas.failure import FaultPlan
from repro.core.api import DPX10App
from repro.core.config import DPX10Config
from repro.core.runtime import DPX10Runtime
from repro.patterns.base import StencilDag

# past-pointing offsets keep the DAG acyclic under row-major order
past_offsets = st.lists(
    st.tuples(st.integers(-3, 0), st.integers(-3, 3)).filter(
        lambda o: o[0] < 0 or (o[0] == 0 and o[1] < 0)
    ),
    min_size=1,
    max_size=4,
    unique=True,
)


def make_stencil(offsets):
    class RandomStencil(StencilDag):
        pass

    RandomStencil.offsets = tuple(offsets)
    return RandomStencil


class GenericApp(DPX10App[int]):
    """max(deps) + i*31 + j*7 + 1 — injective enough to catch mix-ups."""

    value_dtype = np.int64

    def compute(self, i, j, vertices):
        base = i * 31 + j * 7 + 1
        if not vertices:
            return base
        return max(v.get_result() for v in vertices) + base


def direct_eval(dag):
    """Row-major evaluation — a valid topological order for past stencils."""
    out = {}
    for i in range(dag.height):
        for j in range(dag.width):
            deps = dag.get_dependency(i, j)
            base = i * 31 + j * 7 + 1
            if deps:
                out[(i, j)] = max(out[(d.i, d.j)] for d in deps) + base
            else:
                out[(i, j)] = base
    return out


@settings(max_examples=30, deadline=None)
@given(
    offsets=past_offsets,
    h=st.integers(1, 8),
    w=st.integers(1, 8),
    nplaces=st.integers(1, 4),
)
def test_random_stencil_matches_direct_evaluation(offsets, h, w, nplaces):
    dag_cls = make_stencil(offsets)
    dag = dag_cls(h, w)
    dag.validate()  # the generator guarantee, checked
    app = GenericApp()
    DPX10Runtime(app, dag, DPX10Config(nplaces=nplaces)).run()
    expect = direct_eval(dag_cls(h, w))
    for (i, j), value in expect.items():
        assert dag.get_vertex(i, j).get_result() == value, (offsets, (i, j))


@settings(max_examples=12, deadline=None)
@given(
    offsets=past_offsets,
    completions=st.integers(0, 60),
)
def test_random_stencil_survives_fault(offsets, completions):
    dag_cls = make_stencil(offsets)
    dag = dag_cls(7, 7)
    app = GenericApp()
    DPX10Runtime(
        app,
        dag,
        DPX10Config(nplaces=3),
        fault_plans=[FaultPlan(2, after_completions=completions)],
    ).run()
    expect = direct_eval(dag_cls(7, 7))
    for (i, j), value in expect.items():
        assert dag.get_vertex(i, j).get_result() == value


@settings(max_examples=15, deadline=None)
@given(offsets=past_offsets, h=st.integers(1, 10), w=st.integers(1, 10))
def test_random_stencil_bulk_indegrees_agree(offsets, h, w):
    dag = make_stencil(offsets)(h, w)
    cells = list(dag.region)
    rows = np.array([c[0] for c in cells])
    cols = np.array([c[1] for c in cells])
    bulk = dag.bulk_indegrees(rows, cols)
    assert bulk is not None
    scalar = [len(dag.get_dependency(i, j)) for i, j in cells]
    np.testing.assert_array_equal(bulk, scalar)
