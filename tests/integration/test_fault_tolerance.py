"""Integration: recovery correctness under faults at arbitrary points."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apgas.failure import FaultPlan
from repro.apps.lcs import solve_lcs
from repro.apps.knapsack import make_knapsack_instance, solve_knapsack
from repro.apps.lps import solve_lps
from repro.apps.serial import knapsack_matrix, lcs_matrix, lps_matrix
from repro.core.config import DPX10Config
from repro.errors import PlaceZeroDeadError

X, Y = "ABCBDABACGTACGT", "BDCABAACGGTTAC"
EXPECT = int(lcs_matrix(X, Y)[-1, -1])


class TestSingleFault:
    @pytest.mark.parametrize("engine", ["inline", "threaded"])
    @pytest.mark.parametrize("victim", [1, 2, 3])
    def test_lcs_answer_preserved(self, engine, victim):
        cfg = DPX10Config(nplaces=4, engine=engine)
        app, rep = solve_lcs(
            X, Y, cfg, fault_plans=[FaultPlan(victim, at_fraction=0.5)]
        )
        assert app.length == EXPECT
        assert rep.recoveries == 1
        assert rep.final_alive_places == 3

    @pytest.mark.parametrize("fraction", [0.0, 0.1, 0.5, 0.9, 1.0])
    def test_fault_at_any_fraction(self, fraction):
        cfg = DPX10Config(nplaces=3)
        app, rep = solve_lcs(
            X, Y, cfg, fault_plans=[FaultPlan(2, at_fraction=fraction)]
        )
        assert app.length == EXPECT
        # a fault at fraction 1.0 can fire only on the very last completion
        assert rep.recoveries in (0, 1)

    @pytest.mark.parametrize("restore", ["discard", "copy"])
    def test_restore_manners_agree(self, restore):
        cfg = DPX10Config(nplaces=4, restore_manner=restore)
        app, _ = solve_lcs(X, Y, cfg, fault_plans=[FaultPlan(2, at_fraction=0.4)])
        assert app.length == EXPECT


class TestMultipleFaults:
    def test_cascade_down_to_one_place(self):
        cfg = DPX10Config(nplaces=4)
        plans = [
            FaultPlan(1, at_fraction=0.2),
            FaultPlan(2, at_fraction=0.5),
            FaultPlan(3, at_fraction=0.8),
        ]
        app, rep = solve_lcs(X, Y, cfg, fault_plans=plans)
        assert app.length == EXPECT
        assert rep.final_alive_places == 1
        assert rep.recoveries == 3

    def test_simultaneous_faults(self):
        cfg = DPX10Config(nplaces=5)
        plans = [
            FaultPlan(2, after_completions=40),
            FaultPlan(3, after_completions=40),
        ]
        app, rep = solve_lcs(X, Y, cfg, fault_plans=plans)
        assert app.length == EXPECT
        assert rep.final_alive_places == 3


class TestOtherAppsUnderFaults:
    def test_lps(self):
        s = "BBABCBCABBACB"
        app, _ = solve_lps(
            s,
            DPX10Config(nplaces=3),
            fault_plans=[FaultPlan(1, at_fraction=0.5)],
        )
        assert app.length == lps_matrix(s)[0, len(s) - 1]

    def test_knapsack(self):
        w, v = make_knapsack_instance(8, 20, seed=3)
        app, _ = solve_knapsack(
            w,
            v,
            20,
            DPX10Config(nplaces=3),
            fault_plans=[FaultPlan(2, at_fraction=0.5)],
        )
        assert app.best_value == knapsack_matrix(w, v, 20)[-1, -1]


class TestPlaceZeroLimitation:
    @pytest.mark.parametrize("engine", ["inline", "threaded"])
    def test_faithful_to_resilient_x10(self, engine):
        cfg = DPX10Config(nplaces=3, engine=engine)
        with pytest.raises(PlaceZeroDeadError):
            solve_lcs(X, Y, cfg, fault_plans=[FaultPlan(0, at_fraction=0.3)])


@settings(max_examples=25, deadline=None)
@given(
    completions=st.integers(0, 200),
    victim=st.integers(1, 2),
    dist=st.sampled_from(["block_rows", "block_cols", "cyclic_cols"]),
)
def test_property_fault_at_any_completion_count(completions, victim, dist):
    """Killing any non-zero place after any number of completions still
    yields the oracle answer."""
    cfg = DPX10Config(nplaces=3, distribution=dist)
    app, _ = solve_lcs(
        X, Y, cfg, fault_plans=[FaultPlan(victim, after_completions=completions)]
    )
    assert app.length == EXPECT
