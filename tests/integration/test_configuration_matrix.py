"""Integration: the framework result is invariant across every runtime knob.

The answer to a DP problem must not depend on the engine, the scheduler,
the distribution, the cache size, or the number of places — these only
move work and data around. Each test runs the same workload across one
axis of the configuration space and checks oracle equality.
"""

import pytest

from repro.apps.lcs import solve_lcs
from repro.apps.knapsack import make_knapsack_instance, solve_knapsack
from repro.apps.serial import knapsack_matrix, lcs_matrix
from repro.core.config import DPX10Config

X, Y = "ABCBDABACGTACGT", "BDCABAACGGTTAC"
EXPECT = int(lcs_matrix(X, Y)[-1, -1])


class TestEngineAxis:
    @pytest.mark.parametrize("engine", ["inline", "threaded"])
    @pytest.mark.parametrize("nplaces", [1, 2, 5])
    def test_lcs(self, engine, nplaces):
        cfg = DPX10Config(nplaces=nplaces, engine=engine, threads_per_place=2)
        app, _ = solve_lcs(X, Y, cfg)
        assert app.length == EXPECT


class TestSchedulerAxis:
    @pytest.mark.parametrize("scheduler", ["local", "random", "mincomm"])
    def test_lcs(self, scheduler):
        cfg = DPX10Config(nplaces=4, scheduler=scheduler, seed=3)
        app, _ = solve_lcs(X, Y, cfg)
        assert app.length == EXPECT

    @pytest.mark.parametrize("scheduler", ["local", "random", "mincomm"])
    def test_threaded(self, scheduler):
        cfg = DPX10Config(nplaces=3, engine="threaded", scheduler=scheduler)
        app, _ = solve_lcs(X, Y, cfg)
        assert app.length == EXPECT


class TestDistributionAxis:
    @pytest.mark.parametrize(
        "dist",
        ["block_rows", "block_cols", "block_flat", "cyclic_rows", "cyclic_cols", "block_cyclic"],
    )
    def test_lcs(self, dist):
        cfg = DPX10Config(nplaces=3, distribution=dist, dist_block=(2, 2))
        app, _ = solve_lcs(X, Y, cfg)
        assert app.length == EXPECT

    def test_custom_distribution(self):
        from repro.dist.dist import Dist

        cfg = DPX10Config(
            nplaces=3,
            custom_dist=lambda region, alive: Dist.custom(
                region, alive, lambda i, j: alive[(i * 7 + j) % len(alive)]
            ),
        )
        app, _ = solve_lcs(X, Y, cfg)
        assert app.length == EXPECT


class TestCacheAxis:
    @pytest.mark.parametrize("cache_size", [0, 1, 4, 1024])
    def test_lcs(self, cache_size):
        cfg = DPX10Config(nplaces=3, cache_size=cache_size)
        app, _ = solve_lcs(X, Y, cfg)
        assert app.length == EXPECT

    def test_cache_hit_rate_monotone_in_capacity(self):
        rates = []
        for size in (0, 2, 64):
            cfg = DPX10Config(nplaces=3, cache_size=size, distribution="block_rows")
            _, rep = solve_lcs(X, Y, cfg)
            rates.append(rep.cache_hit_rate)
        assert rates[0] == 0.0
        assert rates[2] >= rates[1] >= rates[0]


class TestKnapsackAcrossKnobs:
    """The irregular pattern exercises data-dependent cross-place edges."""

    W, V = make_knapsack_instance(9, 25, seed=7)
    EXPECT_KP = int(knapsack_matrix(W, V, 25)[-1, -1])

    @pytest.mark.parametrize("engine", ["inline", "threaded"])
    @pytest.mark.parametrize("dist", ["block_rows", "block_cols", "cyclic_cols"])
    def test_knapsack(self, engine, dist):
        cfg = DPX10Config(nplaces=3, engine=engine, distribution=dist)
        app, _ = solve_knapsack(self.W, self.V, 25, cfg)
        assert app.best_value == self.EXPECT_KP


class TestDeterminism:
    def test_inline_runs_identical(self):
        cfg = DPX10Config(nplaces=3, scheduler="random", seed=42)
        _, rep1 = solve_lcs(X, Y, cfg)
        _, rep2 = solve_lcs(X, Y, cfg)
        assert rep1.completions == rep2.completions
        assert rep1.network_bytes == rep2.network_bytes
        assert rep1.cache_hits == rep2.cache_hits

    def test_seed_changes_random_scheduling(self):
        reps = []
        for seed in (1, 2):
            cfg = DPX10Config(nplaces=4, scheduler="random", seed=seed)
            _, rep = solve_lcs(X, Y, cfg)
            reps.append(rep.network_bytes)
        # different placement decisions almost surely move different bytes
        assert reps[0] != reps[1]
