"""All three engines must produce cell-identical result matrices.

The engines differ in everything incidental — thread model, process
model, scheduling order, communication — and in nothing semantic. The
strongest statement of that is full-matrix equality, app by app.
"""

import numpy as np
import pytest

from repro.apps.knapsack import make_knapsack_instance, solve_knapsack
from repro.apps.lcs import solve_lcs
from repro.apps.lps import solve_lps
from repro.apps.mtp import make_mtp_weights, solve_mtp
from repro.apps.serial import (
    knapsack_matrix,
    lcs_matrix,
    lps_matrix,
    mtp_matrix,
    sw_matrix,
)
from repro.core.config import DPX10Config

ENGINES = ["inline", "threaded", "mp"]


def cfg(engine):
    return DPX10Config(nplaces=3, engine=engine)


class TestFullMatrixAgreement:
    @pytest.mark.parametrize("engine", ENGINES)
    def test_lcs_matrix_equals_oracle(self, engine):
        x, y = "ABCBDABACG", "BDCABAACGG"
        app, _ = solve_lcs(x, y, cfg(engine))
        # bind gives access to the full matrix
        from repro.patterns.diagonal import DiagonalDag  # noqa: F401

        # re-solve to hold the dag: use the runtime API directly
        from repro.apps.lcs import LCSApp
        from repro.core.runtime import DPX10Runtime
        from repro.patterns.diagonal import DiagonalDag

        app = LCSApp(x, y)
        dag = DiagonalDag(len(x) + 1, len(y) + 1)
        DPX10Runtime(app, dag, cfg(engine)).run()
        got = dag.to_array(dtype=np.int64).astype(np.int64)
        np.testing.assert_array_equal(got, lcs_matrix(x, y))

    @pytest.mark.parametrize("engine", ENGINES)
    def test_sw_matrix_equals_oracle(self, engine):
        from repro.apps.smith_waterman import SWApp
        from repro.core.runtime import DPX10Runtime
        from repro.patterns.diagonal import DiagonalDag

        x, y = "ACACACTA", "AGCACACA"
        app = SWApp(x, y)
        dag = DiagonalDag(len(x) + 1, len(y) + 1)
        DPX10Runtime(app, dag, cfg(engine)).run()
        got = dag.to_array(dtype=np.int64).astype(np.int64)
        np.testing.assert_array_equal(got, sw_matrix(x, y))

    @pytest.mark.parametrize("engine", ENGINES)
    def test_lps_answer(self, engine):
        s = "BBABCBCABBA"
        app, _ = solve_lps(s, cfg(engine))
        assert app.length == lps_matrix(s)[0, len(s) - 1]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_mtp_answer(self, engine):
        wd, wr = make_mtp_weights(6, 7, seed=13)
        app, _ = solve_mtp(wd, wr, cfg(engine))
        assert app.best_path_weight == mtp_matrix(wd, wr)[-1, -1]

    @pytest.mark.parametrize("engine", ENGINES)
    def test_knapsack_answer(self, engine):
        w, v = make_knapsack_instance(8, 22, seed=21)
        app, _ = solve_knapsack(w, v, 22, cfg(engine))
        assert app.best_value == knapsack_matrix(w, v, 22)[-1, -1]


class TestToArray:
    def test_fill_for_inactive_cells(self):
        from repro.apps.lps import LPSApp
        from repro.core.runtime import DPX10Runtime
        from repro.patterns.interval import IntervalDag

        s = "ABCA"
        app = LPSApp(s)
        dag = IntervalDag(4, 4)
        DPX10Runtime(app, dag, cfg("inline")).run()
        arr = dag.to_array(fill=-1)
        assert arr[2, 0] == -1  # inactive lower triangle
        assert arr[0, 3] == lps_matrix(s)[0, 3]

    def test_requires_run(self):
        from repro.errors import DPX10Error
        from repro.patterns.grid import GridDag

        with pytest.raises(DPX10Error):
            GridDag(2, 2).to_array()
