"""Everything on at once: the features must compose.

A run with the threaded engine, min-communication scheduling, work
stealing, disk spill, tracing, progress callbacks, a snapshot FT mode and
an injected fault still produces the oracle answer. Feature interactions
are where frameworks rot; this is the canary.
"""

import pytest

from repro.apgas.failure import FaultPlan
from repro.apps.lcs import solve_lcs
from repro.apps.serial import lcs_matrix
from repro.core.config import DPX10Config

X, Y = "ABCBDABACGTACGTAA", "BDCABAACGGTTACCG"
EXPECT = int(lcs_matrix(X, Y)[-1, -1])


@pytest.mark.parametrize("engine", ["inline", "threaded"])
@pytest.mark.parametrize("ft_mode", ["recovery", "snapshot"])
def test_all_features_compose(tmp_path, engine, ft_mode):
    progress = []
    cfg = DPX10Config(
        nplaces=4,
        engine=engine,
        scheduler="mincomm",
        distribution="block_cyclic",
        dist_block=(3, 3),
        cache_size=32,
        work_stealing=True,
        spill_dir=str(tmp_path),
        trace=True,
        on_progress=lambda d, t: progress.append(d),
        progress_interval=40,
        ft_mode=ft_mode,
        snapshot_interval=60 if ft_mode == "snapshot" else 0,
        restore_manner="copy" if ft_mode == "recovery" else "discard",
    )
    app, rep = solve_lcs(
        X, Y, cfg, fault_plans=[FaultPlan(2, at_fraction=0.5)]
    )
    assert app.length == EXPECT
    assert rep.recoveries == 1
    assert rep.final_alive_places == 3
    assert progress, "progress callback must fire"
    assert rep.trace is not None and len(rep.trace) == rep.completions
    if ft_mode == "snapshot":
        assert rep.snapshots_taken > 1


def test_random_scheduler_with_stealing_and_fault():
    cfg = DPX10Config(
        nplaces=5,
        scheduler="random",
        seed=17,
        work_stealing=True,
        cache_size=16,
    )
    app, rep = solve_lcs(
        X,
        Y,
        cfg,
        fault_plans=[FaultPlan(3, at_fraction=0.3), FaultPlan(4, at_fraction=0.7)],
    )
    assert app.length == EXPECT
    assert rep.recoveries == 2
