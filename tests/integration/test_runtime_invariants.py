"""Property-based invariants of whole runs under random configurations."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.lcs import solve_lcs
from repro.apps.serial import lcs_matrix
from repro.core.config import DPX10Config

configs = st.builds(
    DPX10Config,
    nplaces=st.integers(1, 6),
    distribution=st.sampled_from(
        ["block_rows", "block_cols", "block_flat", "cyclic_rows", "cyclic_cols"]
    ),
    scheduler=st.sampled_from(["local", "random", "mincomm"]),
    cache_size=st.sampled_from([0, 1, 16]),
    work_stealing=st.booleans(),
    seed=st.integers(0, 100),
)

X, Y = "ABCBDABAC", "BDCABAACG"
EXPECT = int(lcs_matrix(X, Y)[-1, -1])
TOTAL = (len(X) + 1) * (len(Y) + 1)


@settings(max_examples=30, deadline=None)
@given(cfg=configs)
def test_every_configuration_reaches_oracle(cfg):
    app, rep = solve_lcs(X, Y, cfg)
    assert app.length == EXPECT
    # no faults: exactly one compute() per active vertex, nothing more
    assert rep.completions == rep.active_vertices == TOTAL
    assert rep.recoveries == 0
    assert rep.final_alive_places == cfg.nplaces
    # per-place executions account for every completion
    assert sum(rep.per_place_executed.values()) == rep.completions


@settings(max_examples=15, deadline=None)
@given(cfg=configs, fraction=st.floats(0.0, 1.0))
def test_single_fault_invariants(cfg, fraction):
    from repro.apgas.failure import FaultPlan

    if cfg.nplaces < 2:
        cfg = DPX10Config(nplaces=2)
    app, rep = solve_lcs(
        X, Y, cfg, fault_plans=[FaultPlan(cfg.nplaces - 1, at_fraction=fraction)]
    )
    assert app.length == EXPECT
    # completions never lost: at least one compute per vertex
    assert rep.completions >= rep.active_vertices
    # recomputation is bounded by what could have been finished pre-fault
    assert rep.recomputed <= TOTAL
    assert rep.recoveries in (0, 1)
    if rep.recoveries:
        assert rep.final_alive_places == cfg.nplaces - 1


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1000))
def test_inline_bit_reproducible(seed):
    cfg = DPX10Config(nplaces=3, scheduler="random", seed=seed, cache_size=8)
    _, a = solve_lcs(X, Y, cfg)
    _, b = solve_lcs(X, Y, cfg)
    assert a.network_bytes == b.network_bytes
    assert a.cache_hits == b.cache_hits
    assert a.per_place_executed == b.per_place_executed
