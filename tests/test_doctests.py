"""Run the library's embedded doctests — examples in docstrings must work."""

import doctest
import importlib

import pytest

# modules whose docstrings carry runnable examples
DOCTEST_MODULES = [
    "repro.apgas.runtime",
    "repro.bench.formatting",
    "repro.bench.sweep",
    "repro.core.dag",
    "repro.core.runtime",
    "repro.core.scheduler",
    "repro.core.trace",
    "repro.obs.dashboard",
    "repro.obs.metrics",
    "repro.util.timer",
]


@pytest.mark.parametrize("module_name", DOCTEST_MODULES)
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failure(s) in {module_name}"
    assert results.attempted > 0, f"{module_name} listed but has no doctests"
