"""Tests for the banded diagonal pattern (extension)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PatternError
from repro.patterns.banded import BandedDiagonalDag


class TestShape:
    def test_band_activity(self):
        d = BandedDiagonalDag(6, 6, 1)
        assert d.is_active(2, 2) and d.is_active(2, 3) and d.is_active(3, 2)
        assert not d.is_active(0, 2)
        assert not d.is_active(4, 1)

    def test_bandwidth_zero_is_diagonal_only(self):
        d = BandedDiagonalDag(4, 4, 0)
        assert len(d.active_cells()) == 4

    def test_band_must_reach_corner(self):
        with pytest.raises(PatternError):
            BandedDiagonalDag(10, 4, 2)

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(PatternError):
            BandedDiagonalDag(4, 4, -1)


class TestStructure:
    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(1, 8),
        extra=st.integers(0, 3),
        w=st.integers(0, 6),
    )
    def test_validates_at_any_size(self, n, extra, w):
        m = n + extra
        bandwidth = max(w, extra)  # band must reach the corner
        BandedDiagonalDag(n, m, bandwidth).validate()

    def test_deps_filtered_to_band(self):
        d = BandedDiagonalDag(6, 6, 1)
        # (2, 3) sits on the band's upper edge: (1, 3) is out of band
        deps = {tuple(v) for v in d.get_dependency(2, 3)}
        assert deps == {(1, 2), (2, 2)}

    @settings(max_examples=30, deadline=None)
    @given(
        r0=st.integers(0, 8),
        h=st.integers(0, 6),
        c0=st.integers(0, 8),
        cw=st.integers(0, 6),
        w=st.integers(0, 5),
    )
    def test_active_count_matches_bruteforce(self, r0, h, c0, cw, w):
        d = BandedDiagonalDag(14, 14, w)
        got = d.active_cells_in_rect(r0, r0 + h, c0, c0 + cw)
        want = sum(
            1
            for i in range(r0, r0 + h)
            for j in range(c0, c0 + cw)
            if abs(i - j) <= w
        )
        assert got == want

    def test_tile_deps_skip_out_of_band_tiles(self):
        d = BandedDiagonalDag(100, 100, 5)
        # at 10x10 tiles of edge 10, tile (5, 3) spans rows 50-59 x cols
        # 30-39: its closest cell to the diagonal is 11 away — fully out
        # of the width-5 band, so in-band tiles never depend on it
        deps = d.tile_deps(5, 4, 10, 10)
        assert (5, 3) not in deps
        assert (4, 4) in deps
        assert d.tile_deps(5, 3, 10, 10) is not None  # callable on any tile
