"""Tests for the custom 0/1 Knapsack DAG pattern (paper Figures 8/9)."""

import pytest

from repro.core.api import VertexId
from repro.errors import PatternError
from repro.patterns.knapsack import KnapsackDag


class TestShape:
    def test_matrix_dimensions(self):
        d = KnapsackDag([2, 3, 1], capacity=7)
        assert (d.height, d.width) == (4, 8)

    def test_weights_must_be_positive_integers(self):
        with pytest.raises(PatternError):
            KnapsackDag([0, 2], 5)
        with pytest.raises(PatternError):
            KnapsackDag([-1], 5)
        with pytest.raises(PatternError):
            KnapsackDag([], 5)

    def test_capacity_zero_allowed(self):
        d = KnapsackDag([1], capacity=0)
        assert d.width == 1
        d.validate()


class TestDependencies:
    def test_row0_seeds(self):
        d = KnapsackDag([2, 3], 5)
        assert all(not d.get_dependency(0, j) for j in range(6))

    def test_item_fits(self):
        d = KnapsackDag([2, 3], 5)
        # row 1 considers item weight 2
        assert d.get_dependency(1, 4) == [VertexId(0, 4), VertexId(0, 2)]

    def test_item_does_not_fit(self):
        d = KnapsackDag([2, 3], 5)
        assert d.get_dependency(1, 1) == [VertexId(0, 1)]

    def test_exact_fit_boundary(self):
        d = KnapsackDag([2, 3], 5)
        assert d.get_dependency(1, 2) == [VertexId(0, 2), VertexId(0, 0)]

    def test_data_dependent_jump_distance(self):
        d = KnapsackDag([5], 9)
        assert VertexId(0, 1) in d.get_dependency(1, 6)


class TestAntiDependencies:
    def test_exact_inverse_small(self):
        KnapsackDag([2, 3, 1], 7).validate()

    def test_paper_figure9_omission_fixed(self):
        # row 1 cell (1, j+w_0) depends on (0, j); our anti must include it
        # even though the paper's Figure 9 listing omits it for i == 0
        d = KnapsackDag([2, 3], 5)
        assert VertexId(1, 3) in d.get_anti_dependency(0, 1)

    def test_last_row_no_anti(self):
        d = KnapsackDag([2], 4)
        assert d.get_anti_dependency(1, 2) == []

    def test_anti_respects_capacity(self):
        d = KnapsackDag([3], 4)
        # (0, 3): 3 + 3 > 4 so only the vertical edge
        assert d.get_anti_dependency(0, 3) == [VertexId(1, 3)]
        # (0, 1): 1 + 3 <= 4 so both edges
        assert set(d.get_anti_dependency(0, 1)) == {VertexId(1, 1), VertexId(1, 4)}


class TestTileDeps:
    def test_reach_covers_heaviest_item(self):
        d = KnapsackDag([6, 2], 19)  # width 20
        # 4 tile columns of width 5; heaviest item 6 -> reach 2 tiles back
        deps = d.tile_deps(1, 3, 2, 4)
        assert deps == [(0, 1), (0, 2), (0, 3)]

    def test_first_tile_row_seeds(self):
        d = KnapsackDag([2], 9)
        assert d.tile_deps(0, 1, 2, 2) == []

    def test_reach_clipped_at_zero(self):
        d = KnapsackDag([50], 19)
        deps = d.tile_deps(1, 1, 2, 4)
        assert deps == [(0, 0), (0, 1)]
