"""The vectorized initialization fast path must agree with the scalar one."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.patterns import (
    AntiDiagonalDag,
    BandedDiagonalDag,
    DiagonalDag,
    GridDag,
    IntervalDag,
    RowChainDag,
    TriangularDag,
)
from repro.patterns.diag_chain import DiagChainDag


def scalar_indegrees(dag, rows, cols):
    out = np.zeros(len(rows), dtype=np.int32)
    for k, (i, j) in enumerate(zip(rows, cols)):
        if dag.is_active(i, j):
            out[k] = sum(
                1 for d in dag.get_dependency(i, j) if dag.is_active(d.i, d.j)
            )
    return out


ALL_CELL_PATTERNS = [
    GridDag(7, 9),
    DiagonalDag(6, 6),
    RowChainDag(5, 8),
    AntiDiagonalDag(6, 7),
    DiagChainDag(6, 6),
    IntervalDag(8, 8),
    BandedDiagonalDag(9, 9, 2),
]


class TestBulkAgreesWithScalar:
    @pytest.mark.parametrize(
        "dag", ALL_CELL_PATTERNS, ids=lambda d: type(d).__name__
    )
    def test_full_region(self, dag):
        cells = list(dag.region)
        rows = np.array([c[0] for c in cells])
        cols = np.array([c[1] for c in cells])
        bulk = dag.bulk_indegrees(rows, cols)
        assert bulk is not None, "stencil patterns must provide the fast path"
        np.testing.assert_array_equal(bulk, scalar_indegrees(dag, rows, cols))

    def test_triangular_has_no_fast_path(self):
        # O(n)-dependency patterns fall back to the scalar computation
        dag = TriangularDag(5, 5)
        assert dag.bulk_indegrees(np.array([0]), np.array([1])) is None

    def test_activity_mask_matches_scalar(self):
        for dag in ALL_CELL_PATTERNS:
            cells = list(dag.region)
            rows = np.array([c[0] for c in cells])
            cols = np.array([c[1] for c in cells])
            mask = dag.is_active_array(rows, cols)
            assert mask is not None
            expect = np.array([dag.is_active(i, j) for i, j in cells])
            np.testing.assert_array_equal(mask, expect)

    @settings(max_examples=20, deadline=None)
    @given(h=st.integers(1, 12), w=st.integers(1, 12))
    def test_property_grid_and_diagonal(self, h, w):
        for dag in (GridDag(h, w), DiagonalDag(h, w)):
            cells = list(dag.region)
            rows = np.array([c[0] for c in cells])
            cols = np.array([c[1] for c in cells])
            np.testing.assert_array_equal(
                dag.bulk_indegrees(rows, cols), scalar_indegrees(dag, rows, cols)
            )
