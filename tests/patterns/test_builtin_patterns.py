"""Tests for each built-in DAG pattern's stencil and shape."""

import pytest

from repro.core.api import VertexId
from repro.errors import PatternError
from repro.patterns import (
    PATTERNS,
    AntiDiagonalDag,
    ColumnChainDag,
    DiagonalDag,
    FullRowDag,
    GridDag,
    IntervalDag,
    RowChainDag,
    TriangularDag,
    get_pattern,
)


class TestRegistry:
    def test_eight_builtins_registered(self):
        # the paper's Figure 5 set, plus the "banded" extension
        assert {
            "grid",
            "diagonal",
            "row_chain",
            "column_chain",
            "interval",
            "antidiag",
            "full_row",
            "triangular",
        } <= set(PATTERNS)
        assert "banded" in PATTERNS

    def test_get_pattern(self):
        assert get_pattern("grid") is GridDag
        with pytest.raises(PatternError):
            get_pattern("torus")

    def test_pattern_name_attribute(self):
        assert GridDag.pattern_name == "grid"


class TestGrid:
    def test_interior_deps(self):
        d = GridDag(4, 4)
        assert set(d.get_dependency(2, 2)) == {VertexId(1, 2), VertexId(2, 1)}

    def test_corner_is_seed(self):
        assert GridDag(4, 4).get_dependency(0, 0) == []

    def test_edges_have_one_dep(self):
        d = GridDag(4, 4)
        assert d.get_dependency(0, 2) == [VertexId(0, 1)]
        assert d.get_dependency(2, 0) == [VertexId(1, 0)]

    def test_anti_is_mirror(self):
        d = GridDag(4, 4)
        assert set(d.get_anti_dependency(2, 2)) == {VertexId(3, 2), VertexId(2, 3)}
        assert d.get_anti_dependency(3, 3) == []


class TestDiagonal:
    def test_interior_deps(self):
        d = DiagonalDag(4, 4)
        assert set(d.get_dependency(2, 2)) == {
            VertexId(1, 1),
            VertexId(1, 2),
            VertexId(2, 1),
        }

    def test_figure1_structure(self):
        # the LCS example: (0,0) is the only seed of a dense matrix
        d = DiagonalDag(3, 3)
        seeds = [c for c in d.region if not d.get_dependency(*c)]
        assert seeds == [(0, 0)]


class TestChains:
    def test_row_chain_rows_independent(self):
        d = RowChainDag(3, 4)
        assert d.get_dependency(1, 0) == []
        assert d.get_dependency(1, 2) == [VertexId(1, 1)]
        seeds = [c for c in d.region if not d.get_dependency(*c)]
        assert seeds == [(0, 0), (1, 0), (2, 0)]

    def test_column_chain_cols_independent(self):
        d = ColumnChainDag(4, 3)
        assert d.get_dependency(0, 1) == []
        assert d.get_dependency(2, 1) == [VertexId(1, 1)]
        seeds = [c for c in d.region if not d.get_dependency(*c)]
        assert seeds == [(0, 0), (0, 1), (0, 2)]


class TestAntiDiagonalBand:
    def test_interior_deps(self):
        d = AntiDiagonalDag(4, 4)
        assert set(d.get_dependency(2, 2)) == {
            VertexId(1, 1),
            VertexId(1, 2),
            VertexId(1, 3),
        }

    def test_row0_is_seed_row(self):
        d = AntiDiagonalDag(3, 5)
        assert all(not d.get_dependency(0, j) for j in range(5))

    def test_border_clipping(self):
        d = AntiDiagonalDag(3, 3)
        assert set(d.get_dependency(1, 0)) == {VertexId(0, 0), VertexId(0, 1)}
        assert set(d.get_dependency(1, 2)) == {VertexId(0, 1), VertexId(0, 2)}


class TestInterval:
    def test_lower_triangle_inactive(self):
        d = IntervalDag(4, 4)
        assert d.is_active(1, 3) and d.is_active(2, 2)
        assert not d.is_active(3, 0)

    def test_diagonal_cells_are_seeds(self):
        d = IntervalDag(4, 4)
        for i in range(4):
            assert d.get_dependency(i, i) == []

    def test_adjacent_pair_two_deps(self):
        d = IntervalDag(4, 4)
        assert set(d.get_dependency(1, 2)) == {VertexId(2, 2), VertexId(1, 1)}

    def test_general_cell_three_deps(self):
        d = IntervalDag(4, 4)
        assert set(d.get_dependency(0, 3)) == {
            VertexId(1, 3),
            VertexId(0, 2),
            VertexId(1, 2),
        }

    def test_active_count(self):
        assert len(IntervalDag(4, 4).active_cells()) == 10


class TestFullRow:
    def test_whole_previous_row(self):
        d = FullRowDag(3, 4)
        assert d.get_dependency(2, 1) == [VertexId(1, k) for k in range(4)]
        assert d.get_dependency(0, 2) == []

    def test_anti_whole_next_row(self):
        d = FullRowDag(3, 4)
        assert d.get_anti_dependency(1, 0) == [VertexId(2, k) for k in range(4)]
        assert d.get_anti_dependency(2, 0) == []


class TestTriangular:
    def test_diagonal_seeds(self):
        d = TriangularDag(5, 5)
        assert d.get_dependency(2, 2) == []

    def test_interval_split_deps(self):
        d = TriangularDag(5, 5)
        deps = set(d.get_dependency(1, 3))
        assert deps == {
            VertexId(1, 1),
            VertexId(1, 2),
            VertexId(2, 3),
            VertexId(3, 3),
        }

    def test_dep_count_grows_with_interval(self):
        d = TriangularDag(8, 8)
        assert len(d.get_dependency(0, 7)) > len(d.get_dependency(0, 2))


class TestStencilGuards:
    def test_empty_offsets_rejected(self):
        from repro.patterns.base import StencilDag

        class Empty(StencilDag):
            offsets = ()

        with pytest.raises(PatternError):
            Empty(2, 2)

    def test_zero_offset_rejected(self):
        from repro.patterns.base import StencilDag

        class Selfie(StencilDag):
            offsets = ((0, 0), (-1, 0))

        with pytest.raises(PatternError):
            Selfie(2, 2)

    def test_duplicate_offsets_rejected(self):
        from repro.patterns.base import StencilDag

        class Dup(StencilDag):
            offsets = ((-1, 0), (-1, 0))

        with pytest.raises(PatternError):
            Dup(2, 2)

    def test_same_class_reregistration_is_noop(self):
        # module reload must not explode: re-registering the same class
        # (or a fresh definition with the same module/qualname) is allowed
        from repro.patterns.base import register_pattern

        assert register_pattern("grid")(GridDag) is GridDag
        assert PATTERNS["grid"] is GridDag

    def test_different_class_registration_rejected(self):
        from repro.patterns.base import StencilDag, register_pattern

        class Imposter(StencilDag):
            offsets = ((-1, 0),)

        with pytest.raises(PatternError):
            register_pattern("grid")(Imposter)
        assert PATTERNS["grid"] is GridDag


class TestTileDeps:
    def test_grid_tile_stencil(self):
        d = GridDag(10, 10)
        assert set(d.tile_deps(1, 1, 3, 3)) == {(0, 1), (1, 0)}
        assert d.tile_deps(0, 0, 3, 3) == []

    def test_diagonal_tile_stencil(self):
        d = DiagonalDag(10, 10)
        assert set(d.tile_deps(1, 1, 3, 3)) == {(0, 0), (0, 1), (1, 0)}

    def test_interval_tile_stencil_respects_triangle(self):
        d = IntervalDag(10, 10)
        assert set(d.tile_deps(0, 1, 3, 3)) == {(1, 1), (0, 0), (1, 0)} - {(1, 0)}

    def test_full_row_tile_deps(self):
        d = FullRowDag(10, 10)
        assert d.tile_deps(2, 1, 3, 4) == [(1, k) for k in range(4)]

    def test_boundary_fraction_bounds(self):
        for cls in (GridDag, DiagonalDag, RowChainDag, ColumnChainDag):
            frac = cls(10, 10).tile_boundary_fraction(10, 10)
            assert 0 < frac <= 1
