"""Property-based structural tests over the whole pattern library.

Dag.validate() is itself an exhaustive checker (inverse relation +
acyclicity + schedulability), so the property is simply: every pattern at
every small size validates, and a few global invariants hold.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.patterns import PATTERNS, KnapsackDag

# "banded" takes an extra constructor argument; it gets its own tests in
# test_banded_pattern.py
STENCIL_NAMES = sorted(set(PATTERNS) - {"banded"})


@settings(max_examples=40, deadline=None)
@given(
    name=st.sampled_from(STENCIL_NAMES),
    height=st.integers(1, 9),
    width=st.integers(1, 9),
)
def test_every_builtin_validates_at_any_size(name, height, width):
    if name in ("interval", "triangular"):
        width = height  # square triangular patterns
    PATTERNS[name](height, width).validate()


@settings(max_examples=40, deadline=None)
@given(
    weights=st.lists(st.integers(1, 7), min_size=1, max_size=5),
    capacity=st.integers(0, 15),
)
def test_knapsack_pattern_validates(weights, capacity):
    KnapsackDag(weights, capacity).validate()


@settings(max_examples=25, deadline=None)
@given(
    name=st.sampled_from(STENCIL_NAMES),
    height=st.integers(2, 8),
    width=st.integers(2, 8),
)
def test_dependency_counts_symmetric(name, height, width):
    """Sum of indegrees equals sum of outdegrees (edge conservation)."""
    if name in ("interval", "triangular"):
        width = height
    dag = PATTERNS[name](height, width)
    active = dag.active_cells()
    deps = sum(len(dag.get_dependency(i, j)) for i, j in active)
    antis = sum(len(dag.get_anti_dependency(i, j)) for i, j in active)
    assert deps == antis


@settings(max_examples=25, deadline=None)
@given(
    name=st.sampled_from(STENCIL_NAMES),
    height=st.integers(2, 8),
    width=st.integers(2, 8),
)
def test_at_least_one_seed(name, height, width):
    if name in ("interval", "triangular"):
        width = height
    dag = PATTERNS[name](height, width)
    seeds = [c for c in dag.active_cells() if not dag.get_dependency(*c)]
    assert seeds, "a DAG needs at least one zero-indegree vertex"


@settings(max_examples=20, deadline=None)
@given(
    name=st.sampled_from(STENCIL_NAMES),
    height=st.integers(2, 6),
    width=st.integers(2, 6),
    nti=st.integers(1, 3),
    ntj=st.integers(1, 3),
)
def test_tile_deps_in_bounds_and_acyclic(name, height, width, nti, ntj):
    if name in ("interval", "triangular"):
        width = height
        ntj = nti
    dag = PATTERNS[name](height, width)
    # tile DAG must be in-bounds and acyclic (checked via Kahn)
    indeg = {}
    anti = {}
    tiles = [(ti, tj) for ti in range(nti) for tj in range(ntj)]
    if name in ("interval", "triangular"):
        tiles = [(ti, tj) for ti, tj in tiles if ti <= tj]
    tile_set = set(tiles)
    for t in tiles:
        deps = dag.tile_deps(*t, nti, ntj)
        assert len(set(deps)) == len(deps)
        for d in deps:
            assert d in tile_set
            anti.setdefault(d, []).append(t)
        indeg[t] = len(deps)
    ready = [t for t in tiles if indeg[t] == 0]
    done = 0
    while ready:
        t = ready.pop()
        done += 1
        for a in anti.get(t, []):
            indeg[a] -= 1
            if indeg[a] == 0:
                ready.append(a)
    assert done == len(tiles)
