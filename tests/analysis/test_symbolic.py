"""The symbolic stencil verifier: ranking vectors, metrics, routing."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    enumerate_verify,
    find_ranking_vector,
    try_symbolic_validate,
    verify_pattern,
    verify_stencil,
)
from repro.core.dag import VALIDATE_ENUMERATION_THRESHOLD
from repro.errors import PatternError
from repro.patterns import PATTERNS, DiagonalDag, IntervalDag
from repro.patterns.base import StencilDag
from repro.patterns.knapsack import KnapsackDag

from tests.analysis.fixtures import (
    CyclicStencilDag,
    MismatchedAntiDag,
    OutOfBoundsDepDag,
)


def _instance(name, cls, h=12, w=12):
    return cls(h, w, 3) if name == "banded" else cls(h, w)


class TestRankingVector:
    def test_canonical_vectors(self):
        assert find_ranking_vector(((-1, 0), (0, -1), (-1, -1))) == (1, 1)
        # interval: down + left + down-left neighbours
        assert find_ranking_vector(((1, 0), (0, -1), (1, -1))) == (-1, 1)
        assert find_ranking_vector(((0, -1),)) == (0, 1)  # row chain
        assert find_ranking_vector(((-1, 0),)) == (1, 0)  # column chain

    def test_cycle_has_no_vector(self):
        assert find_ranking_vector(((0, 1), (0, -1))) is None
        assert find_ranking_vector(((1, 0), (-1, 0))) is None
        assert find_ranking_vector(((1, 1), (-1, -1))) is None

    def test_witness_satisfies_all_offsets(self):
        offsets = ((-3, 1), (-1, 2), (-2, -1), (-1, 0))
        d = find_ranking_vector(offsets)
        assert d is not None
        assert all(d[0] * di + d[1] * dj < 0 for di, dj in offsets)

    @settings(max_examples=200, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(-3, 3), st.integers(-3, 3)
            ).filter(lambda o: o != (0, 0)),
            min_size=1,
            max_size=6,
            unique=True,
        )
    )
    def test_agrees_with_brute_force(self, offsets):
        """The exact geometric test matches a brute-force vector search."""
        d = find_ranking_vector(offsets)
        brute = any(
            all(a * di + b * dj < 0 for di, dj in offsets)
            for a in range(-10, 11)
            for b in range(-10, 11)
        )
        if d is not None:
            assert all(d[0] * di + d[1] * dj < 0 for di, dj in offsets)
            assert brute
        else:
            assert not brute

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.integers(-2, 2), st.integers(-2, 2)
            ).filter(lambda o: o != (0, 0)),
            min_size=1,
            max_size=4,
            unique=True,
        )
    )
    def test_symbolic_acyclic_implies_enumeration_clean(self, offsets):
        """Soundness: a ranking vector means enumeration finds no cycle."""
        if find_ranking_vector(offsets) is None:
            return

        class S(StencilDag):
            pass

        S.offsets = tuple(offsets)
        report = enumerate_verify(S(6, 6))
        assert report.ok, report.findings


class TestBuiltinPatterns:
    @pytest.mark.parametrize("name", sorted(PATTERNS))
    def test_every_builtin_passes_symbolically(self, name):
        report = verify_pattern(_instance(name, PATTERNS[name]))
        assert report.ok, report.findings

    def test_diagonal_metrics(self):
        report = verify_stencil(DiagonalDag(12, 12))
        m = report.metrics
        assert m["wavefront_vector"] == (1, 1)
        assert m["wavefront_depth"] == 23  # h + w - 1 anti-diagonals
        assert m["max_antichain_width"] == 12
        lo, hi = m["critical_path_bounds"]
        assert lo <= hi

    def test_interval_metrics(self):
        report = verify_stencil(IntervalDag(10, 10))
        assert report.metrics["wavefront_vector"] == (-1, 1)
        assert report.metrics["wavefront_depth"] == 10

    def test_knapsack_enumerates(self):
        report = verify_pattern(KnapsackDag([2, 3, 5], 11))
        assert report.method == "enumeration"
        assert report.ok


class TestAdversarialPatterns:
    def test_cyclic_stencil_dp101(self):
        report = verify_pattern(CyclicStencilDag(8, 8))
        assert not report.ok
        assert "DP101" in report.codes()

    def test_out_of_bounds_dp102(self):
        report = verify_pattern(OutOfBoundsDepDag(8, 8))
        assert not report.ok
        assert "DP102" in report.codes()

    def test_mismatched_anti_dp103(self):
        report = verify_pattern(MismatchedAntiDag(8, 8))
        assert not report.ok
        assert "DP103" in report.codes()


class TestValidateRouting:
    def test_large_stencil_validates_symbolically(self):
        # 360_000 cells > threshold: enumeration would take seconds
        dag = DiagonalDag(600, 600)
        assert dag.size > VALIDATE_ENUMERATION_THRESHOLD
        assert try_symbolic_validate(dag)
        dag.validate()  # must return fast, not raise

    def test_small_stencil_still_enumerates(self):
        DiagonalDag(10, 10).validate()

    def test_large_cyclic_raises(self):
        with pytest.raises(PatternError):
            CyclicStencilDag(600, 600).validate()

    def test_small_cyclic_raises(self):
        with pytest.raises(PatternError):
            CyclicStencilDag(8, 8).validate()

    def test_overridden_methods_fall_back(self):
        # a stencil with a custom anti-dependency cannot be proved
        # symbolically by construction; routing must refuse the fast path
        assert not try_symbolic_validate(MismatchedAntiDag(600, 600))

    def test_non_stencil_falls_back(self):
        assert not try_symbolic_validate(OutOfBoundsDepDag(8, 8))

    def test_degenerate_offsets_fall_back(self):
        class Wide(StencilDag):
            offsets = ((0, -40),)

        assert not try_symbolic_validate(Wide(300, 30))
