"""Generated tile kernels are differential-tested against compute().

The interpreted per-vertex path is the oracle: for every non-OPAQUE app,
every engine, and several (deliberately awkward) tile shapes, the
``autokernel=True`` run must reproduce the untiled inline run
cell-for-cell — including one seeded chaos trial, where recovery
recomputes tiles through the generated kernel.
"""

import numpy as np
import pytest

from repro.analysis.codegen import AutoKernel, build_autokernel
from repro.analysis.registry import app_fixture, app_names
from repro.core.config import DPX10Config
from repro.core.runtime import DPX10Runtime

VECTORIZABLE = [
    n
    for n in app_names()
    if n
    not in (
        "cyk",
        "egg_drop",
        "matrix_chain",
        "viterbi",
        # the tree apps vectorize (TREE_LEVEL_GATHER) but hold object
        # values; their equivalence tests live in test_domain_kernels.py
        "tree_knapsack",
        "tree_mis",
    )
]
TILE_SHAPES = [(4, 4), (5, 3), (2, 7)]


def _run(name, **kw):
    app, dag = app_fixture(name)
    cfg = DPX10Config(**kw)
    DPX10Runtime(app, dag, cfg).run()
    return dag.to_array(fill=-1, dtype=np.int64)


def _oracle(name):
    return _run(name, engine="inline")


class TestBuild:
    @pytest.mark.parametrize("name", VECTORIZABLE)
    def test_every_vectorizable_app_builds(self, name):
        app, dag = app_fixture(name)
        kernel, cls = build_autokernel(app, dag)
        assert isinstance(kernel, AutoKernel)
        assert kernel.klass == cls.klass
        # per-level / row-scan kernels emit compute_tile; ANTIDIAG apps
        # get the flat-sweep form; domain kernels describe themselves
        assert (
            "def compute_tile" in kernel.source
            or "flat-sweep kernel" in kernel.source
            or kernel.klass in ("TENSOR_HYPERPLANE", "TREE_LEVEL_GATHER")
        )
        assert len(kernel.pads) == 4

    @pytest.mark.parametrize("name", ["cyk", "egg_drop", "viterbi"])
    def test_opaque_apps_return_none(self, name):
        app, dag = app_fixture(name)
        kernel, cls = build_autokernel(app, dag)
        assert kernel is None
        assert cls.klass == "OPAQUE"

    def test_build_is_deterministic(self):
        # mp workers rebuild post-fork; both builds must emit the same
        # source (the generated fn cannot cross the pipe)
        app, dag = app_fixture("sw")
        k1, _ = build_autokernel(app, dag)
        k2, _ = build_autokernel(app, dag)
        assert k1.source == k2.source
        assert k1.pads == k2.pads


class TestWholeTileEquivalence:
    @pytest.mark.parametrize("name", VECTORIZABLE)
    @pytest.mark.parametrize("shape", TILE_SHAPES)
    def test_inline_tiled_equals_untiled(self, name, shape):
        want = _oracle(name)
        got = _run(name, engine="inline", tile_shape=shape, autokernel=True)
        assert np.array_equal(want, got)

    @pytest.mark.parametrize("name", VECTORIZABLE)
    def test_threaded_engine(self, name):
        want = _oracle(name)
        got = _run(
            name,
            engine="threaded",
            nplaces=2,
            tile_shape=(4, 4),
            autokernel=True,
        )
        assert np.array_equal(want, got)

    @pytest.mark.parametrize("name", VECTORIZABLE)
    @pytest.mark.parametrize("shm", [True, False])
    def test_mp_engine(self, name, shm):
        want = _oracle(name)
        got = _run(
            name,
            engine="mp",
            nplaces=2,
            tile_shape=(4, 4),
            autokernel=True,
            shm=shm,
        )
        assert np.array_equal(want, got)

    @pytest.mark.parametrize("name", VECTORIZABLE)
    def test_one_chaos_seed(self, name):
        from repro.chaos.schedule import ChaosSchedule

        want = _oracle(name)
        app, dag = app_fixture(name)
        schedule = ChaosSchedule.generate(11, 2, int(dag.height * dag.width))
        cfg = DPX10Config(
            engine="mp",
            nplaces=2,
            tile_shape=(4, 4),
            autokernel=True,
            chaos=schedule,
        )
        DPX10Runtime(app, dag, cfg).run()
        got = dag.to_array(fill=-1, dtype=np.int64)
        assert np.array_equal(want, got)


class TestGating:
    def test_autokernel_requires_tiling(self):
        with pytest.raises(Exception):
            DPX10Config(autokernel=True)

    def test_sanitize_keeps_interpreted_path(self):
        # the sanitizer instruments per-vertex compute(); a whole-tile
        # kernel would bypass it, so autokernel must stand down
        app, dag = app_fixture("lcs")
        cfg = DPX10Config(tile_shape=(4, 4), autokernel=True, sanitize=True)
        rt = DPX10Runtime(app, dag, cfg)
        rt.run()
        want = _oracle("lcs")
        assert np.array_equal(want, dag.to_array(fill=-1, dtype=np.int64))

    def test_opaque_app_falls_back_and_still_runs(self):
        app, dag = app_fixture("egg_drop")
        cfg = DPX10Config(tile_shape=(4, 4), autokernel=True)
        DPX10Runtime(app, dag, cfg).run()
        want = _oracle("egg_drop")
        assert np.array_equal(want, dag.to_array(fill=-1, dtype=np.int64))

    def test_generated_kernel_beats_hand_kernel(self):
        # precedence: the generated kernel runs even when the app ships
        # a hand-written compute_tile (sw does) — results identical
        app, dag = app_fixture("sw")
        cfg = DPX10Config(tile_shape=(4, 4), autokernel=True)
        DPX10Runtime(app, dag, cfg).run()
        want = _oracle("sw")
        assert np.array_equal(want, dag.to_array(fill=-1, dtype=np.int64))


class TestKernelContract:
    @pytest.mark.parametrize("name", VECTORIZABLE)
    def test_kernel_fills_exact_window(self, name):
        # drive the kernel directly over a whole-matrix window and
        # compare with a per-vertex fixpoint of compute()
        from repro.core.api import Vertex

        app, dag = app_fixture(name)
        kernel, _ = build_autokernel(app, dag)
        h, w = dag.height, dag.width
        window = np.zeros((h, w), dtype=app.value_dtype)
        assert kernel.fn(0, 0, window, 0, 0, h, w) is True

        values = {}
        remaining = [
            (i, j)
            for i in range(h)
            for j in range(w)
            if dag.is_active(i, j)
        ]
        while remaining:
            again = []
            for i, j in remaining:
                deps = [
                    d
                    for d in dag.get_dependency(i, j)
                    if dag.is_active(d.i, d.j)
                ]
                if all((d.i, d.j) in values for d in deps):
                    verts = [Vertex(d.i, d.j, values[(d.i, d.j)]) for d in deps]
                    values[(i, j)] = app.compute(i, j, verts)
                else:
                    again.append((i, j))
            assert len(again) < len(remaining), "dependency cycle?"
            remaining = again
        for (i, j), v in values.items():
            assert window[i, j] == v, (name, i, j, window[i, j], v)
