"""Domain-aware kernels: tensor hyperplanes and tree level gathers.

The object-valued tree apps cannot join the int64 differential matrix in
``test_codegen.py``, so their kernel-vs-interpreted equivalence lives
here — per engine, per tile shape, and under one seeded fault — together
with the kernel-plan shipping coverage: specs built once on the mp
master must survive pickling, worker reconstruction, and place restart.
"""

import pickle

import numpy as np
import pytest

from repro.analysis.codegen import AutoKernel, build_autokernel, kernel_from_spec
from repro.analysis.registry import app_fixture
from repro.apgas.failure import FaultPlan
from repro.core.config import DPX10Config
from repro.core.runtime import DPX10Runtime

TREE_APPS = ["tree_knapsack", "tree_mis"]
TILE_SHAPES = [(4, 4), (5, 3), (2, 7)]


def _values_equal(a, b):
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return np.array_equal(a, b)
    return a == b


def _run(name, fault_plans=(), **kw):
    """Run an app and return every active cell's value, plus the app."""
    app, dag = app_fixture(name)
    cfg = DPX10Config(**kw)
    report = DPX10Runtime(app, dag, cfg, fault_plans=list(fault_plans)).run()
    cells = {
        (i, j): dag.get_vertex(i, j).get_result()
        for i in range(dag.height)
        for j in range(dag.width)
        if dag.is_active(i, j)
    }
    return cells, app, report


def _assert_same_cells(want, got):
    assert set(want) == set(got)
    for coord, v in want.items():
        assert _values_equal(v, got[coord]), coord


class TestTreeKernelBuild:
    @pytest.mark.parametrize("name", TREE_APPS)
    def test_builds_cells_mode_kernel(self, name):
        app, dag = app_fixture(name)
        kernel, cls = build_autokernel(app, dag)
        assert isinstance(kernel, AutoKernel)
        assert cls.klass == "TREE_LEVEL_GATHER"
        assert kernel.mode == "cells"
        assert kernel.pads == (0, 0, 0, 0)

    def test_tensor_kernel_is_window_mode(self):
        app, dag = app_fixture("msa3")
        kernel, cls = build_autokernel(app, dag)
        assert cls.klass == "TENSOR_HYPERPLANE"
        assert kernel.mode == "window"


class TestTreeEquivalence:
    @pytest.mark.parametrize("name", TREE_APPS)
    @pytest.mark.parametrize("shape", TILE_SHAPES)
    def test_inline_tiled_equals_untiled(self, name, shape):
        want, _, _ = _run(name, engine="inline")
        got, _, _ = _run(
            name, engine="inline", tile_shape=shape, autokernel=True
        )
        _assert_same_cells(want, got)

    @pytest.mark.parametrize("name", TREE_APPS)
    def test_threaded_engine(self, name):
        want, _, _ = _run(name, engine="inline")
        got, _, _ = _run(
            name,
            engine="threaded",
            nplaces=2,
            tile_shape=(4, 4),
            autokernel=True,
        )
        _assert_same_cells(want, got)

    @pytest.mark.parametrize("name", TREE_APPS)
    def test_mp_engine(self, name):
        want, _, _ = _run(name, engine="inline")
        got, _, _ = _run(
            name,
            engine="mp",
            nplaces=2,
            tile_shape=(4, 4),
            autokernel=True,
        )
        _assert_same_cells(want, got)

    @pytest.mark.parametrize("name", TREE_APPS)
    def test_kill_and_recover_through_kernel(self, name):
        # recovery recomputes the dead partition's tiles through the
        # level-gather kernel; results must stay interpreter-identical
        want, _, _ = _run(name, engine="inline")
        got, _, report = _run(
            name,
            fault_plans=[FaultPlan(1, at_fraction=0.4)],
            engine="threaded",
            nplaces=3,
            tile_shape=(4, 4),
            autokernel=True,
        )
        assert report.recoveries >= 1
        _assert_same_cells(want, got)


class TestKernelSpecShipping:
    @pytest.mark.parametrize("name", ["sw", "mtp", "msa3"])
    def test_spec_pickles_and_rebuilds(self, name):
        # the mp master classifies once and ships the spec; workers must
        # reconstruct an equivalent kernel without re-running the probes
        app, dag = app_fixture(name)
        kernel, _ = build_autokernel(app, dag)
        assert kernel.spec is not None
        spec = pickle.loads(pickle.dumps(kernel.spec))
        rebuilt = kernel_from_spec(spec, app, dag)
        assert rebuilt is not None
        assert rebuilt.klass == kernel.klass
        assert rebuilt.pads == kernel.pads
        assert rebuilt.mode == kernel.mode

    def test_spec_rebuild_matches_fresh_kernel_output(self):
        app, dag = app_fixture("sw")
        kernel, _ = build_autokernel(app, dag)
        spec = pickle.loads(pickle.dumps(kernel.spec))
        rebuilt = kernel_from_spec(spec, app, dag)
        h, w = dag.height, dag.width
        w1 = np.zeros((h, w), dtype=app.value_dtype)
        w2 = np.zeros((h, w), dtype=app.value_dtype)
        assert kernel.fn(0, 0, w1, 0, 0, h, w) is True
        assert rebuilt.fn(0, 0, w2, 0, 0, h, w) is True
        assert np.array_equal(w1, w2)

    @pytest.mark.parametrize("shm", [True, False])
    def test_mp_spec_survives_place_restart(self, shm):
        # the warm-restart path re-sends the meta dict (including the
        # cached kernel plan) to the replacement worker: a post-restart
        # run must still be bit-identical to the interpreted oracle
        want, _, _ = _run("sw", engine="inline")
        got, _, report = _run(
            "sw",
            fault_plans=[FaultPlan(2, at_fraction=0.5)],
            engine="mp",
            nplaces=3,
            tile_shape=(4, 4),
            autokernel=True,
            shm=shm,
        )
        assert report.recoveries >= 1
        _assert_same_cells(want, got)
