"""The compute() AST lint: shipped apps are clean, fixtures are flagged."""

import pytest

from repro.analysis import lint_app, lint_compute
from repro.analysis.findings import Severity
from repro.analysis.registry import app_fixture, app_names

from tests.analysis.fixtures import (
    NondeterministicApp,
    SharedStateApp,
    UndeclaredReadApp,
    WrongOffsetApp,
    undeclared_read_target,
)


def _codes(findings):
    return {f.code for f in findings}


class TestShippedApps:
    @pytest.mark.parametrize("name", app_names())
    def test_no_error_findings(self, name):
        app, dag = app_fixture(name)
        findings = lint_app(app, dag=dag)
        errors = [f for f in findings if f.severity >= Severity.ERROR]
        assert not errors, errors

    def test_knapsack_gets_dynamic_index_note(self):
        app, dag = app_fixture("knapsack")
        findings = lint_app(app, dag=dag)
        assert "DP204" in _codes(findings)
        assert all(f.severity == Severity.NOTE for f in findings)


class TestAdversarialApps:
    def test_undeclared_get_vertex_read_dp201(self):
        app, dag = undeclared_read_target()
        findings = lint_app(app, dag=dag)
        assert "DP201" in _codes(findings)
        f = next(f for f in findings if f.code == "DP201")
        assert "(i-2, j+0)" in f.message
        assert f.severity == Severity.ERROR

    def test_wrong_offset_subscript_dp201(self):
        _, dag = undeclared_read_target()
        findings = lint_app(WrongOffsetApp(), dag=dag)
        assert "DP201" in _codes(findings)

    def test_nondeterminism_dp202(self):
        findings = lint_app(NondeterministicApp())
        assert "DP202" in _codes(findings)

    def test_shared_state_dp203(self):
        findings = lint_app(SharedStateApp())
        flagged = [f for f in findings if f.code == "DP203"]
        # both the self-attribute write and the module-global mutation
        assert len(flagged) == 2

    def test_declared_offsets_pass(self):
        app, dag = app_fixture("lcs")
        findings = lint_app(app, dag=dag)
        assert "DP201" not in _codes(findings)


class TestExamples:
    def test_custom_pattern_example_lints_clean(self):
        # the shipped user-facing example must pass its own linter
        import importlib.util
        import pathlib

        from repro.analysis import verify_pattern

        path = (
            pathlib.Path(__file__).resolve().parents[2]
            / "examples"
            / "knapsack_custom_pattern.py"
        )
        spec = importlib.util.spec_from_file_location("knapsack_example", path)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)

        dag = mod.MyKnapsackDag([1, 2, 3], 6)
        assert verify_pattern(dag).ok
        findings = lint_app(mod.MyKnapsackApp, dag=dag)
        assert not [f for f in findings if f.severity >= Severity.ERROR]


class TestLintCompute:
    def test_unavailable_source_dp106(self):
        findings = lint_compute(len, offsets=((-1, 0),))
        assert _codes(findings) == {"DP106"}

    def test_location_points_into_source(self):
        findings = lint_app(UndeclaredReadApp, dag=None)
        f = next(f for f in findings if f.code == "DP205")
        assert "fixtures.py" in (f.location or "")

    def test_no_offsets_skips_offset_checks(self):
        # without a declared stencil the (i-2, j) subscript is only a
        # dynamic-index candidate, not a provable violation
        findings = lint_compute(WrongOffsetApp.compute, offsets=None)
        assert "DP201" not in _codes(findings)
