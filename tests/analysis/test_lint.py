"""The compute() AST lint: shipped apps are clean, fixtures are flagged."""

import pytest

from repro.analysis import lint_app, lint_compute
from repro.analysis.findings import Severity
from repro.analysis.registry import app_fixture, app_names

from tests.analysis.fixtures import (
    NondeterministicApp,
    SharedStateApp,
    UndeclaredReadApp,
    WrongOffsetApp,
    undeclared_read_target,
)


def _codes(findings):
    return {f.code for f in findings}


class TestShippedApps:
    @pytest.mark.parametrize("name", app_names())
    def test_no_error_findings(self, name):
        app, dag = app_fixture(name)
        findings = lint_app(app, dag=dag)
        errors = [f for f in findings if f.severity >= Severity.ERROR]
        assert not errors, errors

    def test_knapsack_dp204_refined_away_by_footprint_inference(self):
        # the affine j - self.weights[i-1] index resolves through the IR
        # footprint and probes clean, so the instance-level lint drops
        # the dynamic-index note entirely
        app, dag = app_fixture("knapsack")
        findings = lint_app(app, dag=dag)
        assert "DP204" not in _codes(findings)
        assert not findings

    def test_knapsack_class_only_keeps_dp204_note(self):
        # without an instance there is no data to resolve the index with
        app, dag = app_fixture("knapsack")
        findings = lint_app(type(app), dag=type(dag))
        assert "DP204" in _codes(findings)
        assert all(f.severity == Severity.NOTE for f in findings)

    def test_unliftable_app_keeps_dp204_note(self):
        # viterbi's comprehension argument defeats the lifter, so its
        # data-dependent index stays a note — truly unresolvable
        app, dag = app_fixture("viterbi")
        findings = lint_app(app, dag=dag)
        assert "DP204" in _codes(findings)


class TestAdversarialApps:
    def test_undeclared_get_vertex_read_dp201(self):
        app, dag = undeclared_read_target()
        findings = lint_app(app, dag=dag)
        assert "DP201" in _codes(findings)
        f = next(f for f in findings if f.code == "DP201")
        assert "(i-2, j+0)" in f.message
        assert f.severity == Severity.ERROR

    def test_wrong_offset_subscript_dp201(self):
        _, dag = undeclared_read_target()
        findings = lint_app(WrongOffsetApp(), dag=dag)
        assert "DP201" in _codes(findings)

    def test_nondeterminism_dp202(self):
        findings = lint_app(NondeterministicApp())
        assert "DP202" in _codes(findings)

    def test_shared_state_dp203(self):
        findings = lint_app(SharedStateApp())
        flagged = [f for f in findings if f.code == "DP203"]
        # both the self-attribute write and the module-global mutation
        assert len(flagged) == 2

    def test_declared_offsets_pass(self):
        app, dag = app_fixture("lcs")
        findings = lint_app(app, dag=dag)
        assert "DP201" not in _codes(findings)


class TestTileBoxLint:
    def test_window_escape_fixture_dp206(self):
        from tests.analysis.fixtures import tile_box_escape_target

        app, dag = tile_box_escape_target()
        findings = lint_app(app, dag=dag)
        flagged = [f for f in findings if f.code == "DP206"]
        # one out-of-halo read, one off-box write
        assert len(flagged) == 2
        assert all(f.severity == Severity.ERROR for f in flagged)
        assert any("read" in f.message for f in flagged)
        assert any("write" in f.message for f in flagged)

    @pytest.mark.parametrize("name", ["sw", "lps"])
    def test_shipped_hand_kernels_stay_inside_box(self, name):
        app, dag = app_fixture(name)
        findings = lint_app(app, dag=dag)
        assert "DP206" not in _codes(findings)

    def test_halo_reads_within_pads_pass(self):
        from repro.analysis.lint import lint_compute_tile

        def compute_tile(self, r0, c0, window, oi, oj, h, w):
            import numpy as np

            for r in range(h):
                wi = oi + np.full(w, r)
                wj = oj + np.arange(w)
                window[wi, wj] = window[wi - 1, wj] + window[wi, wj - 1]
            return True

        assert not lint_compute_tile(compute_tile, pads=(1, 0, 1, 0))
        # the same body against a no-halo stencil is an escape
        findings = lint_compute_tile(compute_tile, pads=(0, 0, 0, 0))
        assert {f.code for f in findings} == {"DP206"}
        assert len(findings) == 2


class TestExamples:
    def test_custom_pattern_example_lints_clean(self):
        # the shipped user-facing example must pass its own linter
        import importlib.util
        import pathlib

        from repro.analysis import verify_pattern

        path = (
            pathlib.Path(__file__).resolve().parents[2]
            / "examples"
            / "knapsack_custom_pattern.py"
        )
        spec = importlib.util.spec_from_file_location("knapsack_example", path)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)

        dag = mod.MyKnapsackDag([1, 2, 3], 6)
        assert verify_pattern(dag).ok
        findings = lint_app(mod.MyKnapsackApp, dag=dag)
        assert not [f for f in findings if f.severity >= Severity.ERROR]


class TestLintCompute:
    def test_unavailable_source_dp106(self):
        findings = lint_compute(len, offsets=((-1, 0),))
        assert _codes(findings) == {"DP106"}

    def test_location_points_into_source(self):
        findings = lint_app(UndeclaredReadApp, dag=None)
        f = next(f for f in findings if f.code == "DP205")
        assert "fixtures.py" in (f.location or "")

    def test_no_offsets_skips_offset_checks(self):
        # without a declared stencil the (i-2, j) subscript is only a
        # dynamic-index candidate, not a provable violation
        findings = lint_compute(WrongOffsetApp.compute, offsets=None)
        assert "DP201" not in _codes(findings)
