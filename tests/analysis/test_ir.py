"""The typed compute() IR: golden lifts per app, lifter edge cases."""

import pytest

from repro.analysis.ir import (
    Bin,
    Call,
    Cmp,
    Cond,
    Const,
    DepRead,
    Index,
    LiftError,
    lift_compute,
    normalize,
    walk_expr,
)
from repro.analysis.registry import app_fixture
from repro.core.api import DPX10App, dependency_map

# One golden per liftable shipped app: the normalized IR rendered by
# ComputeIR.pretty(). These pin the entire front-end — decision-list
# extraction, phi merges, coordinate-scan handling, dep.get defaults,
# module-global constant resolution, and the Cond -> max/min rewrites.
GOLDENS = {
    "lcs": """\
compute(i, j):
  when ((i == 0) or (j == 0)) -> 0
  when (self.x[(i - 1)] == self.y[(j - 1)]) -> (dep[((i - 1), (j - 1))] + 1)
  else -> max(dep[((i - 1), j)], dep[(i, (j - 1))])""",
    "sw": """\
compute(i, j):
  when ((i == 0) or (j == 0)) -> 0
  else -> max(0, ((dep[((i - 1), (j - 1))] + (self.MATCH_SCORE if (self.str1[(i - 1)] == self.str2[(j - 1)]) else self.DISMATCH_SCORE)) if present((i - 1), (j - 1)) else 0), ((dep[(i, (j - 1))] + self.GAP_PENALTY) if present(i, (j - 1)) else 0), ((dep[((i - 1), j)] + self.GAP_PENALTY) if present((i - 1), j) else 0))""",
    "knapsack": """\
compute(i, j):
  when (i == 0) -> 0
  when (self.weights[(i - 1)] > j) -> dep[((i - 1), j)]
  else -> max(dep[((i - 1), j)], (dep[((i - 1), (j - self.weights[(i - 1)]))] + self.values[(i - 1)]))""",
    "unbounded_knapsack": """\
compute(i, j):
  when (i == 0) -> 0
  else -> (max((dep[(i, (j - self.weights[(i - 1)]))] + self.values[(i - 1)]), dep[((i - 1), j)]) if (self.weights[(i - 1)] <= j) else dep[((i - 1), j)])""",
    "banded": """\
compute(i, j):
  when (i == 0) -> j
  when (j == 0) -> i
  else -> min((dep.get(((i - 1), j), 1000000000) + 1), (dep.get((i, (j - 1)), 1000000000) + 1), (dep[((i - 1), (j - 1))] + (0 if (self.x[(i - 1)] == self.y[(j - 1)]) else 1)))""",
    "lps": """\
compute(i, j):
  when (i == j) -> 1
  when (self.s[i] == self.s[j]) -> (dep.get(((i + 1), (j - 1)), 0) + 2)
  else -> max(dep[((i + 1), j)], dep[(i, (j - 1))])""",
    "edit_distance": """\
compute(i, j):
  when (i == 0) -> j
  when (j == 0) -> i
  else -> min((dep[((i - 1), j)] + 1), (dep[(i, (j - 1))] + 1), (dep[((i - 1), (j - 1))] + (0 if (self.x[(i - 1)] == self.y[(j - 1)]) else 1)))""",
    "mtp": """\
compute(i, j):
  when ((i == 0) and (j == 0)) -> 0
  else -> max{(i > 0) => (dep[((i - 1), j)] + int(self.w_down[(i - 1), j])), (j > 0) => (dep[(i, (j - 1))] + int(self.w_right[i, (j - 1)]))}""",
    "nw": """\
compute(i, j):
  when (i == 0) -> (self.gap * j)
  when (j == 0) -> (self.gap * i)
  else -> max((dep[((i - 1), (j - 1))] + (self.match if (self.x[(i - 1)] == self.y[(j - 1)]) else self.mismatch)), (dep[((i - 1), j)] + self.gap), (dep[(i, (j - 1))] + self.gap))""",
    "common_substring": """\
compute(i, j):
  when ((i == 0) or (j == 0)) -> 0
  when (self.x[(i - 1)] != self.y[(j - 1)]) -> 0
  else -> (dep[((i - 1), (j - 1))] + 1)""",
}


class TestGoldens:
    @pytest.mark.parametrize("name", sorted(GOLDENS))
    def test_lift_matches_golden(self, name):
        app, _ = app_fixture(name)
        ir = normalize(lift_compute(type(app).compute))
        assert ir.pretty() == GOLDENS[name]

    @pytest.mark.parametrize("name", sorted(GOLDENS))
    def test_last_case_is_default(self, name):
        app, _ = app_fixture(name)
        ir = normalize(lift_compute(type(app).compute))
        guard, _ = ir.cases[-1]
        assert guard is None


class TestLiftErrors:
    @pytest.mark.parametrize(
        "name, fragment",
        [
            ("egg_drop", "comprehension"),
            ("matrix_chain", "comprehension"),
            ("viterbi", "comprehension"),
        ],
    )
    def test_unliftable_apps_raise(self, name, fragment):
        app, _ = app_fixture(name)
        with pytest.raises(LiftError) as exc:
            lift_compute(type(app).compute)
        assert fragment in exc.value.reason
        assert exc.value.lineno is not None

    def test_while_loop_rejected(self):
        class App(DPX10App):
            def compute(self, i, j, vertices):
                dep = dependency_map(vertices)
                total = 0
                while total < 3:
                    total += 1
                return total

        with pytest.raises(LiftError):
            lift_compute(App.compute)

    def test_return_inside_scan_rejected(self):
        class App(DPX10App):
            def compute(self, i, j, vertices):
                for v in vertices:
                    if v.i == i - 1 and v.j == j:
                        return v.get_result() + 1
                return 0

        with pytest.raises(LiftError):
            lift_compute(App.compute)

    def test_dep_get_without_default_rejected(self):
        class App(DPX10App):
            def compute(self, i, j, vertices):
                dep = dependency_map(vertices)
                if i == 0:
                    return 0
                return dep.get((i - 1, j)) + 1

        with pytest.raises(LiftError):
            lift_compute(App.compute)


class TestLifterShapes:
    def test_normalize_rewrites_cond_to_max(self):
        class App(DPX10App):
            def compute(self, i, j, vertices):
                dep = dependency_map(vertices)
                a = dep.get((i - 1, j), 0)
                b = dep.get((i, j - 1), 0)
                return a if a > b else b

        ir = normalize(lift_compute(App.compute))
        _, value = ir.cases[-1]
        assert isinstance(value, Call) and value.fn == "max"

    def test_list_append_becomes_reduce(self):
        class App(DPX10App):
            def compute(self, i, j, vertices):
                dep = dependency_map(vertices)
                cands = [0]
                if i > 0:
                    cands.append(dep[(i - 1, j)])
                return max(cands)

        ir = lift_compute(App.compute)
        assert "max{" in ir.pretty()
        reads = list(ir.dep_reads())
        assert len(reads) == 1

    def test_chained_assignment(self):
        class App(DPX10App):
            def compute(self, i, j, vertices):
                a = b = 1
                return a + b

        ir = lift_compute(App.compute)
        _, value = ir.cases[-1]
        assert isinstance(value, Bin)

    def test_coordinate_scan_yields_present_guards(self):
        app, _ = app_fixture("sw")
        ir = normalize(lift_compute(type(app).compute))
        names = {type(n).__name__ for n in ir.exprs()}
        assert "Present" in names

    def test_module_global_constant_resolves(self):
        app, _ = app_fixture("banded")
        ir = normalize(lift_compute(type(app).compute))
        assert any(
            isinstance(n, Const) and n.value == 10**9 for n in ir.exprs()
        )


class TestWalkAndStr:
    def test_walk_covers_subexpressions(self):
        e = Cond(
            Cmp("<", Index("i"), Const(3)),
            Bin("+", DepRead(Index("i"), Index("j")), Const(1)),
            Const(0),
        )
        kinds = {type(n).__name__ for n in walk_expr(e)}
        assert {"Cond", "Cmp", "Index", "Const", "Bin", "DepRead"} <= kinds
