"""Vectorization classes: expected assignments and demotion paths."""

import numpy as np
import pytest

from repro.analysis.classify import classify_app
from repro.analysis.registry import app_fixture, app_names
from repro.core.api import DPX10App, dependency_map
from repro.patterns import GridDag
from repro.patterns.base import StencilDag

# The committed expectation (mirrors ANALYZE_classes.json): every
# built-in app's class, with the documented DP4xx code for each OPAQUE.
EXPECTED = {
    "banded": ("ANTIDIAG_WAVEFRONT", None),
    "common_substring": ("ELEMENTWISE", None),
    "cyk": ("OPAQUE", "DP405"),
    "edit_distance": ("ANTIDIAG_WAVEFRONT", None),
    "egg_drop": ("OPAQUE", "DP401"),
    "knapsack": ("ELEMENTWISE", None),
    "lcs": ("ANTIDIAG_WAVEFRONT", None),
    "lps": ("ANTIDIAG_WAVEFRONT", None),
    "matrix_chain": ("OPAQUE", "DP401"),
    "msa3": ("TENSOR_HYPERPLANE", None),
    "mtp": ("ROW_SCAN_PREFIX", None),
    "nw": ("ANTIDIAG_WAVEFRONT", None),
    "sw": ("ANTIDIAG_WAVEFRONT", None),
    "tree_knapsack": ("TREE_LEVEL_GATHER", None),
    "tree_mis": ("TREE_LEVEL_GATHER", None),
    "unbounded_knapsack": ("ROW_SCAN_PREFIX", None),
    "viterbi": ("OPAQUE", "DP401"),
}


class TestShippedClasses:
    def test_every_app_has_an_expectation(self):
        assert set(app_names()) == set(EXPECTED)

    @pytest.mark.parametrize("name", sorted(EXPECTED))
    def test_class_and_demotion_code(self, name):
        app, dag = app_fixture(name)
        cls = classify_app(app, dag)
        klass, code = EXPECTED[name]
        assert cls.klass == klass
        codes = {f.code for f in cls.report.findings}
        if code is None:
            assert cls.vectorizable
            assert not codes
        else:
            assert code in codes

    @pytest.mark.parametrize(
        "name, rank",
        [("lcs", (1, 1)), ("lps", (-1, 1)), ("knapsack", (1, 0))],
    )
    def test_ranking_vectors(self, name, rank):
        app, dag = app_fixture(name)
        assert classify_app(app, dag).rank == rank

    def test_row_scan_form_extracted(self):
        app, dag = app_fixture("unbounded_knapsack")
        cls = classify_app(app, dag)
        assert cls.row_scan is not None
        assert cls.row_scan.read is not None


class _RowChainDag(StencilDag):
    offsets = ((0, -1),)


class TestDemotions:
    def test_value_dtype_none_dp402(self):
        class App(DPX10App):
            value_dtype = None

            def compute(self, i, j, vertices):
                dep = dependency_map(vertices)
                return dep.get((i, j - 1), 0) + 1

        cls = classify_app(App(), _RowChainDag(4, 6))
        assert cls.klass == "OPAQUE"
        assert {f.code for f in cls.report.findings} == {"DP402"}

    def test_impure_compute_dp405(self):
        class App(DPX10App):
            value_dtype = np.int64

            def compute(self, i, j, vertices):
                import time

                dep = dependency_map(vertices)
                return dep.get((i, j - 1), 0) + int(time.time())

        cls = classify_app(App(), _RowChainDag(4, 6))
        assert cls.klass == "OPAQUE"
        assert {f.code for f in cls.report.findings} == {"DP405"}

    def test_no_ranking_vector_dp403(self):
        class _ForwardDag(StencilDag):
            # (0, 1): depends on the cell to the *right*; no rank in the
            # classifier's candidate set orders it with (i-1, j)
            offsets = ((-1, 0), (0, 1))

        class App(DPX10App):
            value_dtype = np.int64

            def compute(self, i, j, vertices):
                dep = dependency_map(vertices)
                return dep.get((i - 1, j), 0) + dep.get((i, j + 1), 0)

        cls = classify_app(App(), _ForwardDag(4, 4))
        assert cls.klass == "OPAQUE"
        assert {f.code for f in cls.report.findings} == {"DP403"}

    def test_float_result_for_int_dtype_dp403(self):
        class App(DPX10App):
            value_dtype = np.int64

            def compute(self, i, j, vertices):
                dep = dependency_map(vertices)
                return dep.get((i, j - 1), 0) + 0.5

        cls = classify_app(App(), _RowChainDag(4, 6))
        assert cls.klass == "OPAQUE"
        assert {f.code for f in cls.report.findings} == {"DP403"}

    def test_footprint_contradiction_dp404(self):
        # reads the row above while the pattern declares only (0, -1):
        # the probe catches it on real cells, as an ERROR
        class App(DPX10App):
            value_dtype = np.int64

            def compute(self, i, j, vertices):
                dep = dependency_map(vertices)
                if i == 0 or j == 0:
                    return 1
                return dep[(i - 1, j)] + dep[(i, j - 1)]

        cls = classify_app(App(), _RowChainDag(4, 6))
        assert cls.klass == "OPAQUE"
        findings = cls.report.findings
        assert {f.code for f in findings} == {"DP404"}
        assert not cls.report.ok  # DP404 is an error, not a note

    def test_two_intra_row_reads_dp403(self):
        class App(DPX10App):
            value_dtype = np.int64

            def __init__(self):
                self.w = [1, 2, 1, 2, 1, 2]

            def compute(self, i, j, vertices):
                dep = dependency_map(vertices)
                if i == 0:
                    return 0
                s = self.w[i - 1]
                a = dep.get((i, j - s), 0) if s <= j else 0
                b = dep.get((i, j - s - s), 0) if s + s <= j else 0
                return max(a, b, dep.get((i - 1, j), 0))

        cls = classify_app(App(), GridDag(4, 6))
        assert cls.klass == "OPAQUE"
        assert any(f.code in ("DP403", "DP404") for f in cls.report.findings)

    def test_unbounded_knapsack_without_guard_shape_demotes(self):
        # same read but additive instead of max(base, take): not the
        # prefix-scan shape -> DP403
        app, dag = app_fixture("unbounded_knapsack")

        class App(type(app)):
            def compute(self, i, j, vertices):
                dep = dependency_map(vertices)
                if i == 0:
                    return 0
                w = self.weights[i - 1]
                if w <= j:
                    return dep[(i, j - w)] + dep[(i - 1, j)]
                return dep[(i - 1, j)]

        clone = App.__new__(App)
        clone.__dict__.update(app.__dict__)
        cls = classify_app(clone, dag)
        assert cls.klass == "OPAQUE"
        assert "DP403" in {f.code for f in cls.report.findings}
