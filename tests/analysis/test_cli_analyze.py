"""The ``python -m repro analyze`` command end to end."""

import json

from repro.__main__ import main

MANIFEST = "ANALYZE_classes.json"


class TestAnalyzeAll:
    def test_shipped_apps_pass(self, capsys):
        assert main(["analyze", "--all"]) == 0
        out = capsys.readouterr().out
        assert "ANTIDIAG_WAVEFRONT" in out
        assert "ROW_SCAN_PREFIX" in out
        assert "-> ok" in out

    def test_default_is_all(self, capsys):
        assert main(["analyze"]) == 0
        out = capsys.readouterr().out
        assert "lcs" in out and "cyk" in out

    def test_opaque_count_reported(self, capsys):
        # cyk, egg_drop, matrix_chain, viterbi; the DomainApp decoders
        # (msa3, tree_knapsack, tree_mis) vectorize via their domains
        assert main(["analyze", "--all"]) == 0
        assert "4 OPAQUE" in capsys.readouterr().out

    def test_single_app_with_kernel_dump(self, capsys):
        # lcs is ANTIDIAG: the flat-sweep emitter prints its prelude +
        # general sweep variant rather than a compute_tile body
        assert main(["analyze", "--app", "lcs", "--dump-kernel"]) == 0
        out = capsys.readouterr().out
        assert "flat-sweep kernel" in out
        assert "def _sweep(B2, _spans, _leaves):" in out

    def test_row_scan_kernel_dump(self, capsys):
        assert main(["analyze", "--app", "mtp", "--dump-kernel"]) == 0
        out = capsys.readouterr().out
        assert "def compute_tile(r0, c0, window, oi, oj, h, w):" in out
        assert "np.maximum.accumulate" in out

    def test_ir_dump(self, capsys):
        assert main(["analyze", "--app", "knapsack", "--ir"]) == 0
        assert "compute(i, j):" in capsys.readouterr().out


class TestJson:
    def test_json_document_shape(self, capsys):
        assert main(["analyze", "--all", "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["apps"]["sw"]["class"] == "ANTIDIAG_WAVEFRONT"
        assert doc["apps"]["viterbi"]["class"] == "OPAQUE"
        assert doc["apps"]["viterbi"]["codes"] == ["DP401"]


class TestManifest:
    def test_committed_manifest_matches(self, tmp_path, capsys, monkeypatch):
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[2]
        rc = main(
            ["analyze", "--all", "--check-manifest", str(root / MANIFEST)]
        )
        assert rc == 0
        assert "DRIFT" not in capsys.readouterr().out

    def test_drift_fails(self, tmp_path, capsys):
        bad = {
            "apps": {
                "lcs": {"class": "OPAQUE", "codes": ["DP401"]},
            }
        }
        path = tmp_path / "manifest.json"
        path.write_text(json.dumps(bad))
        rc = main(["analyze", "--app", "lcs", "--check-manifest", str(path)])
        assert rc == 1
        out = capsys.readouterr().out
        assert "DRIFT" in out
        assert "-> FAIL" in out

    def test_missing_manifest_is_usage_error(self, tmp_path, capsys):
        rc = main(
            [
                "analyze",
                "--app",
                "lcs",
                "--check-manifest",
                str(tmp_path / "nope.json"),
            ]
        )
        assert rc == 2
