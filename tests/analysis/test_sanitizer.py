"""The runtime dependency-race sanitizer (DPX10Config(sanitize=True))."""

import pytest

from repro.analysis import sanitize
from repro.core.config import DPX10Config
from repro.core.runtime import DPX10Runtime
from repro.errors import DependencyRaceError
from repro.patterns import GridDag

from tests.analysis.fixtures import (
    UndeclaredReadApp,
    over_anti_dag,
    undeclared_read_target,
)


def _run(app, dag, **kw):
    return DPX10Runtime(app, dag, config=DPX10Config(nplaces=2, **kw)).run()


class TestGuardPrimitives:
    def test_no_guard_by_default(self):
        assert not sanitize.guard_active()
        assert sanitize._active_guards == 0

    def test_guard_scopes_and_counts(self):
        with sanitize.compute_guard((3, 3), [(2, 3), (3, 2)], exec_place=0):
            assert sanitize.guard_active()
            assert sanitize._active_guards == 1
            sanitize.check_read(2, 3)  # declared: fine
            with pytest.raises(DependencyRaceError):
                sanitize.check_read(0, 0)
        assert not sanitize.guard_active()
        assert sanitize._active_guards == 0

    def test_guard_released_on_error(self):
        with pytest.raises(RuntimeError):
            with sanitize.compute_guard((1, 1), [(0, 1)], exec_place=0):
                raise RuntimeError("boom")
        assert sanitize._active_guards == 0

    def test_diagnostic_fields(self):
        with sanitize.compute_guard((5, 5), [(4, 5)], exec_place=1):
            with pytest.raises(DependencyRaceError) as ei:
                sanitize.check_read(2, 3, owner_place=0)
        e = ei.value
        assert e.code == "DP301"
        assert e.reader == (5, 5)
        assert e.cell == (2, 3)
        assert e.offset == (-3, -2)
        assert e.owner_place == 0
        assert e.exec_place == 1
        msg = str(e)
        assert "(5, 5)" in msg and "(2, 3)" in msg and "place 0" in msg


class TestSanitizedRuns:
    def test_undeclared_read_raises_with_diagnostics(self):
        app, dag = undeclared_read_target()
        with pytest.raises(DependencyRaceError) as ei:
            _run(app, dag, sanitize=True)
        e = ei.value
        assert e.code == "DP301"
        assert e.offset == (-2, 0)  # the fixture reads (i-2, j)
        assert e.cell is not None and e.reader is not None
        assert e.owner_place is not None and e.exec_place is not None

    def test_unsanitized_run_completes_silently(self):
        app, dag = undeclared_read_target()
        report = _run(app, dag, sanitize=False)
        assert report.completions == dag.size

    def test_clean_app_passes_sanitized(self):
        class Clean(UndeclaredReadApp):
            def compute(self, i, j, vertices):
                return sum(v.get_result() for v in vertices) + 1

        dag = GridDag(8, 8)
        report = _run(Clean(dag), dag, sanitize=True)
        assert report.completions == dag.size

    def test_sanitized_threaded_engine(self):
        app, dag = undeclared_read_target()
        with pytest.raises(DependencyRaceError):
            _run(app, dag, sanitize=True, engine="threaded")

    def test_under_declared_anti_dependency_dp302(self):
        # the over-declared anti edge releases (i, 2) before its declared
        # dependency (i, 1) finished; the sanitizer names the race
        from repro.core.api import DPX10App

        class Sum(DPX10App):
            value_dtype = None

            def compute(self, i, j, vertices):
                return sum(v.get_result() for v in vertices) + 1

        dag = over_anti_dag()
        with pytest.raises(DependencyRaceError) as ei:
            DPX10Runtime(
                Sum(), dag, config=DPX10Config(nplaces=1, sanitize=True)
            ).run()
        e = ei.value
        assert e.code == "DP302"
        assert e.cell is not None and e.reader is not None

    def test_remote_cache_reads_checked(self):
        from repro.core.cache import RemoteCache

        cache = RemoteCache(8)
        cache.put((0, 0), 42)
        with sanitize.compute_guard((4, 4), [(3, 4)], exec_place=0):
            with pytest.raises(DependencyRaceError):
                cache.get((0, 0))
        # outside a guard the same read is unchecked
        hit, value = cache.get((0, 0))
        assert hit and value == 42
