"""Adversarial fixtures for the analysis passes.

Each factory below builds a deliberately broken pattern or application
that must trip exactly one class of finding. The CLI reaches them via
``python -m repro lint --module tests.analysis.fixtures:<name>``.
"""

from __future__ import annotations

import random

from repro.core.api import DPX10App, VertexId, dependency_map
from repro.core.dag import Dag
from repro.patterns import GridDag
from repro.patterns.base import StencilDag

SHADY_TOTALS = {}  # module-global a broken app mutates (DP203)


class CyclicStencilDag(StencilDag):
    """(0, 1) and (0, -1) together: every row is a 2-cycle -> DP101."""

    offsets = ((0, 1), (0, -1))


class OutOfBoundsDepDag(Dag):
    """A custom (non-stencil) Dag whose first cell depends on (-5, -5).

    Only enumeration can catch this -> DP102.
    """

    def get_dependency(self, i, j):
        if (i, j) == (0, 0):
            return [VertexId(-5, -5)]
        return [VertexId(i, j - 1)] if j > 0 else []

    def get_anti_dependency(self, i, j):
        return [VertexId(i, j + 1)] if j + 1 < self.width else []


class MismatchedAntiDag(StencilDag):
    """Left-neighbour stencil whose anti-dependency claims the row below.

    The anti relation is not the inverse of the dependency relation ->
    DP103 (from symbolic probes or enumeration).
    """

    offsets = ((0, -1),)

    def get_anti_dependency(self, i, j):
        return [VertexId(i + 1, j)] if i + 1 < self.height else []


class OverAntiDag(StencilDag):
    """Row chain whose anti-dependency also claims the cell two to the
    right — and lists it first.

    Finishing (i, 0) therefore decrements (i, 2) (not a real successor)
    to zero and pushes it ahead of (i, 1), so the scheduler releases
    (i, 2) while its declared dependency (i, 1) is still unfinished. A
    sanitized run reports the race as DP302.
    """

    offsets = ((0, -1),)

    def get_anti_dependency(self, i, j):
        out = []
        if j + 2 < self.width:
            out.append(VertexId(i, j + 2))
        if j + 1 < self.width:
            out.append(VertexId(i, j + 1))
        return out


class UndeclaredReadApp(DPX10App):
    """Reads two cells up via get_vertex; grid declares only (-1,0),(0,-1).

    The AST lint flags the call (DP201); a sanitized run raises DP301.
    """

    value_dtype = None

    def __init__(self, dag: Dag) -> None:
        self._dag = dag

    def compute(self, i, j, vertices):
        dep = dependency_map(vertices)
        total = sum(dep.values()) + 1
        if i >= 2:
            total += self._dag.get_vertex(i - 2, j).get_result()
        return total


class NondeterministicApp(DPX10App):
    """Calls random.random() inside the recurrence -> DP202."""

    value_dtype = None

    def compute(self, i, j, vertices):
        dep = dependency_map(vertices)
        return sum(dep.values()) + random.random()


class SharedStateApp(DPX10App):
    """Mutates self and a module global from compute() -> DP203."""

    value_dtype = None

    def __init__(self) -> None:
        self.running_total = 0

    def compute(self, i, j, vertices):
        dep = dependency_map(vertices)
        self.running_total += 1
        SHADY_TOTALS[(i, j)] = self.running_total
        return sum(dep.values()) + 1


class TileBoxEscapeApp(DPX10App):
    """Hand-written compute_tile whose window indexing escapes the box.

    The grid declares offsets (-1, 0), (0, -1) — halo pads (1, 0, 1, 0)
    — but the kernel reads two rows up (beyond the fetched halo, silently
    zero) and writes one column right (clobbering a neighbour tile's
    halo) -> DP206 twice.
    """

    import numpy as _np

    value_dtype = _np.int64

    def compute(self, i, j, vertices):
        dep = dependency_map(vertices)
        return sum(dep.values()) + 1

    def compute_tile(self, r0, c0, window, oi, oj, h, w) -> bool:
        import numpy as np

        for r in range(h):
            li = np.full(w, r)
            lj = np.arange(w)
            wi, wj = oi + li, oj + lj
            up2 = window[wi - 2, wj]  # beyond the (1, 0, 1, 0) halo
            left = window[wi, wj - 1]
            window[wi, wj + 1] = up2 + left + 1  # off-box write
        return True


class WrongOffsetApp(DPX10App):
    """Subscripts dep[(i - 2, j)] though the grid declares (-1, 0) -> DP201."""

    value_dtype = None

    def compute(self, i, j, vertices):
        dep = dependency_map(vertices)
        if i >= 2:
            return dep[(i - 2, j)] + 1
        return 1


def cyclic_dag() -> Dag:
    return CyclicStencilDag(8, 8)


def out_of_bounds_dag() -> Dag:
    return OutOfBoundsDepDag(8, 8)


def mismatched_anti_dag() -> Dag:
    return MismatchedAntiDag(8, 8)


def over_anti_dag() -> Dag:
    return OverAntiDag(4, 8)


def undeclared_read_target():
    dag = GridDag(8, 8)
    return UndeclaredReadApp(dag), dag


def nondet_target():
    return NondeterministicApp(), GridDag(8, 8)


def shared_state_target():
    return SharedStateApp(), GridDag(8, 8)


def wrong_offset_target():
    return WrongOffsetApp(), GridDag(8, 8)


def tile_box_escape_target():
    return TileBoxEscapeApp(), GridDag(8, 8)
