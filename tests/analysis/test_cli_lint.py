"""The ``python -m repro lint`` command end to end."""

import pytest

from repro.__main__ import main
from repro.errors import PatternError
from repro.patterns.base import get_pattern

FIXTURES = "tests.analysis.fixtures"


class TestLintAll:
    def test_shipped_code_is_clean(self, capsys):
        assert main(["lint", "--all"]) == 0
        out = capsys.readouterr().out
        assert "-> ok" in out
        assert "ERROR" not in out

    def test_default_is_all(self, capsys):
        assert main(["lint"]) == 0
        out = capsys.readouterr().out
        assert "pattern:diagonal" in out
        assert "app:lcs" in out

    def test_single_pattern(self, capsys):
        assert main(["lint", "--pattern", "diagonal"]) == 0
        out = capsys.readouterr().out
        assert "wavefront_vector=(1, 1)" in out

    def test_single_app(self, capsys):
        # knapsack's data-dependent index resolves through footprint
        # inference, so the instance-level lint is silent
        assert main(["lint", "--app", "knapsack"]) == 0
        assert "DP204" not in capsys.readouterr().out

    def test_unliftable_app_keeps_note(self, capsys):
        assert main(["lint", "--app", "viterbi"]) == 0
        assert "DP204" in capsys.readouterr().out


class TestAdversarialExitCodes:
    @pytest.mark.parametrize(
        "target, code",
        [
            ("cyclic_dag", "DP101"),
            ("out_of_bounds_dag", "DP102"),
            ("mismatched_anti_dag", "DP103"),
            ("undeclared_read_target", "DP201"),
            ("wrong_offset_target", "DP201"),
            ("tile_box_escape_target", "DP206"),
        ],
    )
    def test_error_fixture_fails(self, capsys, target, code):
        rc = main(["lint", "--module", f"{FIXTURES}:{target}"])
        assert rc == 1
        assert code in capsys.readouterr().out

    @pytest.mark.parametrize(
        "target, code",
        [("nondet_target", "DP202"), ("shared_state_target", "DP203")],
    )
    def test_warning_fixture_fails_under_strict(self, capsys, target, code):
        assert main(["lint", "--module", f"{FIXTURES}:{target}"]) == 0
        assert code in capsys.readouterr().out
        assert main(["lint", "--strict", "--module", f"{FIXTURES}:{target}"]) == 1

    def test_unknown_module_target(self, capsys):
        assert main(["lint", "--module", "no.such.module:thing"]) == 2
        assert "DP106" in capsys.readouterr().out

    def test_bad_spec(self, capsys):
        assert main(["lint", "--module", "missing-colon"]) == 2

    def test_unknown_fixture_suggests(self, capsys):
        assert main(["lint", "--pattern", "diagnal"]) == 2
        assert "diagonal" in capsys.readouterr().out


class TestRegistrySatellites:
    def test_typo_suggestion(self):
        with pytest.raises(PatternError, match="did you mean 'diagonal'"):
            get_pattern("diagnal")

    def test_unknown_without_close_match(self):
        with pytest.raises(PatternError, match="unknown pattern"):
            get_pattern("zzzzzz")

    def test_module_reload_is_safe(self):
        import importlib

        import repro.patterns
        import repro.patterns.diagonal as diagmod
        from repro.patterns.base import PATTERNS

        original = diagmod.DiagonalDag
        try:
            importlib.reload(diagmod)
            # no PatternError, and the registry follows the newest class
            assert PATTERNS["diagonal"] is diagmod.DiagonalDag
        finally:
            # restore the original class everywhere: other modules (and
            # pickle, for the mp engine) still hold references to it
            diagmod.DiagonalDag = original
            repro.patterns.DiagonalDag = original
            PATTERNS["diagonal"] = original
