"""Miscellaneous edge cases across modules."""

import pytest

from repro.apgas.activity import Activity
from repro.apgas.runtime import GlobalRuntime
from repro.apps.lcs import solve_lcs
from repro.core.config import DPX10Config
from repro.core.trace import ExecutionTrace


class TestActivityIds:
    def test_monotonically_unique(self):
        a = Activity(0, lambda: None)
        b = Activity(0, lambda: None)
        assert b.id > a.id

    def test_run_returns_value(self):
        assert Activity(0, lambda x: x * 2, (21,)).run() == 42


class TestGlobalRuntimeContext:
    def test_context_manager_shuts_down(self):
        with GlobalRuntime(2, engine="threaded") as rt:
            out = []
            with rt.finish():
                rt.async_at(1, out.append, 1)
            assert out == [1]
        # engine closed: submitting now must fail
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            rt.async_at(0, lambda: None)


class TestTraceEdges:
    def test_zero_buckets(self):
        assert ExecutionTrace().completion_profile(0) == []

    def test_profile_with_single_event(self):
        from repro.core.trace import TraceEvent

        t = ExecutionTrace()
        t.record(TraceEvent(0, 0, 0, 0, 1.0, 1.0))  # zero-duration event
        assert sum(t.completion_profile(4)) == 1


class TestConfigCombos:
    def test_mp_supports_trace(self):
        cfg = DPX10Config(nplaces=2, engine="mp", trace=True)
        _, rep = solve_lcs("ABCD", "BCDA", cfg)
        # workers stream timing envelopes back to the master, which
        # re-stamps them onto its own timeline
        assert rep.trace is not None and rep.trace.events

    def test_spill_plus_snapshot_ft(self, tmp_path):
        from repro.apgas.failure import FaultPlan

        cfg = DPX10Config(
            nplaces=3,
            spill_dir=str(tmp_path),
            ft_mode="snapshot",
            snapshot_interval=25,
        )
        from repro.apps.serial import lcs_matrix

        x, y = "ABCBDABAC", "BDCABAACG"
        app, rep = solve_lcs(
            x, y, cfg, fault_plans=[FaultPlan(1, at_fraction=0.5)]
        )
        assert app.length == lcs_matrix(x, y)[-1, -1]
        assert rep.recoveries == 1

    def test_static_schedule_with_trace_and_progress(self):
        seen = []
        cfg = DPX10Config(
            nplaces=2,
            static_schedule=True,
            trace=True,
            on_progress=lambda d, t: seen.append(d),
            progress_interval=20,
        )
        app, rep = solve_lcs("ABCBDAB", "BDCABA", cfg)
        assert app.length == 4
        assert len(rep.trace) == rep.completions
        assert seen


class TestCSVEdges:
    def test_missing_keys_render_empty(self):
        from repro.bench.sweep import to_csv

        csv = to_csv([{"a": 1, "b": 2}, {"a": 3}])
        lines = csv.strip().split("\n")
        assert lines[2] == "3,"


class TestSimEdges:
    def test_parallel_efficiency_unit_for_empty(self):
        from repro.sim.engine import SimResult

        r = SimResult(
            makespan=0.0,
            total_cells=0,
            ntiles=0,
            work_seconds=0.0,
            comm_seconds=0.0,
            nplaces=1,
            workers=1,
        )
        assert r.parallel_efficiency == 1.0
        assert r.place_utilization() == {}
        assert r.completion_profile(3) == [0, 0, 0]
