"""The consolidated reproduction script must run clean end to end."""

import os
import subprocess
import sys


def test_reproduce_small_scale(tmp_path):
    script = os.path.join(
        os.path.dirname(__file__), "..", "scripts", "reproduce.py"
    )
    proc = subprocess.run(
        [sys.executable, script, "--scale", "small", "--out", str(tmp_path)],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stderr
    report = os.path.join(tmp_path, "REPORT.md")
    assert os.path.exists(report)
    text = open(report).read()
    for figure in ("Figure 10", "Figure 11", "Figure 12", "Figure 13"):
        assert figure in text
    assert "Speedups 2->12 nodes" in text
    for name in ("fig10_all.txt", "fig11_all.txt", "fig12_all.txt", "fig13_all.txt"):
        assert os.path.exists(os.path.join(tmp_path, name))
