"""Tests for the wall-clock Timer."""

import time

from repro.util.timer import Timer


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_zero_before_use(self):
        assert Timer().elapsed == 0.0

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            time.sleep(0.005)
        assert t.elapsed >= 0.004
        assert t.elapsed != first or first >= 0.004
