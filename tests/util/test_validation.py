"""Tests for validation helpers."""

import pytest

from repro.errors import ConfigurationError, PatternError
from repro.util.validation import fail, require


class TestRequire:
    def test_passes_when_true(self):
        require(True, "never raised")

    def test_raises_configuration_error_by_default(self):
        with pytest.raises(ConfigurationError, match="boom"):
            require(False, "boom")

    def test_raises_custom_exception(self):
        with pytest.raises(PatternError):
            require(False, "bad pattern", PatternError)


class TestFail:
    def test_always_raises(self):
        with pytest.raises(ConfigurationError, match="nope"):
            fail("nope")

    def test_custom_exception(self):
        with pytest.raises(PatternError):
            fail("bad", PatternError)
