"""Tests for the logging helpers."""

import logging

from repro.util.logging import enable_debug_logging, get_logger


class TestGetLogger:
    def test_namespaced(self):
        assert get_logger("core.runtime").name == "repro.core.runtime"

    def test_already_namespaced_untouched(self):
        assert get_logger("repro.sim").name == "repro.sim"

    def test_same_name_same_logger(self):
        assert get_logger("x") is get_logger("x")


class TestEnableDebugLogging:
    def test_attaches_one_handler(self):
        root = logging.getLogger("repro")
        before = list(root.handlers)
        try:
            enable_debug_logging()
            enable_debug_logging()  # idempotent
            added = [h for h in root.handlers if h not in before]
            assert len(added) == 1
            assert root.level == logging.DEBUG
        finally:
            for h in list(root.handlers):
                if h not in before:
                    root.removeHandler(h)
