"""Tests for deterministic RNG helpers."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.util.rng import derive_seed, seeded_rng


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "a", 1) == derive_seed(7, "a", 1)

    def test_changes_with_base(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_changes_with_keys(self):
        assert derive_seed(1, "x") != derive_seed(1, "y")

    def test_key_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_no_key_concatenation_collision(self):
        # ("ab",) and ("a", "b") must hash differently.
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")

    def test_returns_nonnegative_64bit(self):
        s = derive_seed(123, "k")
        assert 0 <= s < 2**64

    @given(st.integers(min_value=0, max_value=2**32), st.text(max_size=10))
    def test_property_stable(self, seed, key):
        assert derive_seed(seed, key) == derive_seed(seed, key)


class TestSeededRng:
    def test_same_seed_same_stream(self):
        a = seeded_rng(42).integers(0, 1000, 10)
        b = seeded_rng(42).integers(0, 1000, 10)
        np.testing.assert_array_equal(a, b)

    def test_keys_fork_stream(self):
        a = seeded_rng(42, "x").integers(0, 1000, 10)
        b = seeded_rng(42, "y").integers(0, 1000, 10)
        assert not np.array_equal(a, b)

    def test_returns_generator(self):
        assert isinstance(seeded_rng(0), np.random.Generator)
