"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    AllPlacesDeadError,
    ConfigurationError,
    DeadPlaceException,
    DistributionError,
    DPX10Error,
    PatternError,
    PlaceZeroDeadError,
    RecoveryError,
    SchedulingError,
    SimulationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            PatternError,
            DistributionError,
            SchedulingError,
            RecoveryError,
            SimulationError,
        ],
    )
    def test_all_are_dpx10_errors(self, exc):
        assert issubclass(exc, DPX10Error)
        assert issubclass(exc, Exception)

    def test_recovery_specializations(self):
        assert issubclass(AllPlacesDeadError, RecoveryError)
        assert issubclass(PlaceZeroDeadError, RecoveryError)

    def test_catching_the_base_catches_everything(self):
        for exc in (PatternError("x"), DeadPlaceException(3), PlaceZeroDeadError()):
            with pytest.raises(DPX10Error):
                raise exc


class TestDeadPlaceException:
    def test_carries_place_id(self):
        exc = DeadPlaceException(7)
        assert exc.place_id == 7
        assert "place 7" in str(exc)

    def test_custom_message(self):
        exc = DeadPlaceException(2, "pipe closed")
        assert exc.place_id == 2
        assert str(exc) == "pipe closed"


class TestPlaceZeroDeadError:
    def test_message_explains_the_limitation(self):
        msg = str(PlaceZeroDeadError())
        assert "place 0" in msg.lower()
        assert "resilient x10" in msg.lower()
