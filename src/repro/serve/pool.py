"""The warm place pool: pre-forked workers and pre-mapped shm segments.

One-shot ``run()`` pays a fixed setup tax per request: fork ``nplaces``
processes, create the plane segments, tear it all down. The job server
amortizes that tax across requests by keeping both resources warm here:

* :class:`PlacePool` — a bounded set of *interchangeable* pre-forked
  place processes (:class:`~repro.core.mp_engine._PlaceProc` handles).
  A run leases ``n`` of them keyed ``0..n-1``; the init envelope's
  trailing place-id field relabels each worker to the logical place it
  plays for that run, so any worker can play any place. Released
  workers are ``reset`` (values, shm attachments and instruments
  cleared) and go back to the idle set; dead workers are retired and
  their capacity refilled lazily.
* **Pooled segments** — shared-memory plane segments keyed by byte
  size. :meth:`PlacePool.segment_lease` returns an object duck-typed to
  :class:`~repro.core.shm.ShmArena` (``create`` / ``bytes_mapped`` /
  ``close``), so ``_run_mp_shm`` swaps it in without caring. A leased
  segment is zero-filled before reuse, restoring the data plane's
  "never written reads as zero" invariant; ``close()`` returns segments
  to the free list instead of unlinking.
* :meth:`PlacePool.take_spare` — the mid-run restart path: recovery
  hands in the corpse and receives a warm replacement, which keeps the
  job's distribution intact (only the dead place's finished units
  recompute). This is what lets a served job survive a place kill that
  would be fatal (place 0) or force a re-homing pass in one-shot mode.

The pool is thread-safe: the server runs many jobs concurrently from
executor threads, and ``lease`` blocks (all-or-nothing, so concurrent
leases cannot deadlock on partial grabs) until enough workers are idle
or capacity allows forking more.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import threading
import weakref
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.mp_engine import _PlaceProc
from repro.core.shm import _segment_name, shm_supported
from repro.errors import DPX10Error
from repro.util.logging import get_logger

__all__ = ["PlacePool", "PoolStats"]

logger = get_logger("serve.pool")

#: default cap on pooled segment bytes kept on the free list; beyond it
#: the least-recently-released segments are unlinked
_DEFAULT_SEGMENT_BYTES = 256 * 1024 * 1024

_LIVE_POOLS: "weakref.WeakSet[PlacePool]" = weakref.WeakSet()


def _atexit_sweep() -> None:  # pragma: no cover - interpreter shutdown
    for pool in list(_LIVE_POOLS):
        pool.close()


atexit.register(_atexit_sweep)


class PoolStats:
    """A point-in-time snapshot of pool occupancy and lifetime counters."""

    def __init__(
        self,
        *,
        capacity: int,
        idle: int,
        leased: int,
        forks: int,
        leases: int,
        releases: int,
        retired: int,
        restarts_served: int,
        segment_bytes_free: int,
        segment_bytes_total: int,
        segment_leases: int,
        segment_creates: int,
    ) -> None:
        self.capacity = capacity
        self.idle = idle
        self.leased = leased
        self.forks = forks
        self.leases = leases
        self.releases = releases
        self.retired = retired
        self.restarts_served = restarts_served
        self.segment_bytes_free = segment_bytes_free
        self.segment_bytes_total = segment_bytes_total
        self.segment_leases = segment_leases
        self.segment_creates = segment_creates

    def to_dict(self) -> Dict[str, int]:
        return dict(self.__dict__)


class _PooledSegment:
    """One shared-memory segment owned by the pool, reused across jobs."""

    __slots__ = ("shm", "nbytes")

    def __init__(self, shm_obj, nbytes: int) -> None:
        self.shm = shm_obj
        self.nbytes = nbytes

    @property
    def name(self) -> str:
        return self.shm.name


class _SegmentLease:
    """One run's view of the pooled segments; duck-types ``ShmArena``.

    ``create`` hands out zero-filled plane arrays backed by pooled
    segments; ``close`` returns the segments to the pool's free list
    (never unlinks — the pool owns segment lifetime).
    """

    def __init__(self, pool: "PlacePool") -> None:
        self._pool = pool
        self._held: List[_PooledSegment] = []
        self._closed = False

    def create(
        self, shape: Tuple[int, ...], dtype: Any, token: str = "seg"
    ) -> Tuple[np.ndarray, str]:
        dt = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape)) * dt.itemsize)
        seg = self._pool._lease_segment(nbytes)
        self._held.append(seg)
        arr = np.ndarray(shape, dtype=dt, buffer=seg.shm.buf)
        # a reused segment holds the previous job's bytes: restore the
        # plane invariant that "never written reads as zero"
        arr.fill(0)
        return arr, seg.name

    @property
    def bytes_mapped(self) -> int:
        return sum(s.nbytes for s in self._held)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        held, self._held = self._held, []
        self._pool._release_segments(held)


class PlacePool:
    """A bounded pool of warm place processes and plane segments.

    ``capacity`` bounds *live* worker processes (idle + leased). With
    ``prewarm=True`` (default) the whole capacity is forked up front so
    the first request is already warm; otherwise workers are forked on
    demand up to the cap.
    """

    def __init__(
        self,
        capacity: Optional[int] = None,
        *,
        prewarm: bool = True,
        max_segment_bytes: int = _DEFAULT_SEGMENT_BYTES,
    ) -> None:
        if capacity is None:
            # at least the API's default nplaces: place processes are
            # master-driven and block on recv, so modest oversubscription
            # of small hosts beats refusing default-shaped jobs
            capacity = max(4, os.cpu_count() or 4)
        if capacity < 1:
            raise ValueError(f"pool capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.max_segment_bytes = max_segment_bytes
        self._ctx = mp.get_context("fork" if hasattr(os, "fork") else "spawn")
        if shm_supported():
            # start the shm resource tracker BEFORE forking workers, so
            # every pooled worker inherits the same tracker and its
            # attach-side registrations land in the set the creator's
            # unlink balances (see repro.core.shm's fork-tree contract);
            # forked-too-early workers would each spawn a private
            # tracker that warns about segments it never saw unlinked
            from multiprocessing import resource_tracker

            resource_tracker.ensure_running()
        self._cond = threading.Condition()
        self._idle: List[_PlaceProc] = []
        self._leased: "weakref.WeakSet[_PlaceProc]" = weakref.WeakSet()
        self._nlive = 0
        self._serial = 0
        self._closed = False
        # segments: free list keyed by size, LRU across all sizes
        self._free_segments: Dict[int, List[_PooledSegment]] = {}
        self._free_order: List[_PooledSegment] = []
        self._segment_bytes_total = 0
        # lifetime counters (surfaced on /metrics via PoolStats)
        self._forks = 0
        self._leases = 0
        self._releases = 0
        self._retired = 0
        self._restarts_served = 0
        self._segment_leases = 0
        self._segment_creates = 0
        _LIVE_POOLS.add(self)
        if prewarm:
            self.prewarm()

    # -- worker processes -------------------------------------------------------
    def _fork_locked(self) -> _PlaceProc:
        self._serial += 1
        self._forks += 1
        self._nlive += 1
        return _PlaceProc(self._serial, self._ctx)

    def prewarm(self, n: Optional[int] = None) -> int:
        """Fork idle workers up to ``n`` (default: full capacity).

        Returns how many were actually forked.
        """
        forked = 0
        with self._cond:
            target = self.capacity if n is None else min(n, self.capacity)
            while self._nlive < target:
                self._idle.append(self._fork_locked())
                forked += 1
            self._cond.notify_all()
        return forked

    def lease(
        self, n: int, timeout: Optional[float] = None
    ) -> Dict[int, _PlaceProc]:
        """Lease ``n`` workers, keyed ``0..n-1``; blocks until available.

        All-or-nothing: the call waits until ``n`` workers can be taken
        in one atomic step (idle, or within forking headroom), so two
        concurrent leases can never deadlock holding partial sets.
        """
        if n < 1:
            raise ValueError(f"lease size must be >= 1, got {n}")
        if n > self.capacity:
            raise ValueError(
                f"lease of {n} workers exceeds pool capacity {self.capacity}"
            )
        with self._cond:
            ok = self._cond.wait_for(
                lambda: self._closed
                or len(self._idle) + (self.capacity - self._nlive) >= n,
                timeout=timeout,
            )
            if self._closed:
                raise DPX10Error("place pool is closed")
            if not ok:
                raise TimeoutError(
                    f"no {n} pool workers available within {timeout}s"
                )
            taken: List[_PlaceProc] = []
            while self._idle and len(taken) < n:
                taken.append(self._idle.pop())
            while len(taken) < n:
                taken.append(self._fork_locked())
            self._leases += 1
            for proc in taken:
                self._leased.add(proc)
        return {i: proc for i, proc in enumerate(taken)}

    def take_spare(self, corpse: Optional[_PlaceProc] = None) -> Optional[_PlaceProc]:
        """A warm replacement for a mid-run death; retires the corpse.

        Returns ``None`` only when the pool is closed. Retiring the
        corpse frees its capacity slot, so a replacement can always be
        forked even with no idle spare (cold, but the job still lives).
        """
        with self._cond:
            if corpse is not None:
                self._retire_locked(corpse)
            if self._closed:
                return None
            if self._idle:
                spare = self._idle.pop()
            else:
                if self._nlive >= self.capacity:
                    return None
                spare = self._fork_locked()
            self._leased.add(spare)
            self._restarts_served += 1
            return spare

    def release(self, procs: List[_PlaceProc]) -> None:
        """Return leased workers: reset the living, retire the dead."""
        for proc in procs:
            ok = proc.alive
            if ok:
                try:
                    proc.request(("reset",))
                    proc.bind_run(None)
                except DPX10Error:
                    ok = False
            with self._cond:
                self._leased.discard(proc)
                if ok and not self._closed:
                    self._idle.append(proc)
                else:
                    self._retire_locked(proc)
                self._releases += 1
                self._cond.notify_all()
        if self._closed:
            return

    def _retire_locked(self, proc: _PlaceProc) -> None:
        self._leased.discard(proc)
        try:
            self._idle.remove(proc)
        except ValueError:
            pass
        self._nlive = max(0, self._nlive - 1)
        self._retired += 1
        try:
            if proc.alive:
                proc.stop()
            else:
                proc.proc.join(timeout=1.0)
        except Exception:  # pragma: no cover - teardown races
            pass

    # -- segments ---------------------------------------------------------------
    def segment_lease(self) -> _SegmentLease:
        """A fresh per-run lease over the pooled plane segments."""
        return _SegmentLease(self)

    def _lease_segment(self, nbytes: int) -> _PooledSegment:
        with self._cond:
            if self._closed:
                raise DPX10Error("place pool is closed")
            self._segment_leases += 1
            free = self._free_segments.get(nbytes)
            if free:
                seg = free.pop()
                self._free_order.remove(seg)
                return seg
            if not shm_supported():  # pragma: no cover - platform guard
                raise DPX10Error("shared memory unsupported on this platform")
            from multiprocessing import shared_memory

            self._segment_creates += 1
            seg = _PooledSegment(
                shared_memory.SharedMemory(
                    name=_segment_name("pool"), create=True, size=nbytes
                ),
                nbytes,
            )
            self._segment_bytes_total += nbytes
            return seg

    def _release_segments(self, segs: List[_PooledSegment]) -> None:
        with self._cond:
            if self._closed:
                for seg in segs:
                    self._destroy_segment(seg)
                return
            for seg in segs:
                self._free_segments.setdefault(seg.nbytes, []).append(seg)
                self._free_order.append(seg)
            # LRU-bound the free list: unlink the stalest segments once
            # the pool holds more plane bytes than the configured cap
            free_bytes = sum(s.nbytes for s in self._free_order)
            while self._free_order and free_bytes > self.max_segment_bytes:
                stale = self._free_order.pop(0)
                self._free_segments[stale.nbytes].remove(stale)
                free_bytes -= stale.nbytes
                self._segment_bytes_total -= stale.nbytes
                self._destroy_segment(stale)

    @staticmethod
    def _destroy_segment(seg: _PooledSegment) -> None:
        try:
            seg.shm.close()
        except BufferError:  # stale views exist; memory frees with them
            pass
        except Exception:  # pragma: no cover - platform quirks
            pass
        try:
            seg.shm.unlink()
        except FileNotFoundError:
            pass
        except Exception:  # pragma: no cover - platform quirks
            pass

    # -- introspection / teardown -----------------------------------------------
    def stats(self) -> PoolStats:
        with self._cond:
            return PoolStats(
                capacity=self.capacity,
                idle=len(self._idle),
                leased=len(self._leased),
                forks=self._forks,
                leases=self._leases,
                releases=self._releases,
                retired=self._retired,
                restarts_served=self._restarts_served,
                segment_bytes_free=sum(s.nbytes for s in self._free_order),
                segment_bytes_total=self._segment_bytes_total,
                segment_leases=self._segment_leases,
                segment_creates=self._segment_creates,
            )

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop every idle worker and unlink every pooled segment.

        Idempotent. Workers still leased at close time are stopped when
        their run releases them (``release`` retires instead of pooling
        once ``closed``).
        """
        with self._cond:
            if self._closed:
                return
            self._closed = True
            idle, self._idle = self._idle, []
            segs, self._free_order = self._free_order, []
            self._free_segments.clear()
            self._cond.notify_all()
        for proc in idle:
            try:
                proc.stop()
            except Exception:  # pragma: no cover - teardown races
                pass
            self._nlive = max(0, self._nlive - 1)
        for seg in segs:
            self._destroy_segment(seg)
        _LIVE_POOLS.discard(self)

    def __enter__(self) -> "PlacePool":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()
