"""The job catalog and request schema of the DP job server.

A *job* names an app from the catalog plus that app's parameters; the
catalog entry knows how to build the ``(app, dag)`` pair, extract the
JSON-able result, and — for differential checking in tests and soaks —
compute the serial-oracle score without any runtime machinery.

Sequence apps (``sw``, ``nw``, ``lcs``, ``edit``) accept either explicit
inputs (``{"a": "ACGT...", "b": "..."}``) or a synthetic instance
(``{"size": 512, "seed": 1}``) generated deterministically server-side —
the same spelling always denotes the same instance, which is what makes
the result cache's ``input_hash`` meaningful. Parameter normalization
materializes defaults and coerces types *before* hashing, so requests
that differ only in spelling share a cache entry.

Fault parameters (``faults: [{"place": 2, "after_completions": 1000}]``)
are the chaos soak hook: they map to :class:`~repro.apgas.failure.
FaultPlan` kills and are only honored when the server was started with
``allow_faults=True`` (they are excluded from the cache key's parameter
hash — a killed run must produce bit-identical results, and the soak
asserts exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.apgas.failure import FaultPlan
from repro.serve.cache import cache_key

__all__ = [
    "APPS",
    "AppSpec",
    "BadRequest",
    "JobRequest",
    "parse_job_request",
    "execute_job",
]

_MAX_DIM = 4096  # request-size guardrail: one job may not exceed this


class BadRequest(ValueError):
    """A malformed job request; the HTTP layer maps this to 400."""


def _rand_string(n: int, seed: int, stream: str) -> str:
    from repro.util.rng import seeded_rng

    rng = seeded_rng(seed, f"serve-{stream}")
    return "".join("ACGT"[int(k)] for k in rng.integers(0, 4, size=max(1, n)))


def _require(cond: bool, msg: str) -> None:
    if not cond:
        raise BadRequest(msg)


def _as_int(params: Dict[str, Any], key: str, lo: int, hi: int) -> int:
    v = params.get(key)
    _require(isinstance(v, int) and not isinstance(v, bool), f"{key} must be an int")
    _require(lo <= v <= hi, f"{key} must be in [{lo}, {hi}], got {v}")
    return v


def _as_str(params: Dict[str, Any], key: str) -> str:
    v = params.get(key)
    _require(isinstance(v, str) and len(v) >= 1, f"{key} must be a non-empty string")
    _require(len(v) < _MAX_DIM, f"{key} longer than {_MAX_DIM - 1} chars")
    return v


def _norm_pair(params: Dict[str, Any]) -> Dict[str, Any]:
    """Normalize a two-sequence app's params (explicit or synthetic)."""
    if "size" in params:
        return {
            "size": _as_int(params, "size", 2, _MAX_DIM),
            "seed": _as_int({"seed": params.get("seed", 0)}, "seed", 0, 2**31),
        }
    return {"a": _as_str(params, "a"), "b": _as_str(params, "b")}


def _pair_strings(params: Dict[str, Any]) -> Tuple[str, str]:
    if "size" in params:
        n = params["size"] - 1
        return (
            _rand_string(n, params["seed"], "a"),
            _rand_string(n, params["seed"], "b"),
        )
    return params["a"], params["b"]


@dataclass(frozen=True)
class AppSpec:
    """One catalog entry: how to build, finish, and independently check."""

    name: str
    pattern: str
    #: canonicalize + validate raw params (raises BadRequest)
    normalize: Callable[[Dict[str, Any]], Dict[str, Any]]
    #: normalized params -> (app, dag)
    build: Callable[[Dict[str, Any]], Tuple[Any, Any]]
    #: finished (app, dag) -> JSON-able result payload (has "score")
    result: Callable[[Any, Any], Dict[str, Any]]
    #: normalized params -> the serial-oracle score (no runtime involved)
    oracle: Callable[[Dict[str, Any]], int]


def _build_sw(p):
    from repro.apps.smith_waterman import SWApp
    from repro.patterns.diagonal import DiagonalDag

    a, b = _pair_strings(p)
    return SWApp(a, b), DiagonalDag(len(a) + 1, len(b) + 1)


def _oracle_sw(p):
    from repro.apps.serial import sw_matrix

    a, b = _pair_strings(p)
    return int(sw_matrix(a, b).max())


def _build_nw(p):
    from repro.apps.needleman_wunsch import NWApp
    from repro.patterns.diagonal import DiagonalDag

    a, b = _pair_strings(p)
    return NWApp(a, b), DiagonalDag(len(a) + 1, len(b) + 1)


def _oracle_nw(p):
    from repro.apps.serial import nw_matrix

    a, b = _pair_strings(p)
    return int(nw_matrix(a, b)[-1, -1])


def _build_lcs(p):
    from repro.apps.lcs import LCSApp
    from repro.patterns.diagonal import DiagonalDag

    a, b = _pair_strings(p)
    return LCSApp(a, b), DiagonalDag(len(a) + 1, len(b) + 1)


def _oracle_lcs(p):
    from repro.apps.serial import lcs_matrix

    a, b = _pair_strings(p)
    return int(lcs_matrix(a, b)[-1, -1])


def _build_edit(p):
    from repro.apps.edit_distance import EditDistanceApp
    from repro.patterns.diagonal import DiagonalDag

    a, b = _pair_strings(p)
    return EditDistanceApp(a, b), DiagonalDag(len(a) + 1, len(b) + 1)


def _oracle_edit(p):
    from repro.apps.serial import edit_distance_matrix

    a, b = _pair_strings(p)
    return int(edit_distance_matrix(a, b)[-1, -1])


def _norm_lps(p):
    if "size" in p:
        return {
            "size": _as_int(p, "size", 2, _MAX_DIM),
            "seed": _as_int({"seed": p.get("seed", 0)}, "seed", 0, 2**31),
        }
    return {"s": _as_str(p, "s")}


def _lps_string(p):
    return (
        _rand_string(p["size"], p["seed"], "s") if "size" in p else p["s"]
    )


def _build_lps(p):
    from repro.apps.lps import LPSApp
    from repro.patterns.interval import IntervalDag

    s = _lps_string(p)
    return LPSApp(s), IntervalDag(len(s), len(s))


def _oracle_lps(p):
    from repro.apps.serial import lps_matrix

    s = _lps_string(p)
    return int(lps_matrix(s)[0, len(s) - 1])


def _norm_chain(p):
    if "size" in p:
        return {
            "size": _as_int(p, "size", 2, 512),
            "seed": _as_int({"seed": p.get("seed", 0)}, "seed", 0, 2**31),
        }
    dims = p.get("dims")
    _require(
        isinstance(dims, list)
        and 2 <= len(dims) <= 513
        and all(isinstance(d, int) and 1 <= d <= 10_000 for d in dims),
        "dims must be a list of 2..513 ints in [1, 10000]",
    )
    return {"dims": list(dims)}


def _chain_dims(p):
    if "size" in p:
        from repro.apps.matrix_chain import make_chain_dims

        return make_chain_dims(p["size"], seed=p["seed"])
    return p["dims"]


def _build_chain(p):
    from repro.apps.matrix_chain import MatrixChainApp
    from repro.patterns.triangular import TriangularDag

    dims = _chain_dims(p)
    n = len(dims) - 1
    return MatrixChainApp(dims), TriangularDag(n, n)


def _oracle_chain(p):
    from repro.apps.serial import matrix_chain_matrix

    dims = _chain_dims(p)
    return int(matrix_chain_matrix(dims)[0, len(dims) - 2])


def _norm_knapsack(p):
    if "size" in p:
        return {
            "size": _as_int(p, "size", 2, 512),
            "seed": _as_int({"seed": p.get("seed", 0)}, "seed", 0, 2**31),
        }
    weights, values = p.get("weights"), p.get("values")
    capacity = _as_int(p, "capacity", 1, _MAX_DIM)

    def _ints(v, name):
        _require(
            isinstance(v, list)
            and 1 <= len(v) <= _MAX_DIM
            and all(isinstance(x, int) and 1 <= x <= 10_000 for x in v),
            f"{name} must be a list of 1..{_MAX_DIM} ints in [1, 10000]",
        )
        return list(v)

    weights, values = _ints(weights, "weights"), _ints(values, "values")
    _require(len(weights) == len(values), "weights and values must match in length")
    return {"weights": weights, "values": values, "capacity": capacity}


def _knapsack_instance(p):
    if "size" in p:
        from repro.apps.knapsack import make_knapsack_instance

        capacity = p["size"] - 1
        weights, values = make_knapsack_instance(
            p["size"] - 1, capacity, seed=p["seed"]
        )
        return list(weights), list(values), capacity
    return p["weights"], p["values"], p["capacity"]


def _build_knapsack(p):
    from repro.apps.knapsack import KnapsackApp
    from repro.patterns.knapsack import KnapsackDag

    weights, values, capacity = _knapsack_instance(p)
    return KnapsackApp(weights, values, capacity), KnapsackDag(weights, capacity)


def _oracle_knapsack(p):
    from repro.apps.serial import knapsack_matrix

    weights, values, capacity = _knapsack_instance(p)
    return int(knapsack_matrix(weights, values, capacity)[-1, -1])


def _norm_mtp(p):
    return {
        "size": _as_int(p, "size", 2, _MAX_DIM),
        "seed": _as_int({"seed": p.get("seed", 0)}, "seed", 0, 2**31),
    }


def _mtp_weights(p):
    from repro.apps.mtp import make_mtp_weights

    return make_mtp_weights(p["size"], p["size"], seed=p["seed"])


def _build_mtp(p):
    from repro.apps.mtp import MTPApp
    from repro.patterns.grid import GridDag

    w_down, w_right = _mtp_weights(p)
    return MTPApp(w_down, w_right), GridDag(p["size"], p["size"])


def _oracle_mtp(p):
    from repro.apps.serial import mtp_matrix

    w_down, w_right = _mtp_weights(p)
    return int(mtp_matrix(w_down, w_right)[-1, -1])


def _corner_result(attr: str):
    def extract(app, dag) -> Dict[str, Any]:
        return {"score": int(getattr(app, attr))}

    return extract


APPS: Dict[str, AppSpec] = {
    "sw": AppSpec(
        "sw", "diagonal", _norm_pair, _build_sw, _corner_result("best_score"), _oracle_sw
    ),
    "nw": AppSpec(
        "nw", "diagonal", _norm_pair, _build_nw, _corner_result("score"), _oracle_nw
    ),
    "lcs": AppSpec(
        "lcs", "diagonal", _norm_pair, _build_lcs, _corner_result("length"), _oracle_lcs
    ),
    "edit": AppSpec(
        "edit",
        "diagonal",
        _norm_pair,
        _build_edit,
        _corner_result("distance"),
        _oracle_edit,
    ),
    "lps": AppSpec(
        "lps", "interval", _norm_lps, _build_lps, _corner_result("length"), _oracle_lps
    ),
    "matrix_chain": AppSpec(
        "matrix_chain",
        "triangular",
        _norm_chain,
        _build_chain,
        _corner_result("min_multiplications"),
        _oracle_chain,
    ),
    "knapsack": AppSpec(
        "knapsack",
        "knapsack",
        _norm_knapsack,
        _build_knapsack,
        _corner_result("best_value"),
        _oracle_knapsack,
    ),
    "mtp": AppSpec(
        "mtp",
        "grid",
        _norm_mtp,
        _build_mtp,
        _corner_result("best_path_weight"),
        _oracle_mtp,
    ),
}

_ENGINES = ("inline", "threaded", "mp")


@dataclass
class JobRequest:
    """A validated, normalized job submission."""

    tenant: str
    app: str
    params: Dict[str, Any]
    engine: str = "mp"
    nplaces: int = 4
    tile_shape: Optional[Tuple[int, int]] = None
    autokernel: bool = False
    use_cache: bool = True
    #: capture an ExecutionTrace for causal post-mortem (GET /jobs/{id}/trace)
    trace: bool = False
    #: chaos soak hook; only honored with server allow_faults=True
    faults: List[FaultPlan] = field(default_factory=list)

    @property
    def pattern(self) -> str:
        return APPS[self.app].pattern

    @property
    def cache_key(self) -> str:
        return cache_key(self.app, self.params, self.pattern, self.tile_shape)


def parse_job_request(
    body: Any, *, allow_faults: bool = False
) -> JobRequest:
    """Validate a decoded JSON body into a :class:`JobRequest`.

    Raises :class:`BadRequest` with a client-presentable message on any
    violation; nothing about the request is trusted.
    """
    _require(isinstance(body, dict), "request body must be a JSON object")
    tenant = body.get("tenant", "default")
    _require(
        isinstance(tenant, str) and 1 <= len(tenant) <= 64,
        "tenant must be a string of 1..64 chars",
    )
    app = body.get("app")
    _require(
        isinstance(app, str) and app in APPS,
        f"app must be one of {sorted(APPS)}, got {app!r}",
    )
    raw_params = body.get("params", {})
    _require(isinstance(raw_params, dict), "params must be a JSON object")
    params = APPS[app].normalize(raw_params)
    engine = body.get("engine", "mp")
    _require(engine in _ENGINES, f"engine must be one of {_ENGINES}")
    nplaces = body.get("nplaces", 4)
    _require(
        isinstance(nplaces, int) and 1 <= nplaces <= 64,
        "nplaces must be an int in [1, 64]",
    )
    tile_shape = body.get("tile_shape")
    if tile_shape is not None:
        _require(
            isinstance(tile_shape, (list, tuple))
            and len(tile_shape) == 2
            and all(isinstance(t, int) and 1 <= t <= _MAX_DIM for t in tile_shape),
            "tile_shape must be [th, tw] with ints >= 1",
        )
        tile_shape = (tile_shape[0], tile_shape[1])
    autokernel = bool(body.get("autokernel", False))
    _require(
        not autokernel or tile_shape is not None,
        "autokernel requires tile_shape",
    )
    use_cache = bool(body.get("cache", True))
    trace = bool(body.get("trace", False))
    faults: List[FaultPlan] = []
    raw_faults = body.get("faults", [])
    if raw_faults:
        _require(allow_faults, "faults are disabled on this server")
        _require(
            isinstance(raw_faults, list) and len(raw_faults) <= 8,
            "faults must be a list of at most 8 kill plans",
        )
        for f in raw_faults:
            _require(
                isinstance(f, dict) and isinstance(f.get("place"), int),
                "each fault needs an int place",
            )
            if "after_completions" in f:
                _require(
                    isinstance(f["after_completions"], int)
                    and f["after_completions"] >= 0,
                    "after_completions must be an int >= 0",
                )
                faults.append(
                    FaultPlan(
                        place_id=f["place"],
                        after_completions=f["after_completions"],
                    )
                )
            else:
                frac = f.get("at_fraction", 0.5)
                _require(
                    isinstance(frac, (int, float)) and 0.0 <= frac <= 1.0,
                    "at_fraction must be in [0, 1]",
                )
                faults.append(
                    FaultPlan(place_id=f["place"], at_fraction=float(frac))
                )
    return JobRequest(
        tenant=tenant,
        app=app,
        params=params,
        engine=engine,
        nplaces=nplaces,
        tile_shape=tile_shape,
        autokernel=autokernel,
        use_cache=use_cache,
        trace=trace,
        faults=faults,
    )


def execute_job(req: JobRequest, config, on_report=None) -> Dict[str, Any]:
    """Run one job synchronously under the given config.

    Returns the JSON-able result payload: the app's score plus run
    accounting. Called by the server from an executor thread (the
    config carries the pacer hook and the warm pool) and by tests
    directly. ``on_report`` receives the full :class:`RunReport` before
    the payload is built — the server uses it to capture the execution
    trace for ``GET /jobs/{id}/trace`` without forcing the trace through
    the JSON result path.
    """
    from repro.core.runtime import DPX10Runtime

    spec = APPS[req.app]
    app, dag = spec.build(req.params)
    runtime = DPX10Runtime(app, dag, config, fault_plans=req.faults)
    report = runtime.run()
    if on_report is not None:
        on_report(report)
    payload = spec.result(app, dag)
    payload.update(
        {
            "app": req.app,
            "pattern": spec.pattern,
            "wall_time": report.wall_time,
            "completions": report.completions,
            "active_vertices": report.active_vertices,
            "recoveries": report.recoveries,
            "final_alive_places": report.final_alive_places,
        }
    )
    return payload
