"""CLI wiring for the job server: ``python -m repro serve``.

Starts the persistent server in the foreground and runs until
interrupted; ``--trace-out`` writes the serving spans as a Chrome trace
on shutdown (the CI smoke uploads this as an artifact). Tenant policies
come from repeated ``--tenant name=rate:burst:max_in_flight:weight``
flags; unnamed tenants get the default policy.
"""

from __future__ import annotations

import argparse
import asyncio
from typing import Dict

from repro.serve.scheduler import TenantPolicy
from repro.serve.server import JobServer

__all__ = ["add_serve_parser"]


def _parse_tenant(spec: str) -> "tuple[str, TenantPolicy]":
    """``name=rate:burst:max_in_flight:weight`` (trailing fields optional)."""
    name, _, raw = spec.partition("=")
    if not name or not raw:
        raise argparse.ArgumentTypeError(
            f"tenant spec must look like name=rate:burst:max:weight, got {spec!r}"
        )
    parts = raw.split(":")
    if len(parts) > 4:
        raise argparse.ArgumentTypeError(f"too many fields in {spec!r}")
    defaults = TenantPolicy()
    try:
        rate = float(parts[0]) if parts[0] else defaults.rate
        burst = float(parts[1]) if len(parts) > 1 and parts[1] else defaults.burst
        max_in_flight = (
            int(parts[2]) if len(parts) > 2 and parts[2] else defaults.max_in_flight
        )
        weight = float(parts[3]) if len(parts) > 3 and parts[3] else defaults.weight
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad tenant spec {spec!r}: {exc}")
    return name, TenantPolicy(
        rate=rate, burst=burst, max_in_flight=max_in_flight, weight=weight
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    per_tenant: Dict[str, TenantPolicy] = dict(args.tenant or [])
    server = JobServer(
        host=args.host,
        port=args.port,
        pool_capacity=args.pool_capacity,
        prewarm=not args.no_prewarm,
        cache_capacity=args.cache_capacity,
        max_queued=args.max_queued,
        quantum_cells=args.quantum_cells,
        allow_faults=args.allow_faults,
        per_tenant=per_tenant,
    )

    async def _run() -> None:
        await server.start()
        print(f"dpx10 job server listening on {server.base_url}")
        print("  POST /jobs | GET /jobs/<id> | GET /metrics | GET /stats")
        await server.serve_forever()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    finally:
        if args.trace_out:
            server.export_trace(args.trace_out)
            print(f"wrote serving trace to {args.trace_out}")
        server.close()
    return 0


def add_serve_parser(sub) -> None:
    p = sub.add_parser(
        "serve",
        help="run the persistent DP job server (warm places, HTTP/JSON API)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=8787, help="0 picks an ephemeral port"
    )
    p.add_argument(
        "--pool-capacity",
        type=int,
        default=None,
        help="warm place processes to keep (default: max(4, cpu_count))",
    )
    p.add_argument(
        "--no-prewarm",
        action="store_true",
        help="fork workers lazily on first lease instead of at startup",
    )
    p.add_argument("--cache-capacity", type=int, default=128)
    p.add_argument(
        "--max-queued",
        type=int,
        default=32,
        help="global admitted-but-not-running cap before 429s",
    )
    p.add_argument(
        "--quantum-cells",
        type=float,
        default=4096.0,
        help="weighted-fair scheduling quantum in DP cells",
    )
    p.add_argument(
        "--allow-faults",
        action="store_true",
        help="accept chaos fault plans in job requests (soak testing)",
    )
    p.add_argument(
        "--tenant",
        action="append",
        type=_parse_tenant,
        metavar="NAME=RATE:BURST:MAX:WEIGHT",
        help="pin a tenant policy (repeatable); empty fields keep defaults",
    )
    p.add_argument(
        "--trace-out",
        default=None,
        help="write a Chrome trace of serving spans here on shutdown",
    )
    p.set_defaults(fn=_cmd_serve)
