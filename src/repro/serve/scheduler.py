"""Admission control and weighted-fair tile-level scheduling.

Two layers keep a multi-tenant server responsive:

* **Admission** (:class:`AdmissionController`) decides at the door: each
  tenant has a token bucket (sustained rate + burst) and a max-in-flight
  cap. A denied request carries a ``retry_after`` hint, which the HTTP
  layer surfaces as ``429`` + ``Retry-After``.
* **Pacing** (:class:`WeightedFairPacer`) decides during execution.
  Jobs are tile-DAG workloads, so instead of whole-job FIFO the pacer
  interleaves *tile batches* across active jobs by virtual-time
  weighted fair queueing: every job carries a virtual time advanced by
  ``cells / weight`` per batch it executes, and a batch may only start
  while its job's virtual time is within one quantum of the
  furthest-behind *running* job. Only jobs actually issuing batches
  define that floor — a job still parked upstream (e.g. waiting for
  pool workers the running job holds) is not a backlogged session and
  must not gate anyone, or the two would deadlock. The furthest-behind
  running job never blocks, so the system always makes progress; a job
  with weight 2 gets ~2x the cell throughput of a weight-1 job
  contending with it.

The pacer plugs into the runtime through ``DPX10Config.pace`` — the
engines call it (blocking) before dispatching each tile / level batch —
so fairness needs no engine-specific code paths.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Optional, Tuple

__all__ = [
    "TokenBucket",
    "TenantPolicy",
    "AdmissionDecision",
    "AdmissionController",
    "WeightedFairPacer",
]


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/s, up to ``burst`` stored."""

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0 or burst <= 0:
            raise ValueError("rate and burst must be > 0")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = float(burst)
        self._stamp = clock()
        self._lock = threading.Lock()

    def _refill_locked(self) -> None:
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._stamp) * self.rate
        )
        self._stamp = now

    def try_acquire(self, n: float = 1.0) -> float:
        """Take ``n`` tokens if available.

        Returns ``0.0`` on success, else the seconds until ``n`` tokens
        will have accumulated (the ``Retry-After`` hint).
        """
        with self._lock:
            self._refill_locked()
            if self._tokens >= n:
                self._tokens -= n
                return 0.0
            return (n - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        with self._lock:
            self._refill_locked()
            return self._tokens


@dataclass(frozen=True)
class TenantPolicy:
    """Per-tenant limits and scheduling weight."""

    #: sustained job submissions per second
    rate: float = 5.0
    #: burst capacity (jobs that may arrive back-to-back)
    burst: float = 10.0
    #: concurrent jobs admitted (queued + running)
    max_in_flight: int = 4
    #: weighted-fair share relative to other tenants (2.0 = double)
    weight: float = 1.0


@dataclass(frozen=True)
class AdmissionDecision:
    """The verdict at the door, with the backpressure hint on denial."""

    admitted: bool
    #: seconds the client should wait before retrying (denials only)
    retry_after: float = 0.0
    #: machine-readable denial reason: "rate" or "in_flight"
    reason: str = ""


class AdmissionController:
    """Token-bucket + max-in-flight admission, per tenant.

    Tenants are materialized on first sight with ``default_policy``;
    ``per_tenant`` pins explicit policies. ``admit`` must be balanced by
    ``release`` when the admitted job leaves the system (any terminal
    state), which is what frees the in-flight slot.
    """

    def __init__(
        self,
        default_policy: Optional[TenantPolicy] = None,
        per_tenant: Optional[Dict[str, TenantPolicy]] = None,
    ) -> None:
        self.default_policy = default_policy or TenantPolicy()
        self._policies: Dict[str, TenantPolicy] = dict(per_tenant or {})
        self._buckets: Dict[str, TokenBucket] = {}
        self._in_flight: Dict[str, int] = {}
        self._lock = threading.Lock()

    def policy(self, tenant: str) -> TenantPolicy:
        return self._policies.get(tenant, self.default_policy)

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            pol = self.policy(tenant)
            bucket = self._buckets[tenant] = TokenBucket(pol.rate, pol.burst)
        return bucket

    def admit(self, tenant: str) -> AdmissionDecision:
        with self._lock:
            pol = self.policy(tenant)
            if self._in_flight.get(tenant, 0) >= pol.max_in_flight:
                # no bucket charge: the request never entered
                return AdmissionDecision(
                    admitted=False, retry_after=1.0, reason="in_flight"
                )
            wait = self._bucket(tenant).try_acquire()
            if wait > 0:
                return AdmissionDecision(
                    admitted=False, retry_after=wait, reason="rate"
                )
            self._in_flight[tenant] = self._in_flight.get(tenant, 0) + 1
            return AdmissionDecision(admitted=True)

    def release(self, tenant: str) -> None:
        with self._lock:
            n = self._in_flight.get(tenant, 0)
            self._in_flight[tenant] = max(0, n - 1)

    def in_flight(self, tenant: str) -> int:
        with self._lock:
            return self._in_flight.get(tenant, 0)

    def snapshot(self) -> Dict[str, int]:
        """Tenant -> current in-flight count (for queue-depth gauges)."""
        with self._lock:
            return dict(self._in_flight)


@dataclass
class _JobClock:
    weight: float
    vtime: float = 0.0
    waits: int = 0
    granted_cells: int = 0
    #: set on the first ``pace`` call. Only started jobs define the
    #: fairness floor: a registered job that is still parked upstream
    #: (e.g. waiting for pool workers held by the running job) must not
    #: pin the floor at zero, or the running job deadlocks against jobs
    #: that cannot run until it finishes.
    started: bool = False


class WeightedFairPacer:
    """Virtual-time weighted fair queueing over ``config.pace`` calls.

    Each registered job J has virtual time ``V(J)``, advanced by
    ``cells / weight`` per granted batch. A batch is granted when
    ``V(J) <= min over active jobs V + quantum``; otherwise the calling
    engine thread blocks until enough other batches complete. The
    minimum-V job is always grantable, so progress is guaranteed, and a
    lone job never waits at all.

    ``register`` returns the ``pace(ncells)`` callable to install as
    ``DPX10Config.pace``; ``unregister`` (in a ``finally``) releases any
    waiters when the job ends.
    """

    def __init__(self, quantum_cells: float = 4096.0, history: int = 4096) -> None:
        if quantum_cells <= 0:
            raise ValueError("quantum_cells must be > 0")
        self.quantum = float(quantum_cells)
        self._cond = threading.Condition()
        self._jobs: Dict[str, _JobClock] = {}
        #: recent grants as (job_id, ncells) — fairness tests measure
        #: interleaving ratios from this window
        self.history: Deque[Tuple[str, int]] = deque(maxlen=history)

    def register(self, job_id: str, weight: float = 1.0) -> Callable[[int], None]:
        if weight <= 0:
            raise ValueError("weight must be > 0")
        with self._cond:
            if job_id in self._jobs:
                raise ValueError(f"job {job_id!r} already registered")
            # a joining job starts at the current running floor: it
            # neither inherits a backlog advantage nor stalls the jobs
            # already executing (re-checked on its first pace call)
            floor = min(
                (j.vtime for j in self._jobs.values() if j.started),
                default=0.0,
            )
            self._jobs[job_id] = _JobClock(weight=weight, vtime=floor)
            self._cond.notify_all()
        return lambda ncells: self.pace(job_id, ncells)

    def unregister(self, job_id: str) -> None:
        with self._cond:
            self._jobs.pop(job_id, None)
            self._cond.notify_all()

    def _grantable_locked(self, clock: _JobClock) -> bool:
        # the floor is over *started* jobs only — jobs registered but
        # still parked upstream (pool lease, queue) are not backlogged
        # sessions in the WFQ sense and must not gate anyone
        floor = min(j.vtime for j in self._jobs.values() if j.started)
        return clock.vtime <= floor + self.quantum

    def pace(self, job_id: str, ncells: int) -> None:
        """Block until the job's next batch of ``ncells`` may start."""
        with self._cond:
            clock = self._jobs.get(job_id)
            if clock is None:  # unregistered mid-run (shutdown): no gate
                return
            if not clock.started:
                # first batch: join the running set at its current floor
                # so time spent parked neither becomes a backlog credit
                # nor stalls the jobs that ran meanwhile
                running = [j.vtime for j in self._jobs.values() if j.started]
                if running:
                    clock.vtime = max(clock.vtime, min(running))
                clock.started = True
            while not self._grantable_locked(clock):
                clock.waits += 1
                # timed wait so a racing unregister can never strand us
                self._cond.wait(timeout=0.05)
                clock = self._jobs.get(job_id)
                if clock is None:
                    return
            clock.vtime += ncells / clock.weight
            clock.granted_cells += ncells
            self.history.append((job_id, ncells))
            self._cond.notify_all()

    def active_jobs(self) -> int:
        with self._cond:
            return len(self._jobs)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """Per-job virtual time / grant counters (for debugging, metrics)."""
        with self._cond:
            return {
                job_id: {
                    "vtime": c.vtime,
                    "weight": c.weight,
                    "waits": c.waits,
                    "granted_cells": c.granted_cells,
                    "started": c.started,
                }
                for job_id, c in self._jobs.items()
            }
