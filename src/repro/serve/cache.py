"""The LRU result cache keyed by the job's semantic identity.

A DP job's answer is fully determined by ``(app, inputs, pattern,
tile_shape)`` — engine choice, place count, scheduling, chaos and pool
warmth all change *how* the matrix is computed, never *what* it holds
(the differential chaos battery is the standing proof). So the cache key
is exactly that 4-tuple:

* ``app`` — the catalog name (``sw``, ``lcs``, ...);
* ``input_hash`` — sha256 over the *canonical* parameter JSON (sorted
  keys, no whitespace, scoring defaults materialized), so two requests
  differing only in JSON formatting or key order share an entry;
* ``pattern`` — the DAG pattern name, which pins the dependency shape;
* ``tile_shape`` — part of the key by design: tiling is bit-identical
  to untiled execution, but keeping it keyed keeps a cache hit
  byte-for-byte attributable to one prior run (and lets operators A/B
  tile shapes without cross-contaminating entries).

Invalidation: entries never expire by time (DP results do not go
stale); they leave by LRU eviction when ``capacity`` is exceeded, or
wholesale via :meth:`ResultCache.clear` (the operational hammer after a
code change that alters app semantics — bump ``CACHE_EPOCH`` in a
release instead when possible, which re-keys every entry).
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from typing import Any, Dict, Optional, Tuple

__all__ = ["CACHE_EPOCH", "canonical_params", "input_hash", "cache_key", "ResultCache"]

#: bump when an app's semantics change in a release: every key changes,
#: which is an implicit full invalidation without a clear() stampede
CACHE_EPOCH = 1


def canonical_params(params: Dict[str, Any]) -> str:
    """The canonical JSON rendering parameter hashing is defined over."""
    return json.dumps(params, sort_keys=True, separators=(",", ":"))


def input_hash(params: Dict[str, Any]) -> str:
    """sha256 over the canonical parameter JSON (hex, 64 chars)."""
    return hashlib.sha256(canonical_params(params).encode()).hexdigest()


def cache_key(
    app: str,
    params: Dict[str, Any],
    pattern: str,
    tile_shape: Optional[Tuple[int, int]],
) -> str:
    """The full result-cache key; see the module docstring for why."""
    tile = f"{tile_shape[0]}x{tile_shape[1]}" if tile_shape else "none"
    return f"v{CACHE_EPOCH}:{app}:{input_hash(params)}:{pattern}:{tile}"


class ResultCache:
    """A thread-safe LRU mapping cache keys to job result payloads.

    ``get`` refreshes recency; ``put`` evicts the least-recently-used
    entry beyond ``capacity``. Counters (hits / misses / evictions) feed
    the server's ``dpx10_result_cache_*`` metrics.
    """

    def __init__(self, capacity: int = 128) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._entries: "OrderedDict[str, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str) -> Optional[Any]:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            return None

    def put(self, key: str, value: Any) -> None:
        if self.capacity == 0:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self) -> int:
        """Drop every entry; returns how many were dropped."""
        with self._lock:
            n = len(self._entries)
            self._entries.clear()
            return n

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: object) -> bool:
        with self._lock:
            return key in self._entries

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }
