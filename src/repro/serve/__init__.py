"""DP-as-a-service: the persistent warm-place job server.

``python -m repro serve`` keeps a pool of pre-forked place processes and
pre-mapped shared-memory planes warm across jobs, and serves concurrent
DP jobs over a local HTTP/JSON API with per-tenant admission control,
weighted-fair tile scheduling, and an LRU result cache. See
``docs/SERVING.md`` for the API reference and operational semantics.

Layering: :mod:`repro.serve.pool` owns processes and segments;
:mod:`repro.serve.scheduler` owns admission and fairness;
:mod:`repro.serve.cache` owns result reuse; :mod:`repro.serve.api` maps
JSON requests onto the app catalog; :mod:`repro.serve.server` composes
them behind asyncio HTTP.
"""

from repro.serve.api import APPS, BadRequest, JobRequest, parse_job_request
from repro.serve.cache import CACHE_EPOCH, ResultCache, cache_key, input_hash
from repro.serve.pool import PlacePool, PoolStats
from repro.serve.scheduler import (
    AdmissionController,
    AdmissionDecision,
    TenantPolicy,
    TokenBucket,
    WeightedFairPacer,
)
from repro.serve.server import JobServer, serve_background

__all__ = [
    "APPS",
    "BadRequest",
    "JobRequest",
    "parse_job_request",
    "CACHE_EPOCH",
    "ResultCache",
    "cache_key",
    "input_hash",
    "PlacePool",
    "PoolStats",
    "AdmissionController",
    "AdmissionDecision",
    "TenantPolicy",
    "TokenBucket",
    "WeightedFairPacer",
    "JobServer",
    "serve_background",
]
