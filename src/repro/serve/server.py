"""The persistent DP job server: asyncio HTTP front, warm engine back.

``JobServer`` holds the four long-lived serving resources — the warm
:class:`~repro.serve.pool.PlacePool`, the per-tenant
:class:`~repro.serve.scheduler.AdmissionController`, the
:class:`~repro.serve.scheduler.WeightedFairPacer`, and the LRU
:class:`~repro.serve.cache.ResultCache` — and exposes them over a small
local HTTP/JSON API (stdlib only; no web framework):

==========================  ====================================================
``POST /jobs``              submit a job; 202 + job id (409-free: resubmits of
                            a cached key return 200 with the cached result)
``GET /jobs/{id}``          job status / result
``GET /jobs/{id}/trace``    Chrome-trace JSON of a ``"trace": true`` job,
                            with the causal summary in ``otherData``
``GET /metrics``            Prometheus text (server + pool + cache + tenants)
``GET /stats``              JSON stats (pool / cache / pacer / admission)
``GET /healthz``            liveness
``DELETE /cache``           invalidate every cached result
==========================  ====================================================

Request lifecycle (the "life of a request" doc walks this in detail):
parse → admission (429 + ``Retry-After`` on rate/in-flight/queue
saturation) → cache probe → executor thread → engine run with
``config.pace`` (weighted-fair gate) and ``config.place_pool`` (warm
places) → result cached and returned. Every stage records a span on the
server's :class:`~repro.core.trace.ExecutionTrace`, exportable as a
Chrome trace for the CI artifact.

Jobs execute in a thread pool because engine runs are blocking; the mp
engine's workers are separate processes, so the GIL only serializes the
thin master loops, not the DP compute.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.core.config import DPX10Config
from repro.core.trace import ExecutionTrace
from repro.errors import UnrecoverableError
from repro.obs.metrics import (
    DEFAULT_SECONDS_BUCKETS,
    MetricsRegistry,
    render_prometheus,
)
from repro.serve.api import BadRequest, JobRequest, parse_job_request, execute_job
from repro.serve.cache import ResultCache
from repro.serve.pool import PlacePool
from repro.serve.scheduler import (
    AdmissionController,
    TenantPolicy,
    WeightedFairPacer,
)
from repro.util.logging import get_logger

__all__ = ["JobServer", "serve_background"]

logger = get_logger("serve.server")

_MAX_BODY = 8 * 1024 * 1024


@dataclass
class Job:
    """One submitted job and everything the status endpoint reports."""

    id: str
    tenant: str
    request: JobRequest
    status: str = "queued"  # queued | running | done | failed
    cached: bool = False
    result: Optional[Dict[str, Any]] = None
    error: Optional[str] = None
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    pool_restarts: int = 0
    #: the run's ExecutionTrace when submitted with "trace": true
    trace: Optional[ExecutionTrace] = field(default=None, repr=False)
    trace_id: Optional[str] = None
    #: set when the job reaches a terminal state, so in-process waiters
    #: (bench, tests) don't pay poll-quantization latency
    done_event: threading.Event = field(default_factory=threading.Event, repr=False)

    def to_dict(self) -> Dict[str, Any]:
        out = {
            "id": self.id,
            "tenant": self.tenant,
            "app": self.request.app,
            "status": self.status,
            "cached": self.cached,
            "submitted_at": self.submitted_at,
        }
        if self.started_at is not None:
            out["started_at"] = self.started_at
        if self.finished_at is not None:
            out["finished_at"] = self.finished_at
        if self.result is not None:
            out["result"] = self.result
        if self.error is not None:
            out["error"] = self.error
        if self.pool_restarts:
            out["pool_restarts"] = self.pool_restarts
        if self.trace_id is not None:
            out["trace_id"] = self.trace_id
        return out


class JobServer:
    """The serving brain; transport-independent, fronted by asyncio HTTP."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8787,
        *,
        pool_capacity: Optional[int] = None,
        prewarm: bool = True,
        cache_capacity: int = 128,
        default_policy: Optional[TenantPolicy] = None,
        per_tenant: Optional[Dict[str, TenantPolicy]] = None,
        max_queued: int = 32,
        executor_workers: int = 8,
        quantum_cells: float = 4096.0,
        allow_faults: bool = False,
    ) -> None:
        self.host = host
        self.port = port
        self.allow_faults = allow_faults
        self.max_queued = max_queued
        self.pool = PlacePool(pool_capacity, prewarm=prewarm)
        self.admission = AdmissionController(default_policy, per_tenant)
        self.pacer = WeightedFairPacer(quantum_cells)
        self.cache = ResultCache(cache_capacity)
        self.registry = MetricsRegistry()
        self.trace = ExecutionTrace()
        self.jobs: Dict[str, Job] = {}
        self._jobs_lock = threading.Lock()
        self._queued = 0
        self._executor = ThreadPoolExecutor(
            max_workers=executor_workers, thread_name_prefix="dpx10-job"
        )
        self._server: Optional[asyncio.AbstractServer] = None
        self._closed = False
        # -- instruments ----------------------------------------------------
        self._jobs_total = self.registry.counter(
            "dpx10_jobs_total",
            "job submissions by terminal disposition",
            ("tenant", "status"),
        )
        self._job_seconds = self.registry.histogram(
            "dpx10_job_seconds",
            "end-to-end job latency (admission to terminal state)",
            ("tenant",),
            buckets=DEFAULT_SECONDS_BUCKETS,
        )
        self._queue_depth = self.registry.gauge(
            "dpx10_job_queue_depth", "jobs admitted but not yet running"
        )
        self._in_flight = self.registry.gauge(
            "dpx10_jobs_in_flight",
            "admitted jobs per tenant (queued + running)",
            ("tenant",),
        )

    # -- job lifecycle ------------------------------------------------------------
    def submit(self, body: Any) -> Tuple[int, Dict[str, Any]]:
        """The whole admission pipeline; returns (http_status, payload).

        Transport-independent so tests can drive it without sockets.
        """
        try:
            req = parse_job_request(body, allow_faults=self.allow_faults)
        except BadRequest as exc:
            return 400, {"error": str(exc)}
        if req.engine == "mp" and req.nplaces > self.pool.capacity:
            return 400, {
                "error": (
                    f"nplaces {req.nplaces} exceeds this server's place-pool "
                    f"capacity {self.pool.capacity}"
                )
            }
        tenant = req.tenant
        with self.trace.phase(f"admission:{tenant}", category="serve"):
            with self._jobs_lock:
                saturated = self._queued >= self.max_queued
            if saturated:
                self._jobs_total.labels(tenant, "rejected").inc()
                return 429, {
                    "error": "server queue saturated",
                    "retry_after": 1.0,
                }
            decision = self.admission.admit(tenant)
        if not decision.admitted:
            self._jobs_total.labels(tenant, "rejected").inc()
            return 429, {
                "error": f"admission denied ({decision.reason})",
                "reason": decision.reason,
                "retry_after": decision.retry_after,
            }
        self._jobs_total.labels(tenant, "submitted").inc()
        job = Job(id=uuid.uuid4().hex[:12], tenant=tenant, request=req)
        with self._jobs_lock:
            self.jobs[job.id] = job
        if req.use_cache:
            hit = self.cache.get(req.cache_key)
            if hit is not None:
                job.status = "done"
                job.cached = True
                job.result = hit
                job.finished_at = time.time()
                job.done_event.set()
                self.admission.release(tenant)
                self._jobs_total.labels(tenant, "cached").inc()
                self._job_seconds.labels(tenant).observe(
                    job.finished_at - job.submitted_at
                )
                return 200, job.to_dict()
        with self._jobs_lock:
            self._queued += 1
            self._queue_depth.set(self._queued)
        self._executor.submit(self._run_job, job)
        return 202, job.to_dict()

    def _run_job(self, job: Job) -> None:
        req = job.request
        tenant = job.tenant
        with self.trace.phase(f"queue:{job.id}", category="serve"):
            with self._jobs_lock:
                self._queued -= 1
                self._queue_depth.set(self._queued)
            job.status = "running"
            job.started_at = time.time()
        pace = self.pacer.register(
            job.id, self.admission.policy(tenant).weight
        )
        try:
            config = DPX10Config(
                engine=req.engine,
                nplaces=req.nplaces,
                tile_shape=req.tile_shape,
                autokernel=req.autokernel,
                trace=req.trace,
                pace=pace,
                # the warm pool serves the mp engine; in-process engines
                # have no processes to reuse
                place_pool=self.pool if req.engine == "mp" else None,
            )

            def _capture(report) -> None:
                if report.trace is not None:
                    job.trace = report.trace
                    job.trace_id = report.trace.trace_id

            with self.trace.phase(f"execute:{job.id}", category="serve"):
                result = execute_job(
                    req, config, on_report=_capture if req.trace else None
                )
            job.result = result
            job.status = "done"
            if req.use_cache:
                self.cache.put(req.cache_key, result)
            self._jobs_total.labels(tenant, "done").inc()
        except UnrecoverableError as exc:
            job.status = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
            self._jobs_total.labels(tenant, "failed").inc()
        except Exception as exc:  # noqa: BLE001 - served errors, not crashes
            logger.exception("job %s crashed", job.id)
            job.status = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
            self._jobs_total.labels(tenant, "failed").inc()
        finally:
            self.pacer.unregister(job.id)
            self.admission.release(tenant)
            job.finished_at = time.time()
            job.done_event.set()
            self._job_seconds.labels(tenant).observe(
                job.finished_at - job.submitted_at
            )

    def job_status(self, job_id: str) -> Optional[Dict[str, Any]]:
        with self._jobs_lock:
            job = self.jobs.get(job_id)
        return job.to_dict() if job else None

    def job_trace(self, job_id: str) -> Tuple[int, Dict[str, Any]]:
        """The Chrome-trace document (with embedded causal summary) of a
        job submitted with ``"trace": true``; (http_status, payload)."""
        from repro.obs.causal import causal_summary
        from repro.obs.export import chrome_trace

        with self._jobs_lock:
            job = self.jobs.get(job_id)
        if job is None:
            return 404, {"error": "no such job"}
        if job.trace is None:
            return 404, {
                "error": (
                    "no trace captured; submit the job with \"trace\": true "
                    "and wait for it to finish"
                )
            }
        causal = causal_summary(job.trace) if job.trace.events else None
        return 200, chrome_trace(job.trace, causal=causal)

    def wait(self, job_id: str, timeout: float = 60.0) -> Dict[str, Any]:
        """Block until a job reaches a terminal state (test / CLI / bench)."""
        with self._jobs_lock:
            job = self.jobs.get(job_id)
        if job is None:
            raise KeyError(job_id)
        if not job.done_event.wait(timeout):
            raise TimeoutError(f"job {job_id} still {job.status}")
        return job.to_dict()

    # -- observability ------------------------------------------------------------
    def _refresh_gauges(self) -> None:
        """Pull-model instruments: refresh at scrape time."""
        for tenant, n in self.admission.snapshot().items():
            self._in_flight.labels(tenant).set(n)
        pool = self.pool.stats()
        self.registry.gauge(
            "dpx10_pool_workers_idle", "warm place processes waiting for a lease"
        ).set(pool.idle)
        self.registry.gauge(
            "dpx10_pool_workers_leased", "place processes leased to running jobs"
        ).set(pool.leased)
        self.registry.counter(
            "dpx10_pool_forks_total", "place processes forked by the pool"
        ).set(pool.forks)
        self.registry.counter(
            "dpx10_pool_leases_total", "pool leases granted"
        ).set(pool.leases)
        self.registry.counter(
            "dpx10_pool_restarts_total",
            "mid-run place restarts served from the pool",
        ).set(pool.restarts_served)
        self.registry.gauge(
            "dpx10_pool_segment_bytes",
            "shared-memory plane bytes owned by the pool",
        ).set(pool.segment_bytes_total)
        cache = self.cache.stats()
        self.registry.counter(
            "dpx10_result_cache_hits_total", "result cache hits"
        ).set(cache["hits"])
        self.registry.counter(
            "dpx10_result_cache_misses_total", "result cache misses"
        ).set(cache["misses"])
        self.registry.counter(
            "dpx10_result_cache_evictions_total", "LRU evictions"
        ).set(cache["evictions"])
        self.registry.gauge(
            "dpx10_result_cache_entries", "cached results currently held"
        ).set(cache["size"])
        self.registry.gauge(
            "dpx10_pacer_active_jobs", "jobs registered with the fair pacer"
        ).set(self.pacer.active_jobs())

    def metrics_text(self) -> str:
        self._refresh_gauges()
        return render_prometheus(self.registry.collect())

    def stats(self) -> Dict[str, Any]:
        with self._jobs_lock:
            by_status: Dict[str, int] = {}
            for job in self.jobs.values():
                by_status[job.status] = by_status.get(job.status, 0) + 1
        return {
            "pool": self.pool.stats().to_dict(),
            "cache": self.cache.stats(),
            "pacer": self.pacer.snapshot(),
            "tenants": self.admission.snapshot(),
            "jobs": by_status,
            "queued": self._queued,
        }

    def export_trace(self, path: str) -> None:
        """Write the serving spans as a Chrome trace (CI artifact)."""
        from repro.obs.export import write_chrome_trace

        self._refresh_gauges()
        write_chrome_trace(path, self.trace, metrics=self.registry.collect())

    # -- HTTP transport -----------------------------------------------------------
    async def _handle(self, reader, writer) -> None:
        try:
            status, headers, payload = await self._respond(reader)
        except Exception as exc:  # noqa: BLE001 - protocol errors -> 500
            status, headers, payload = 500, {}, {"error": str(exc)}
        body = (
            payload
            if isinstance(payload, bytes)
            else json.dumps(payload, indent=1).encode() + b"\n"
        )
        reason = {
            200: "OK",
            202: "Accepted",
            400: "Bad Request",
            404: "Not Found",
            405: "Method Not Allowed",
            429: "Too Many Requests",
            500: "Internal Server Error",
        }.get(status, "OK")
        head = [f"HTTP/1.1 {status} {reason}"]
        base = {
            "Content-Type": headers.pop("Content-Type", "application/json"),
            "Content-Length": str(len(body)),
            "Connection": "close",
        }
        base.update(headers)
        head += [f"{k}: {v}" for k, v in base.items()]
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode() + body)
        try:
            await writer.drain()
        finally:
            writer.close()

    async def _respond(self, reader) -> Tuple[int, Dict[str, str], Any]:
        request_line = (await reader.readline()).decode("latin1").strip()
        if not request_line:
            return 400, {}, {"error": "empty request"}
        try:
            method, path, _version = request_line.split(" ", 2)
        except ValueError:
            return 400, {}, {"error": f"malformed request line {request_line!r}"}
        content_length = 0
        while True:
            line = (await reader.readline()).decode("latin1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return 400, {}, {"error": "bad Content-Length"}
        if content_length > _MAX_BODY:
            return 400, {}, {"error": "request body too large"}
        raw = await reader.readexactly(content_length) if content_length else b""

        if method == "POST" and path == "/jobs":
            try:
                body = json.loads(raw or b"{}")
            except json.JSONDecodeError as exc:
                return 400, {}, {"error": f"invalid JSON: {exc}"}
            status, payload = self.submit(body)
            headers: Dict[str, str] = {}
            if status == 429:
                headers["Retry-After"] = str(
                    max(1, int(payload.get("retry_after", 1) + 0.999))
                )
            return status, headers, payload
        if method == "GET" and path.startswith("/jobs/") and path.endswith("/trace"):
            job_id = path[len("/jobs/"):-len("/trace")]
            status, payload = self.job_trace(job_id)
            return status, {}, payload
        if method == "GET" and path.startswith("/jobs/"):
            job_id, _, query = path[len("/jobs/"):].partition("?")
            wait_s = 0.0
            for part in query.split("&") if query else ():
                name, _, value = part.partition("=")
                if name == "wait":
                    try:
                        wait_s = min(120.0, float(value or 30.0))
                    except ValueError:
                        return 400, {}, {"error": f"bad wait value {value!r}"}
            if wait_s > 0:
                with self._jobs_lock:
                    job = self.jobs.get(job_id)
                if job is None:
                    return 404, {}, {"error": "no such job"}
                # long-poll: park the wait on a worker thread so the
                # event loop keeps serving other clients
                await asyncio.to_thread(job.done_event.wait, wait_s)
            payload = self.job_status(job_id)
            if payload is None:
                return 404, {}, {"error": "no such job"}
            return 200, {}, payload
        if method == "GET" and path == "/metrics":
            return (
                200,
                {"Content-Type": "text/plain; version=0.0.4"},
                self.metrics_text().encode(),
            )
        if method == "GET" and path == "/stats":
            return 200, {}, self.stats()
        if method == "GET" and path == "/healthz":
            return 200, {}, {"status": "ok"}
        if method == "DELETE" and path == "/cache":
            return 200, {}, {"cleared": self.cache.clear()}
        if path in ("/jobs", "/metrics", "/stats", "/healthz", "/cache"):
            return 405, {}, {"error": f"{method} not allowed on {path}"}
        return 404, {}, {"error": f"no route {path}"}

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        # port=0 binds an ephemeral port; publish the real one
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info("serving on http://%s:%d", self.host, self.port)

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._server is not None:
            self._server.close()
        self._executor.shutdown(wait=True)
        self.pool.close()

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"


@contextmanager
def serve_background(server: JobServer):
    """Run the HTTP front in a daemon thread; yield the base URL.

    The engine side (executor threads, pool) lives in the caller's
    process either way — this only moves the asyncio accept loop off the
    caller's thread. Used by tests, the chaos soak and the CI smoke.
    """
    loop = asyncio.new_event_loop()
    started = threading.Event()

    async def _main() -> None:
        await server.start()
        started.set()
        assert server._server is not None
        async with server._server:
            try:
                await server._server.serve_forever()
            except asyncio.CancelledError:
                pass

    def _runner() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(_main())
        finally:
            loop.close()

    thread = threading.Thread(target=_runner, daemon=True, name="dpx10-serve")
    thread.start()
    if not started.wait(timeout=10.0):
        raise RuntimeError("job server failed to start within 10s")
    try:
        yield server.base_url
    finally:
        loop.call_soon_threadsafe(
            lambda: [t.cancel() for t in asyncio.all_tasks(loop)]
        )
        thread.join(timeout=10.0)
        server.close()
