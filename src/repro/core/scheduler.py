"""Scheduling strategies (paper section VI-C).

"The scheduling strategy can be specified by the user. By default, we use
a local scheduling strategy which execute the vertex on the local place.
We also provided another two methods: random scheduling and minimum
communication scheduling. The latter one calculates the total cost of
communication for executing them in each place and choose the minimum one."

A strategy answers one question: *at which place should this ready vertex's
``compute()`` run?* The vertex's result always lives at its home place; a
non-home choice trades computation placement against the transfers of its
dependency values (and the write-back of the result).

Under tile-granular execution (``DPX10Config(tile_shape=...)``) the same
strategies decide placement once per *tile*: ``vid`` is the tile index,
``home`` the tile's home place, and ``dep_homes`` carries one entry per
halo cell, so mincomm weighs whole tile edges instead of single values.

``vid`` is a *layout cell* and is treated as an opaque key: strategies
only ever compare the home places of its dependencies, never interpret
the coordinates. That is what lets the same three strategies schedule
grid, tensor, and tree domains (see :mod:`repro.core.domain`) unchanged
— a tree vertex's ``vid`` is just the layout cell its node embeds to.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.core.api import VertexId
from repro.errors import ConfigurationError, SchedulingError
from repro.util.validation import require

__all__ = [
    "SchedulingStrategy",
    "LocalScheduling",
    "RandomScheduling",
    "MinCommScheduling",
    "make_strategy",
]


class SchedulingStrategy(ABC):
    """Chooses the execution place for a ready vertex."""

    name: str

    @abstractmethod
    def choose_place(
        self,
        vid: VertexId,
        home: int,
        dep_homes: Sequence[int],
        alive_ids: Sequence[int],
        rng: np.random.Generator,
        value_nbytes: int,
    ) -> int:
        """Return the place id where the vertex should execute.

        ``home`` is the vertex's home place (always alive when called);
        ``dep_homes`` lists the home place of each dependency;
        ``alive_ids`` are the currently alive places, in id order.
        """


class LocalScheduling(SchedulingStrategy):
    """Execute at the vertex's home place (the paper's default)."""

    name = "local"

    def choose_place(self, vid, home, dep_homes, alive_ids, rng, value_nbytes):
        return home


class RandomScheduling(SchedulingStrategy):
    """Execute at a uniformly random alive place."""

    name = "random"

    def choose_place(self, vid, home, dep_homes, alive_ids, rng, value_nbytes):
        require(len(alive_ids) > 0, "no alive place to schedule onto", SchedulingError)
        return int(alive_ids[int(rng.integers(0, len(alive_ids)))])

class MinCommScheduling(SchedulingStrategy):
    """Execute where the total communication volume is minimal.

    The cost of running at candidate place *p* is the bytes of every
    dependency homed elsewhere, plus the result write-back if *p* is not
    the vertex's home. Ties break toward the home place, then the lowest
    place id, so decisions are deterministic. "This strategy introduces
    some extra overhead and should be used in appropriate scenarios"
    (paper) — the candidate scan is that overhead.
    """

    name = "mincomm"

    def choose_place(self, vid, home, dep_homes, alive_ids, rng, value_nbytes):
        require(len(alive_ids) > 0, "no alive place to schedule onto", SchedulingError)
        costs = []
        for p in alive_ids:
            cost = sum(value_nbytes for d in dep_homes if d != p)
            if p != home:
                cost += value_nbytes  # result written back to the home place
            costs.append((cost, p))
        best_cost = min(c for c, _ in costs)
        candidates = [p for c, p in costs if c == best_cost]
        return home if home in candidates else min(candidates)


_STRATEGIES = {
    "local": LocalScheduling,
    "random": RandomScheduling,
    "mincomm": MinCommScheduling,
}


def make_strategy(name: str) -> SchedulingStrategy:
    """Instantiate a strategy by its config name.

    >>> make_strategy("local").name
    'local'
    >>> make_strategy("mincomm").name
    'mincomm'
    >>> make_strategy("warp")
    Traceback (most recent call last):
    ...
    repro.errors.ConfigurationError: unknown scheduler 'warp'; known: ['local', 'mincomm', 'random']
    """
    require(
        name in _STRATEGIES,
        f"unknown scheduler {name!r}; known: {sorted(_STRATEGIES)}",
        ConfigurationError,
    )
    return _STRATEGIES[name]()
