"""The paper's new recovery method for distributed DAGs (section VI-D).

"Once a *DeadPlaceException* raises, the program will be paused and enter
the recovery mode. DPX10 will create a new distributed array among the
remaining places and restore the result of the finished vertices from the
alive places. By default the result of remote vertices will be discarded
since it may take less time to recompute them rather than copy them across
the network. The user can change this behavior if the computation is more
time-consuming than the communication. All unfinished vertices in the new
array will be initialized (reset the indegree)."

Concretely:

1. refuse if place 0 died (the Resilient X10 limitation the paper notes);
2. build a new :class:`~repro.dist.dist.Dist` of the same kind over the
   surviving places;
3. for every finished vertex still held by a surviving place: keep it in
   place if its new home is the same place; otherwise copy it (restore
   manner "copy", costed against the network model) or discard it for
   recomputation (default "discard");
4. reset the indegree of every unfinished vertex to its count of
   *unfinished* dependencies and rebuild the ready lists.

Everything a dead place held is gone and will be recomputed.

Recovery is domain-agnostic: it walks ``dag.region`` and the pattern's
``get_dependency`` over opaque layout cells, so tree and tensor domains
(:mod:`repro.core.domain`) recover exactly like grids. Domain-aware
partitions survive too — ``config.make_dist`` re-invokes a
``custom_dist`` factory (e.g. ``TreeDomain.make_dist``) over the
survivor set, rebuilding the subtree/heavy-path decomposition on the
remaining places.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Deque, Dict, Tuple

from collections import deque

from repro.core.vertex_store import VertexStore, build_stores
from repro.core.worker import ExecutionState
from repro.dist.dist import Dist
from repro.errors import DeadPlaceException, PlaceZeroDeadError, RecoveryError
from repro.obs.metrics import DEFAULT_SECONDS_BUCKETS
from repro.util.logging import get_logger
from repro.util.timer import Timer

logger = get_logger("core.recovery")

__all__ = ["RecoveryStats", "recover", "recover_from_snapshot"]

Coord = Tuple[int, int]


def _record_metrics(state: ExecutionState, stats: RecoveryStats) -> None:
    """Publish one recovery pass to the run's metrics registry."""
    metrics = state.metrics
    if not metrics.enabled:
        return
    metrics.counter(
        "dpx10_recoveries_total", "fault recoveries performed", ("mechanism",)
    ).labels(stats.mechanism).inc()
    metrics.histogram(
        "dpx10_recovery_seconds",
        "wall time of one recovery pass",
        buckets=DEFAULT_SECONDS_BUCKETS,
    ).observe(stats.wall_time)
    cells = metrics.counter(
        "dpx10_recovery_cells_total",
        "finished cells handled during recovery, by action",
        ("action",),
    )
    cells.labels("preserved").inc(stats.preserved_in_place)
    cells.labels("copied").inc(stats.copied)
    cells.labels("discarded").inc(stats.discarded)
    cells.labels("restored").inc(stats.restored_from_snapshot)


@dataclass
class RecoveryStats:
    """What one recovery pass did (feeds tests, reports and the sim model)."""

    dead_places: tuple
    alive_places: tuple
    #: which mechanism ran: "recovery" (the paper's) or "snapshot"
    mechanism: str = "recovery"
    preserved_in_place: int = 0
    copied: int = 0
    discarded: int = 0
    restored_from_snapshot: int = 0
    lost_on_dead: int = 0
    to_recompute: int = 0
    wall_time: float = 0.0


def _restartable(state: ExecutionState, pass_fn) -> RecoveryStats:
    """Run one recovery pass, restarting it if a place dies mid-pass.

    A chaos schedule (or, in principle, real hardware) can kill another
    place *while the recovery pass is in flight* — surfacing as a
    :class:`DeadPlaceException` from a salvage read or a chaos trigger.
    The pass is idempotent until it installs the new state, so the safe
    response is to recompute dead/alive from scratch and start over. Each
    restart strictly shrinks the alive set, so at most ``group.size``
    attempts terminate — ending, if everything died, in a clean
    :class:`UnrecoverableError` subclass rather than a hang.
    """
    controller = state.chaos
    if controller is not None:
        controller.begin_recovery_pass()
    for _ in range(state.group.size + 1):
        try:
            return pass_fn(state)
        except DeadPlaceException as exc:
            if not state.group.is_alive(0):
                raise PlaceZeroDeadError() from exc
            state.group.require_any_alive()
            logger.warning(
                "place %d died while recovery was in flight; restarting "
                "the pass over the new survivor set",
                exc.place_id,
            )
    raise RecoveryError(
        "recovery could not stabilize: places kept dying faster than "
        "passes completed"
    )


def _poll_mid_recovery_chaos(state: ExecutionState, progress: int) -> None:
    """Fire any armed mid-recovery kill; raises DeadPlaceException."""
    controller = state.chaos
    if controller is None:
        return
    victims = controller.poll_recovery(progress)
    if victims:
        for victim in victims:
            state.group.kill(victim)
        raise DeadPlaceException(victims[0])


def recover(state: ExecutionState) -> RecoveryStats:
    """Rebuild ``state`` (dist, stores, ready lists) over surviving places.

    Mutates ``state`` in place and returns the pass statistics. Restarts
    itself if yet another place dies while the pass is in flight.
    """
    return _restartable(state, _recover_once)


def _recover_once(state: ExecutionState) -> RecoveryStats:
    group = state.group
    group.require_any_alive()
    if not group.is_alive(0):
        raise PlaceZeroDeadError()

    old_dist = state.dist
    old_stores = state.stores
    dead = tuple(pid for pid in old_dist.place_ids if not group.is_alive(pid))
    alive = group.alive_ids()
    stats = RecoveryStats(dead_places=dead, alive_places=tuple(alive))

    with Timer() as timer:
        dag = state.dag
        config = state.config
        new_dist = config.make_dist(dag.region, alive)

        # salvage finished results still reachable on surviving places;
        # every salvaged cell is a unit of recovery progress for armed
        # mid-recovery chaos kills (which abort and restart this pass)
        preserved: Dict[Coord, Tuple[object, int]] = {}
        for pid in old_dist.place_ids:
            if not group.is_alive(pid):
                continue
            for coord, value in old_stores[pid].finished_items():
                preserved[coord] = (value, pid)
                _poll_mid_recovery_chaos(state, len(preserved))

        new_stores: Dict[int, VertexStore] = build_stores(
            group,
            dag,
            new_dist,
            state.app.value_dtype,
            state.app.init_value,
            spill_dir=config.spill_dir,
            shm_arena=state.shm_arena,
        )

        for coord, (value, old_home) in preserved.items():
            new_home = new_dist.place_of(*coord)
            if new_home == old_home:
                new_stores[new_home].set_result(*coord, value)
                new_stores[new_home].mark_finished(*coord)
                stats.preserved_in_place += 1
            elif config.restore_manner == "copy":
                state.network.record(old_home, new_home, config.value_nbytes)
                new_stores[new_home].set_result(*coord, value)
                new_stores[new_home].mark_finished(*coord)
                stats.copied += 1
            else:
                stats.discarded += 1

        stats.to_recompute = _install(state, new_dist, new_stores)
        stats.lost_on_dead = max(
            0, state.completions - (stats.preserved_in_place + stats.copied + stats.discarded)
        )

    stats.wall_time = timer.elapsed
    _record_metrics(state, stats)
    return stats


def recover_from_snapshot(state: ExecutionState) -> RecoveryStats:
    """The Resilient-X10 baseline: roll back to the last periodic snapshot.

    Everything computed since the last ``snapshot()`` is lost — including
    results still sitting on perfectly healthy places — which is exactly
    the trade-off the paper's new method avoids. Restores are costed as
    transfers from stable storage (modelled at place 0). Restarts itself
    if another place dies while the pass is in flight.
    """
    return _restartable(state, _recover_from_snapshot_once)


def _recover_from_snapshot_once(state: ExecutionState) -> RecoveryStats:
    group = state.group
    group.require_any_alive()
    if not group.is_alive(0):
        raise PlaceZeroDeadError()

    old_dist = state.dist
    dead = tuple(pid for pid in old_dist.place_ids if not group.is_alive(pid))
    alive = group.alive_ids()
    stats = RecoveryStats(
        dead_places=dead, alive_places=tuple(alive), mechanism="snapshot"
    )

    with Timer() as timer:
        config = state.config
        new_dist = config.make_dist(state.dag.region, alive)
        new_stores: Dict[int, VertexStore] = build_stores(
            group,
            state.dag,
            new_dist,
            state.app.value_dtype,
            state.app.init_value,
            spill_dir=config.spill_dir,
            shm_arena=state.shm_arena,
        )
        cells = state.snapshots.load() if state.snapshots is not None else {}
        for (i, j), value in cells.items():
            home = new_dist.place_of(i, j)
            state.network.record(0, home, config.value_nbytes)
            new_stores[home].set_result(i, j, value)
            new_stores[home].mark_finished(i, j)
        stats.restored_from_snapshot = len(cells)
        stats.to_recompute = _install(state, new_dist, new_stores)
        stats.lost_on_dead = max(0, state.completions - len(cells))

    stats.wall_time = timer.elapsed
    _record_metrics(state, stats)
    return stats


def _install(state: ExecutionState, new_dist: Dist, new_stores: Dict[int, VertexStore]) -> int:
    """Reset indegrees, rebuild ready lists, swap the state in.

    Returns the number of active vertices left to (re)compute.
    """

    def finished_now(i: int, j: int) -> bool:
        return new_stores[new_dist.place_of(i, j)].is_finished(i, j)

    dag = state.dag
    alive = list(new_dist.place_ids)
    new_ready: Dict[int, Deque[Coord]] = {pid: deque() for pid in alive}
    total_active = 0
    finished_active = 0
    for pid in alive:
        store = new_stores[pid]
        for k, (i, j) in enumerate(store.coords):
            if not store.active[k]:
                continue
            total_active += 1
            if store.finished[k]:
                finished_active += 1
                continue
            indegree = 0
            for d in dag.get_dependency(i, j):
                if dag.is_active(d.i, d.j) and not finished_now(d.i, d.j):
                    indegree += 1
            store.indegree[k] = indegree
            if indegree == 0:
                new_ready[pid].append((i, j))

    state.dist = new_dist
    state.stores = new_stores
    state.ready = new_ready
    # leave recovery mode: clear the abort latch so the next execution
    # round starts clean
    state.abort_event.clear()
    state._abort_exc = None
    # placement RNGs and conditions for places that were not in the old
    # dist (cannot happen today — recovery only shrinks — but keep the
    # invariant that every dist place has both)
    state.__post_init__()
    if state.tiles is not None:
        # tile-granular run: a dead place invalidates its unfinished
        # tiles; re-home every tile under the new dist and reset tile
        # indegrees from the surviving cell finish flags. A tile whose
        # cells were partially discarded re-executes whole — compute()
        # is pure and set_block never double-counts, so that is safe.
        state.tiles.rebuild(state)
    return total_active - finished_active
