"""Per-place vertex state (paper section VI-B).

"Each vertex in a DAG has a unique 2D coordinate marked as (i, j), and an
indegree field indicates the unfinished number of its predecessors.
Vertices with zero-indegree are schedulable. In addition, a finish flag is
kept for each vertex to identify its status and to help recover the result
after a failure happens."

A :class:`VertexStore` holds exactly that, for the cells one place owns,
in structure-of-arrays form: a value array (typed numpy when the app
declares ``value_dtype``, else an object array), an ``int32`` indegree
array and a ``bool`` finished array. The arrays live in the owning
:class:`~repro.apgas.place.Place`'s storage, so place death makes them
unreachable and accesses raise ``DeadPlaceException``.
"""

from __future__ import annotations

import os
import tempfile
import threading
from typing import Any, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.analysis import sanitize as _sanitize
from repro.apgas.place import Place
from repro.core.dag import Dag
from repro.dist.dist import Dist
from repro.errors import DPX10Error

__all__ = ["VertexStore", "build_stores"]

Coord = Tuple[int, int]


class VertexStore:
    """State for the vertices homed at one place.

    Inactive cells are born finished with the app's ``init_value`` so they
    never schedule — the paper's "set the unneeded vertices as finished"
    initialization. ``finished_active`` counts only active completions and
    drives worker termination.
    """

    def __init__(
        self,
        place: Place,
        dag: Dag,
        dist: Dist,
        value_dtype: Optional[Any],
        init_value_fn,
        spill_dir: Optional[str] = None,
        shm_arena: Optional[Any] = None,
    ) -> None:
        self.place = place
        self.place_id = place.id
        # errors name cells in domain terms ("node 7" on a tree domain)
        self._describe = dag.describe_cell
        coords: List[Coord] = list(dist.owned_coords(place.id))
        self._slot: Dict[Coord, int] = {c: k for k, c in enumerate(coords)}
        self.coords = coords
        n = len(coords)
        self._spill_path: Optional[str] = None
        self._shm_backed = False
        if value_dtype is None:
            # object values cannot be memory-mapped; they stay in RAM
            values = np.empty(n, dtype=object)
        elif spill_dir is not None and n > 0:
            values = self._open_spill(spill_dir, value_dtype, n)
        elif shm_arena is not None and n > 0:
            # opted-in shared-memory backing: the arena owns the segment
            # lifecycle, the store just holds a view
            values = shm_arena.ndarray(
                (n,), value_dtype, f"store{place.id}-values"
            )
            self._shm_backed = True
        else:
            values = np.zeros(n, dtype=value_dtype)
        indegree = np.zeros(n, dtype=np.int32)
        if self._shm_backed:
            finished = shm_arena.ndarray(
                (n,), np.bool_, f"store{place.id}-finished"
            )
        else:
            finished = np.zeros(n, dtype=bool)
        active = np.ones(n, dtype=bool)

        # fast path: stencil patterns supply closed-form indegrees and a
        # vectorized activity mask, avoiding O(cells x deps) Python calls
        bulk_done = False
        if n > 0:
            rows = np.fromiter((c[0] for c in coords), dtype=np.int64, count=n)
            cols = np.fromiter((c[1] for c in coords), dtype=np.int64, count=n)
            bulk = dag.bulk_indegrees(rows, cols)
            if bulk is not None:
                mask = dag.is_active_array(rows, cols)
                assert mask is not None
                indegree[:] = bulk
                active[:] = mask
                finished[:] = ~mask
                bulk_done = True

        if not bulk_done:
            for k, (i, j) in enumerate(coords):
                if dag.is_active(i, j):
                    indegree[k] = sum(
                        1
                        for d in dag.get_dependency(i, j)
                        if dag.is_active(d.i, d.j)
                    )
                else:
                    active[k] = False
                    finished[k] = True

        active_count = int(active.sum())
        for k in np.nonzero(~active)[0]:
            i, j = coords[k]
            iv = init_value_fn(i, j)
            if iv is not None or value_dtype is None:
                values[k] = iv if iv is not None else None

        self.values = values
        self.indegree = indegree
        self.finished = finished
        self.active = active
        self.active_count = active_count
        self.finished_active = 0
        self.lock = threading.Lock()
        # keep the arrays reachable through the place partition so that
        # place death semantically destroys them
        place.put("vertex_store", self)

    # -- disk spill (paper future work) -------------------------------------------
    def _open_spill(self, spill_dir: str, dtype: Any, n: int) -> np.ndarray:
        """Back the value array with an on-disk ``.npy`` memmap."""
        os.makedirs(spill_dir, exist_ok=True)
        fd, path = tempfile.mkstemp(
            dir=spill_dir, prefix=f"dpx10-place{self.place_id}-", suffix=".npy"
        )
        os.close(fd)
        self._spill_path = path
        return np.lib.format.open_memmap(path, mode="w+", dtype=dtype, shape=(n,))

    @property
    def spilled(self) -> bool:
        """Whether vertex values live on disk instead of RAM."""
        return self._spill_path is not None

    @property
    def shm_backed(self) -> bool:
        """Whether values/finished live in a shared-memory segment."""
        return self._shm_backed

    def detach_shm(self) -> None:
        """Copy shm-backed arrays to private heap memory.

        Called before the owning arena unlinks its segments so results
        stay readable through the bound :class:`ResultView` after the
        run — a view into an unmapped segment would fault.
        """
        if not self._shm_backed:
            return
        self.values = np.array(self.values, copy=True)
        self.finished = np.array(self.finished, copy=True)
        self._shm_backed = False

    def __del__(self) -> None:  # pragma: no cover - GC timing dependent
        path = getattr(self, "_spill_path", None)
        if path is not None:
            try:
                self.values._mmap.close()  # type: ignore[union-attr]
            except Exception:
                pass
            try:
                os.unlink(path)
            except OSError:
                pass

    # -- slot lookup -----------------------------------------------------------
    def slot(self, i: int, j: int) -> int:
        return self._slot[(i, j)]

    def owns(self, i: int, j: int) -> bool:
        return (i, j) in self._slot

    @property
    def size(self) -> int:
        return len(self.coords)

    # -- liveness-checked accessors ----------------------------------------------
    def _check(self) -> None:
        self.place.check_alive()

    def get_result(self, i: int, j: int) -> Any:
        self._check()
        if _sanitize._active_guards:
            # sanitized run: reads issued during a compute() must stay
            # within that cell's declared dependency list
            _sanitize.check_read(i, j, owner_place=self.place_id)
        k = self._slot[(i, j)]
        if not self.finished[k]:
            raise DPX10Error(f"vertex {self._describe(i, j)} is not finished")
        return self.values[k]

    def set_result(self, i: int, j: int, value: Any) -> None:
        self._check()
        k = self._slot[(i, j)]
        self.values[k] = value

    def is_finished(self, i: int, j: int) -> bool:
        self._check()
        return bool(self.finished[self._slot[(i, j)]])

    def mark_finished(self, i: int, j: int) -> None:
        """Set the finish flag; counts toward active completions once."""
        self._check()
        k = self._slot[(i, j)]
        with self.lock:
            if not self.finished[k]:
                self.finished[k] = True
                if self.active[k]:
                    self.finished_active += 1

    def dec_indegree(self, i: int, j: int) -> bool:
        """Decrement; ``True`` when the vertex just became schedulable."""
        self._check()
        k = self._slot[(i, j)]
        with self.lock:
            self.indegree[k] -= 1
            return self.indegree[k] == 0 and not self.finished[k]

    # -- tile-granular bulk accessors (the tiled engine's data plane) ---------------
    def get_block(self, coords) -> List[Any]:
        """Values of many finished cells in one liveness-checked call.

        The tiled engine fetches a tile's halo with one ``get_block`` per
        producing place instead of one ``get_result`` per cell. Raises if
        any requested cell is unfinished (a tile was released too early —
        the tile-DAG analogue of a dependency race).
        """
        self._check()
        slot = self._slot
        ks = [slot[c] for c in coords]
        if ks and not self.finished[ks].all():
            bad = next(c for c, k in zip(coords, ks) if not self.finished[k])
            raise DPX10Error(f"vertex {self._describe(*bad)} is not finished")
        values = self.values
        return [values[k] for k in ks]

    def set_block(self, coords, block_values) -> int:
        """Store and finish many cells under one lock; returns newly finished.

        The tiled engine writes a whole tile's results back per home place
        with this, instead of ``set_result`` + ``mark_finished`` per cell.
        Already-finished cells are overwritten with the (identical —
        ``compute()`` is pure) value and not double-counted, which is what
        makes post-recovery re-execution of partially finished tiles safe.
        """
        self._check()
        slot = self._slot
        ks = np.fromiter((slot[c] for c in coords), dtype=np.int64, count=len(coords))
        with self.lock:
            if self.values.dtype == object:
                for k, v in zip(ks, block_values):
                    self.values[k] = v
            else:
                self.values[ks] = block_values
            newly = int((~self.finished[ks] & self.active[ks]).sum())
            self.finished[ks] = True
            self.finished_active += newly
        return newly

    def all_done(self) -> bool:
        self._check()
        with self.lock:
            return self.finished_active >= self.active_count

    # -- bulk views (used by init, recovery and result binding) --------------------
    def zero_indegree_unfinished(self) -> List[Coord]:
        """Initially schedulable cells, in row-major order."""
        self._check()
        return [
            c
            for k, c in enumerate(self.coords)
            if self.active[k] and not self.finished[k] and self.indegree[k] == 0
        ]

    def finished_items(self) -> Iterator[Tuple[Coord, Any]]:
        """Snapshot of (coord, value) for every finished *active* cell."""
        self._check()
        with self.lock:
            done = [
                (c, self.values[k])
                for k, c in enumerate(self.coords)
                if self.finished[k] and self.active[k]
            ]
        return iter(done)


def build_stores(
    group,
    dag: Dag,
    dist: Dist,
    value_dtype: Optional[Any],
    init_value_fn,
    spill_dir: Optional[str] = None,
    shm_arena: Optional[Any] = None,
) -> Dict[int, VertexStore]:
    """One store per place of ``dist`` (all must be alive)."""
    return {
        pid: VertexStore(
            group.check_alive(pid),
            dag,
            dist,
            value_dtype,
            init_value_fn,
            spill_dir,
            shm_arena=shm_arena,
        )
        for pid in dist.place_ids
    }
