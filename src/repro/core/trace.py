"""Execution tracing: per-vertex timeline plus phase-level spans.

Enable with ``DPX10Config(trace=True)``; the runtime then records one
:class:`TraceEvent` per ``compute()`` invocation (coordinates, home and
execution place, wall-clock start/end). :class:`ExecutionTrace` offers the
analyses a performance engineer reaches for first: per-place utilization,
a completion-rate profile (the wavefront breathing in and out), and an
ASCII Gantt rendering.

On top of the per-vertex/tile events sits a **span layer**: coarse
:class:`Span` intervals for the runtime's phases (partition, schedule,
execute, halo fetch, recovery) recorded via :meth:`ExecutionTrace.phase`.
Spans live in their own list — ``len(trace)`` and ``trace.events`` keep
their historical meaning — and ride along into the Chrome-trace / JSONL
exporters (:mod:`repro.obs.export`).

Tracing costs two ``perf_counter`` calls and one append per vertex — keep
it off for benchmarking runs.
"""

from __future__ import annotations

import itertools
import math
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["TraceEvent", "Span", "ExecutionTrace"]


@dataclass(frozen=True)
class TraceEvent:
    """One ``compute()`` invocation — or one whole tile under the tiled engine.

    Per-vertex execution records one event per cell with ``tile=None``.
    The tiled engine (``DPX10Config(tile_shape=...)``) records one event
    per *tile*: ``(i, j)`` is the tile's origin cell, ``cells`` the number
    of cells it computed, and ``tile`` the tile's ``(ti, tj)`` grid
    coordinate — so the Gantt/utilization analyses keep working unchanged
    while per-tile attribution stays available.
    """

    i: int
    j: int
    home_place: int
    exec_place: int
    start: float
    end: float
    #: tile grid coordinate when the event covers a whole tile
    tile: Optional[Tuple[int, int]] = None
    #: cells computed by this event (1 for per-vertex events)
    cells: int = 1

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class Span:
    """One phase-level interval (coarser than a vertex/tile event).

    ``place`` is the place the phase ran at, or ``-1`` for runtime-global
    phases (partition, schedule, recovery). ``category`` groups spans for
    the exporters: ``"phase"`` for run stages, ``"halo"`` for tile halo
    fetches, ``"recovery"`` for rebuild passes, ``"pace"`` for pacer
    stalls, ``"serve"`` for job-server stages.

    Trace context (PR 8): ``span_id`` identifies the span inside its
    trace, ``parent_id`` is the enclosing span's id (``None`` for roots),
    and ``pid`` is the OS process that recorded it — ``0`` for the master
    process, a worker pid for mp worker-side spans. All three default so
    pre-causal constructors and serialized traces keep working.
    """

    name: str
    start: float
    end: float
    category: str = "phase"
    place: int = -1
    span_id: Optional[str] = None
    parent_id: Optional[str] = None
    pid: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start


class ExecutionTrace:
    """Thread-safe event sink plus post-run analyses.

    Every trace carries a ``trace_id`` (propagated through the serve
    layer and the mp init envelopes), an ``epoch0`` wall-clock anchor
    (``time.time()`` at the instant ``now()`` read 0) so two traces can
    be merged onto one timeline, and a free-form ``meta`` dict the
    runtime fills with tiling facts (``tile_shape``, ``tile_offsets``,
    ``grid``) that :mod:`repro.obs.causal` needs to rebuild dependency
    edges post-mortem.
    """

    def __init__(self, trace_id: Optional[str] = None) -> None:
        self._events: List[TraceEvent] = []
        self._spans: List[Span] = []
        self._lock = threading.Lock()
        self._t0 = time.perf_counter()
        self.trace_id: str = trace_id or uuid.uuid4().hex
        self.epoch0: float = time.time() - self.now()
        self.meta: Dict[str, object] = {}
        self._span_seq = itertools.count(1)
        self._span_stack = threading.local()

    # -- recording ---------------------------------------------------------------
    def now(self) -> float:
        """Seconds since the trace began."""
        return time.perf_counter() - self._t0

    def record(self, event: TraceEvent) -> None:
        with self._lock:
            self._events.append(event)

    def record_span(self, span: Span) -> None:
        with self._lock:
            self._spans.append(span)

    def next_span_id(self) -> str:
        """A process-unique span id, cheap and deterministic per trace."""
        return f"s{next(self._span_seq)}"

    def current_span_id(self) -> Optional[str]:
        """Id of the innermost open :meth:`phase` span on this thread."""
        stack = getattr(self._span_stack, "ids", None)
        return stack[-1] if stack else None

    @contextmanager
    def phase(self, name: str, category: str = "phase", place: int = -1):
        """Record the ``with`` body as one :class:`Span`.

        Nested ``phase`` blocks on the same thread are linked through
        ``span_id``/``parent_id`` so the causal layer can rebuild the
        blocking tree:

        >>> t = ExecutionTrace()
        >>> with t.phase("partition"):
        ...     pass
        >>> [s.name for s in t.spans]
        ['partition']
        >>> with t.phase("execute"):
        ...     with t.phase("halo fetch", category="halo"):
        ...         pass
        >>> halo = [s for s in t.spans if s.category == "halo"][0]
        >>> execute = [s for s in t.spans if s.name == "execute"][0]
        >>> halo.parent_id == execute.span_id
        True
        """
        start = self.now()
        span_id = self.next_span_id()
        parent_id = self.current_span_id()
        stack = getattr(self._span_stack, "ids", None)
        if stack is None:
            stack = []
            self._span_stack.ids = stack
        stack.append(span_id)
        try:
            yield self
        finally:
            stack.pop()
            self.record_span(
                Span(name, start, self.now(), category, place,
                     span_id=span_id, parent_id=parent_id)
            )

    # -- access ------------------------------------------------------------------
    @property
    def events(self) -> List[TraceEvent]:
        with self._lock:
            return list(self._events)

    @property
    def spans(self) -> List[Span]:
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def span(self) -> float:
        """Wall-clock from the first start to the last end."""
        events = self.events
        if not events:
            return 0.0
        return max(e.end for e in events) - min(e.start for e in events)

    def tile_events(self) -> List[TraceEvent]:
        """Only the events recorded at tile granularity (tiled engine runs)."""
        return [e for e in self.events if e.tile is not None]

    # -- analyses -----------------------------------------------------------------
    def utilization(self) -> Dict[int, float]:
        """Busy-time fraction per execution place over the trace span.

        The span is first-start to last-end; each place's busy time is the
        sum of its event durations, capped at 1.0:

        >>> t = ExecutionTrace()
        >>> t.record(TraceEvent(0, 0, 0, 0, start=0.0, end=1.0))
        >>> t.record(TraceEvent(0, 1, 1, 1, start=0.0, end=0.5))
        >>> t.utilization()
        {0: 1.0, 1: 0.5}
        """
        events = self.events
        span = self.span
        if not events or span == 0:
            return {}
        busy: Dict[int, float] = {}
        for e in events:
            busy[e.exec_place] = busy.get(e.exec_place, 0.0) + e.duration
        return {p: min(1.0, b / span) for p, b in sorted(busy.items())}

    def completion_profile(self, buckets: int = 20) -> List[int]:
        """Completions per equal time bucket — the wavefront's width over time."""
        events = self.events
        if not events or buckets < 1:
            return [0] * max(buckets, 0)
        start = min(e.start for e in events)
        span = self.span or 1e-12
        out = [0] * buckets
        for e in events:
            k = min(buckets - 1, int((e.end - start) / span * buckets))
            out[k] += 1
        return out

    def executed_per_place(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for e in self.events:
            counts[e.exec_place] = counts.get(e.exec_place, 0) + 1
        return dict(sorted(counts.items()))

    def phase_totals(self) -> Dict[str, float]:
        """Total seconds per span name (empty when no spans recorded)."""
        totals: Dict[str, float] = {}
        for s in self.spans:
            totals[s.name] = totals.get(s.name, 0.0) + s.duration
        return dict(sorted(totals.items()))

    def render_gantt(self, width: int = 60) -> str:
        """ASCII activity chart: one row per place, '#' where busy."""
        events = self.events
        if not events:
            return "(empty trace)"
        t0 = min(e.start for e in events)
        span = self.span or 1e-12
        places = sorted({e.exec_place for e in events})
        rows = []
        for p in places:
            cells = [" "] * width
            for e in events:
                if e.exec_place != p:
                    continue
                # column k covers scaled time [k, k+1): paint the columns
                # the half-open interval [start, end) overlaps. An event
                # ending exactly on a column boundary must not bleed into
                # the next column (zero-duration events still paint one).
                a = int((e.start - t0) / span * width)
                b = math.ceil((e.end - t0) / span * width) - 1
                for k in range(max(0, a), min(width, max(b, a) + 1)):
                    cells[k] = "#"
            rows.append(f"place {p:3d} |{''.join(cells)}|")
        header = f"{'':9s} +{'-' * width}+  span={span * 1e3:.1f}ms"
        return "\n".join([header] + rows)
