"""Execution tracing: per-vertex timeline for profiling and visualization.

Enable with ``DPX10Config(trace=True)``; the runtime then records one
:class:`TraceEvent` per ``compute()`` invocation (coordinates, home and
execution place, wall-clock start/end). :class:`ExecutionTrace` offers the
analyses a performance engineer reaches for first: per-place utilization,
a completion-rate profile (the wavefront breathing in and out), and an
ASCII Gantt rendering.

Tracing costs two ``perf_counter`` calls and one append per vertex — keep
it off for benchmarking runs.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["TraceEvent", "ExecutionTrace"]


@dataclass(frozen=True)
class TraceEvent:
    """One ``compute()`` invocation — or one whole tile under the tiled engine.

    Per-vertex execution records one event per cell with ``tile=None``.
    The tiled engine (``DPX10Config(tile_shape=...)``) records one event
    per *tile*: ``(i, j)`` is the tile's origin cell, ``cells`` the number
    of cells it computed, and ``tile`` the tile's ``(ti, tj)`` grid
    coordinate — so the Gantt/utilization analyses keep working unchanged
    while per-tile attribution stays available.
    """

    i: int
    j: int
    home_place: int
    exec_place: int
    start: float
    end: float
    #: tile grid coordinate when the event covers a whole tile
    tile: Optional[Tuple[int, int]] = None
    #: cells computed by this event (1 for per-vertex events)
    cells: int = 1

    @property
    def duration(self) -> float:
        return self.end - self.start


class ExecutionTrace:
    """Thread-safe event sink plus post-run analyses."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []
        self._lock = threading.Lock()
        self._t0 = time.perf_counter()

    # -- recording ---------------------------------------------------------------
    def now(self) -> float:
        """Seconds since the trace began."""
        return time.perf_counter() - self._t0

    def record(self, event: TraceEvent) -> None:
        with self._lock:
            self._events.append(event)

    # -- access ------------------------------------------------------------------
    @property
    def events(self) -> List[TraceEvent]:
        with self._lock:
            return list(self._events)

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def span(self) -> float:
        """Wall-clock from the first start to the last end."""
        events = self.events
        if not events:
            return 0.0
        return max(e.end for e in events) - min(e.start for e in events)

    def tile_events(self) -> List[TraceEvent]:
        """Only the events recorded at tile granularity (tiled engine runs)."""
        return [e for e in self.events if e.tile is not None]

    # -- analyses -----------------------------------------------------------------
    def utilization(self) -> Dict[int, float]:
        """Busy-time fraction per execution place over the trace span.

        The span is first-start to last-end; each place's busy time is the
        sum of its event durations, capped at 1.0:

        >>> t = ExecutionTrace()
        >>> t.record(TraceEvent(0, 0, 0, 0, start=0.0, end=1.0))
        >>> t.record(TraceEvent(0, 1, 1, 1, start=0.0, end=0.5))
        >>> t.utilization()
        {0: 1.0, 1: 0.5}
        """
        events = self.events
        span = self.span
        if not events or span == 0:
            return {}
        busy: Dict[int, float] = {}
        for e in events:
            busy[e.exec_place] = busy.get(e.exec_place, 0.0) + e.duration
        return {p: min(1.0, b / span) for p, b in sorted(busy.items())}

    def completion_profile(self, buckets: int = 20) -> List[int]:
        """Completions per equal time bucket — the wavefront's width over time."""
        events = self.events
        if not events or buckets < 1:
            return [0] * max(buckets, 0)
        start = min(e.start for e in events)
        span = self.span or 1e-12
        out = [0] * buckets
        for e in events:
            k = min(buckets - 1, int((e.end - start) / span * buckets))
            out[k] += 1
        return out

    def executed_per_place(self) -> Dict[int, int]:
        counts: Dict[int, int] = {}
        for e in self.events:
            counts[e.exec_place] = counts.get(e.exec_place, 0) + 1
        return dict(sorted(counts.items()))

    def render_gantt(self, width: int = 60) -> str:
        """ASCII activity chart: one row per place, '#' where busy."""
        events = self.events
        if not events:
            return "(empty trace)"
        t0 = min(e.start for e in events)
        span = self.span or 1e-12
        places = sorted({e.exec_place for e in events})
        rows = []
        for p in places:
            cells = [" "] * width
            for e in events:
                if e.exec_place != p:
                    continue
                a = int((e.start - t0) / span * width)
                b = int((e.end - t0) / span * width)
                for k in range(max(0, a), min(width, b + 1)):
                    cells[k] = "#"
            rows.append(f"place {p:3d} |{''.join(cells)}|")
        header = f"{'':9s} +{'-' * width}+  span={span * 1e3:.1f}ms"
        return "\n".join([header] + rows)
