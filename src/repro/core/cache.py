"""The per-worker remote-vertex cache (paper section VI-C).

"To reduce the overhead of data transmission, the worker maintains a cache
list that caches recently transmitted vertices. For efficiency, the cache
list is implemented using a static array and its size can be specified by
the user. We adopt a simple FIFO replacement mechanism..."

Faithful to that: a fixed-capacity ring buffer (the "static array") with
FIFO eviction — *not* LRU: a hit does not refresh an entry's position,
matching the paper's rationale that vertices in a regular DP DAG are only
needed for a short window.
"""

from __future__ import annotations

import threading
from typing import Generic, List, Optional, Tuple, TypeVar

from repro.analysis import sanitize as _sanitize
from repro.util.validation import require

__all__ = ["RemoteCache"]

K = TypeVar("K")
V = TypeVar("V")

_MISS = object()


class RemoteCache(Generic[K, V]):
    """Fixed-size FIFO cache of remote vertex values.

    ``capacity == 0`` disables caching (every lookup misses, puts are
    dropped), which is how Figure 12's overhead experiment runs.
    """

    def __init__(self, capacity: int) -> None:
        require(capacity >= 0, f"cache capacity must be >= 0, got {capacity}")
        self.capacity = capacity
        self._keys: List[Optional[K]] = [None] * capacity
        self._map: dict[K, V] = {}
        self._next = 0  # ring-buffer write cursor
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get(self, key: K) -> Tuple[bool, Optional[V]]:
        """``(True, value)`` on hit; ``(False, None)`` on miss."""
        if (
            _sanitize._active_guards
            and isinstance(key, tuple)
            and len(key) == 2
        ):
            # sanitized run: cached vertex reads issued during a
            # compute() are checked like store reads
            _sanitize.check_read(key[0], key[1], source="remote cache")
        with self._lock:
            value = self._map.get(key, _MISS)
            if value is _MISS:
                self.misses += 1
                return False, None
            self.hits += 1
            return True, value  # type: ignore[return-value]

    def get_many(self, keys) -> Tuple[dict, list]:
        """Batched lookup for one tile edge: ``(hits_dict, missing_keys)``.

        The tiled engine probes a whole remote halo in one call — one lock
        acquisition instead of one per cell. Hit/miss counters advance by
        the same amounts the per-cell path would record.
        """
        hits: dict = {}
        missing: list = []
        with self._lock:
            for key in keys:
                value = self._map.get(key, _MISS)
                if value is _MISS:
                    self.misses += 1
                    missing.append(key)
                else:
                    self.hits += 1
                    hits[key] = value
        return hits, missing

    def peek_many(self, keys) -> Tuple[dict, list]:
        """Like :meth:`get_many` but without advancing the hit/miss
        counters — for speculative probes (the halo prefetcher) that must
        not distort the cache accounting the reports and tests rely on."""
        hits: dict = {}
        missing: list = []
        with self._lock:
            for key in keys:
                value = self._map.get(key, _MISS)
                if value is _MISS:
                    missing.append(key)
                else:
                    hits[key] = value
        return hits, missing

    def put_many(self, items) -> None:
        """Batched insert of ``(key, value)`` pairs (FIFO, one lock hold)."""
        if self.capacity == 0:
            return
        with self._lock:
            for key, value in items:
                if key in self._map:
                    self._map[key] = value
                    continue
                old = self._keys[self._next]
                if old is not None:
                    del self._map[old]
                self._keys[self._next] = key
                self._map[key] = value
                self._next = (self._next + 1) % self.capacity

    def put(self, key: K, value: V) -> None:
        """Insert, evicting the oldest entry when full (FIFO)."""
        if self.capacity == 0:
            return
        with self._lock:
            if key in self._map:
                self._map[key] = value  # refresh value, keep FIFO position
                return
            old = self._keys[self._next]
            if old is not None:
                del self._map[old]
            self._keys[self._next] = key
            self._map[key] = value
            self._next = (self._next + 1) % self.capacity

    def __len__(self) -> int:
        with self._lock:
            return len(self._map)

    def __contains__(self, key: K) -> bool:
        with self._lock:
            return key in self._map

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def clear(self) -> None:
        with self._lock:
            self._keys = [None] * self.capacity
            self._map.clear()
            self._next = 0
