"""The DPX10 framework core: the paper's primary contribution.

A DPX10 program is a :class:`~repro.core.api.DPX10App` (a ``compute()``
method plus an ``app_finished()`` callback) bound to a
:class:`~repro.core.dag.Dag` (a DAG pattern). The
:class:`~repro.core.runtime.DPX10Runtime` handles everything else —
distribution, per-place worker scheduling, dependency resolution, remote
caching and fault recovery — mirroring the execution flow of the paper's
Figure 4.
"""

from repro.core.api import DPX10App, Vertex, VertexId
from repro.core.cache import RemoteCache
from repro.core.config import DPX10Config
from repro.core.dag import Dag
from repro.core.runtime import DPX10Runtime, RunReport
from repro.core.scheduler import (
    LocalScheduling,
    MinCommScheduling,
    RandomScheduling,
    SchedulingStrategy,
    make_strategy,
)
from repro.core.tiling import TiledDag, TileGrid, coarsen, coarsen_offsets

__all__ = [
    "DPX10App",
    "Vertex",
    "VertexId",
    "RemoteCache",
    "DPX10Config",
    "Dag",
    "DPX10Runtime",
    "RunReport",
    "LocalScheduling",
    "MinCommScheduling",
    "RandomScheduling",
    "SchedulingStrategy",
    "make_strategy",
    "TiledDag",
    "TileGrid",
    "coarsen",
    "coarsen_offsets",
]
