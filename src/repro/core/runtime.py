"""``DPX10Runtime``: the execution flow of the paper's Figure 4.

In the absence of faults a run has three stages:

1. **distribute & initialize** — build the distribution over the alive
   places, create the per-place vertex stores, seed each place's ready
   list with its zero-indegree vertices;
2. **execute** — start one worker per place; workers schedule local
   vertices and run the user's ``compute()`` until every local vertex is
   finished;
3. **finish** — bind results to the DAG and invoke ``app_finished()``.

On a ``DeadPlaceException`` the runtime pauses, runs
:func:`repro.core.recovery.recover`, and re-enters the execute stage on
the surviving places — repeatedly, if multiple faults are injected.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.apgas.failure import FaultInjector, FaultPlan
from repro.apgas.network import NetworkModel
from repro.apgas.runtime import GlobalRuntime
from repro.core.api import DPX10App
from repro.core.cache import RemoteCache
from repro.core.config import DPX10Config
from repro.core.dag import Dag, ResultView
from repro.core.recovery import RecoveryStats, recover, recover_from_snapshot
from repro.core.trace import ExecutionTrace
from repro.obs.metrics import MetricsRegistry, NULL_REGISTRY
from repro.core.scheduler import make_strategy
from repro.core.vertex_store import build_stores
from repro.core.worker import ExecutionState, run_inline, run_static, run_threaded
from repro.errors import ConfigurationError, DeadPlaceException, PlaceZeroDeadError
from repro.util.logging import get_logger
from repro.util.timer import Timer

logger = get_logger("core.runtime")

__all__ = ["DPX10Runtime", "RunReport"]

Coord = Tuple[int, int]


@dataclass
class RunReport:
    """Outcome and accounting of one :meth:`DPX10Runtime.run`."""

    wall_time: float
    #: total ``compute()`` invocations, including post-fault recomputation
    completions: int
    #: active vertices in the DAG (the useful work)
    active_vertices: int
    #: number of recovery passes taken
    recoveries: int
    recovery_stats: List[RecoveryStats] = field(default_factory=list)
    network_messages: int = 0
    network_bytes: int = 0
    #: message retransmissions (mp timeouts / modelled chaos drops)
    msg_retries: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    per_place_activities: Dict[int, int] = field(default_factory=dict)
    #: compute() executions by execution place (moves under non-local
    #: scheduling and work stealing)
    per_place_executed: Dict[int, int] = field(default_factory=dict)
    final_alive_places: int = 0
    #: periodic-snapshot FT accounting (ft_mode="snapshot" only)
    snapshots_taken: int = 0
    snapshot_cells_copied: int = 0
    #: per-vertex timeline (config.trace=True only)
    trace: Optional["ExecutionTrace"] = None
    #: metrics snapshot from the repro.obs registry (config.metrics=True
    #: only): {name: {kind, help, labelnames, values}} — see
    #: repro.obs.metrics.MetricsRegistry.collect
    metrics: Optional[Dict[str, dict]] = None

    @property
    def recomputed(self) -> int:
        """Compute invocations beyond the useful work (fault overhead)."""
        return max(0, self.completions - self.active_vertices)

    @property
    def cache_hit_rate(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    def summary(self) -> str:
        """A human-readable multi-line digest of the run."""
        lines = [
            f"vertices: {self.active_vertices} active, "
            f"{self.completions} compute() calls"
            + (f" ({self.recomputed} recomputed)" if self.recomputed else ""),
            f"places: {self.final_alive_places} alive at finish, "
            f"{self.recoveries} recovery pass(es)",
            f"network: {self.network_messages} messages, "
            f"{self.network_bytes} bytes",
            f"cache: {self.cache_hits} hits / {self.cache_misses} misses "
            f"({self.cache_hit_rate:.1%})",
            f"wall time: {self.wall_time:.3f}s",
        ]
        if self.snapshots_taken:
            lines.append(
                f"snapshots: {self.snapshots_taken} taken, "
                f"{self.snapshot_cells_copied} cells checkpointed"
            )
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, object]:
        """A JSON-serializable flat summary (for run artifacts / CI logs)."""
        return {
            "wall_time": self.wall_time,
            "completions": self.completions,
            "active_vertices": self.active_vertices,
            "recomputed": self.recomputed,
            "recoveries": self.recoveries,
            "network_messages": self.network_messages,
            "network_bytes": self.network_bytes,
            "msg_retries": self.msg_retries,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "per_place_executed": {
                str(k): v for k, v in self.per_place_executed.items()
            },
            "final_alive_places": self.final_alive_places,
            "snapshots_taken": self.snapshots_taken,
            "snapshot_cells_copied": self.snapshot_cells_copied,
        }


class DPX10Runtime:
    """Coordinates one DPX10 application run.

    >>> from repro.apps.lcs import LCSApp
    >>> from repro.patterns.diagonal import DiagonalDag
    >>> app = LCSApp("ABC", "DBC")
    >>> dag = DiagonalDag(4, 4)
    >>> report = DPX10Runtime(app, dag).run()
    >>> int(dag.get_vertex(3, 3).get_result())
    2
    """

    def __init__(
        self,
        app: DPX10App,
        dag: Dag,
        config: Optional[DPX10Config] = None,
        fault_plans: Sequence[FaultPlan] = (),
        network: Optional[NetworkModel] = None,
    ) -> None:
        self.app = app
        self.dag = dag
        self.config = config if config is not None else DPX10Config()
        self.fault_plans = list(fault_plans)
        self._report: Optional[RunReport] = None
        # the observability registry: an injected one (live dashboards),
        # a fresh one (config.metrics), or the shared no-op
        cfg = self.config
        if cfg.metrics_registry is not None:
            self.metrics: MetricsRegistry = cfg.metrics_registry
        elif cfg.metrics:
            self.metrics = MetricsRegistry()
        else:
            self.metrics = NULL_REGISTRY
        # the chaos controller (config.chaos): its kill events merge with
        # fault_plans, its throttles/recovery kills hook the worker and
        # recovery paths, and its message block perturbs the network
        self.chaos = None
        if cfg.chaos is not None and not cfg.chaos.is_empty:
            from repro.chaos.controller import ChaosController

            self.chaos = ChaosController(cfg.chaos, metrics=self.metrics)
        if network is not None:
            self.network = network
        elif (
            self.chaos is not None
            and self.chaos.message is not None
            and cfg.engine != "mp"
        ):
            # in-process engines: message chaos is modelled on the postal
            # network (the mp engine instead perturbs its real pipes)
            from repro.chaos.network import ChaosNetwork

            self.network = ChaosNetwork(
                self.chaos.message,
                seed=cfg.chaos.seed,
                record_event=self.chaos.record,
            )
        else:
            self.network = NetworkModel()

    @property
    def report(self) -> Optional[RunReport]:
        """The report of the last ``run()``, if any."""
        return self._report

    def run(self) -> RunReport:
        """Execute the application to completion and return the report."""
        cfg = self.config
        if cfg.validate:
            self.dag.validate()
        if cfg.engine == "mp":
            return self._run_mp()

        rt = GlobalRuntime(
            cfg.nplaces,
            engine=cfg.engine,
            threads_per_place=cfg.threads_per_place,
            network=self.network,
        )
        if self.chaos is not None and self.chaos.has_throttles:
            # throttled places also start their worker activities late,
            # perturbing the initial interleaving (results are unchanged)
            rt.engine.on_activity_start = self.chaos.on_execute
        recovery_stats: List[RecoveryStats] = []
        state: Optional[ExecutionState] = None
        try:
            with Timer() as timer:
                state = self._initialize(rt)
                logger.debug(
                    "initialized %s over %d places (%s, %s engine)",
                    type(self.dag).__name__,
                    rt.group.size,
                    state.dist.kind,
                    cfg.engine,
                )
                with self._phase(state, "schedule"):
                    static_order = (
                        self.dag.static_order() if cfg.static_schedule else None
                    )
                if cfg.static_schedule and static_order is None:
                    raise ConfigurationError(
                        f"{type(self.dag).__name__} provides no static_order(); "
                        "use dynamic scheduling"
                    )
                while True:
                    try:
                        with self._phase(state, "execute"):
                            if state.tiles is not None:
                                from repro.core.tiling import (
                                    run_tiled_inline,
                                    run_tiled_threaded,
                                )

                                if cfg.engine == "threaded":
                                    run_tiled_threaded(state)
                                else:
                                    run_tiled_inline(state)
                            elif cfg.engine == "threaded":
                                run_threaded(state)
                            elif static_order is not None:
                                run_static(state, static_order)
                            else:
                                run_inline(state)
                        break
                    except DeadPlaceException as exc:
                        logger.warning(
                            "place %d died after %d completions; entering "
                            "recovery mode",
                            exc.place_id,
                            state.completions,
                        )
                        if not rt.group.is_alive(0):
                            raise PlaceZeroDeadError()
                        with self._phase(state, "recovery", "recovery"):
                            if cfg.ft_mode == "snapshot":
                                stats = recover_from_snapshot(state)
                            else:
                                stats = recover(state)
                        recovery_stats.append(stats)
                        logger.info(
                            "recovered onto places %s: %d preserved, %d copied, "
                            "%d discarded, %d to recompute",
                            stats.alive_places,
                            stats.preserved_in_place,
                            stats.copied,
                            stats.discarded,
                            stats.to_recompute,
                        )
                self._bind_results(state)
                self.app.app_finished(self.dag)
        finally:
            if state is not None and state.prefetch is not None:
                state.prefetch.stop()
            rt.shutdown()
            if state is not None and state.shm_arena is not None:
                # after shutdown so nothing is still computing; copy the
                # store views to heap first so post-run result reads
                # don't touch unmapped segments
                for store in state.stores.values():
                    store.detach_shm()
                state.shm_arena.close()

        report = RunReport(
            wall_time=timer.elapsed,
            completions=state.completions,
            active_vertices=sum(
                s.active_count for s in state.stores.values()
            ),
            recoveries=len(recovery_stats),
            recovery_stats=recovery_stats,
            network_messages=self.network.stats.messages,
            network_bytes=self.network.stats.bytes,
            msg_retries=self.network.stats.retries,
            cache_hits=sum(c.hits for c in state.caches.values()),
            cache_misses=sum(c.misses for c in state.caches.values()),
            per_place_activities={p.id: p.activities_run for p in rt.group},
            per_place_executed=dict(state.executed_by),
            final_alive_places=rt.group.alive_count(),
            snapshots_taken=(
                state.snapshots.snapshots_taken if state.snapshots else 0
            ),
            snapshot_cells_copied=(
                state.snapshots.cells_copied_total if state.snapshots else 0
            ),
            trace=state.trace,
        )
        if self.metrics.enabled:
            self.metrics.gauge(
                "dpx10_run_wall_seconds", "wall time of the last run()"
            ).set(timer.elapsed)
            report.metrics = self.metrics.collect()
        self._report = report
        return report

    @staticmethod
    def _phase(state: ExecutionState, name: str, category: str = "phase"):
        """A trace span for a runtime phase, or a no-op when not tracing."""
        if state.trace is not None:
            return state.trace.phase(name, category)
        from contextlib import nullcontext

        return nullcontext()

    # -- the multiprocessing path ---------------------------------------------------
    def _run_mp(self) -> RunReport:
        """Real place processes, level-synchronous (repro.core.mp_engine)."""
        from repro.core.mp_engine import run_mp

        trace = ExecutionTrace() if self.config.trace else None
        straggler = None
        if self.metrics.enabled or trace is not None:
            from repro.obs.causal import StragglerDetector

            straggler = StragglerDetector(self.metrics)
        with Timer() as timer:
            results, stats = run_mp(
                self.app,
                self.dag,
                self.config,
                self.fault_plans,
                registry=self.metrics,
                chaos=self.chaos,
                trace=trace,
                straggler=straggler,
            )
            dag = self.dag

            def getter(i: int, j: int):
                return results[(i, j)]

            def finished(i: int, j: int) -> bool:
                return (i, j) in results

            # PlaneResults (shm transport) offers a vectorized gather;
            # the pickled path's plain dict does not
            bulk = getattr(results, "as_bulk", None)
            dag.bind_results(ResultView(getter, finished, bulk))
            self.app.app_finished(dag)

        report = RunReport(
            wall_time=timer.elapsed,
            completions=stats.completions,
            active_vertices=len(results),
            recoveries=stats.recoveries,
            network_messages=stats.network_messages,
            network_bytes=stats.network_bytes,
            msg_retries=stats.msg_retries,
            per_place_executed=dict(stats.per_place_executed),
            final_alive_places=stats.final_alive_places,
            trace=trace,
        )
        if self.metrics.enabled:
            self.metrics.gauge(
                "dpx10_run_wall_seconds", "wall time of the last run()"
            ).set(timer.elapsed)
            report.metrics = self.metrics.collect()
        self._report = report
        return report

    # -- stage 1: distribute & initialize -----------------------------------------
    def _initialize(self, rt: GlobalRuntime) -> ExecutionState:
        cfg = self.config
        from contextlib import nullcontext

        # the trace exists before partitioning so the "partition" phase
        # span covers distribution + store construction
        trace = ExecutionTrace() if cfg.trace else None
        shm_arena = None
        if (
            cfg.shm is True
            and self.app.value_dtype is not None
            and cfg.spill_dir is None
        ):
            # explicit opt-in for the in-process engines: back the stores
            # with shared segments (observable via dpx10_shm_bytes_mapped)
            from repro.core.shm import ShmArena, shm_supported

            if shm_supported():
                shm_arena = ShmArena()
        with trace.phase("partition") if trace is not None else nullcontext():
            dist = cfg.make_dist(self.dag.region, rt.group.alive_ids())
            stores = build_stores(
                rt.group,
                self.dag,
                dist,
                self.app.value_dtype,
                self.app.init_value,
                spill_dir=cfg.spill_dir,
                shm_arena=shm_arena,
            )
        if shm_arena is not None and self.metrics.enabled:
            # record eagerly: the arena is closed before the report-time
            # collect(), which must still see the mapped size
            self.metrics.gauge(
                "dpx10_shm_bytes_mapped", "bytes of live shared-memory segments"
            ).set(shm_arena.bytes_mapped)
        ready: Dict[int, Deque[Coord]] = {
            pid: deque(stores[pid].zero_indegree_unfinished())
            for pid in dist.place_ids
        }
        caches = {
            pid: RemoteCache(cfg.cache_size) for pid in range(rt.group.size)
        }
        total_active = sum(s.active_count for s in stores.values())
        all_plans = list(self.fault_plans)
        if self.chaos is not None:
            all_plans += self.chaos.fault_plans()
        injector = (
            FaultInjector(all_plans, total_active) if all_plans else None
        )
        state = ExecutionState(
            app=self.app,
            dag=self.dag,
            config=cfg,
            group=rt.group,
            network=self.network,
            strategy=make_strategy(cfg.scheduler),
            dist=dist,
            stores=stores,
            ready=ready,
            caches=caches,
            injector=injector,
            total_active=total_active,
        )
        if cfg.tiling_enabled:
            # tile-granular execution: coarsen the pattern (verified
            # acyclic) and schedule tiles instead of cells
            from repro.core.tiling import TileRunState

            tiled = self.dag.coarsen(*cfg.tile_shape)
            tiles = TileRunState(tiled)
            tiles.build(state, fresh=True)
            state.tiles = tiles
            if trace is not None:
                # dependency facts the causal layer (repro.obs.causal)
                # needs to rebuild tile edges from an exported trace
                trace.meta["tile_shape"] = list(cfg.tile_shape)
                trace.meta["grid"] = [tiled.grid.nti, tiled.grid.ntj]
                if tiled.stencil_mode:
                    trace.meta["tile_offsets"] = [
                        list(o) for o in tiled.tile_offsets
                    ]
            if cfg.halo_prefetch:
                from repro.core.tiling import HaloPrefetcher

                state.prefetch = HaloPrefetcher(state)
            if cfg.autokernel and not cfg.sanitize:
                # lift/classify/emit the compute() recurrence; OPAQUE
                # apps keep the interpreted path (see `repro analyze`).
                # Object-store apps are eligible too: tree-level kernels
                # run in "cells" mode against the vertex store, not a
                # typed window plane
                from repro.analysis.codegen import build_autokernel

                kernel, _cls = build_autokernel(self.app, self.dag)
                state.autokernel = kernel
        if cfg.ft_mode == "snapshot":
            from repro.dist.snapshot import SnapshotStore

            state.snapshots = SnapshotStore()
            state.take_snapshot()  # the initial (empty) checkpoint
        if trace is not None and not cfg.tiling_enabled:
            cell_offsets = getattr(self.dag, "offsets", None)
            if cell_offsets:
                trace.meta["offsets"] = [list(o) for o in cell_offsets]
        if trace is not None and self.dag.domain.kind != "grid":
            # non-grid domains stamp their kind so trace consumers can
            # decode cell coordinates back to native indices; grid runs
            # omit the key, keeping their exported traces byte-identical
            trace.meta["domain"] = self.dag.domain.kind
        state.shm_arena = shm_arena
        state.trace = trace
        state.metrics = self.metrics
        state.chaos = self.chaos
        if self.metrics.enabled or trace is not None:
            from repro.obs.causal import StragglerDetector

            state.straggler = StragglerDetector(self.metrics)
        self._register_collectors(state, rt)
        state._engine = rt.engine
        # bind eagerly so dag.get_vertex() is reachable during execution
        # (reads it issues from inside compute() go through the vertex
        # stores and are therefore visible to the race sanitizer)
        self._bind_results(state)
        return state

    def _register_collectors(self, state: ExecutionState, rt: GlobalRuntime) -> None:
        """Publish the runtime's live accounting as named instruments.

        Collection is pull-based: the components keep their tight local
        counters (cache hits, network bytes, executed-by maps) and this
        collector scrapes them into the registry at every ``collect()`` —
        the instrumented hot paths pay nothing.
        """
        reg = self.metrics
        if not reg.enabled:
            return
        cache_hits = reg.counter(
            "dpx10_cache_hits_total", "remote-vertex cache hits", ("place",)
        )
        cache_misses = reg.counter(
            "dpx10_cache_misses_total", "remote-vertex cache misses", ("place",)
        )
        net_messages = reg.counter(
            "dpx10_net_messages_total", "cross-place messages"
        )
        net_bytes = reg.counter(
            "dpx10_net_bytes_total", "cross-place payload bytes"
        )
        net_retries = reg.counter(
            "dpx10_msg_retries_total",
            "message retransmissions (timeouts / modelled drops)",
        )
        executed = reg.counter(
            "dpx10_vertices_computed_total",
            "compute() cells by execution place",
            ("place",),
        )
        completions = reg.counter(
            "dpx10_completions_total",
            "total compute() cells, including post-fault recomputation",
        )
        active = reg.gauge("dpx10_vertices_active", "active vertices in the DAG")
        alive = reg.gauge("dpx10_places_alive", "places currently alive")
        shm_mapped = reg.gauge(
            "dpx10_shm_bytes_mapped", "bytes of live shared-memory segments"
        )
        snaps = reg.counter(
            "dpx10_snapshots_taken_total", "periodic snapshots taken"
        )
        snap_cells = reg.counter(
            "dpx10_snapshot_cells_total", "cells copied into snapshots"
        )
        network = self.network

        def scrape(_reg: MetricsRegistry) -> None:
            for pid, cache in list(state.caches.items()):
                cache_hits.labels(pid).set(cache.hits)
                cache_misses.labels(pid).set(cache.misses)
            net_messages.set(network.stats.messages)
            net_bytes.set(network.stats.bytes)
            net_retries.set(network.stats.retries)
            for pid, n in list(state.executed_by.items()):
                executed.labels(pid).set(n)
            completions.set(state.completions)
            active.set(state.total_active)
            alive.set(rt.group.alive_count())
            if state.shm_arena is not None and not state.shm_arena.closed:
                shm_mapped.set(state.shm_arena.bytes_mapped)
            if state.snapshots is not None:
                snaps.set(state.snapshots.snapshots_taken)
                snap_cells.set(state.snapshots.cells_copied_total)

        reg.register_collector(scrape)

    # -- stage 3: bind results ------------------------------------------------------
    def _bind_results(self, state: ExecutionState) -> None:
        # read dist/stores through ``state`` on every call: recovery
        # replaces both, and the view must follow the surviving places
        def getter(i: int, j: int):
            return state.stores[state.dist.place_of(i, j)].get_result(i, j)

        def finished(i: int, j: int) -> bool:
            return state.stores[state.dist.place_of(i, j)].is_finished(i, j)

        def bulk(fill, dtype):
            # one vectorized gather per place store; finished-active cells
            # only, everything else keeps ``fill`` (Dag.to_array semantics)
            import numpy as np

            dag = self.dag
            out = np.full((dag.height, dag.width), fill, dtype=dtype or object)
            for pid in state.dist.place_ids:
                store = state.stores[pid]
                n = store.size
                if n == 0:
                    continue
                store._check()
                rows = np.fromiter((c[0] for c in store.coords), np.int64, count=n)
                cols = np.fromiter((c[1] for c in store.coords), np.int64, count=n)
                mask = store.active & store.finished
                out[rows[mask], cols[mask]] = store.values[mask]
            return out

        self.dag.bind_results(ResultView(getter, finished, bulk))
