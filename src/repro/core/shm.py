"""Shared-memory segment lifecycle for the zero-copy data plane.

The mp engine (and, opted in, the in-process vertex stores) back numeric
vertex arrays with ``multiprocessing.shared_memory`` segments so that
place processes read owned cells and halo strips as NumPy views instead
of pickled pipe payloads. Everything about segment *lifetime* lives here:

* :class:`ShmArena` — creates named segments, hands out NumPy views, and
  owns close/unlink. Only the creating process unlinks (a forked child
  that inherited the arena object merely closes its mappings), and an
  ``atexit`` hook closes any arena leaked by an abnormal exit path.
* :func:`attach_array` — the worker-process side: attach an existing
  segment by name. Worker processes are children of the creating master,
  so they share its ``resource_tracker``: the attach-side registration
  is a set no-op there and the creator's ``unlink`` balances it — which
  is why, unlike cross-tree attachments, no tracker unregister dance is
  needed, and a SIGKILLed master still gets its segments reaped by the
  tracker at shutdown.
* :func:`leaked_segments` — the leak detector tests assert against: every
  segment name carries the ``dpx10-`` prefix, so a scan of ``/dev/shm``
  after a run proves nothing was left behind.

``shm_supported()`` actually round-trips a tiny segment once (import
success alone does not prove ``/dev/shm`` is writable) and caches the
answer; every shm opt-in falls back to the pickled pipe transport when it
returns False.
"""

from __future__ import annotations

import atexit
import os
import secrets
import weakref
from typing import Any, List, Optional, Tuple

import numpy as np

__all__ = [
    "SEGMENT_PREFIX",
    "ShmArena",
    "attach_array",
    "detach_all",
    "leaked_segments",
    "shm_supported",
]

#: every DPX10 segment name starts with this, so the leak detector can
#: tell our segments from anything else living in /dev/shm
SEGMENT_PREFIX = "dpx10-"

_SHM_DIR = "/dev/shm"

_supported: Optional[bool] = None


def _shared_memory():
    from multiprocessing import shared_memory

    return shared_memory


def shm_supported() -> bool:
    """Whether shared-memory segments actually work on this platform.

    Round-trips one tiny create/attach/unlink and caches the verdict —
    a failed probe (no ``/dev/shm``, sealed sandbox, exotic platform)
    turns every shm opt-in into a clean fallback, never an error.
    """
    global _supported
    if _supported is not None:
        return _supported
    try:
        shared_memory = _shared_memory()
        seg = shared_memory.SharedMemory(
            name=_segment_name("probe"), create=True, size=16
        )
        try:
            seg.buf[0] = 42
            ok = seg.buf[0] == 42
        finally:
            seg.close()
            seg.unlink()
        _supported = bool(ok)
    except Exception:
        _supported = False
    return _supported


def _segment_name(token: str) -> str:
    """A collision-free segment name: prefix + pid + random token."""
    return f"{SEGMENT_PREFIX}{os.getpid()}-{token}-{secrets.token_hex(4)}"


#: arenas not yet closed, for the atexit sweep (weak: a collected arena
#: already ran its finalizer-free close through normal control flow)
_LIVE_ARENAS: "weakref.WeakSet[ShmArena]" = weakref.WeakSet()


def _atexit_sweep() -> None:  # pragma: no cover - interpreter shutdown
    for arena in list(_LIVE_ARENAS):
        arena.close()


atexit.register(_atexit_sweep)


class ShmArena:
    """Owner of a set of shared-memory segments and their NumPy views.

    The process that constructs the arena is the *creator*: only it
    unlinks. ``close()`` is idempotent and safe to call from a forked
    child that inherited the object — the child merely drops its
    mappings. Attachments made through :meth:`attach` are closed but
    never unlinked (their creator does that).
    """

    def __init__(self) -> None:
        self._creator_pid = os.getpid()
        self._created: List[Any] = []  # SharedMemory objects we created
        self._attached: List[Any] = []  # SharedMemory objects we attached
        self._closed = False
        _LIVE_ARENAS.add(self)

    # -- creation ---------------------------------------------------------------
    def ndarray(
        self, shape: Tuple[int, ...], dtype: Any, token: str = "seg"
    ) -> np.ndarray:
        """A zero-filled array backed by a fresh shared segment."""
        shared_memory = _shared_memory()
        dt = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape)) * dt.itemsize)
        seg = shared_memory.SharedMemory(
            name=_segment_name(token), create=True, size=nbytes
        )
        self._created.append(seg)
        # fresh POSIX segments are zero pages: no explicit fill needed,
        # which is what lets "never written" read as the dtype's zero
        return np.ndarray(shape, dtype=dt, buffer=seg.buf)

    def create(
        self, shape: Tuple[int, ...], dtype: Any, token: str = "seg"
    ) -> Tuple[np.ndarray, str]:
        """Like :meth:`ndarray`, but also return the segment name (for
        shipping to workers that will :func:`attach_array` it)."""
        array = self.ndarray(shape, dtype, token)
        return array, self._created[-1].name

    def attach(self, name: str, shape: Tuple[int, ...], dtype: Any) -> np.ndarray:
        """Attach an existing segment (worker side) as a NumPy view."""
        shared_memory = _shared_memory()
        seg = shared_memory.SharedMemory(name=name)
        self._attached.append(seg)
        return np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf)

    # -- introspection ----------------------------------------------------------
    @property
    def bytes_mapped(self) -> int:
        """Total bytes of live segments created or attached by this arena."""
        if self._closed:
            return 0
        return sum(seg.size for seg in self._created + self._attached)

    @property
    def segment_names(self) -> List[str]:
        return [seg.name for seg in self._created]

    @property
    def closed(self) -> bool:
        return self._closed

    # -- teardown ---------------------------------------------------------------
    def close(self) -> None:
        """Drop every mapping; unlink created segments (creator only).

        Idempotent. A forked child calling this (directly or via the
        atexit sweep) closes its inherited mappings but leaves the
        segments on disk for the creator to unlink.
        """
        if self._closed:
            return
        self._closed = True
        unlink = os.getpid() == self._creator_pid
        for seg in self._attached:
            try:
                seg.close()
            except Exception:  # pragma: no cover - already torn down
                pass
        for seg in self._created:
            try:
                seg.close()
            except Exception:  # pragma: no cover - already torn down
                pass
            if unlink:
                try:
                    seg.unlink()
                except FileNotFoundError:
                    pass
                except Exception:  # pragma: no cover - platform quirks
                    pass
        self._attached.clear()
        self._created.clear()
        _LIVE_ARENAS.discard(self)

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# -- standalone attach (worker processes) -----------------------------------------
_PROCESS_ATTACHMENTS: List[Any] = []


def attach_array(name: str, shape: Tuple[int, ...], dtype: Any) -> np.ndarray:
    """Attach a named segment as an array, tracked process-wide.

    Worker processes use this instead of carrying an arena: the mapping
    is registered in a module list and dropped by :func:`detach_all`
    (or, failing that, by process exit — an attachment can never leak a
    segment, only the creator's unlink matters).
    """
    shared_memory = _shared_memory()
    seg = shared_memory.SharedMemory(name=name)
    _PROCESS_ATTACHMENTS.append(seg)
    return np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf)


def detach_all() -> None:
    """Close every mapping made through :func:`attach_array`."""
    for seg in _PROCESS_ATTACHMENTS:
        try:
            seg.close()
        except Exception:  # pragma: no cover - torn-down buffers
            pass
    _PROCESS_ATTACHMENTS.clear()


# -- leak detection ----------------------------------------------------------------
def leaked_segments() -> List[str]:
    """DPX10 segments still present in ``/dev/shm``.

    The leak detector the tests assert with: after a run (including
    chaos-killed runs) this must be empty. Returns ``[]`` on platforms
    without a scannable ``/dev/shm`` — there the tests that depend on
    scanning skip via :func:`shm_supported`.
    """
    try:
        entries = os.listdir(_SHM_DIR)
    except OSError:
        return []
    return sorted(e for e in entries if e.startswith(SEGMENT_PREFIX))
