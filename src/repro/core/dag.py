"""The ``Dag`` base class (paper Figure 3).

A DAG pattern subclasses :class:`Dag` and implements ``get_dependency`` /
``get_anti_dependency``: the first lists the vertices that must complete
before ``(i, j)``; the second lists the vertices whose indegree drops when
``(i, j)`` finishes. The two must be exact inverses of each other over the
active cells — :meth:`Dag.validate` checks this (and acyclicity) for small
DAGs, which is how custom patterns are debugged.

Vertices can be *inactive* (``is_active`` returns ``False``): the
Refinements section allows initialization to "set the unneeded vertices as
finished", which is how triangular DP matrices (LPS, matrix chain) skip
their unused half.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Generic, List, Optional, Sequence, Tuple, TypeVar

from repro.core.api import Vertex, VertexId
from repro.dist.region import Region2D
from repro.errors import DPX10Error, PatternError
from repro.util.validation import require

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.domain import IndexDomain

__all__ = ["Dag", "ResultView", "VALIDATE_ENUMERATION_THRESHOLD"]

#: Cell count above which :meth:`Dag.validate` first tries the O(#offsets)
#: symbolic stencil verifier (repro.analysis.symbolic) instead of the
#: exhaustive O(cells x deps) enumeration. 65_536 cells (256 x 256) keeps
#: enumeration under ~100 ms on commodity hardware; beyond that the
#: enumeration cost dominates run setup for stencils whose acyclicity is
#: provable from the offset set alone. Non-stencil patterns, stencils
#: with overridden dependency methods, and degenerate shapes (an offset
#: magnitude >= the matrix dimension) always fall back to enumeration.
VALIDATE_ENUMERATION_THRESHOLD = 65_536

T = TypeVar("T")


class ResultView(Generic[T]):
    """Read access to computed vertex values, bound to a Dag after a run."""

    def __init__(self, getter, finished_checker, bulk_getter=None) -> None:
        self._get = getter
        self._finished = finished_checker
        self._bulk = bulk_getter

    def get(self, i: int, j: int) -> T:
        return self._get(i, j)

    def is_finished(self, i: int, j: int) -> bool:
        return self._finished(i, j)

    def as_array(self, fill: object, dtype: object):
        """The whole matrix in one vectorized gather, or ``None``.

        Runtimes that keep values in arrays supply ``bulk_getter`` so
        :meth:`Dag.to_array` skips the per-cell loop; ``None`` means the
        caller must fall back to :meth:`get`.
        """
        return self._bulk(fill, dtype) if self._bulk is not None else None


class Dag(Generic[T]):
    """Abstract DAG over a ``height x width`` vertex matrix.

    The matrix is the *layout*: every vertex is addressed by a 2-D cell
    ``(i, j)`` of a rectangular region, which is what the distributions,
    tiling, shm planes and recovery partition. Patterns whose natural
    index space is not a matrix (trees, k-D tensors) pass an
    :class:`~repro.core.domain.IndexDomain` mapping their native indices
    onto layout cells; the default is the identity
    :class:`~repro.core.domain.GridDomain`, so existing 2-D patterns are
    unchanged. Error messages and traces name cells through the domain
    (``describe_cell``), e.g. ``node 7`` for a tree vertex.
    """

    def __init__(
        self,
        height: int,
        width: int,
        domain: Optional["IndexDomain"] = None,
    ) -> None:
        require(height >= 1 and width >= 1, f"DAG must be at least 1x1, got {height}x{width}")
        self.height = height
        self.width = width
        self._domain: Optional["IndexDomain"] = domain
        self._results: Optional[ResultView[T]] = None

    @property
    def domain(self) -> "IndexDomain":
        """The index domain this pattern maps over (default: the grid)."""
        if self._domain is None:
            from repro.core.domain import GridDomain

            self._domain = GridDomain(self.height, self.width)
        return self._domain

    def describe_cell(self, i: int, j: int) -> str:
        """Name a cell in domain terms (grid tuple, tensor index, node id)."""
        if not self.contains(i, j):
            return f"({i}, {j})"
        return self.domain.describe_cell(i, j)

    # -- to implement in subclasses -------------------------------------------
    def get_dependency(self, i: int, j: int) -> List[VertexId]:
        """Vertices that must complete before ``(i, j)`` can run."""
        raise NotImplementedError

    def get_anti_dependency(self, i: int, j: int) -> List[VertexId]:
        """Vertices whose indegree is decremented when ``(i, j)`` finishes."""
        raise NotImplementedError

    def is_active(self, i: int, j: int) -> bool:
        """Whether ``(i, j)`` participates in the computation (default yes)."""
        return True

    # -- geometry ---------------------------------------------------------------
    @property
    def region(self) -> Region2D:
        return Region2D.of_shape(self.height, self.width)

    @property
    def size(self) -> int:
        return self.height * self.width

    def contains(self, i: int, j: int) -> bool:
        return 0 <= i < self.height and 0 <= j < self.width

    def active_cells(self) -> Sequence[Tuple[int, int]]:
        return [(i, j) for i, j in self.region if self.is_active(i, j)]

    def active_cells_in_rect(self, r0: int, r1: int, c0: int, c1: int) -> int:
        """Active cells inside ``[r0, r1) x [c0, c1)``.

        The default (dense pattern) is the rectangle's area. Shaped
        patterns override with a closed form so the cluster simulator can
        size tiles without walking cells.
        """
        return max(0, r1 - r0) * max(0, c1 - c0)

    def is_active_array(self, rows, cols):
        """Vectorized ``is_active`` over coordinate arrays, or ``None``.

        Returning ``None`` (the default) tells callers to fall back to the
        scalar method; shaped patterns override with a numpy expression so
        bulk initialization never loops per cell.
        """
        return None

    def bulk_indegrees(self, rows, cols):
        """Vectorized initial indegrees for the given cells, or ``None``.

        ``None`` (the default) means "compute per cell via
        ``get_dependency``". Stencil patterns override with closed-form
        numpy arithmetic — the difference between O(cells) numpy ops and
        O(cells x deps) Python calls at store-build time.
        """
        return None

    def static_order(self) -> Optional[List[Tuple[int, int]]]:
        """A precomputed topological order of the active cells, or ``None``.

        When a pattern can name a valid execution order up front, the
        inline engine's static-schedule mode executes cells in that order
        directly, skipping all indegree bookkeeping and ready-list traffic
        (``DPX10Config(static_schedule=True)``). ``None`` (the default)
        means "only dynamic scheduling knows the order".
        """
        return None

    # -- tile-granular coarsening ---------------------------------------------------
    def coarsen(self, tile_h: int, tile_w: int) -> "Dag":
        """Derive the tile-level DAG for ``(tile_h, tile_w)`` blocking.

        Tile ``(ti, tj)`` covers cells ``[ti*tile_h, (ti+1)*tile_h) x
        [tj*tile_w, (tj+1)*tile_w)`` (clipped at the matrix edge) and
        depends on every other tile containing a dependency of one of its
        cells — the cell-level edges hoisted to tile granularity. For
        stencil patterns the tile DAG is derived symbolically from the
        offset set and proved acyclic by the ranking-vector verifier;
        irregular patterns are coarsened by enumeration and Kahn-checked.
        Raises :class:`~repro.errors.PatternError` when the coarsened
        graph would contain a cycle (tiling is unsound for that pattern
        and tile shape).

        >>> from repro.patterns.diagonal import DiagonalDag
        >>> tiled = DiagonalDag(6, 6).coarsen(3, 3)
        >>> (tiled.height, tiled.width)
        (2, 2)
        >>> sorted((d.i, d.j) for d in tiled.get_dependency(1, 1))
        [(0, 0), (0, 1), (1, 0)]
        >>> DiagonalDag(6, 6).coarsen(1, 1).size  # degenerate: one cell per tile
        36
        """
        from repro.core.tiling import coarsen

        return coarsen(self, tile_h, tile_w)

    # -- results (bound by the runtime after execution) ---------------------------
    def bind_results(self, view: ResultView[T]) -> None:
        self._results = view

    def get_vertex(self, i: int, j: int) -> Vertex[T]:
        """The computed vertex ``(i, j)`` — valid once the run finished."""
        if self._results is None:
            raise DPX10Error(
                "dag is not bound to results yet; call DPX10Runtime.run() first"
            )
        return Vertex(i, j, self._results.get(i, j))

    def to_array(self, fill: object = 0, dtype: object = None) -> "object":
        """The full result matrix as a numpy array (after a run).

        Inactive cells take ``fill``. Handy for whole-matrix comparison
        against serial oracles and for post-processing.
        """
        import numpy as np

        if self._results is not None:
            fast = self._results.as_array(fill, dtype)
            if fast is not None:
                return fast
        out = np.full((self.height, self.width), fill, dtype=dtype or object)
        for i in range(self.height):
            for j in range(self.width):
                if self.is_active(i, j):
                    out[i, j] = self.get_vertex(i, j).get_result()
        return out

    def render_stencil(self, i: Optional[int] = None, j: Optional[int] = None) -> str:
        """ASCII picture of a cell's dependencies (docs / CLI aid).

        Draws the neighbourhood of cell ``(i, j)`` (the matrix centre by
        default): ``@`` the cell itself, ``o`` its dependencies, ``.``
        other active cells, a blank for inactive ones.
        """
        ci = self.height // 2 if i is None else i
        cj = self.width // 2 if j is None else j
        if i is None and j is None and not self.get_dependency(ci, cj):
            # the centre is a seed (e.g. an interval diagonal): show a more
            # illustrative nearby cell instead
            for cand_i, cand_j in ((ci - 1, cj + 1), (ci + 1, cj + 1), (ci, cj + 1)):
                if (
                    self.contains(cand_i, cand_j)
                    and self.is_active(cand_i, cand_j)
                    and self.get_dependency(cand_i, cand_j)
                ):
                    ci, cj = cand_i, cand_j
                    break
        deps = {(d.i, d.j) for d in self.get_dependency(ci, cj)}
        radius = 3
        lines = []
        for r in range(max(0, ci - radius), min(self.height, ci + radius + 1)):
            row = []
            for c in range(max(0, cj - radius), min(self.width, cj + radius + 1)):
                if (r, c) == (ci, cj):
                    row.append("@")
                elif (r, c) in deps:
                    row.append("o")
                elif self.is_active(r, c):
                    row.append(".")
                else:
                    row.append(" ")
            lines.append(" ".join(row))
        return "\n".join(lines)

    # -- structural validation -----------------------------------------------------
    def validate(self) -> None:
        """Check pattern invariants exhaustively (small DAGs only).

        Verifies that for every active cell (a) all dependencies are
        in-bounds, active, distinct and not self-referential, (b)
        ``get_anti_dependency`` is the exact inverse of ``get_dependency``,
        and (c) the graph is acyclic and fully schedulable (Kahn's
        algorithm consumes every active cell).

        Above :data:`VALIDATE_ENUMERATION_THRESHOLD` cells, pure stencil
        patterns are instead proved correct symbolically from their offset
        set (see :func:`repro.analysis.symbolic.try_symbolic_validate`),
        making validation O(#offsets) rather than O(cells x deps).
        """
        if self.size > VALIDATE_ENUMERATION_THRESHOLD:
            # local import: repro.analysis.symbolic lazily imports the
            # stencil base class, which imports this module
            from repro.analysis.symbolic import try_symbolic_validate

            if try_symbolic_validate(self):
                return

        active = set()
        for i, j in self.region:
            if self.is_active(i, j):
                active.add((i, j))

        # error messages name cells through the domain ("node 7" for a tree
        # vertex, "(1, 2, 0)" for a tensor index) instead of raw row/col
        name = self.describe_cell
        deps = {}
        for i, j in active:
            dep_list = self.get_dependency(i, j)
            seen = set()
            for d in dep_list:
                require(
                    self.contains(d.i, d.j),
                    f"dependency {name(d.i, d.j)} of {name(i, j)} is out of bounds",
                    PatternError,
                )
                require(
                    (d.i, d.j) != (i, j),
                    f"{name(i, j)} depends on itself",
                    PatternError,
                )
                require(
                    (d.i, d.j) in active,
                    f"{name(i, j)} depends on inactive cell {name(d.i, d.j)}",
                    PatternError,
                )
                require(
                    (d.i, d.j) not in seen,
                    f"{name(i, j)} lists dependency {name(d.i, d.j)} twice",
                    PatternError,
                )
                seen.add((d.i, d.j))
            deps[(i, j)] = seen

        # anti-dependency must be the exact inverse relation
        anti = {}
        for i, j in active:
            a_list = self.get_anti_dependency(i, j)
            a_set = set()
            for a in a_list:
                require(
                    self.contains(a.i, a.j) and (a.i, a.j) in active,
                    f"anti-dependency {name(a.i, a.j)} of {name(i, j)} is invalid",
                    PatternError,
                )
                require(
                    (a.i, a.j) not in a_set,
                    f"{name(i, j)} lists anti-dependency {name(a.i, a.j)} twice",
                    PatternError,
                )
                a_set.add((a.i, a.j))
            anti[(i, j)] = a_set
        for v in active:
            for d in deps[v]:
                require(
                    v in anti[d],
                    f"{name(*d)} -> {name(*v)} edge missing from "
                    f"get_anti_dependency({name(*d)})",
                    PatternError,
                )
        for v in active:
            for a in anti[v]:
                require(
                    v in deps[a],
                    f"get_anti_dependency({name(*v)}) lists {name(*a)}, "
                    f"but {name(*a)} does not depend on {name(*v)}",
                    PatternError,
                )

        # acyclicity / schedulability via Kahn's algorithm
        indegree = {v: len(deps[v]) for v in active}
        ready = [v for v, d in indegree.items() if d == 0]
        require(
            bool(ready) or not active,
            "no zero-indegree vertex: the pattern has a cycle",
            PatternError,
        )
        done = 0
        while ready:
            v = ready.pop()
            done += 1
            for a in anti[v]:
                indegree[a] -= 1
                if indegree[a] == 0:
                    ready.append(a)
        require(
            done == len(active),
            f"only {done} of {len(active)} vertices schedulable: cycle detected",
            PatternError,
        )
