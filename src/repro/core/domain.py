"""Index domains: the index spaces a DAG pattern maps over.

The paper's runtime addresses every vertex by a 2-D matrix cell
``(i, j)``. That is the right *storage and partitioning* layout — the
distributed array, tiling, shared-memory planes, and recovery all
operate on a rectangular region — but it is the wrong *programming*
model for DP problems whose natural index space is not a matrix:
bottom-up tree DP (Bateni et al., arXiv 1809.03685) and k-dimensional
tensor wavefronts such as 3-way MSA (Helal et al., arXiv 2311.17530).

An :class:`IndexDomain` separates the two concerns. It names a set of
*native indices* (grid cells, k-tuples, tree node ids) and a bijective
*layout embedding* of those indices into a canonical 2-D cell grid:

* ``to_cell(index) -> (i, j)`` / ``from_cell(i, j) -> index`` — the
  bijection between native indices and layout cells;
* ``layout_shape`` — the (height, width) of the embedding grid;
* ``cell_active(i, j)`` — whether a layout cell is the image of a
  native index (padding cells in ragged embeddings are inactive);
* ``describe_cell(i, j)`` — how to name a cell in error messages and
  traces, in domain terms ("node 7", "(2, 1, 3)") rather than row/col.

Everything below the pattern layer — distributions, vertex stores, the
schedulers, recovery, the mp engine's owner map — keeps treating cells
as opaque ``(i, j)`` keys of a rectangular region, so partitioning,
tiling, kill-and-recover, and the shm data plane work unchanged on
every domain. :class:`GridDomain` is the identity embedding, which is
what makes the refactor bit-identical for all existing apps.

Three domains ship:

``GridDomain``
    The classic ``height x width`` matrix; identity embedding.

``TensorDomain``
    A dense k-D tensor ``shape = (n_0, ..., n_{k-1})``. The layout
    flattens the leading ``k-1`` axes mixed-radix into rows and keeps
    the last axis as columns, so a column band (the paper's default
    distribution) splits the tensor along its last axis. Antidiagonal
    *hyperplanes* (cells of equal index sum) are the wavefronts.

``TreeDomain``
    A rooted tree given as a parent vector. Layout row = node height
    (leaves at row 0, parent strictly above its children), column =
    rank within the height level, padding cells inactive. The
    bottom-up sweep is then literally a row-major wavefront.
    :meth:`TreeDomain.make_dist` partitions by contiguous post-order
    chunks (heavy child last), keeping subtrees and heavy paths
    place-local — plug it into ``DPX10Config(custom_dist=...)``.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import (
    Dict,
    Generic,
    Iterator,
    List,
    Mapping,
    Sequence,
    Tuple,
    TypeVar,
    Union,
)

from repro.core.api import DPX10App, Vertex

__all__ = [
    "IndexDomain",
    "GridDomain",
    "TensorDomain",
    "TreeDomain",
    "DomainApp",
]

T = TypeVar("T")

Cell = Tuple[int, int]


class IndexDomain(ABC):
    """A set of native DP indices plus their 2-D layout embedding."""

    #: short name of the domain family ("grid" | "tensor" | "tree")
    kind: str = "abstract"

    # -- native index space ----------------------------------------------------
    @abstractmethod
    def indices(self) -> Iterator[object]:
        """All native indices, in layout (row-major cell) order."""

    @property
    @abstractmethod
    def nindices(self) -> int:
        """Number of native indices (== number of active layout cells)."""

    @abstractmethod
    def contains_index(self, index: object) -> bool:
        """Whether ``index`` is a native index of this domain."""

    # -- layout embedding ------------------------------------------------------
    @property
    @abstractmethod
    def layout_shape(self) -> Cell:
        """(height, width) of the canonical 2-D cell grid."""

    @abstractmethod
    def to_cell(self, index: object) -> Cell:
        """Layout cell of a native index (bijective with :meth:`from_cell`)."""

    @abstractmethod
    def from_cell(self, i: int, j: int) -> object:
        """Native index living at layout cell ``(i, j)``."""

    def cell_active(self, i: int, j: int) -> bool:
        """Whether layout cell ``(i, j)`` is the image of a native index."""
        return True

    def describe_cell(self, i: int, j: int) -> str:
        """Name a layout cell in domain terms, for errors and traces."""
        return f"({i}, {j})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        h, w = self.layout_shape
        return f"{type(self).__name__}(layout={h}x{w}, n={self.nindices})"


class GridDomain(IndexDomain):
    """The classic 2-D matrix: native indices *are* layout cells.

    >>> d = GridDomain(3, 4)
    >>> d.to_cell((2, 1)), d.from_cell(2, 1)
    ((2, 1), (2, 1))
    >>> d.nindices
    12
    """

    kind = "grid"

    def __init__(self, height: int, width: int) -> None:
        if height < 1 or width < 1:
            raise ValueError(
                f"GridDomain must be at least 1x1, got {height}x{width}"
            )
        self.height = height
        self.width = width

    def indices(self) -> Iterator[Cell]:
        for i in range(self.height):
            for j in range(self.width):
                yield (i, j)

    @property
    def nindices(self) -> int:
        return self.height * self.width

    def contains_index(self, index: object) -> bool:
        try:
            i, j = index  # type: ignore[misc]
        except (TypeError, ValueError):
            return False
        return 0 <= i < self.height and 0 <= j < self.width

    @property
    def layout_shape(self) -> Cell:
        return (self.height, self.width)

    def to_cell(self, index: object) -> Cell:
        i, j = index  # type: ignore[misc]
        return (int(i), int(j))

    def from_cell(self, i: int, j: int) -> Cell:
        return (i, j)

    # describe_cell: the inherited "(i, j)" wording IS the domain wording
    # here — existing error-message text stays byte-identical.


class TensorDomain(IndexDomain):
    """A dense k-dimensional tensor of shape ``(n_0, ..., n_{k-1})``.

    The layout embedding flattens the leading ``k-1`` axes mixed-radix
    into rows (axis 0 outermost) and keeps the last axis as columns:

    >>> d = TensorDomain((2, 3, 4))
    >>> d.layout_shape
    (6, 4)
    >>> d.to_cell((1, 2, 3))
    (5, 3)
    >>> d.from_cell(5, 3)
    (1, 2, 3)

    Every layout cell is active, so the embedding is a true bijection
    and block/cyclic distributions, tiling, and shm planes apply with
    no padding waste. A dimension of size 1 is legal (it degenerates
    that axis away); a dimension of size 0 — an empty domain — raises
    ``ValueError`` immediately rather than producing a run that hangs
    on zero vertices.
    """

    kind = "tensor"

    def __init__(self, shape: Sequence[int]) -> None:
        shape = tuple(int(n) for n in shape)
        if len(shape) < 1:
            raise ValueError("TensorDomain needs at least one dimension")
        for axis, n in enumerate(shape):
            if n < 1:
                raise ValueError(
                    f"TensorDomain dimension {axis} has size {n}: empty "
                    "domains are not allowed (every axis must be >= 1)"
                )
        self.shape = shape
        self.ndim = len(shape)
        # mixed-radix place values for the leading k-1 axes
        strides = [1] * (self.ndim - 1)
        for a in range(self.ndim - 3, -1, -1):
            strides[a] = strides[a + 1] * shape[a + 1]
        self._row_strides = tuple(strides)

    def indices(self) -> Iterator[Tuple[int, ...]]:
        import itertools

        yield from itertools.product(*(range(n) for n in self.shape))

    @property
    def nindices(self) -> int:
        n = 1
        for d in self.shape:
            n *= d
        return n

    def contains_index(self, index: object) -> bool:
        try:
            idx = tuple(index)  # type: ignore[arg-type]
        except TypeError:
            return False
        if len(idx) != self.ndim:
            return False
        return all(0 <= x < n for x, n in zip(idx, self.shape))

    @property
    def layout_shape(self) -> Cell:
        rows = 1
        for d in self.shape[:-1]:
            rows *= d
        return (rows, self.shape[-1])

    def to_cell(self, index: object) -> Cell:
        idx = tuple(index)  # type: ignore[arg-type]
        row = 0
        for x, s in zip(idx[:-1], self._row_strides):
            row += int(x) * s
        return (row, int(idx[-1]))

    def from_cell(self, i: int, j: int) -> Tuple[int, ...]:
        out: List[int] = []
        rem = i
        for s in self._row_strides:
            out.append(rem // s)
            rem %= s
        out.append(j)
        return tuple(out)

    def describe_cell(self, i: int, j: int) -> str:
        return str(self.from_cell(i, j))


ParentSpec = Union[Sequence[int], Mapping[int, int]]


class TreeDomain(IndexDomain):
    """A rooted tree given as a parent vector; native indices are node ids.

    ``parents[v]`` is the parent of node ``v``; the single root has
    parent ``-1`` (``None`` is accepted too). Node ids must be the
    contiguous range ``0..n-1`` — a mapping with holes raises
    ``ValueError`` naming the missing ids, because a silent re-labeling
    would corrupt the caller's weights/values arrays.

    Layout: row = height of the node (leaves 0; a parent is strictly
    above all its children), column = the node's rank among its height
    level (sorted by id). Rows are ragged, so cells beyond a level's
    width are inactive padding. Bottom-up traversal is then a row-major
    wavefront and the paper's execution model applies unchanged.

    >>> t = TreeDomain([-1, 0, 0, 1, 1])   # root 0; 1,2 children; 3,4 leaves
    >>> t.height_of(0), t.height_of(1), t.height_of(3)
    (2, 1, 0)
    >>> t.to_cell(3)
    (0, 1)
    >>> t.children(0)
    (1, 2)
    """

    kind = "tree"

    def __init__(self, parents: ParentSpec) -> None:
        if isinstance(parents, Mapping):
            n = len(parents)
            missing = [v for v in range(n) if v not in parents]
            if missing:
                raise ValueError(
                    f"TreeDomain node ids must be contiguous 0..{n - 1}: "
                    f"missing {missing[:5]}{'...' if len(missing) > 5 else ''} "
                    f"(got ids {sorted(parents)[:8]}"
                    f"{'...' if n > 8 else ''})"
                )
            parent_vec = [parents[v] for v in range(n)]
        else:
            parent_vec = list(parents)
            n = len(parent_vec)
        if n < 1:
            raise ValueError("TreeDomain needs at least one node (empty domain)")

        norm: List[int] = []
        roots: List[int] = []
        for v, p in enumerate(parent_vec):
            if p is None or p == -1:
                norm.append(-1)
                roots.append(v)
                continue
            if not isinstance(p, int) or isinstance(p, bool):
                raise ValueError(
                    f"TreeDomain parent of node {v} must be an int (or -1/None "
                    f"for the root), got {p!r}"
                )
            if not 0 <= p < n:
                raise ValueError(
                    f"TreeDomain parent of node {v} is {p}, outside 0..{n - 1}"
                )
            if p == v:
                raise ValueError(f"TreeDomain node {v} is its own parent")
            norm.append(p)
        if len(roots) != 1:
            raise ValueError(
                f"TreeDomain needs exactly one root (parent -1), got "
                f"{len(roots)}: {roots[:5]}"
            )

        self.parents: Tuple[int, ...] = tuple(norm)
        self.n = n
        self.root = roots[0]

        kids: List[List[int]] = [[] for _ in range(n)]
        for v in range(n):
            p = self.parents[v]
            if p >= 0:
                kids[p].append(v)
        self._children: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(c) for c in kids
        )

        # depth-first reachability from the root; nodes the walk misses sit
        # on a parent cycle or in a second component — both invalid trees
        heights = [-1] * n
        order: List[int] = []
        stack = [self.root]
        visited = [False] * n
        while stack:
            v = stack.pop()
            if visited[v]:
                continue
            visited[v] = True
            order.append(v)
            stack.extend(self._children[v])
        if len(order) != n:
            orphans = sorted(v for v in range(n) if not visited[v])
            raise ValueError(
                f"TreeDomain has {len(orphans)} node(s) unreachable from root "
                f"{self.root} (cycle or forest): {orphans[:5]}"
                f"{'...' if len(orphans) > 5 else ''}"
            )
        for v in reversed(order):  # children seen before their parent
            ch = self._children[v]
            heights[v] = 0 if not ch else 1 + max(heights[c] for c in ch)
        self._heights: Tuple[int, ...] = tuple(heights)

        # layout: row = height, col = rank within level (sorted by id)
        max_h = max(heights)
        levels: List[List[int]] = [[] for _ in range(max_h + 1)]
        for v in range(n):  # ascending id => deterministic rank
            levels[heights[v]].append(v)
        self._levels: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(lv) for lv in levels
        )
        self._cell_of: Dict[int, Cell] = {}
        self._node_at: Dict[Cell, int] = {}
        for h, lv in enumerate(levels):
            for rank, v in enumerate(lv):
                self._cell_of[v] = (h, rank)
                self._node_at[(h, rank)] = v
        self._layout_shape = (max_h + 1, max(len(lv) for lv in levels))

        # subtree sizes + post-order with the heavy child last, so a
        # contiguous post-order chunk is a union of whole subtrees hanging
        # off one heavy path — the subtree/heavy-path partition make_dist
        # chunks over.
        sizes = [1] * n
        for v in reversed(order):
            for c in self._children[v]:
                sizes[v] += sizes[c]
        self.subtree_sizes: Tuple[int, ...] = tuple(sizes)
        # post-order with the heavy child visited last: push heavy first so
        # it pops last (children pushed heaviest-first pop lightest-first)
        post: List[int] = []
        stack2: List[Tuple[int, bool]] = [(self.root, False)]
        while stack2:
            v, expanded = stack2.pop()
            if expanded:
                post.append(v)
                continue
            stack2.append((v, True))
            for c in sorted(
                self._children[v], key=lambda c: (sizes[c], c), reverse=True
            ):
                stack2.append((c, False))
        self.post_order: Tuple[int, ...] = tuple(post)

    # -- tree accessors --------------------------------------------------------
    def children(self, v: int) -> Tuple[int, ...]:
        return self._children[v]

    def parent(self, v: int) -> int:
        """Parent node id, or -1 for the root."""
        return self.parents[v]

    def height_of(self, v: int) -> int:
        return self._heights[v]

    def level(self, h: int) -> Tuple[int, ...]:
        """Node ids at height ``h``, in id order (== column order)."""
        return self._levels[h]

    # -- IndexDomain interface -------------------------------------------------
    def indices(self) -> Iterator[int]:
        for lv in self._levels:
            yield from lv

    @property
    def nindices(self) -> int:
        return self.n

    def contains_index(self, index: object) -> bool:
        return isinstance(index, int) and not isinstance(index, bool) and (
            0 <= index < self.n
        )

    @property
    def layout_shape(self) -> Cell:
        return self._layout_shape

    def to_cell(self, index: object) -> Cell:
        return self._cell_of[int(index)]  # type: ignore[arg-type]

    def from_cell(self, i: int, j: int) -> int:
        try:
            return self._node_at[(i, j)]
        except KeyError:
            raise KeyError(
                f"layout cell ({i}, {j}) is padding: level {i} has "
                f"{len(self._levels[i]) if 0 <= i < len(self._levels) else 0} "
                f"node(s)"
            ) from None

    def cell_active(self, i: int, j: int) -> bool:
        return (i, j) in self._node_at

    def describe_cell(self, i: int, j: int) -> str:
        v = self._node_at.get((i, j))
        return f"node {v}" if v is not None else f"padding cell ({i}, {j})"

    # -- partitioning ----------------------------------------------------------
    def make_dist(self, region, place_ids):
        """Subtree/heavy-path partition as a :class:`repro.dist.dist.Dist`.

        Chunks the heavy-child-last post-order into ``len(place_ids)``
        contiguous, cell-balanced ranges. Because the post-order keeps
        every subtree contiguous and walks each heavy path without
        interruption, a chunk boundary cuts only light edges — child →
        parent dependency traffic stays place-local except across those
        few cuts. Padding cells ride with place 0 (they are never
        computed). Signature matches ``DPX10Config(custom_dist=...)``
        and recovery rebuilds it over the survivor set automatically.
        """
        from repro.dist.dist import Dist

        ids = list(place_ids)
        nplaces = len(ids)
        owner_of_node: Dict[int, int] = {}
        base, extra = divmod(self.n, nplaces)
        pos = 0
        for k in range(nplaces):
            span = base + (1 if k < extra else 0)
            for v in self.post_order[pos : pos + span]:
                owner_of_node[v] = ids[k]
            pos += span

        node_at = self._node_at
        fallback = ids[0]

        def map_fn(i: int, j: int) -> int:
            v = node_at.get((i, j))
            return owner_of_node[v] if v is not None else fallback

        return Dist.custom(region, ids, map_fn)


class DomainApp(DPX10App[T], Generic[T]):
    """A :class:`~repro.core.api.DPX10App` written in native indices.

    The runtime hands ``compute()`` layout cells; this base class decodes
    them through the domain and dispatches to :meth:`compute_index`, so
    the recurrence reads like the math — keyed by node ids or k-tuples,
    never by layout rows/columns::

        class TreeSum(DomainApp[int]):
            def compute_index(self, node, deps):
                return self.weight[node] + sum(deps.values())

    ``deps`` maps each dependency's *native* index to its computed value.
    """

    def __init__(self, domain: IndexDomain) -> None:
        self.domain = domain

    def compute(self, i: int, j: int, vertices: Sequence["Vertex[T]"]) -> T:
        dom = self.domain
        deps = {dom.from_cell(v.i, v.j): v.get_result() for v in vertices}
        return self.compute_index(dom.from_cell(i, j), deps)

    def compute_index(self, index: object, deps: Dict[object, T]) -> T:
        """The DP recurrence in native index terms. Override me."""
        raise NotImplementedError
