"""Tile-granular execution: coarsen the cell DAG, run whole tiles.

The per-vertex engine pays interpreter-level scheduling, indegree
bookkeeping and cache-lookup overhead for every cell. Blocked (tiled)
evaluation is the standard remedy: partition the matrix into
``tile_h x tile_w`` tiles, hoist the dependencies from cells to tiles
(Tang's nested-dataflow argument: a DP recurrence stays correct when a
sub-block waits for the union of its cells' dependencies), and stream the
tiles along the wavefront — Matsumae & Miyazaki's pipelined blocked GPU
DP, rendered on the DPX10 DAG-pattern abstraction.

Three layers live here (see docs/TILING.md for the full story):

* **Coarsening** — :func:`coarsen` derives a :class:`TiledDag` from any
  pattern. For stencils the tile-level offset set is computed in
  O(#offsets) by the clipping rule (each cell offset ``(di, dj)`` maps to
  the tile offsets ``[floor(di/th), ceil(di/th)] x [floor(dj/tw),
  ceil(dj/tw)]`` minus ``(0, 0)``) and proved acyclic by the PR 1
  ranking-vector verifier; irregular patterns are coarsened by
  enumeration and Kahn-checked.
* **Tile scheduling state** — :class:`TileRunState` holds tile indegrees,
  per-place ready lists and the finished set; recovery rebuilds it from
  the surviving cell stores (a dead place invalidates *tiles*, not
  cells).
* **The tile worker** — :func:`execute_tile` fetches a tile's remote halo
  in one batched read per producing place (one network message per tile
  edge), runs the cells in intra-tile wavefront order — through the
  app's vectorized ``compute_tile`` kernel when it offers one — and
  writes the results back per home place in bulk.

``DPX10Config(tile_shape=(h, w))`` opts a run in; ``(1, 1)`` and ``None``
keep the legacy per-vertex path bit-for-bit.
"""

from __future__ import annotations

import queue
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING, Deque, Dict, List, Optional, Set, Tuple

import numpy as np

from repro.analysis import sanitize as _sanitize
from repro.analysis.symbolic import find_ranking_vector
from repro.core.api import DPX10App, Vertex, VertexId
from repro.core.dag import Dag
from repro.core.trace import Span, TraceEvent
from repro.obs.metrics import DEFAULT_BYTES_BUCKETS
from repro.errors import DeadPlaceException, DependencyRaceError, PatternError
from repro.util.validation import require

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.worker import ExecutionState

__all__ = [
    "HaloPrefetcher",
    "TileGrid",
    "TiledDag",
    "TileRunState",
    "coarsen",
    "coarsen_offsets",
    "execute_tile",
    "run_tiled_inline",
    "run_tiled_threaded",
]

Coord = Tuple[int, int]
Offset = Tuple[int, int]

# matches the per-vertex threaded driver's idle poll (see worker._IDLE_WAIT_S)
_IDLE_WAIT_S = 0.02

#: relative intra-tile wavefront orders keyed by ``(h, w, a, b)``. For a
#: dense stencil the rank ``a*i + b*j`` is linear, so the sorted cell
#: order of every full ``h×w`` tile is the same up to the tile origin —
#: cache it once per shape instead of lexsorting per tile, per run.
_CELL_ORDER_CACHE: Dict[Tuple[int, int, int, int], Tuple[np.ndarray, np.ndarray]] = {}


def _cell_order(h: int, w: int, a: int, b: int) -> Tuple[np.ndarray, np.ndarray]:
    """Tile-relative ``(rows, cols)`` in ascending ``a*i + b*j`` rank order."""
    cached = _CELL_ORDER_CACHE.get((h, w, a, b))
    if cached is None:
        ii, jj = np.meshgrid(
            np.arange(h, dtype=np.int64),
            np.arange(w, dtype=np.int64),
            indexing="ij",
        )
        ri, rj = ii.ravel(), jj.ravel()
        order = np.lexsort((rj, ri, a * ri + b * rj))
        cached = (ri[order], rj[order])
        _CELL_ORDER_CACHE[(h, w, a, b)] = cached
    return cached


#: dense-pattern halo cells keyed by ``(offsets, H, W, r0, r1, c0, c1)``.
#: Same rationale as :data:`_CELL_ORDER_CACHE`: the strips are pure
#: bounds arithmetic, recomputed for identical tiles on every run.
_HALO_CACHE: Dict[tuple, Tuple[np.ndarray, np.ndarray]] = {}


@dataclass(frozen=True)
class TileGrid:
    """Geometry of a ``tile_h x tile_w`` blocking of a ``height x width`` matrix."""

    height: int
    width: int
    tile_h: int
    tile_w: int

    @property
    def nti(self) -> int:
        """Tile rows (the last row may be clipped)."""
        return -(-self.height // self.tile_h)

    @property
    def ntj(self) -> int:
        """Tile columns (the last column may be clipped)."""
        return -(-self.width // self.tile_w)

    def tile_of(self, i: int, j: int) -> Coord:
        return (i // self.tile_h, j // self.tile_w)

    def origin(self, ti: int, tj: int) -> Coord:
        return (ti * self.tile_h, tj * self.tile_w)

    def bounds(self, ti: int, tj: int) -> Tuple[int, int, int, int]:
        """The tile's cell rectangle ``(r0, r1, c0, c1)``, clipped to the matrix."""
        r0 = ti * self.tile_h
        c0 = tj * self.tile_w
        return (
            r0,
            min(r0 + self.tile_h, self.height),
            c0,
            min(c0 + self.tile_w, self.width),
        )


def coarsen_offsets(
    offsets: Tuple[Offset, ...], tile_h: int, tile_w: int
) -> Tuple[Offset, ...]:
    """Map a cell-offset set to tile granularity (the clipping rule).

    A cell at local position ``(r, c)`` of a tile reaches tile-row offset
    ``floor((r + di) / tile_h)``; over ``r in [0, tile_h)`` that spans
    exactly ``[floor(di/tile_h), ceil(di/tile_h)]`` (and likewise for
    columns). The tile-level offset set is the cross product of those
    ranges over all offsets, minus ``(0, 0)`` (intra-tile edges are
    resolved by the intra-tile wavefront order, not the tile DAG).
    """
    out: Set[Offset] = set()
    for di, dj in offsets:
        for a in range(di // tile_h, -(-di // tile_h) + 1):
            for b in range(dj // tile_w, -(-dj // tile_w) + 1):
                if (a, b) != (0, 0):
                    out.add((a, b))
    return tuple(sorted(out))


class TiledDag(Dag):
    """The tile-level DAG derived from a base pattern by :func:`coarsen`.

    A full :class:`~repro.core.dag.Dag` over the tile grid — ``validate``,
    the mp engine's level scheduler, and the tiled runtime all treat it as
    an ordinary pattern — plus the cell-level services the tile worker
    needs: :meth:`cells_of` (a tile's active cells in intra-tile wavefront
    order) and :meth:`halo_of` (the out-of-tile dependency cells).
    """

    def __init__(
        self,
        base: Dag,
        grid: TileGrid,
        *,
        tile_offsets: Optional[Tuple[Offset, ...]] = None,
        deps: Optional[Dict[Coord, List[Coord]]] = None,
        anti: Optional[Dict[Coord, List[Coord]]] = None,
        tile_active: Optional[np.ndarray] = None,
        base_rank: Optional[Offset] = None,
    ) -> None:
        super().__init__(grid.nti, grid.ntj)
        self.base = base
        self.grid = grid
        self.tile_offsets = tile_offsets
        self._deps = deps
        self._anti = anti
        self._tile_active = tile_active
        self._base_rank = base_rank
        #: stencil mode: offsets known, halo and order derivable symbolically
        self.stencil_mode = tile_offsets is not None
        if self.stencil_mode:
            offs = tuple(base.offsets)  # type: ignore[attr-defined]
            self.pads = (
                max(0, max(-di for di, _ in offs)),
                max(0, max(di for di, _ in offs)),
                max(0, max(-dj for _, dj in offs)),
                max(0, max(dj for _, dj in offs)),
            )
        else:
            self.pads = (0, 0, 0, 0)

    # -- the Dag interface over tiles ----------------------------------------------
    def is_active(self, ti: int, tj: int) -> bool:
        return bool(self._tile_active[ti, tj])

    def get_dependency(self, ti: int, tj: int) -> List[VertexId]:
        if self.stencil_mode:
            return self._tile_neighbors(ti, tj, +1)
        return [VertexId(*t) for t in self._deps.get((ti, tj), [])]

    def get_anti_dependency(self, ti: int, tj: int) -> List[VertexId]:
        if self.stencil_mode:
            return self._tile_neighbors(ti, tj, -1)
        return [VertexId(*t) for t in self._anti.get((ti, tj), [])]

    def _tile_neighbors(self, ti: int, tj: int, sign: int) -> List[VertexId]:
        out: List[VertexId] = []
        for a, b in self.tile_offsets:
            ni, nj = ti + sign * a, tj + sign * b
            if self.contains(ni, nj) and self.is_active(ni, nj):
                out.append(VertexId(ni, nj))
        return out

    # -- cell-level services for the tile worker -------------------------------------
    def _active_mask(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        mask = self.base.is_active_array(rows, cols)
        if mask is None:
            base = self.base
            mask = np.fromiter(
                (base.is_active(int(i), int(j)) for i, j in zip(rows, cols)),
                dtype=bool,
                count=len(rows),
            )
        return mask

    def cells_of(self, ti: int, tj: int) -> Tuple[np.ndarray, np.ndarray]:
        """The tile's active cells ``(rows, cols)`` in a valid intra-tile order.

        Stencil mode sorts by the base pattern's wavefront level
        ``a*i + b*j`` (the ranking vector proves every dependency edge
        strictly decreases it, so ascending level is a topological
        order); irregular patterns run a per-tile Kahn pass.
        """
        r0, r1, c0, c1 = self.grid.bounds(ti, tj)
        base = self.base
        if self.stencil_mode:
            a, b = self._base_rank
            if type(base).is_active is Dag.is_active:
                # dense pattern: every cell is active and the wavefront
                # rank is linear, so the sorted order depends only on the
                # tile's shape — reuse it via the relative-order cache
                # instead of re-running meshgrid + lexsort per tile
                ri, rj = _cell_order(r1 - r0, c1 - c0, a, b)
                return r0 + ri, c0 + rj
            ii, jj = np.meshgrid(
                np.arange(r0, r1, dtype=np.int64),
                np.arange(c0, c1, dtype=np.int64),
                indexing="ij",
            )
            rows, cols = ii.ravel(), jj.ravel()
            mask = self._active_mask(rows, cols)
            rows, cols = rows[mask], cols[mask]
            order = np.lexsort((cols, rows, a * rows + b * cols))
            return rows[order], cols[order]
        cells = [
            (i, j)
            for i in range(r0, r1)
            for j in range(c0, c1)
            if base.is_active(i, j)
        ]
        cellset = set(cells)
        indeg = {
            c: sum(1 for d in base.get_dependency(*c) if (d.i, d.j) in cellset)
            for c in cells
        }
        q: Deque[Coord] = deque(c for c in cells if indeg[c] == 0)
        order_list: List[Coord] = []
        while q:
            c = q.popleft()
            order_list.append(c)
            for adep in base.get_anti_dependency(*c):
                key = (adep.i, adep.j)
                if key in indeg:
                    indeg[key] -= 1
                    if indeg[key] == 0:
                        q.append(key)
        if len(order_list) != len(cells):  # pragma: no cover - base DAG is acyclic
            raise PatternError(
                f"tile ({ti}, {tj}) has a cyclic intra-tile subgraph"
            )
        if not order_list:
            return np.empty(0, np.int64), np.empty(0, np.int64)
        arr = np.array(order_list, dtype=np.int64)
        return arr[:, 0], arr[:, 1]

    def halo_of(self, ti: int, tj: int) -> Tuple[np.ndarray, np.ndarray]:
        """Active cells outside the tile that its cells depend on.

        These are all finished before the tile is released: each lies in a
        tile reachable by a coarsened offset, hence in a predecessor of
        ``(ti, tj)`` in the tile DAG.
        """
        r0, r1, c0, c1 = self.grid.bounds(ti, tj)
        base = self.base
        if self.stencil_mode:
            H, W = base.height, base.width
            offs = tuple(base.offsets)  # type: ignore[attr-defined]
            dense = type(base).is_active is Dag.is_active
            if dense:
                # halo geometry is pure bounds arithmetic for dense
                # patterns; identical tiles recur every run, so pooled
                # warm places replay from the cache
                key = (offs, H, W, r0, r1, c0, c1)
                cached = _HALO_CACHE.get(key)
                if cached is not None:
                    return cached
            pieces: List[Tuple[int, int, int, int]] = []
            for di, dj in offs:
                sr0, sr1 = max(r0 + di, 0), min(r1 + di, H)
                sc0, sc1 = max(c0 + dj, 0), min(c1 + dj, W)
                if sr0 >= sr1 or sc0 >= sc1:
                    continue
                # shifted-rect rows above/below the tile: full shifted width
                if sr0 < r0:
                    pieces.append((sr0, min(sr1, r0), sc0, sc1))
                if sr1 > r1:
                    pieces.append((max(sr0, r1), sr1, sc0, sc1))
                # rows overlapping the tile: only the columns outside it
                rr0, rr1 = max(sr0, r0), min(sr1, r1)
                if rr0 < rr1:
                    if sc0 < c0:
                        pieces.append((rr0, rr1, sc0, min(sc1, c0)))
                    if sc1 > c1:
                        pieces.append((rr0, rr1, max(sc0, c1), sc1))
            if not pieces:
                out = (np.empty(0, np.int64), np.empty(0, np.int64))
                if dense:
                    _HALO_CACHE[key] = out
                return out
            rs, cs = [], []
            for a0, a1, b0, b1 in pieces:
                ii, jj = np.meshgrid(
                    np.arange(a0, a1, dtype=np.int64),
                    np.arange(b0, b1, dtype=np.int64),
                    indexing="ij",
                )
                rs.append(ii.ravel())
                cs.append(jj.ravel())
            rows = np.concatenate(rs)
            cols = np.concatenate(cs)
            _, idx = np.unique(rows * W + cols, return_index=True)
            rows, cols = rows[idx], cols[idx]
            if not dense:
                mask = self._active_mask(rows, cols)
                rows, cols = rows[mask], cols[mask]
            out = (rows, cols)
            if dense:
                _HALO_CACHE[key] = out
            return out
        seen: Dict[Coord, None] = {}
        for i in range(r0, r1):
            for j in range(c0, c1):
                if not base.is_active(i, j):
                    continue
                for d in base.get_dependency(i, j):
                    if r0 <= d.i < r1 and c0 <= d.j < c1:
                        continue
                    if base.is_active(d.i, d.j):
                        seen[(d.i, d.j)] = None
        if not seen:
            return np.empty(0, np.int64), np.empty(0, np.int64)
        arr = np.array(list(seen), dtype=np.int64)
        return arr[:, 0], arr[:, 1]


def coarsen(base: Dag, tile_h: int, tile_w: int) -> TiledDag:
    """Build and verify the tile-level DAG (see :meth:`Dag.coarsen`)."""
    require(
        isinstance(tile_h, int) and isinstance(tile_w, int) and tile_h >= 1 and tile_w >= 1,
        f"tile shape must be a pair of ints >= 1, got ({tile_h!r}, {tile_w!r})",
    )
    grid = TileGrid(base.height, base.width, tile_h, tile_w)
    from repro.patterns.base import StencilDag  # local: patterns import core.dag

    stencil_ok = (
        isinstance(base, StencilDag)
        and type(base).get_dependency is StencilDag.get_dependency
        and type(base).get_anti_dependency is StencilDag.get_anti_dependency
    )
    if stencil_ok:
        offsets = tuple(base.offsets)
        base_rank = find_ranking_vector(offsets)
        if base_rank is None:
            raise PatternError(
                f"{type(base).__name__} offsets {sorted(offsets)} admit no "
                "ranking vector; the cell DAG itself is cyclic"
            )
        toffsets = coarsen_offsets(offsets, tile_h, tile_w)
        # prune tile offsets that cannot land inside the tile grid — e.g.
        # with a single tile column (tile_w >= width) every (0, +-1) edge
        # falls off the grid, which is what legalizes row-strip tiling of
        # antidiagonal-flavoured patterns
        toffsets = tuple(
            (a, b)
            for a, b in toffsets
            if abs(a) < grid.nti and abs(b) < grid.ntj
        )
        if toffsets and find_ranking_vector(toffsets) is None:
            raise PatternError(
                f"tile shape ({tile_h}, {tile_w}) coarsens offsets "
                f"{sorted(offsets)} to {list(toffsets)}, which admits no "
                "ranking vector: the tile DAG would be cyclic. Use a tile "
                "shape that covers the offset reach (see docs/TILING.md)."
            )
        tile_active = np.zeros((grid.nti, grid.ntj), dtype=bool)
        for ti in range(grid.nti):
            for tj in range(grid.ntj):
                tile_active[ti, tj] = (
                    base.active_cells_in_rect(*grid.bounds(ti, tj)) > 0
                )
        return TiledDag(
            base,
            grid,
            tile_offsets=toffsets,
            tile_active=tile_active,
            base_rank=base_rank,
        )

    # irregular pattern: enumerate the cell edges and hoist them
    deps: Dict[Coord, Set[Coord]] = {}
    anti: Dict[Coord, Set[Coord]] = {}
    tile_active = np.zeros((grid.nti, grid.ntj), dtype=bool)
    for i, j in base.region:
        if not base.is_active(i, j):
            continue
        t = grid.tile_of(i, j)
        tile_active[t] = True
        for d in base.get_dependency(i, j):
            if not base.is_active(d.i, d.j):
                continue
            td = grid.tile_of(d.i, d.j)
            if td != t:
                deps.setdefault(t, set()).add(td)
                anti.setdefault(td, set()).add(t)
    tiles = [(int(a), int(b)) for a, b in np.argwhere(tile_active)]
    indeg = {t: len(deps.get(t, ())) for t in tiles}
    q: Deque[Coord] = deque(t for t in tiles if indeg[t] == 0)
    done = 0
    while q:
        t = q.popleft()
        done += 1
        for s in anti.get(t, ()):
            indeg[s] -= 1
            if indeg[s] == 0:
                q.append(s)
    if done != len(tiles):
        raise PatternError(
            f"tile shape ({tile_h}, {tile_w}) makes the coarsened "
            f"{type(base).__name__} cyclic: only {done} of {len(tiles)} "
            "tiles schedulable"
        )
    return TiledDag(
        base,
        grid,
        deps={t: sorted(s) for t, s in deps.items()},
        anti={t: sorted(s) for t, s in anti.items()},
        tile_active=tile_active,
    )


class TileRunState:
    """Tile-granular scheduling state shared by the tiled drivers.

    The cell-level :class:`~repro.core.vertex_store.VertexStore` keeps
    owning values and finish flags (recovery, result binding and snapshots
    are unchanged); this tracks the *tile* wavefront: indegrees, per-place
    ready lists and finished tiles. A tile's home place is the home of its
    origin cell under the current distribution.
    """

    def __init__(self, tiled: TiledDag) -> None:
        self.tiled = tiled
        self.grid = tiled.grid
        self.home: Dict[Coord, int] = {}
        self.indegree: Dict[Coord, int] = {}
        self.finished: Set[Coord] = set()
        self.ready: Dict[int, Deque[Coord]] = {}
        self.remaining: Dict[int, int] = {}
        self.lock = threading.Lock()

    # -- (re)building ---------------------------------------------------------------
    def build(self, state: "ExecutionState", fresh: bool = True) -> None:
        """Derive homes, indegrees and ready lists from the current stores.

        ``fresh=True`` (initial build) assumes no active cell is finished
        yet; recovery calls :meth:`rebuild`, which scans the surviving
        stores so tiles whose cells were preserved stay finished and
        partially lost tiles get their indegree reset — the tile-granular
        analogue of the paper's "reset the indegree" step.
        """
        prefetch = getattr(state, "prefetch", None)
        if prefetch is not None:
            # any buffered halo may predate a recovery rollback; drop it
            prefetch.clear()
        tiled = self.tiled
        dist = state.dist
        active_tiles = [
            (ti, tj)
            for ti in range(tiled.height)
            for tj in range(tiled.width)
            if tiled.is_active(ti, tj)
        ]
        self.home = {
            t: dist.place_of(*self.grid.origin(*t)) for t in active_tiles
        }
        unfinished_cells_in: Set[Coord] = set()
        if not fresh:
            for pid in dist.place_ids:
                store = state.stores[pid]
                mask = store.active & ~store.finished
                for k in np.nonzero(mask)[0]:
                    unfinished_cells_in.add(self.grid.tile_of(*store.coords[k]))
        with self.lock:
            if fresh:
                # a tile whose cells are all inactive never made it into
                # active_tiles; anything here has work (or is a no-op tile
                # from an over-approximate active_cells_in_rect, which
                # executes harmlessly as zero cells)
                self.finished = set()
            else:
                self.finished = {
                    t for t in active_tiles if t not in unfinished_cells_in
                }
            self.indegree = {}
            self.ready = {pid: deque() for pid in dist.place_ids}
            self.remaining = {pid: 0 for pid in dist.place_ids}
            for t in active_tiles:
                if t in self.finished:
                    continue
                indeg = sum(
                    1
                    for d in tiled.get_dependency(*t)
                    if (d.i, d.j) not in self.finished
                )
                self.indegree[t] = indeg
                pid = self.home[t]
                self.remaining[pid] += 1
                if indeg == 0:
                    self.ready[pid].append(t)

    def rebuild(self, state: "ExecutionState") -> None:
        """Recovery hook: re-home tiles and reset tile indegrees."""
        self.build(state, fresh=False)

    # -- scheduling ------------------------------------------------------------------
    def pop_ready(self, pid: int) -> Optional[Coord]:
        try:
            return self.ready[pid].popleft()
        except (KeyError, IndexError):
            return None

    def push_ready(self, state: "ExecutionState", tile: Coord) -> None:
        """Enqueue a newly schedulable tile at its home place (if alive)."""
        pid = self.home[tile]
        if not state.group.is_alive(pid):
            return
        self.ready[pid].append(tile)
        cond = state.conds.get(pid)
        if cond is not None:
            with cond:
                cond.notify()

    def on_tile_finished(self, state: "ExecutionState", tile: Coord) -> None:
        """Mark finished and release successor tiles whose indegree hits 0."""
        newly_ready: List[Coord] = []
        with self.lock:
            if tile in self.finished:
                return
            self.finished.add(tile)
            pid = self.home[tile]
            if pid in self.remaining:
                self.remaining[pid] -= 1
            for a in self.tiled.get_anti_dependency(*tile):
                key = (a.i, a.j)
                if key in self.indegree and key not in self.finished:
                    self.indegree[key] -= 1
                    if self.indegree[key] == 0:
                        newly_ready.append(key)
        for t in newly_ready:
            self.push_ready(state, t)

    def place_done(self, pid: int) -> bool:
        with self.lock:
            return self.remaining.get(pid, 0) <= 0

    def all_done(self, state: "ExecutionState") -> bool:
        with self.lock:
            return all(
                n <= 0
                for pid, n in self.remaining.items()
                if state.group.is_alive(pid)
            )


# -- the halo prefetcher --------------------------------------------------------------
def _halo_value_nbytes(state: "ExecutionState") -> int:
    """Actual bytes per halo value: the dtype's itemsize for typed apps,
    the configured model (``value_nbytes``) for object-valued ones."""
    dt = state.app.value_dtype
    if dt is not None:
        return int(np.dtype(dt).itemsize)
    return state.config.value_nbytes


class HaloPrefetcher:
    """Pipelined halo prefetch: overlap the next tiles' fetches with compute.

    A single daemon thread serves prefetch requests (see docs/TILING.md
    "Transport"). When a driver pops a tile for a place it calls
    :meth:`schedule`, which enqueues the next :data:`DEPTH` tiles still
    waiting in that place's ready list — double buffering: while the
    popped tile computes, the thread fetches the halos its successors
    will need. Each prefetch groups the tile's halo per producing place,
    skips what the place's cache already holds (a stat-free
    :meth:`~repro.core.cache.RemoteCache.peek_many`, so cache hit/miss
    accounting is untouched), reads the rest from the producing stores
    (recording network traffic and halo-fetch metrics at fetch time,
    under a "halo prefetch" trace span), and parks the values in a
    per-tile buffer that :func:`execute_tile` consumes ahead of its
    synchronous fallback.

    Correctness is never delegated here: a buffer may simply be absent
    (thread behind, tile stolen, producing place died mid-fetch — any
    fetch error discards the buffer silently) and the tile worker then
    fetches synchronously, exactly as with ``halo_prefetch=False``.
    Recovery rebuilds call :meth:`clear`; a recomputed cell is identical
    by determinism, so even a consumed stale buffer could not corrupt a
    result, but the clear keeps buffers and accounting honest.

    Consumption outcomes are observable: ``dpx10_halo_prefetch_hits_total``
    counts tiles whose remote halo was fully covered by cache + buffer,
    ``dpx10_halo_prefetch_misses_total`` counts tiles that still needed a
    synchronous fetch.
    """

    #: ready-list lookahead per place (double buffering)
    DEPTH = 2

    def __init__(self, state: "ExecutionState") -> None:
        self.state = state
        self._lock = threading.Lock()
        self._buffers: Dict[Coord, Dict[Coord, object]] = {}
        self._scheduled: Set[Coord] = set()
        self._jobs: "queue.Queue[Optional[Tuple[Coord, int]]]" = queue.Queue()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._serve, name="dpx10-halo-prefetch", daemon=True
        )
        self._thread.start()

    # -- driver-facing API -------------------------------------------------------
    def schedule(self, pid: int) -> None:
        """Request prefetch for the next tiles queued at ``pid``."""
        ts: TileRunState = self.state.tiles
        with ts.lock:
            upcoming = list(ts.ready.get(pid, ()))[: self.DEPTH]
        for tile in upcoming:
            with self._lock:
                if tile in self._scheduled or tile in self._buffers:
                    continue
                self._scheduled.add(tile)
            self._jobs.put((tile, pid))

    def take(self, tile: Coord) -> Optional[Dict[Coord, object]]:
        """Claim (and drop) the buffered halo values for ``tile``."""
        with self._lock:
            self._scheduled.discard(tile)
            return self._buffers.pop(tile, None)

    def clear(self) -> None:
        """Drop all buffers and queued jobs (recovery rebuilds)."""
        while True:
            try:
                self._jobs.get_nowait()
            except queue.Empty:
                break
        with self._lock:
            self._buffers.clear()
            self._scheduled.clear()

    def stop(self) -> None:
        """Shut the prefetch thread down (runtime teardown)."""
        self._stop.set()
        self._jobs.put(None)
        self._thread.join(timeout=2.0)

    # -- the prefetch thread -----------------------------------------------------
    def _serve(self) -> None:
        while True:
            job = self._jobs.get()
            if self._stop.is_set():
                return
            if job is None:  # pragma: no cover - spurious wake
                continue
            tile, pid = job
            try:
                self._fetch(tile, pid)
            except Exception:
                # typically DeadPlaceException under chaos: no buffer,
                # the synchronous fallback (and recovery) take over
                with self._lock:
                    self._buffers.pop(tile, None)
                    self._scheduled.discard(tile)

    def _fetch(self, tile: Coord, pid: int) -> None:
        state = self.state
        ts: TileRunState = state.tiles
        tiled = ts.tiled
        with ts.lock:
            if tile in ts.finished:
                with self._lock:
                    self._scheduled.discard(tile)
                return
        hrows, hcols = tiled.halo_of(*tile)
        by_place: Dict[int, List[Coord]] = {}
        pof = state.dist.place_of
        for c in zip(hrows.tolist(), hcols.tolist()):
            p = pof(*c)
            if p != pid:
                by_place.setdefault(p, []).append(c)
        if not by_place:
            with self._lock:
                self._scheduled.discard(tile)
            return
        cache = state.caches[pid]
        metrics = state.metrics
        trace = state.trace
        nbytes = _halo_value_nbytes(state)
        buffer: Dict[Coord, object] = {}
        t0 = trace.now() if trace is not None else 0.0
        moved = 0
        for producer, coords in by_place.items():
            _, missing = cache.peek_many(coords)
            if not missing:
                continue
            vals = state.stores[producer].get_block(missing)
            buffer.update(zip(missing, vals))
            strip_bytes = nbytes * len(missing)
            moved += strip_bytes
            state.network.record(producer, pid, strip_bytes)
            if metrics.enabled:
                metrics.counter(
                    "dpx10_halo_fetches_total",
                    "batched remote halo fetches (one per tile edge)",
                    ("place",),
                ).labels(pid).inc()
                metrics.histogram(
                    "dpx10_halo_fetch_bytes",
                    "bytes moved per batched halo fetch",
                    ("transport",),
                    buckets=DEFAULT_BYTES_BUCKETS,
                ).labels("store").observe(strip_bytes)
        if moved and trace is not None:
            trace.record_span(
                Span(
                    "halo prefetch", t0, trace.now(),
                    category="halo", place=pid,
                )
            )
        with self._lock:
            if buffer and tile in self._scheduled:
                # a clear() while we fetched means the buffer is void
                self._buffers[tile] = buffer
            self._scheduled.discard(tile)


# -- the tile worker ------------------------------------------------------------------
def _kernel_eligible(state: "ExecutionState") -> bool:
    """Whether the app's vectorized ``compute_tile`` may replace the cell loop."""
    app = state.app
    return (
        state.tiles.tiled.stencil_mode
        and app.value_dtype is not None
        and type(app).compute_tile is not DPX10App.compute_tile
        and not state.config.sanitize
    )


def execute_tile(
    state: "ExecutionState", tile: Coord, exec_place: Optional[int] = None
) -> None:
    """Run one tile end to end: halo fetch, compute, write-back, notify.

    ``exec_place=None`` asks the scheduling strategy for a placement (one
    decision per tile, costed on the tile's halo edges); a stolen tile
    passes the thief's place explicitly.
    """
    ts: TileRunState = state.tiles
    tiled = ts.tiled
    base = tiled.base
    cfg = state.config
    app = state.app
    ti, tj = tile
    trace = state.trace
    if cfg.pace is not None:
        # serving-layer fairness gate: may block until the weighted-fair
        # scheduler grants this tile its turn (see repro.serve.scheduler)
        pace_start = trace.now() if trace is not None else 0.0
        cfg.pace(int(len(tiled.cells_of(ti, tj)[0])))
        if trace is not None:
            pace_end = trace.now()
            # sub-microsecond grants are uncontended — not a stall
            if pace_end - pace_start > 1e-6:
                trace.record_span(
                    Span(
                        "pace wait", pace_start, pace_end,
                        category="pace", place=ts.home[tile],
                    )
                )
    r0, r1, c0, c1 = ts.grid.bounds(ti, tj)
    t_start = trace.now() if trace is not None else 0.0
    svc0 = time.perf_counter() if state.straggler is not None else 0.0

    rows, cols = tiled.cells_of(ti, tj)
    hrows, hcols = tiled.halo_of(ti, tj)
    n = len(rows)
    nh = len(hrows)

    # group the halo per producing place, carrying each strip cell's
    # position in the (hrows, hcols) order so fetched values land in an
    # aligned buffer — the kernel path scatters that buffer into the
    # window with one fancy store instead of a per-cell dict lookup
    pof = state.dist.place_of
    nbytes = cfg.value_nbytes
    hcoords = list(zip(hrows.tolist(), hcols.tolist()))
    halo_by_place: Dict[int, Tuple[List[Coord], List[int]]] = {}
    for idx, c in enumerate(hcoords):
        bucket = halo_by_place.get(pof(*c))
        if bucket is None:
            bucket = ([], [])
            halo_by_place[pof(*c)] = bucket
        bucket[0].append(c)
        bucket[1].append(idx)

    home_place = ts.home[tile]
    if exec_place is None:
        dep_homes = [p for p, (cs, _) in halo_by_place.items() for _ in cs]
        exec_place = state.strategy.choose_place(
            tile,
            home_place,
            dep_homes,
            state.group.alive_ids(),
            state.rngs[home_place],
            nbytes,
        )

    if state.chaos is not None and state.chaos.has_throttles:
        # slow-place chaos at tile granularity: the batch analogue of the
        # per-vertex on_execute hook (which the tiled path never reaches)
        state.chaos.throttle_batch(exec_place, n)

    typed = app.value_dtype is not None
    hvals: object = (
        np.empty(nh, dtype=app.value_dtype) if typed else [None] * nh
    )

    def _fill(idxs: List[int], vals) -> None:
        if typed:
            hvals[idxs] = vals
        else:
            for p, v in zip(idxs, vals):
                hvals[p] = v

    cache = state.caches[exec_place]
    metrics = state.metrics
    prefetch: Optional[HaloPrefetcher] = state.prefetch
    buffer = prefetch.take(tile) if prefetch is not None else None
    value_nbytes = _halo_value_nbytes(state)
    remote_fetch_bytes = 0
    served_from_buffer = False
    fetched_synchronously = False
    fetch_start = trace.now() if trace is not None else 0.0
    for producer, (coords, idxs) in halo_by_place.items():
        if producer == exec_place:
            _fill(idxs, state.stores[producer].get_block(coords))
            continue
        pos_of = dict(zip(coords, idxs))
        hits, missing = cache.get_many(coords)
        if hits:
            _fill([pos_of[c] for c in hits], list(hits.values()))
        if missing and buffer:
            # prefetched strips serve ahead of the synchronous fallback;
            # their traffic was recorded at prefetch time
            served = {c: buffer[c] for c in missing if c in buffer}
            if served:
                served_from_buffer = True
                _fill([pos_of[c] for c in served], list(served.values()))
                cache.put_many(served.items())
                missing = [c for c in missing if c not in served]
        if missing:
            # one batched remote fetch for this tile edge; raises
            # DeadPlaceException if the producing place died
            fetched_synchronously = True
            vals = state.stores[producer].get_block(missing)
            fetched_bytes = value_nbytes * len(missing)
            state.network.record(producer, exec_place, fetched_bytes)
            cache.put_many(zip(missing, vals))
            _fill([pos_of[c] for c in missing], vals)
            remote_fetch_bytes += fetched_bytes
            if metrics.enabled:
                metrics.counter(
                    "dpx10_halo_fetches_total",
                    "batched remote halo fetches (one per tile edge)",
                    ("place",),
                ).labels(exec_place).inc()
                metrics.histogram(
                    "dpx10_halo_fetch_bytes",
                    "bytes moved per batched halo fetch",
                    ("transport",),
                    buckets=DEFAULT_BYTES_BUCKETS,
                ).labels("store").observe(fetched_bytes)
    if (
        prefetch is not None
        and metrics.enabled
        and (served_from_buffer or fetched_synchronously)
    ):
        if fetched_synchronously:
            metrics.counter(
                "dpx10_halo_prefetch_misses_total",
                "tiles whose remote halo still needed a synchronous fetch",
                ("place",),
            ).labels(exec_place).inc()
        else:
            metrics.counter(
                "dpx10_halo_prefetch_hits_total",
                "tiles whose remote halo was covered by cache + prefetch buffer",
                ("place",),
            ).labels(exec_place).inc()
    if remote_fetch_bytes and trace is not None:
        trace.record_span(
            Span(
                "halo fetch", fetch_start, trace.now(),
                category="halo", place=exec_place,
            )
        )

    out_vals = None
    halo_values: Optional[Dict[Coord, object]] = None
    autokernel = state.autokernel
    kernel_mode = getattr(autokernel, "mode", "window")
    kernel_start = trace.now() if trace is not None else 0.0
    if n and autokernel is not None and kernel_mode == "cells":
        # cells-mode kernels (tree level gathers) map active cells to
        # values directly — object-valued apps have no window plane
        halo_values = dict(zip(hcoords, hvals))
        out_vals = autokernel.fn.run_cells(rows, cols, halo_values)
        if out_vals is not None and trace is not None:
            trace.record_span(
                Span(
                    f"kernel {autokernel.klass}",
                    kernel_start, trace.now(),
                    category="kernel", place=exec_place,
                )
            )
    elif n and typed and (autokernel is not None or _kernel_eligible(state)):
        if autokernel is not None:
            # the generated kernel's window must cover its inferred
            # footprint box as well as the declared-stencil halo strips
            pt, pb, pl, pr = (
                max(a, d) for a, d in zip(autokernel.pads, tiled.pads)
            )
        else:
            pt, pb, pl, pr = tiled.pads
        wr0, wr1 = max(0, r0 - pt), min(base.height, r1 + pb)
        wc0, wc1 = max(0, c0 - pl), min(base.width, c1 + pr)
        window = np.zeros((wr1 - wr0, wc1 - wc0), dtype=app.value_dtype)
        if nh:
            # the fetch loop already landed the halo in (hrows, hcols)
            # order, so the strips scatter in with one fancy store
            if autokernel is not None:
                # a dag may declare halo cells outside the window box;
                # the kernel provably never reads them, so drop them
                ins = (
                    (hrows >= wr0)
                    & (hrows < wr1)
                    & (hcols >= wc0)
                    & (hcols < wc1)
                )
                window[hrows[ins] - wr0, hcols[ins] - wc0] = hvals[ins]
            else:
                window[hrows - wr0, hcols - wc0] = hvals
        kernel_fn = autokernel.fn if autokernel is not None else app.compute_tile
        if kernel_fn(r0, c0, window, r0 - wr0, c0 - wc0, r1 - r0, c1 - c0):
            out_vals = window[rows - wr0, cols - wc0]
            if trace is not None:
                trace.record_span(
                    Span(
                        "kernel "
                        + (autokernel.klass if autokernel is not None else "hand"),
                        kernel_start, trace.now(),
                        category="kernel", place=exec_place,
                    )
                )

    if out_vals is None and n:
        # generic path: per-cell compute() in intra-tile wavefront order
        if halo_values is None:
            halo_values = dict(zip(hcoords, hvals))
        sanitizing = cfg.sanitize
        local: Dict[Coord, object] = {}
        out: List[object] = []
        get_dep = base.get_dependency
        is_act = base.is_active
        for i, j in zip(rows.tolist(), cols.tolist()):
            declared = get_dep(i, j)
            verts: List[Vertex] = []
            for d in declared:
                key = (d.i, d.j)
                if not is_act(*key):
                    continue
                if key in local:
                    verts.append(Vertex(d.i, d.j, local[key]))
                else:
                    verts.append(Vertex(d.i, d.j, halo_values[key]))
            if sanitizing:
                with _sanitize.compute_guard(
                    (i, j), ((d.i, d.j) for d in declared), exec_place
                ):
                    value = app.compute(i, j, verts)
            else:
                value = app.compute(i, j, verts)
            local[(i, j)] = value
            out.append(value)
        out_vals = out

    # write results back to the cells' home stores, batched per place
    if n:
        by_home: Dict[int, Tuple[List[Coord], List[object]]] = {}
        for c, v in zip(zip(rows.tolist(), cols.tolist()), out_vals):
            p = pof(*c)
            bucket = by_home.get(p)
            if bucket is None:
                bucket = ([], [])
                by_home[p] = bucket
            bucket[0].append(c)
            bucket[1].append(v)
        for p, (coords, vals) in by_home.items():
            state.stores[p].set_block(coords, vals)
            if p != exec_place:
                state.network.record(exec_place, p, nbytes * len(coords))

    with state._completions_lock:
        state.executed_by[exec_place] = state.executed_by.get(exec_place, 0) + n
        prev = state.completions
        state.completions += n
        completed = state.completions
    if metrics.enabled:
        metrics.counter(
            "dpx10_tiles_executed_total",
            "tiles executed per place",
            ("place",),
        ).labels(exec_place).inc()
    if (
        cfg.ft_mode == "snapshot"
        and cfg.snapshot_interval > 0
        and completed // cfg.snapshot_interval > prev // cfg.snapshot_interval
    ):
        state.take_snapshot()
    if (
        cfg.on_progress is not None
        and cfg.progress_interval > 0
        and completed // cfg.progress_interval > prev // cfg.progress_interval
    ):
        cfg.on_progress(completed, state.total_active)

    if state.straggler is not None:
        state.straggler.observe(exec_place, time.perf_counter() - svc0, n)
    if trace is not None:
        trace.record(
            TraceEvent(
                r0, c0, home_place, exec_place, t_start, trace.now(),
                tile=tile, cells=n,
            )
        )

    if state.injector is not None:
        victims = state.injector.poll_completions(completed)
        if victims:
            for victim in victims:
                state.group.kill(victim)
            raise DeadPlaceException(victims[0])

    ts.on_tile_finished(state, tile)


def try_steal_tile(state: "ExecutionState", thief: int) -> Optional[Coord]:
    """Steal a ready tile for an idle place (``work_stealing`` only)."""
    if not state.config.work_stealing:
        return None
    ts: TileRunState = state.tiles
    best, best_len = None, 0
    for pid in state.dist.place_ids:
        if pid == thief or not state.group.is_alive(pid):
            continue
        qlen = len(ts.ready[pid])
        if qlen > best_len:
            best, best_len = pid, qlen
    if best is None:
        return None
    try:
        return ts.ready[best].pop()
    except IndexError:  # raced with the owner
        return None


# -- drivers --------------------------------------------------------------------------
def run_tiled_inline(state: "ExecutionState") -> None:
    """Deterministic tiled driver: round-robin one tile per place per sweep."""
    ts: TileRunState = state.tiles
    place_ids = list(state.dist.place_ids)
    while True:
        progressed = False
        for pid in place_ids:
            if not state.group.is_alive(pid):
                continue
            tile = ts.pop_ready(pid)
            if tile is None:
                tile = try_steal_tile(state, pid)
                if tile is None:
                    continue
                if state.prefetch is not None:
                    state.prefetch.schedule(pid)
                execute_tile(state, tile, exec_place=pid)
                progressed = True
                continue
            progressed = True
            if state.prefetch is not None:
                state.prefetch.schedule(pid)
            execute_tile(state, tile)
        if ts.all_done(state):
            return
        if not progressed:
            raise PatternError(
                "deadlock: unfinished tiles remain but none are schedulable "
                "(the coarsened DAG's dependencies are inconsistent)"
            )


def run_tiled_threaded(state: "ExecutionState") -> None:
    """Concurrent tiled driver: one worker activity per place.

    The same structure as the per-vertex ``run_threaded`` — per-place
    condition-variable wakeups, the global abort latch for faults — with
    tiles as the unit of work and termination when every tile homed at
    the place has finished.
    """
    from repro.apgas.activity import Activity
    from repro.apgas.engine import ExecutionEngine  # avoid import cycle at top

    engine: ExecutionEngine = state._engine  # type: ignore[assignment]
    ts: TileRunState = state.tiles
    stealing = state.config.work_stealing

    def done_for(pid: int) -> bool:
        if not stealing:
            return ts.place_done(pid)
        return ts.all_done(state)

    def worker(pid: int) -> None:
        cond = state.conds[pid]
        while not state.abort_event.is_set():
            stolen = False
            tile = ts.pop_ready(pid)
            if tile is None and stealing:
                tile = try_steal_tile(state, pid)
                stolen = tile is not None
            if tile is None:
                if done_for(pid):
                    return
                with cond:
                    cond.wait(timeout=_IDLE_WAIT_S)
                continue
            if state.prefetch is not None:
                state.prefetch.schedule(pid)
            try:
                execute_tile(state, tile, exec_place=pid if stolen else None)
            except (DeadPlaceException, DependencyRaceError) as exc:
                state.record_abort(exc)
                return

    for pid in state.dist.place_ids:
        if state.group.is_alive(pid):
            engine.submit(Activity(pid, worker, (pid,)))
    engine.run_all()
    if state.abort_exc is not None:
        raise state.abort_exc
