"""The user-facing DPX10 API: ``DPX10App``, ``Vertex``, ``VertexId``.

Mirrors the paper's Figure 2:

.. code-block:: none

    public interface DPX10App[T] {
        def compute(i: Int, j: Int, vertices: Rail[Vertex[T]]): T;
        def appFinished(dag: Dag[T]): void;
    }
    public class Vertex[T] {
        val i: Int, j: Int;
        def getResult(): T;
    }

"Limiting the graph state managed by the framework to a single value per
vertex simplifies the main computation, distribution and fault tolerance"
— hence a vertex carries exactly one result of the app's value type.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Any, Generic, NamedTuple, Optional, Sequence, TypeVar

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.dag import Dag

__all__ = ["VertexId", "Vertex", "DPX10App", "dependency_map"]

T = TypeVar("T")


class VertexId(NamedTuple):
    """The unique 2-D identifier of a vertex (a cell of the DP matrix)."""

    i: int
    j: int


class Vertex(Generic[T]):
    """A computed vertex handed to ``compute()`` as a dependency.

    Users inspect the coordinate via ``.i`` / ``.j`` and the value via
    :meth:`get_result`, exactly like the paper's ``Vertex[T]``.
    """

    __slots__ = ("i", "j", "_value")

    def __init__(self, i: int, j: int, value: T) -> None:
        self.i = i
        self.j = j
        self._value = value

    def get_result(self) -> T:
        return self._value

    @property
    def id(self) -> VertexId:
        return VertexId(self.i, self.j)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Vertex({self.i}, {self.j}, {self._value!r})"


def dependency_map(vertices: Sequence["Vertex[T]"]) -> dict[tuple[int, int], T]:
    """Index a ``compute()`` dependency list by coordinate.

    The paper's Figure 7 scans ``vertices`` with coordinate comparisons;
    this helper is the dictionary form of the same lookup:

    >>> lookup = dependency_map(vertices)
    >>> top = lookup.get((i - 1, j), 0)
    """
    return {(v.i, v.j): v.get_result() for v in vertices}


class DPX10App(ABC, Generic[T]):
    """Base class every DPX10 application implements.

    Subclasses must provide :meth:`compute`; :meth:`app_finished` and the
    initialization hooks are optional. Set the class attribute
    ``value_dtype`` to a numpy dtype (e.g. ``numpy.int64``) to store vertex
    results in a typed array instead of a Python object array — a large
    memory and speed win for numeric DP recurrences.
    """

    #: numpy dtype for the per-vertex result array; ``None`` means a Python
    #: object array (any value type).
    value_dtype: Optional[Any] = None

    @abstractmethod
    def compute(self, i: int, j: int, vertices: Sequence[Vertex[T]]) -> T:
        """The DP recurrence for vertex ``(i, j)``.

        ``vertices`` holds this vertex's dependencies (already computed),
        in the order the DAG pattern's ``get_dependency`` returned them.
        Dependency resolution and any cross-place communication happened
        before this call; the implementation is pure application logic.
        """

    def app_finished(self, dag: "Dag[T]") -> None:
        """Called once when every vertex completed (paper Figure 2).

        ``dag`` is bound to the results: ``dag.get_vertex(i, j)`` retrieves
        any vertex, e.g. for backtracking the final answer.
        """

    def compute_tile(
        self,
        r0: int,
        c0: int,
        window: Any,
        oi: int,
        oj: int,
        h: int,
        w: int,
    ) -> bool:
        """Optional vectorized whole-tile kernel for the tiled engine.

        When ``DPX10Config(tile_shape=...)`` is active, the engine offers
        each tile to this hook before falling back to per-cell
        ``compute()`` calls. ``window`` is a 2-D numpy array of
        ``value_dtype`` covering the tile ``[r0, r0+h) x [c0, c0+w)`` plus
        its halo: cell ``(i, j)`` lives at ``window[oi + i - r0, oj + j - c0]``.
        Halo cells (dependencies outside the tile) are pre-filled with
        their finished values; cells never written (inactive, outside the
        matrix) read as the dtype's zero. The kernel must fill every
        active tile cell in ``window[oi:oi+h, oj:oj+w]``, honoring the
        pattern's intra-tile wavefront order, and return ``True``.

        Return ``False`` (the default) to decline — e.g. for tile shapes
        or boundary cases the kernel does not handle — and the engine
        runs the per-cell path for this tile instead. The kernel must
        compute exactly what ``compute()`` would: tiled and per-vertex
        execution are required (and property-tested) to agree
        cell-for-cell.

        Only consulted when ``value_dtype`` is set, the pattern is a pure
        stencil, and the run is not sanitized (``sanitize=True`` forces
        the per-cell path so every read stays visible to the race
        sanitizer).
        """
        return False

    def init_value(self, i: int, j: int) -> Optional[T]:
        """Initial value for vertices marked inactive by the pattern.

        The Refinements section lets initialization "set the unneeded
        vertices as finished"; those vertices never run ``compute()`` and
        instead carry this value. Default ``None``.
        """
        return None
