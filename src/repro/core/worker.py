"""Worker execution (paper section VI-C).

"On each place, a portion of vertices are assigned in the initial stage.
The worker on each place is responsible for scheduling all its local
vertices. There is a ready list that contains the schedulable and
uncompleted vertices. The worker repeatedly pull the vertices from the
list and schedule them until all local vertices are finished. A *finished
vertices counter* is used to determine the termination of the worker."

The per-vertex path is exactly the paper's: retrieve the dependency
vertices (local read, cache hit, or remote fetch recorded against the
network model), call the user's ``compute()``, store the result at the
vertex's home place, mark it finished, then decrement the indegree of its
anti-dependencies, pushing any that reach zero onto their home place's
ready list.

Two drivers share that path:

* :func:`run_inline` — a deterministic round-robin over the places' ready
  lists (one vertex per alive place per sweep), single-threaded;
* :func:`run_threaded` — one long-running worker activity per place on the
  :class:`~repro.apgas.engine.ThreadedEngine`, with condition-variable
  wakeups and a global abort protocol for fault handling.

Placement note: a scheduling strategy may choose a non-home execution
place. All observable consequences — dependency-transfer volume, cache
behaviour, result write-back, per-place activity counts, and (in the
simulator) timing — follow that choice. Physical execution stays on the
home worker's thread because places share one Python process; nothing the
framework, tests or figures measure depends on which OS thread ran the
bytecode.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.analysis import sanitize as _sanitize
from repro.apgas.failure import FaultInjector
from repro.apgas.network import NetworkModel
from repro.apgas.place import PlaceGroup
from repro.core.api import DPX10App, Vertex
from repro.core.cache import RemoteCache
from repro.core.config import DPX10Config
from repro.core.dag import Dag
from repro.core.scheduler import SchedulingStrategy
from repro.core.trace import ExecutionTrace, TraceEvent
from repro.core.vertex_store import VertexStore
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.dist.dist import Dist
from repro.dist.snapshot import SnapshotStore
from repro.errors import DeadPlaceException, DependencyRaceError, DPX10Error, PatternError
from repro.util.rng import seeded_rng

__all__ = ["ExecutionState", "execute_vertex", "run_inline", "run_threaded"]

Coord = Tuple[int, int]

# threaded workers poll this often when their ready list is empty; wakeups
# via the per-place condition make the common case prompt, the timeout only
# bounds how stale a missed notification can get
_IDLE_WAIT_S = 0.02


@dataclass
class ExecutionState:
    """Everything the workers share during one execution round."""

    app: DPX10App
    dag: Dag
    config: DPX10Config
    group: PlaceGroup
    network: NetworkModel
    strategy: SchedulingStrategy
    dist: Dist
    stores: Dict[int, VertexStore]
    ready: Dict[int, Deque[Coord]]
    caches: Dict[int, RemoteCache]
    injector: Optional[FaultInjector] = None
    completions: int = 0
    #: vertices executed per place (keyed by the execution place, which
    #: differs from the home place under non-local scheduling or stealing)
    executed_by: Dict[int, int] = field(default_factory=dict)
    #: stable checkpoint storage for ft_mode="snapshot"
    snapshots: Optional["SnapshotStore"] = None
    #: active vertices in the whole DAG (for progress reporting)
    total_active: int = 0
    #: per-vertex timeline sink (config.trace=True)
    trace: Optional["ExecutionTrace"] = None
    #: metrics registry (repro.obs); the shared no-op NULL_REGISTRY unless
    #: config.metrics opted the run in
    metrics: MetricsRegistry = NULL_REGISTRY
    #: tile-granular scheduling state (config.tile_shape); None on the
    #: legacy per-vertex path. See repro.core.tiling.TileRunState.
    tiles: Optional[object] = None
    #: chaos controller (config.chaos); None on undisturbed runs. The
    #: worker consults it for slow-place throttles, recovery for
    #: mid-recovery kill triggers. See repro.chaos.controller.
    chaos: Optional[object] = None
    #: pipelined halo prefetcher (tiled path, config.halo_prefetch);
    #: None on per-vertex runs. See repro.core.tiling.HaloPrefetcher.
    prefetch: Optional[object] = None
    #: generated tile kernel (config.autokernel); None when the classifier
    #: demoted the app to OPAQUE, the run is sanitized, or the knob is
    #: off. See repro.analysis.codegen.AutoKernel.
    autokernel: Optional[object] = None
    #: shared-memory arena backing the vertex stores (config.shm=True on
    #: in-process engines); owned and closed by the runtime. Recovery
    #: passes it through build_stores so re-materialized stores stay
    #: segment-backed. See repro.core.shm.ShmArena.
    shm_arena: Optional[object] = None
    #: rolling per-place tile-service-time baseline (created whenever
    #: metrics or tracing is on); publishes dpx10_straggler{place}
    #: gauges. See repro.obs.causal.StragglerDetector.
    straggler: Optional[object] = None
    _completions_lock: threading.Lock = field(default_factory=threading.Lock)
    conds: Dict[int, threading.Condition] = field(default_factory=dict)
    abort_event: threading.Event = field(default_factory=threading.Event)
    _abort_exc: Optional[DPX10Error] = None
    rngs: Dict[int, np.random.Generator] = field(default_factory=dict)
    # set by the runtime before run_threaded; the inline driver ignores it
    _engine: object = None

    def __post_init__(self) -> None:
        for pid in self.dist.place_ids:
            self.conds.setdefault(pid, threading.Condition())
            self.rngs.setdefault(
                pid, seeded_rng(self.config.seed, "scheduler", pid)
            )

    # -- completion counting ---------------------------------------------------
    def bump_completions(self) -> int:
        with self._completions_lock:
            self.completions += 1
            return self.completions

    # -- ready-list handling -----------------------------------------------------
    def push_ready(self, place_id: int, coord: Coord) -> None:
        """Enqueue a newly schedulable vertex at its home place.

        A dead home place is ignored: recovery will rebuild its state.
        """
        if not self.group.is_alive(place_id):
            return
        self.ready[place_id].append(coord)
        cond = self.conds.get(place_id)
        if cond is not None:
            with cond:
                cond.notify()

    def pop_ready(self, place_id: int) -> Optional[Coord]:
        try:
            return self.ready[place_id].popleft()
        except IndexError:
            return None

    # -- periodic snapshots (ft_mode="snapshot") -------------------------------------
    def take_snapshot(self) -> int:
        """Checkpoint every finished vertex to stable storage.

        Values are immutable once finished, so a fuzzy snapshot taken
        while other workers run is still a consistent prefix of the
        computation. Returns the number of cells checkpointed.
        """
        assert self.snapshots is not None
        cells = {}
        for pid in self.dist.place_ids:
            if not self.group.is_alive(pid):
                continue
            for coord, value in self.stores[pid].finished_items():
                cells[coord] = value
        self.snapshots.store(cells)
        return len(cells)

    # -- abort protocol (threaded engine) ------------------------------------------
    def record_abort(self, exc: DPX10Error) -> None:
        with self._completions_lock:
            if self._abort_exc is None:
                self._abort_exc = exc
        self.abort_event.set()
        for cond in self.conds.values():
            with cond:
                cond.notify_all()

    @property
    def abort_exc(self) -> Optional[DPX10Error]:
        return self._abort_exc


def execute_vertex(
    state: ExecutionState, coord: Coord, exec_place: int, notify: bool = True
) -> None:
    """Run one vertex end to end (gather deps, compute, store, notify).

    ``notify=False`` skips the anti-dependency indegree updates — used by
    the static-schedule driver, whose precomputed order makes them moot.
    """
    i, j = coord
    dag = state.dag
    nbytes = state.config.value_nbytes
    sanitizing = state.config.sanitize
    if state.chaos is not None:
        # slow-place throttle: a real (tiny) sleep at the execution place,
        # perturbing interleavings without touching any value
        state.chaos.on_execute(exec_place)
    t_start = state.trace.now() if state.trace is not None else 0.0

    declared = dag.get_dependency(i, j)
    deps = [d for d in declared if dag.is_active(d.i, d.j)]
    cache = state.caches[exec_place]
    vertices: List[Vertex] = []
    for d in deps:
        dep_home = state.dist.place_of(d.i, d.j)
        if sanitizing and not state.stores[dep_home].is_finished(d.i, d.j):
            # a declared dependency that has not finished means the
            # pattern's anti-dependency under-declares this edge and the
            # indegree bookkeeping released (i, j) too early
            raise _sanitize.race_on_unfinished(
                (i, j), (d.i, d.j), dep_home, exec_place
            )
        if dep_home == exec_place:
            value = state.stores[dep_home].get_result(d.i, d.j)
        else:
            hit, value = cache.get((d.i, d.j))
            if not hit:
                # remote fetch: may raise DeadPlaceException if the
                # dependency's home place failed
                value = state.stores[dep_home].get_result(d.i, d.j)
                state.network.record(dep_home, exec_place, nbytes)
                cache.put((d.i, d.j), value)
        vertices.append(Vertex(d.i, d.j, value))

    if sanitizing:
        with _sanitize.compute_guard(
            (i, j), ((d.i, d.j) for d in declared), exec_place
        ):
            result = state.app.compute(i, j, vertices)
    else:
        result = state.app.compute(i, j, vertices)

    home = state.dist.place_of(i, j)
    store = state.stores[home]
    store.set_result(i, j, result)
    if exec_place != home:
        state.network.record(exec_place, home, nbytes)
    store.mark_finished(i, j)

    if state.trace is not None:
        state.trace.record(
            TraceEvent(i, j, home, exec_place, t_start, state.trace.now())
        )

    with state._completions_lock:
        state.executed_by[exec_place] = state.executed_by.get(exec_place, 0) + 1
    completed = state.bump_completions()
    cfg = state.config
    if (
        cfg.ft_mode == "snapshot"
        and cfg.snapshot_interval > 0
        and completed % cfg.snapshot_interval == 0
    ):
        state.take_snapshot()
    if (
        cfg.on_progress is not None
        and cfg.progress_interval > 0
        and completed % cfg.progress_interval == 0
    ):
        cfg.on_progress(completed, state.total_active)
    if state.injector is not None:
        victims = state.injector.poll_completions(completed)
        if victims:
            # kill every place whose trigger fired (simultaneous node
            # failures take down all of them at once), then surface the
            # failure so the runtime enters recovery mode, as with
            # Resilient X10's dead-place signal
            for victim in victims:
                state.group.kill(victim)
                if state.chaos is not None:
                    state.chaos.record("kill")
            raise DeadPlaceException(victims[0])

    if notify:
        for a in dag.get_anti_dependency(i, j):
            if not dag.is_active(a.i, a.j):
                continue
            a_home = state.dist.place_of(a.i, a.j)
            if not state.group.is_alive(a_home):
                continue
            if state.stores[a_home].dec_indegree(a.i, a.j):
                state.push_ready(a_home, (a.i, a.j))


def try_steal(state: ExecutionState, thief: int) -> Optional[Coord]:
    """Steal a ready vertex for an idle place (``work_stealing`` only).

    Victim selection is longest-queue; the steal takes the *tail* of the
    victim's deque (the classic split: owners consume FIFO from the head,
    thieves take the most recently enqueued work from the tail). Returns
    ``None`` when there is nothing to steal.
    """
    if not state.config.work_stealing:
        return None
    best = None
    best_len = 0
    for pid in state.dist.place_ids:
        if pid == thief or not state.group.is_alive(pid):
            continue
        qlen = len(state.ready[pid])
        if qlen > best_len:
            best, best_len = pid, qlen
    if best is None:
        return None
    try:
        return state.ready[best].pop()
    except IndexError:  # raced with the owner; treat as a failed steal
        return None


def _choose_exec_place(state: ExecutionState, coord: Coord, home: int) -> int:
    dag = state.dag
    dep_homes = [
        state.dist.place_of(d.i, d.j)
        for d in dag.get_dependency(*coord)
        if dag.is_active(d.i, d.j)
    ]
    return state.strategy.choose_place(
        coord,
        home,
        dep_homes,
        state.group.alive_ids(),
        state.rngs[home],
        state.config.value_nbytes,
    )


def run_inline(state: ExecutionState) -> None:
    """Deterministic driver: round-robin one vertex per place per sweep.

    Raises :class:`DeadPlaceException` on an injected fault (the runtime
    recovers and calls back in) and :class:`PatternError` if the DAG
    deadlocks (unfinished vertices but nothing schedulable — a broken
    custom pattern).
    """
    place_ids = list(state.dist.place_ids)
    while True:
        progressed = False
        for pid in place_ids:
            if not state.group.is_alive(pid):
                continue
            coord = state.pop_ready(pid)
            if coord is None:
                coord = try_steal(state, pid)
                if coord is None:
                    continue
                # a stolen vertex executes at the thief
                execute_vertex(state, coord, pid)
                progressed = True
                continue
            progressed = True
            execute_vertex(state, coord, _choose_exec_place(state, coord, pid))
        alive_stores = [
            state.stores[pid] for pid in place_ids if state.group.is_alive(pid)
        ]
        if all(s.all_done() for s in alive_stores):
            return
        if not progressed:
            raise PatternError(
                "deadlock: unfinished vertices remain but none are schedulable "
                "(the pattern's dependencies/anti-dependencies are inconsistent)"
            )


def run_static(state: ExecutionState, order: List[Coord]) -> None:
    """Static-schedule driver: execute a precomputed topological order.

    An optimization extension ("sophisticated scheduling techniques" in
    the paper's future work): no ready lists, no indegree updates — the
    order already encodes every constraint. Cells finished before entry
    (recovery restores, inactive initialization) are skipped, which also
    makes the driver resumable after a fault.
    """
    for coord in order:
        home = state.dist.place_of(*coord)
        store = state.stores[home]
        if store.is_finished(*coord):
            continue
        execute_vertex(
            state, coord, _choose_exec_place(state, coord, home), notify=False
        )


def run_threaded(state: ExecutionState) -> None:
    """Concurrent driver: one worker activity per place.

    Each worker drains its own ready list until its *finished vertices
    counter* covers all local active vertices (the paper's termination
    rule). On any ``DeadPlaceException`` the observing worker records the
    fault and wakes everyone; all workers park, and the exception is
    re-raised here for the runtime's recovery loop.
    """
    from repro.apgas.engine import ExecutionEngine  # avoid import cycle at top

    engine: ExecutionEngine = state._engine  # type: ignore[attr-defined]

    stealing = state.config.work_stealing

    def all_work_done(own_store: VertexStore) -> bool:
        if not stealing:
            return own_store.all_done()
        # a stealing worker only retires once every alive place is done —
        # it may still be useful elsewhere after its own partition finishes
        return all(
            state.stores[p].all_done()
            for p in state.dist.place_ids
            if state.group.is_alive(p)
        )

    def worker(pid: int) -> None:
        store = state.stores[pid]
        cond = state.conds[pid]
        while not state.abort_event.is_set():
            stolen = False
            coord = state.pop_ready(pid)
            if coord is None and stealing:
                coord = try_steal(state, pid)
                stolen = coord is not None
            if coord is None:
                try:
                    if all_work_done(store):
                        return
                except DeadPlaceException as exc:
                    state.record_abort(exc)
                    return
                with cond:
                    cond.wait(timeout=_IDLE_WAIT_S)
                continue
            try:
                exec_place = (
                    pid if stolen else _choose_exec_place(state, coord, pid)
                )
                execute_vertex(state, coord, exec_place)
            except (DeadPlaceException, DependencyRaceError) as exc:
                # a race diagnostic must stop the whole run, not strand
                # the other workers waiting for this vertex forever
                state.record_abort(exc)
                return

    from repro.apgas.activity import Activity

    for pid in state.dist.place_ids:
        if state.group.is_alive(pid):
            engine.submit(Activity(pid, worker, (pid,)))
    engine.run_all()
    if state.abort_exc is not None:
        raise state.abort_exc
