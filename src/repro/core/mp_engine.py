"""The multiprocessing engine: places as real OS processes.

X10 realizes places as processes; the ``inline``/``threaded`` engines fold
them into one Python process. This engine does it for real:

* every place is a ``multiprocessing.Process`` holding its partition of
  the vertex matrix in its own address space;
* cross-place dependency values travel over one of two data planes. The
  default for numeric-dtype apps is **zero-copy shared memory**: the
  master creates value/finished planes in ``multiprocessing.
  shared_memory`` segments (lifecycle owned by :mod:`repro.core.shm`),
  workers attach them as NumPy views, read owned cells and halo strips
  directly, and write results in place — the pipes stay as the control
  plane (level batches, replies, stats). Object-dtype apps, spilled
  stores, unsupported platforms and runs under *message* chaos fall back
  to the original pickled pipe transport (so
  :class:`~repro.chaos.network.ChaosPipe` semantics are preserved); the
  network accounting records the true transfer sizes on both planes;
* a fault is a genuine ``SIGKILL`` of a place process, detected by the
  master, and recovery reassigns the dead partition to survivors and
  recomputes it — the paper's section VI-D protocol, against a real
  process corpse. In shm mode the plane regions owned by the dead place
  are zeroed and re-materialized by the recompute drain before any
  consumer reads them.

Execution is **level-synchronous**: the master groups vertices by
topological depth and drives one level at a time; within a level every
place computes its cells in parallel (true multi-core parallelism — no
GIL across processes). This is a bulk-synchronous rendering of the same
DAG; per-vertex scheduling strategies and the FIFO cache are inline/
threaded-engine concepts and do not apply here.

**Message hardening.** Every request carries a monotone per-pipe sequence
number and every reply echoes it. Workers deduplicate by sequence number
— a request seen twice (a duplicated or retried message) is answered from
a small reply cache without re-executing — and the master waits on a
per-message timeout, resending the *same* envelope with exponential
backoff before declaring the place dead. Replies whose sequence number
does not match the request in flight are stale duplicates and are
discarded. On a healthy pipe none of this machinery fires (the master
blocks exactly as a plain ``recv`` would); under ``repro.chaos`` message
chaos (drop / duplicate / delay / reorder injected by
:class:`~repro.chaos.network.ChaosPipe`) it is what keeps the run exact.

Selected with ``DPX10Config(engine="mp")``. On the pickled fallback,
sizes up to ~10^5 vertices are practical (the per-level pickling
round-trip dominates beyond that); the shm plane removes that wall —
tiled runs ship tile *indices* over the pipe and compute whole tiles
against the plane with the app's vectorized kernel. Because apps and
DAGs cross the pipe, both must be picklable — module-level classes, not
closures or test-local definitions.
"""

from __future__ import annotations

import os
import pickle
import signal
import time
import multiprocessing as mp
from collections import defaultdict
from collections.abc import Mapping
from contextlib import nullcontext
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.apgas.failure import FaultInjector, FaultPlan
from repro.core.api import DPX10App, Vertex
from repro.core.config import DPX10Config
from repro.core.dag import Dag
from repro.core.trace import ExecutionTrace, Span, TraceEvent
from repro.errors import (
    AllPlacesDeadError,
    DPX10Error,
    PlaceZeroDeadError,
)
from repro.obs.metrics import DEFAULT_BYTES_BUCKETS, NULL_REGISTRY, MetricsRegistry
from repro.util.logging import get_logger

__all__ = ["run_mp", "MPRunStats", "PlaneResults"]

logger = get_logger("core.mp_engine")

Coord = Tuple[int, int]

_JOIN_TIMEOUT_S = 10.0
#: worker-side reply cache depth: how many past sequence numbers a place
#: can still answer idempotently (covers any realistic retry window —
#: the master has at most one request in flight per pipe)
_REPLY_CACHE = 64


class MPRunStats:
    """Accounting the master collects during an mp-engine run."""

    def __init__(self) -> None:
        self.completions = 0
        self.network_bytes = 0
        self.network_messages = 0
        #: request retransmissions after a reply timeout (chaos drops, or
        #: a genuinely slow place); 0 on a healthy run
        self.msg_retries = 0
        self.recoveries = 0
        self.per_place_executed: Dict[int, int] = {}
        self.levels = 0
        self.final_alive_places = 0
        #: compute-loop seconds measured inside each surviving place
        #: process (shipped back as a metrics snapshot on the reply
        #: channel at collect time; dead places' accounting is lost)
        self.worker_compute_seconds: Dict[int, float] = {}
        #: this run leased its place processes from a warm pool
        #: (config.place_pool) instead of forking them
        self.warm_start = False
        #: dead places restarted in place from pooled spares mid-run
        #: (the job keeps its distribution; only the lost cells recompute)
        self.pool_restarts = 0


class _ShmWorker:
    """Worker-side view of the shared-memory data plane.

    Attaches the value/finished planes the master created, coarsens the
    DAG locally when the run is tiled (tile geometry is deterministic, so
    shipping the tile shape is enough), and serves the ``cells`` /
    ``tiles`` requests by reading dependencies straight off the plane and
    writing results in place. The only pipe traffic left is the unit
    index lists and the tiny ``done`` acknowledgements.

    Accounting: reads of cells homed on *other* places are the halo
    traffic the pipes used to carry; they feed
    ``dpx10_mp_shm_read_{bytes,batches}_total`` (folded into the master's
    network stats at collect time) and the ``dpx10_halo_fetch_bytes``
    histogram under the ``shm`` transport label.
    """

    def __init__(
        self,
        place_id: int,
        app: DPX10App,
        dag: Dag,
        meta: Dict[str, Any],
        registry: MetricsRegistry,
    ) -> None:
        from repro.core import shm

        self.place_id = place_id
        self.app = app
        self.dag = dag
        shape = meta["shape"]
        self.values = shm.attach_array(meta["values"], shape, meta["dtype"])
        self.finished = shm.attach_array(meta["finished"], shape, np.uint8)
        #: unit-granular owner map (tile grid or cell grid, -1 = inactive);
        #: Dist objects hold closures and cannot cross the pipe, so the
        #: master ships this resolved array instead (and again on redist)
        self.owners = meta["owners"]
        self.itemsize = self.values.dtype.itemsize
        self.tiled = None
        self.kernel_ok = False
        self.autokernel = None
        if meta["tile_shape"] is not None:
            self.tiled = dag.coarsen(*meta["tile_shape"])
            self.kernel_ok = (
                self.tiled.stencil_mode
                and type(app).compute_tile is not DPX10App.compute_tile
            )
            spec = meta.get("autokernel")
            if spec is not None:
                # generated kernels close over compiled code objects and
                # cannot cross the pipe; the master ships its classified
                # spec instead, and each place re-emits from it — no
                # AST pipeline, no numeric probes, just codegen
                from repro.analysis.codegen import kernel_from_spec

                self.autokernel = kernel_from_spec(spec, app, dag)
        self.read_bytes = registry.counter(
            "dpx10_mp_shm_read_bytes_total",
            "bytes read from the shared-memory plane for remote-homed "
            "dependencies (the halo traffic the pipes used to carry)",
            ("place",),
        ).labels(place_id)
        self.read_batches = registry.counter(
            "dpx10_mp_shm_read_batches_total",
            "batched shared-memory halo reads (one per producing place "
            "per unit batch)",
            ("place",),
        ).labels(place_id)
        self.halo_bytes = registry.histogram(
            "dpx10_halo_fetch_bytes",
            "bytes moved per batched halo fetch",
            ("transport",),
            buckets=DEFAULT_BYTES_BUCKETS,
        ).labels("shm")

    def set_owners(self, owners: np.ndarray) -> None:
        """Recovery re-homed the units: track ownership for accounting."""
        self.owners = owners

    def _record_remote(self, ncells: int, nproducers: int) -> None:
        if ncells:
            nbytes = ncells * self.itemsize
            self.read_bytes.inc(nbytes)
            self.read_batches.inc(nproducers)
            self.halo_bytes.observe(nbytes)

    def compute_cells(
        self, cells: Sequence[Coord], sink: Optional[list] = None
    ) -> int:
        """Per-cell compute against the plane (the untiled unit).

        ``sink`` (tracing on) receives one ``(i, j, home, t0, t1, cells,
        tile)`` record per cell with raw ``perf_counter`` stamps; the
        master normalizes them onto its own timeline at merge time.
        """
        app, dag = self.app, self.dag
        values, finished = self.values, self.finished
        owners = self.owners
        remote = 0
        producers: Set[int] = set()
        for i, j in cells:
            t0 = time.perf_counter() if sink is not None else 0.0
            verts: List[Vertex] = []
            for d in dag.get_dependency(i, j):
                if not dag.is_active(d.i, d.j):
                    continue
                verts.append(Vertex(d.i, d.j, values[d.i, d.j].item()))
                owner = int(owners[d.i, d.j])
                if owner != self.place_id:
                    remote += 1
                    producers.add(owner)
            values[i, j] = app.compute(i, j, verts)
            finished[i, j] = 1
            if sink is not None:
                sink.append(
                    (i, j, self.place_id, t0, time.perf_counter(), 1, None)
                )
        self._record_remote(remote, len(producers))
        return len(cells)

    def compute_tiles(
        self, tiles: Sequence[Coord], sink: Optional[list] = None
    ) -> int:
        """Whole-tile compute against the plane (the tiled unit).

        Mirrors :func:`repro.core.tiling.execute_tile` semantics exactly:
        the kernel window starts as zeros with only the halo strips
        scattered in (never a raw plane copy, so stale successor values
        after a recovery can never leak into a window), and the per-cell
        fallback reads in-tile values from a local dict and out-of-tile
        values from the plane.
        """
        tiled = self.tiled
        assert tiled is not None
        app = self.app
        base = tiled.base
        grid = tiled.grid
        values, finished = self.values, self.finished
        owners = self.owners
        total = 0
        for ti, tj in tiles:
            t_tile0 = time.perf_counter() if sink is not None else 0.0
            rows, cols = tiled.cells_of(ti, tj)
            n = len(rows)
            if n == 0:
                continue
            hrows, hcols = tiled.halo_of(ti, tj)
            if len(hrows):
                # halo accounting at tile granularity: a strip cell is
                # homed where its tile's origin lives
                strip_owners = owners[hrows // grid.tile_h, hcols // grid.tile_w]
                remote_mask = strip_owners != self.place_id
                producers = set(np.unique(strip_owners[remote_mask]).tolist())
                self._record_remote(
                    int(np.count_nonzero(remote_mask)), len(producers)
                )
            r0, r1, c0, c1 = grid.bounds(ti, tj)
            done = False
            autokernel = self.autokernel
            if autokernel is not None or self.kernel_ok:
                if autokernel is not None:
                    pt, pb, pl, pr = (
                        max(a, d) for a, d in zip(autokernel.pads, tiled.pads)
                    )
                else:
                    pt, pb, pl, pr = tiled.pads
                wr0, wr1 = max(0, r0 - pt), min(base.height, r1 + pb)
                wc0, wc1 = max(0, c0 - pl), min(base.width, c1 + pr)
                window = np.zeros((wr1 - wr0, wc1 - wc0), dtype=values.dtype)
                if len(hrows):
                    if autokernel is not None:
                        # wider generated pads can push declared-halo cells
                        # outside this window; the footprint box bounds all
                        # reads, so out-of-box strips are provably unread
                        ins = (
                            (hrows >= wr0)
                            & (hrows < wr1)
                            & (hcols >= wc0)
                            & (hcols < wc1)
                        )
                        window[hrows[ins] - wr0, hcols[ins] - wc0] = values[
                            hrows[ins], hcols[ins]
                        ]
                    else:
                        window[hrows - wr0, hcols - wc0] = values[hrows, hcols]
                kernel_fn = (
                    autokernel.fn if autokernel is not None else app.compute_tile
                )
                if kernel_fn(
                    r0, c0, window, r0 - wr0, c0 - wc0, r1 - r0, c1 - c0
                ):
                    values[rows, cols] = window[rows - wr0, cols - wc0]
                    done = True
            if not done:
                local: Dict[Coord, Any] = {}
                for i, j in zip(rows.tolist(), cols.tolist()):
                    verts = []
                    for d in base.get_dependency(i, j):
                        if not base.is_active(d.i, d.j):
                            continue
                        key = (d.i, d.j)
                        if key in local:
                            verts.append(Vertex(d.i, d.j, local[key]))
                        else:
                            verts.append(
                                Vertex(d.i, d.j, values[d.i, d.j].item())
                            )
                    local[(i, j)] = app.compute(i, j, verts)
                values[rows, cols] = [
                    local[c] for c in zip(rows.tolist(), cols.tolist())
                ]
            finished[rows, cols] = 1
            total += n
            if sink is not None:
                sink.append(
                    (
                        r0, c0, self.place_id,
                        t_tile0, time.perf_counter(), n, (ti, tj),
                    )
                )
        return total


class _WorkerInstruments:
    """One run's worth of worker-side accounting.

    Rebuilt on every ``init`` (and ``reset``): a pooled worker serves
    many runs back to back, and each run's master merges the ``stats``
    snapshot into its own registry — carrying counters across runs would
    double-count every earlier job into every later snapshot.
    """

    def __init__(self, place_id: int) -> None:
        self.registry = MetricsRegistry()
        self.compute_seconds = self.registry.counter(
            "dpx10_mp_worker_compute_seconds_total",
            "seconds spent in the compute loop, per place process",
            ("place",),
        ).labels(place_id)
        self.cells_computed = self.registry.counter(
            "dpx10_mp_worker_cells_total",
            "cells computed per place process",
            ("place",),
        ).labels(place_id)
        self.levels_served = self.registry.counter(
            "dpx10_mp_worker_levels_total",
            "level batches served per place process",
            ("place",),
        ).labels(place_id)
        self.dedup_hits = self.registry.counter(
            "dpx10_mp_worker_dedup_total",
            "duplicate requests answered from the reply cache, per place",
            ("place",),
        ).labels(place_id)


def _worker_main(place_id: int, conn) -> None:
    """The place process: owns values for its coords, serves the master.

    Every incoming message is ``(seq, kind, *payload)``; every reply is
    ``(seq, *body)``. Replies for the last :data:`_REPLY_CACHE` sequence
    numbers are cached so a retried or duplicated request is answered
    idempotently — in particular a duplicated ``compute`` never runs the
    user's kernel twice. ``cells``/``tiles`` (the shm data plane) get the
    same guarantee: a duplicated request is answered from the cache, and
    since a unit's recompute is deterministic even a lost-reply rerun
    would write identical bytes.

    **Pooled reuse.** A worker forked by :class:`repro.serve.pool.
    PlacePool` outlives any single run: ``init`` may carry a sixth
    element, the *logical* place id this worker plays for the leasing
    run (the forked ``place_id`` is just a pool serial). Each ``init``
    clears run state — values, shm attachments, instruments — so runs
    are independent; ``reset`` does the same without starting a new run
    (the pool sends it on release so idle workers hold no job data).

    **Trace context.** ``init`` may carry a seventh element, a trace
    context dict ``{"trace_id", "epoch0"}``. When present the worker
    buffers per-unit compute events with raw ``perf_counter`` stamps and
    computes its master-clock offset from ``epoch0`` (the master's wall
    clock at its trace's t=0 — valid because mp places share a host);
    the ``trace`` request ships ``(offset, events)`` back for the master
    to normalize onto its own timeline at merge time.
    """
    app: Optional[DPX10App] = None
    dag: Optional[Dag] = None
    values: Dict[Coord, Any] = {}
    shm_worker: Optional[_ShmWorker] = None
    replied: Dict[int, tuple] = {}
    ins = _WorkerInstruments(place_id)
    trace_buf: Optional[List[tuple]] = None
    trace_offset = 0.0

    def _clear_run_state() -> None:
        nonlocal values, shm_worker, ins, trace_buf, trace_offset
        values = {}
        if shm_worker is not None:
            from repro.core import shm

            shm.detach_all()
            shm_worker = None
        ins = _WorkerInstruments(place_id)
        trace_buf = None
        trace_offset = 0.0

    try:
        while True:
            msg = conn.recv()
            seq, kind = msg[0], msg[1]
            cached = replied.get(seq)
            if cached is not None:
                # a duplicate delivery (chaos dup, or a master retry whose
                # original did arrive): resend the cached reply verbatim
                ins.dedup_hits.inc()
                conn.send(cached)
                if kind == "stop":
                    return
                continue
            if kind == "init":
                _, _, app, dag, meta = msg[:5]
                if len(msg) > 5 and msg[5] is not None:
                    place_id = msg[5]
                _clear_run_state()
                if len(msg) > 6 and msg[6] is not None:
                    # trace context: buffer events, and anchor this
                    # process's perf_counter to the master trace timeline
                    # through the shared wall clock (same host)
                    trace_buf = []
                    trace_offset = (
                        time.time() - msg[6]["epoch0"]
                    ) - time.perf_counter()
                shm_worker = (
                    _ShmWorker(place_id, app, dag, meta, ins.registry)
                    if meta is not None
                    else None
                )
                reply = (seq, "ok")
            elif kind == "reset":
                app = dag = None
                _clear_run_state()
                reply = (seq, "ok")
            elif kind == "cells":
                _, _, cells = msg
                assert shm_worker is not None
                t0 = time.perf_counter()
                ncomp = shm_worker.compute_cells(cells, sink=trace_buf)
                elapsed = time.perf_counter() - t0
                ins.compute_seconds.inc(elapsed)
                ins.cells_computed.inc(ncomp)
                ins.levels_served.inc()
                reply = (seq, "done", ncomp, elapsed)
            elif kind == "tiles":
                _, _, tile_list = msg
                assert shm_worker is not None
                t0 = time.perf_counter()
                ncomp = shm_worker.compute_tiles(tile_list, sink=trace_buf)
                elapsed = time.perf_counter() - t0
                ins.compute_seconds.inc(elapsed)
                ins.cells_computed.inc(ncomp)
                ins.levels_served.inc()
                reply = (seq, "done", ncomp, elapsed)
            elif kind == "redist":
                _, _, new_owners = msg
                assert shm_worker is not None
                shm_worker.set_owners(new_owners)
                reply = (seq, "ok")
            elif kind == "compute":
                # compute the given cells; boundary holds remote dep values
                _, _, cells, boundary = msg
                assert app is not None and dag is not None
                t0 = time.perf_counter()
                for i, j in cells:
                    tc0 = time.perf_counter() if trace_buf is not None else 0.0
                    deps = [
                        d
                        for d in dag.get_dependency(i, j)
                        if dag.is_active(d.i, d.j)
                    ]
                    verts = []
                    for d in deps:
                        key = (d.i, d.j)
                        value = values.get(key, boundary.get(key))
                        verts.append(Vertex(d.i, d.j, value))
                    values[(i, j)] = app.compute(i, j, verts)
                    if trace_buf is not None:
                        trace_buf.append(
                            (i, j, place_id, tc0, time.perf_counter(), 1, None)
                        )
                elapsed = time.perf_counter() - t0
                ins.compute_seconds.inc(elapsed)
                ins.cells_computed.inc(len(cells))
                ins.levels_served.inc()
                reply = (seq, "done", len(cells), elapsed)
            elif kind == "fetch":
                _, _, coords = msg
                reply = (seq, "values", {c: values[c] for c in coords})
            elif kind == "collect":
                reply = (seq, "values", dict(values))
            elif kind == "stats":
                reply = (seq, "stats", ins.registry.collect())
            elif kind == "trace":
                # ship the buffered events with the clock offset; the
                # master adds the offset to every stamp at merge time
                reply = (seq, "trace", trace_offset, trace_buf or [])
                trace_buf = [] if trace_buf is not None else None
            elif kind == "stop":
                conn.send((seq, "bye"))
                return
            else:  # pragma: no cover - protocol guard
                conn.send((seq, "error", f"unknown message {kind!r}"))
                return
            replied[seq] = reply
            if len(replied) > _REPLY_CACHE:
                del replied[min(replied)]
            conn.send(reply)
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - teardown races
        return
    finally:
        if shm_worker is not None:
            from repro.core import shm

            shm.detach_all()


class _PlaceProc:
    """Master-side handle for one place process.

    Owns the per-pipe sequence counter and the retry-with-backoff reply
    loop. With ``message=None`` (no chaos) the pipe is raw and
    :meth:`recv_reply` blocks exactly like a plain ``recv``; with a
    :class:`~repro.chaos.schedule.MessageChaos` the connection is wrapped
    in a :class:`~repro.chaos.network.ChaosPipe` and the timeout/retry
    budget from the chaos block is enforced per message.
    """

    def __init__(
        self,
        place_id: int,
        ctx,
        *,
        message=None,
        chaos_seed: int = 0,
        record_event: Optional[Callable[[str], None]] = None,
        on_retry: Optional[Callable[[], None]] = None,
    ) -> None:
        self.place_id = place_id
        self.raw, child = ctx.Pipe()
        if message is not None:
            from repro.chaos.network import DROPPED, ChaosPipe

            self.conn = ChaosPipe(
                self.raw,
                message,
                seed=chaos_seed * 1_000_003 + place_id,
                record_event=record_event,
            )
            self._dropped: object = DROPPED
            self.timeout_s: Optional[float] = message.timeout_s
            self.max_retries = message.max_retries
            self.backoff_s = message.backoff_s
        else:
            self.conn = self.raw
            self._dropped = object()  # never matches a real reply
            self.timeout_s = None
            self.max_retries = 1
            self.backoff_s = 0.0
        self._on_retry = on_retry or (lambda: None)
        self._seq = 0
        self._pending: Optional[tuple] = None
        self.proc = ctx.Process(
            target=_worker_main, args=(place_id, child), daemon=True
        )
        self.proc.start()
        child.close()
        self.alive = True

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def bind_run(self, on_retry: Optional[Callable[[], None]] = None) -> None:
        """Repoint the retry callback at the run now leasing this handle.

        Pooled handles outlive any single run; the sequence counter and
        reply cache deliberately persist (they are per-pipe, not
        per-run), only the accounting callback changes hands.
        """
        self._on_retry = on_retry or (lambda: None)

    def _died(self, exc: BaseException) -> None:
        self.alive = False
        raise DPX10Error(f"place {self.place_id} process died") from exc

    # -- the hardened request/reply protocol -----------------------------------
    def send_request(self, body: tuple) -> None:
        """Send one sequence-numbered request (reply via recv_reply)."""
        msg = (self._next_seq(),) + body
        self._pending = msg
        try:
            self.conn.send(msg)
        except (BrokenPipeError, OSError) as exc:
            self._died(exc)

    def recv_reply(self) -> tuple:
        """Await the reply to the last request; retry with backoff.

        Replies carrying a stale sequence number (late duplicates of an
        earlier exchange) are discarded. A chaos-dropped reply surfaces
        as the DROPPED sentinel and is treated as silence, feeding the
        timeout path. After ``max_retries`` timed-out attempts the place
        is declared dead.
        """
        assert self._pending is not None, "recv_reply without send_request"
        seq = self._pending[0]
        attempts = 0
        while True:
            if self.timeout_s is None:
                # chaos-free: block forever, as a plain pipe recv would
                try:
                    reply = self.conn.recv()
                except (EOFError, OSError) as exc:
                    self._died(exc)
                if reply is self._dropped or reply[0] != seq:
                    continue
                self._pending = None
                return tuple(reply[1:])
            deadline = time.monotonic() + self.timeout_s
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    if not self.conn.poll(remaining):
                        break
                    reply = self.conn.recv()
                except (EOFError, OSError) as exc:
                    self._died(exc)
                if reply is self._dropped or reply[0] != seq:
                    continue  # lost on the wire / stale duplicate
                self._pending = None
                return tuple(reply[1:])
            attempts += 1
            if attempts >= self.max_retries or not self.proc.is_alive():
                self._died(
                    TimeoutError(
                        f"no reply from place {self.place_id} after "
                        f"{attempts} attempts"
                    )
                )
            # resend the SAME envelope: the worker's reply cache makes
            # the retry idempotent whichever side lost the message
            self._on_retry()
            time.sleep(self.backoff_s * (2 ** (attempts - 1)))
            try:
                self.conn.send(self._pending)
            except (BrokenPipeError, OSError) as exc:
                self._died(exc)

    def request(self, body: tuple) -> tuple:
        """Send and await a reply; raises DPX10Error if the place died."""
        self.send_request(body)
        return self.recv_reply()

    # -- lifecycle ---------------------------------------------------------------
    def kill(self) -> None:
        if self.proc.pid is not None:
            os.kill(self.proc.pid, signal.SIGKILL)
        self.proc.join(timeout=_JOIN_TIMEOUT_S)
        self.alive = False

    def stop(self) -> None:
        if not self.alive:
            return
        try:
            # teardown bypasses the chaos wrapper: stop must not be
            # dropped, and stale duplicate replies are drained here
            seq = self._next_seq()
            self.raw.send((seq, "stop"))
            while True:
                reply = self.raw.recv()
                if reply[0] == seq:
                    break
        except (BrokenPipeError, EOFError, OSError):
            pass
        self.proc.join(timeout=_JOIN_TIMEOUT_S)
        self.alive = False


def _acquire_procs(
    config: DPX10Config,
    ctx,
    *,
    message=None,
    chaos_seed: int = 0,
    record_event: Optional[Callable[[str], None]] = None,
    on_retry: Optional[Callable[[], None]] = None,
):
    """Place processes for one run: pool-leased (warm) or freshly forked.

    Returns ``(procs, pool)`` where ``procs`` maps logical place id →
    handle and ``pool`` is the :class:`repro.serve.pool.PlacePool` the
    handles must be released to, or ``None`` when the run owns them.
    Runs under *message* chaos always fork their own processes — the
    ChaosPipe wrapper is installed at fork time, so a pre-forked worker
    cannot serve them. Leased handles are keyed ``0..n-1`` like fresh
    ones; the init envelope's trailing place-id field relabels each
    worker to the logical place it plays for this run.
    """
    pool = config.place_pool
    if pool is not None and message is None:
        procs = pool.lease(config.nplaces)
        for proc in procs.values():
            proc.bind_run(on_retry)
        return procs, pool
    procs = {
        p: _PlaceProc(
            p,
            ctx,
            message=message,
            chaos_seed=chaos_seed,
            record_event=record_event,
            on_retry=on_retry,
        )
        for p in range(config.nplaces)
    }
    return procs, None


def _release_procs(procs: Dict[int, "_PlaceProc"], pool) -> None:
    """Return leased processes to their pool, or stop owned ones."""
    if pool is not None:
        pool.release(list(procs.values()))
    else:
        for proc in procs.values():
            proc.stop()


def _tphase(trace: Optional[ExecutionTrace], name: str, category: str = "phase"):
    """A master-side trace span, or a no-op when the run is untraced."""
    return trace.phase(name, category) if trace is not None else nullcontext()


def _trace_ctx(trace: Optional[ExecutionTrace]) -> Optional[Dict[str, Any]]:
    """The context dict the init envelope propagates to worker processes."""
    if trace is None:
        return None
    return {"trace_id": trace.trace_id, "epoch0": trace.epoch0}


def _set_trace_meta(
    trace: Optional[ExecutionTrace], config: DPX10Config, dag: Dag, tiled
) -> None:
    """Stash the dependency facts repro.obs.causal rebuilds edges from."""
    if trace is None:
        return
    if tiled is not None:
        trace.meta["tile_shape"] = list(config.tile_shape)
        trace.meta["grid"] = [tiled.grid.nti, tiled.grid.ntj]
        if tiled.stencil_mode:
            trace.meta["tile_offsets"] = [list(o) for o in tiled.tile_offsets]
    else:
        offs = getattr(dag, "offsets", None)
        if offs:
            trace.meta["offsets"] = [list(o) for o in offs]


def _merge_worker_trace(trace: ExecutionTrace, proc: "_PlaceProc") -> None:
    """Pull one worker's buffered events, normalized onto the master clock.

    The worker measured against its own ``perf_counter`` base; the init
    envelope's ``epoch0`` let it compute the master-timeline offset, so
    here each stamp just shifts by that offset (the satellite fix for
    cross-process span timestamps).
    """
    reply = proc.request(("trace",))
    if not reply or reply[0] != "trace":
        return
    offset = reply[1]
    for i, j, home, t0, t1, ncells, tile in reply[2]:
        trace.record(
            TraceEvent(
                i, j, home, home, t0 + offset, t1 + offset,
                tile=tuple(tile) if tile is not None else None,
                cells=ncells,
            )
        )


def _topological_levels(dag: Dag) -> List[List[Coord]]:
    """Group active cells by topological depth (Kahn by generations)."""
    active = [(i, j) for i, j in dag.region if dag.is_active(i, j)]
    active_set = set(active)
    indeg: Dict[Coord, int] = {}
    for i, j in active:
        indeg[(i, j)] = sum(
            1 for d in dag.get_dependency(i, j) if (d.i, d.j) in active_set
        )
    frontier = [c for c in active if indeg[c] == 0]
    levels: List[List[Coord]] = []
    done = 0
    while frontier:
        levels.append(frontier)
        done += len(frontier)
        nxt: List[Coord] = []
        for i, j in frontier:
            for a in dag.get_anti_dependency(i, j):
                key = (a.i, a.j)
                if key in indeg:
                    indeg[key] -= 1
                    if indeg[key] == 0:
                        nxt.append(key)
        frontier = nxt
    if done != len(active):
        raise DPX10Error(
            f"only {done} of {len(active)} vertices reachable: cyclic pattern"
        )
    return levels


def _publish_master_metrics(registry: MetricsRegistry, stats: MPRunStats) -> None:
    """Record the master-side accounting as named instruments."""
    registry.counter(
        "dpx10_net_messages_total", "cross-place messages relayed by the master"
    ).set(stats.network_messages)
    registry.counter(
        "dpx10_net_bytes_total", "cross-place bytes relayed by the master"
    ).set(stats.network_bytes)
    registry.counter(
        "dpx10_msg_retries_total",
        "message retransmissions (timeouts / modelled drops)",
    ).set(stats.msg_retries)
    registry.counter(
        "dpx10_completions_total", "vertex completions (monotone across recoveries)"
    ).set(stats.completions)
    executed = registry.counter(
        "dpx10_vertices_computed_total",
        "vertices computed per place",
        ("place",),
    )
    for p, n in sorted(stats.per_place_executed.items()):
        executed.labels(p).set(n)
    registry.gauge(
        "dpx10_places_alive", "place processes alive at run end"
    ).set(stats.final_alive_places)
    registry.counter(
        "dpx10_mp_levels_total", "bulk-synchronous levels driven by the master"
    ).set(stats.levels)
    registry.counter(
        "dpx10_recoveries_total",
        "fault recoveries performed",
        ("mechanism",),
    ).labels("recovery").set(stats.recoveries)


class PlaneResults(Mapping):
    """Result mapping backed by copies of the shm value/finished planes.

    Duck-compatible with the ``{(i, j): value}`` dict the pickled path
    returns — membership means "finished", lookups return Python scalars
    — plus :meth:`as_bulk`, the vectorized gather the runtime hands to
    :class:`~repro.core.dag.ResultView` so ``Dag.to_array`` needs no
    per-cell loop.
    """

    def __init__(self, values: np.ndarray, finished: np.ndarray) -> None:
        self._values = values
        self._finished = finished  # bool mask

    def __getitem__(self, key: Coord) -> Any:
        i, j = key
        h, w = self._finished.shape
        if not (0 <= i < h and 0 <= j < w) or not self._finished[i, j]:
            raise KeyError(key)
        return self._values[i, j].item()

    def __contains__(self, key: object) -> bool:
        try:
            i, j = key  # type: ignore[misc]
        except (TypeError, ValueError):
            return False
        h, w = self._finished.shape
        return 0 <= i < h and 0 <= j < w and bool(self._finished[i, j])

    def __iter__(self):
        for i, j in np.argwhere(self._finished):
            yield (int(i), int(j))

    def __len__(self) -> int:
        return int(np.count_nonzero(self._finished))

    def as_bulk(self, fill: Any, dtype: Any) -> np.ndarray:
        """``ResultView`` bulk gather: full matrix, ``fill`` where unfinished."""
        out = np.full(self._values.shape, fill, dtype=dtype or object)
        out[self._finished] = self._values[self._finished]
        return out


def _shm_eligible(app: DPX10App, config: DPX10Config, chaos) -> bool:
    """Whether this run may use the shared-memory data plane.

    Opt-out (``shm=False``) wins; otherwise the plane needs a numeric
    dtype (object values cannot live in a flat segment), no disk
    spilling, no *message* chaos (ChaosPipe perturbs pipe payloads — the
    data must stay on the pipes for those semantics to mean anything),
    and a platform where segments actually work.
    """
    if config.shm is False:
        return False
    if app.value_dtype is None:
        return False
    if config.spill_dir is not None:
        return False
    if chaos is not None and chaos.message is not None:
        return False
    from repro.core.shm import shm_supported

    return shm_supported()


def run_mp(
    app: DPX10App,
    dag: Dag,
    config: DPX10Config,
    fault_plans: Sequence[FaultPlan] = (),
    registry: MetricsRegistry = NULL_REGISTRY,
    chaos=None,
    trace: Optional[ExecutionTrace] = None,
    straggler=None,
) -> Tuple[Mapping, MPRunStats]:
    """Execute the application on real place processes.

    Returns the complete ``{coord: value}`` result mapping plus run
    stats — a plain dict from the pickled transport, a
    :class:`PlaneResults` from the shared-memory one. Each place process
    keeps its own metrics registry; at gather time the master requests a
    snapshot over the reply channel and merges it into ``registry``
    (counters add, histograms add bucket-wise), so per-process
    accounting survives the address-space boundary.

    ``chaos`` is an optional :class:`~repro.chaos.controller.
    ChaosController`: its kill plans merge into the fault injector, its
    recovery-kill triggers are polled between recovery redo batches, its
    throttles slow a place's level batches, and its message block wraps
    every master-side pipe in a :class:`~repro.chaos.network.ChaosPipe`
    (which is also what forces such runs onto the pickled transport).

    ``trace`` (config.trace) collects master-side phase spans plus the
    worker-side per-unit events shipped back over the ``trace`` request,
    normalized onto the master timeline. ``straggler`` is an optional
    :class:`repro.obs.causal.StragglerDetector` fed each place's level
    service time (worker-measured elapsed plus master-side chaos
    throttle sleep, which the worker cannot see).
    """
    if _shm_eligible(app, config, chaos):
        return _run_mp_shm(
            app, dag, config, fault_plans, registry, chaos,
            trace=trace, straggler=straggler,
        )
    return _run_mp_pipes(
        app, dag, config, fault_plans, registry, chaos,
        trace=trace, straggler=straggler,
    )


def _run_mp_pipes(
    app: DPX10App,
    dag: Dag,
    config: DPX10Config,
    fault_plans: Sequence[FaultPlan] = (),
    registry: MetricsRegistry = NULL_REGISTRY,
    chaos=None,
    trace: Optional[ExecutionTrace] = None,
    straggler=None,
) -> Tuple[Dict[Coord, Any], MPRunStats]:
    """The pickled pipe transport: values travel as pipe payloads."""
    ctx = mp.get_context("fork" if hasattr(os, "fork") else "spawn")
    stats = MPRunStats()
    tiled = dag.coarsen(*config.tile_shape) if config.tiling_enabled else None
    # worker events on this transport are per-cell even when tiled, so
    # the causal layer links them by the cell-level offsets
    _set_trace_meta(trace, config, dag, None)
    with _tphase(trace, "schedule"):
        if tiled is None:
            levels = _topological_levels(dag)
        else:
            # tile-granular: level-synchronize over the coarsened DAG, then
            # expand each tile to its cells in intra-tile wavefront order.
            # Tiles sharing a level have no tile edge, so every cross-tile
            # dependency resolves in an earlier level; in-tile dependencies
            # resolve because the worker computes cells in message order
            levels = []
            for tile_level in _topological_levels(tiled):
                cells: List[Coord] = []
                for t in tile_level:
                    rows, cols = tiled.cells_of(*t)
                    cells.extend(zip(rows.tolist(), cols.tolist()))
                levels.append(cells)
    stats.levels = len(levels)
    total_active = sum(len(lv) for lv in levels)
    all_plans = list(fault_plans)
    if chaos is not None:
        all_plans += chaos.fault_plans()
    injector = FaultInjector(all_plans, total_active) if all_plans else None

    message = chaos.message if chaos is not None else None
    record_event = chaos.record if chaos is not None else None

    def on_retry() -> None:
        stats.msg_retries += 1

    with _tphase(trace, "lease places"):
        procs, pool = _acquire_procs(
            config,
            ctx,
            message=message,
            chaos_seed=chaos.schedule.seed if chaos is not None else 0,
            record_event=record_event,
            on_retry=on_retry,
        )
    stats.warm_start = pool is not None
    trace_ctx = _trace_ctx(trace)
    try:
        alive = sorted(procs)

        def home_of(c: Coord, d) -> int:
            # tiled runs own cells at tile granularity (the tile origin's
            # place), so a tile is never split across processes and its
            # intra-tile dependencies stay process-local
            if tiled is None:
                return d.place_of(*c)
            return d.place_of(*tiled.grid.origin(*tiled.grid.tile_of(*c)))

        owner: Dict[Coord, int] = {}
        with _tphase(trace, "partition"):
            dist = config.make_dist(dag.region, alive)
            for i, j in dag.region:
                if dag.is_active(i, j):
                    owner[(i, j)] = home_of((i, j), dist)
        for p in alive:
            procs[p].request(("init", app, dag, None, p, trace_ctx))
        halo_hist = (
            registry.histogram(
                "dpx10_halo_fetch_bytes",
                "bytes moved per batched halo fetch",
                ("transport",),
                buckets=DEFAULT_BYTES_BUCKETS,
            ).labels("pipe")
            if registry.enabled
            else None
        )

        #: topological depth of every active cell — recovery keys its
        #: redo batches on this so dependencies always recompute first
        depth_of: Dict[Coord, int] = {
            c: d for d, lv in enumerate(levels) for c in lv
        }
        #: every cell whose value currently lives on an alive place
        computed: Set[Coord] = set()

        def compute_level(cells: List[Coord]) -> None:
            """One bulk-synchronous step over the alive places."""
            if config.pace is not None:
                # serving-layer fairness gate: may block until the
                # weighted-fair scheduler grants this batch its turn
                t_pace0 = trace.now() if trace is not None else 0.0
                config.pace(len(cells))
                if trace is not None:
                    t_pace1 = trace.now()
                    if t_pace1 - t_pace0 > 1e-6:
                        trace.record_span(
                            Span("pace wait", t_pace0, t_pace1, "pace")
                        )
            by_place: Dict[int, List[Coord]] = defaultdict(list)
            for c in cells:
                by_place[owner[c]].append(c)
            # boundary values: remote deps of each place's cells
            needs: Dict[int, Dict[int, Set[Coord]]] = defaultdict(
                lambda: defaultdict(set)
            )  # consumer place -> producer place -> coords
            for p, own_cells in by_place.items():
                for i, j in own_cells:
                    for d in dag.get_dependency(i, j):
                        key = (d.i, d.j)
                        if key in owner and owner[key] != p:
                            needs[p][owner[key]].add(key)
            boundary: Dict[int, Dict[Coord, Any]] = defaultdict(dict)
            for consumer, per_producer in needs.items():
                for producer, coords in per_producer.items():
                    t_fetch0 = trace.now() if trace is not None else 0.0
                    reply = procs[producer].request(("fetch", sorted(coords)))
                    fetched = reply[1]
                    boundary[consumer].update(fetched)
                    if trace is not None:
                        trace.record_span(
                            Span(
                                "halo fetch", t_fetch0, trace.now(),
                                "halo", consumer,
                            )
                        )
                    nbytes = len(
                        pickle.dumps(fetched, protocol=pickle.HIGHEST_PROTOCOL)
                    )
                    stats.network_bytes += nbytes
                    stats.network_messages += 1
                    if halo_hist is not None:
                        # actual pickled payload size (satellite: the halo
                        # byte accounting is real on every transport)
                        halo_hist.observe(nbytes)
            throttled: Dict[int, float] = {}
            if chaos is not None and chaos.has_throttles:
                for p in by_place:
                    throttled[p] = chaos.throttle_batch(p, len(by_place[p]))
            for p, own_cells in by_place.items():
                procs[p].send_request(
                    ("compute", own_cells, boundary.get(p, {}))
                )
            for p in by_place:
                reply = procs[p].recv_reply()
                assert reply[0] == "done"
                stats.per_place_executed[p] = (
                    stats.per_place_executed.get(p, 0) + reply[1]
                )
                if straggler is not None and len(reply) > 2:
                    # attribute the master-side throttle sleep to the
                    # place: the worker's own timer cannot see it
                    straggler.observe(
                        p,
                        reply[2] + throttled.get(p, 0.0),
                        len(by_place[p]),
                    )
            stats.completions += len(cells)
            computed.update(cells)

        def handle_victims(
            victims: Sequence[int], pending: Dict[int, Set[Coord]]
        ) -> None:
            """Kill the victims, re-home their cells, queue lost work.

            ``pending`` maps topological depth to the set of finished
            cells that must recompute; the drain loop below consumes it
            in ascending depth order so dependencies always exist before
            their consumers ask for them.

            With a place pool, each corpse is first swapped for a pooled
            spare initialized as the same logical place: ownership is
            unchanged and only the dead place's finished cells recompute.
            Places the pool cannot replace fall back to re-homing on the
            survivors — including the fatal place-0 case.
            """
            if pool is None and (0 in victims or not procs[0].alive):
                raise PlaceZeroDeadError()
            for v in set(victims):
                if procs[v].alive:
                    logger.warning("SIGKILL place %d process", v)
                    procs[v].kill()
            dead = {p for p in procs if not procs[p].alive}
            replaced: Set[int] = set()
            if pool is not None:
                for p in sorted(dead):
                    spare = pool.take_spare(procs[p])
                    if spare is None:
                        break
                    spare.bind_run(on_retry)
                    spare.request(("init", app, dag, None, p, trace_ctx))
                    procs[p] = spare
                    replaced.add(p)
                    stats.pool_restarts += 1
                    logger.warning("place %d restarted from pool", p)
            unreplaced = dead - replaced
            if 0 in unreplaced or not procs[0].alive:
                raise PlaceZeroDeadError()
            survivors = [p for p in sorted(procs) if procs[p].alive]
            if not survivors:
                raise AllPlacesDeadError("every place process died")
            new_dist = (
                config.make_dist(dag.region, survivors) if unreplaced else None
            )
            for c, p in owner.items():
                if p in unreplaced:
                    owner[c] = home_of(c, new_dist)
                if p in dead and c in computed:
                    computed.discard(c)
                    pending.setdefault(depth_of[c], set()).add(c)

        def poll_faults() -> List[int]:
            """Injector kills due at the current completion count."""
            if injector is None:
                return []
            victims = injector.poll_completions(stats.completions)
            if victims and chaos is not None:
                chaos.record("kill", len(victims))
            return victims

        def recover(first_victims: List[int]) -> None:
            """Section VI-D against real corpses, chaos-aware.

            Drains the lost finished cells in topological-depth order,
            polling the injector and the chaos controller's mid-recovery
            kill triggers between batches: a place dying *while this
            recovery is in flight* simply folds its lost cells into the
            same drain, which terminates because the alive set strictly
            shrinks (ending, at worst, in PlaceZeroDeadError or
            AllPlacesDeadError — never a hang).
            """
            stats.recoveries += 1
            if chaos is not None:
                chaos.begin_recovery_pass()
            with _tphase(trace, "recovery", "recovery"):
                pending: Dict[int, Set[Coord]] = {}
                handle_victims(first_victims, pending)
                progress = 0
                while pending:
                    d = min(pending)
                    batch = sorted(pending.pop(d))
                    compute_level(batch)
                    progress += len(batch)
                    more: List[int] = []
                    if chaos is not None:
                        more += chaos.poll_recovery(progress)
                    more += poll_faults()
                    if more:
                        handle_victims(more, pending)

        with _tphase(trace, "execute"):
            level_idx = 0
            while level_idx < len(levels):
                compute_level(levels[level_idx])
                level_idx += 1
                victims = poll_faults()
                if victims:
                    recover(victims)

        # gather everything for result binding, plus each surviving
        # worker's metrics snapshot (the cross-process metric merge)
        # and its normalized trace buffer
        results: Dict[Coord, Any] = {}
        with _tphase(trace, "collect"):
            for p in sorted(procs):
                if procs[p].alive:
                    reply = procs[p].request(("collect",))
                    results.update(reply[1])
                    if trace is not None:
                        _merge_worker_trace(trace, procs[p])
                    snapshot = procs[p].request(("stats",))[1]
                    registry.merge(snapshot)
                    for label_values, seconds in snapshot.get(
                        "dpx10_mp_worker_compute_seconds_total", {}
                    ).get("values", []):
                        stats.worker_compute_seconds[int(label_values[0])] = seconds
        missing = [c for c in owner if c not in results]
        if missing:
            # name the first few stragglers in domain terms ("node 7" on a
            # tree domain) — raw layout coords are meaningless to the user
            shown = ", ".join(dag.describe_cell(*c) for c in sorted(missing)[:5])
            raise DPX10Error(
                f"{len(missing)} vertices missing after run "
                f"(first: {shown})"
            )
        stats.final_alive_places = sum(1 for pr in procs.values() if pr.alive)
        if registry.enabled:
            _publish_master_metrics(registry, stats)
        return results, stats
    finally:
        _release_procs(procs, pool)


def _run_mp_shm(
    app: DPX10App,
    dag: Dag,
    config: DPX10Config,
    fault_plans: Sequence[FaultPlan] = (),
    registry: MetricsRegistry = NULL_REGISTRY,
    chaos=None,
    trace: Optional[ExecutionTrace] = None,
    straggler=None,
) -> Tuple[PlaneResults, MPRunStats]:
    """The zero-copy transport: values live in shared-memory planes.

    The master creates a matrix-shaped value plane (the app's dtype) and
    a uint8 finished plane before spawning the place processes; workers
    attach both and compute in place. The pipes carry only *unit index
    lists* — whole tiles when the run is tiled, cells otherwise — so the
    per-level payload is O(units), not O(values). Level-synchronous
    execution makes the lock-free cross-process reads safe: a unit's
    dependencies always finished in an earlier level (or earlier in the
    same process's batch), and kills only fire between levels at the
    master's poll points, so no consumer can observe a torn write.

    Recovery: a dead place's computed units have their plane regions
    zeroed (restoring the "never written reads as zero" invariant for
    kernel windows) and are recomputed in topological-depth order by the
    survivors, who receive the re-homed distribution via ``redist``.
    """
    from repro.core.shm import ShmArena

    ctx = mp.get_context("fork" if hasattr(os, "fork") else "spawn")
    stats = MPRunStats()
    tiled = dag.coarsen(*config.tile_shape) if config.tiling_enabled else None
    _set_trace_meta(trace, config, dag, tiled)
    with _tphase(trace, "schedule"):
        unit_levels = _topological_levels(tiled if tiled is not None else dag)
    stats.levels = len(unit_levels)
    if tiled is not None:
        kind_msg = "tiles"
        # exact per-tile active-cell counts: completions must count cells
        # (fault injection thresholds and progress are cell-granular)
        ncells_of: Dict[Coord, int] = {
            u: int(len(tiled.cells_of(*u)[0]))
            for lv in unit_levels
            for u in lv
        }
    else:
        kind_msg = "cells"
        ncells_of = {u: 1 for lv in unit_levels for u in lv}
    total_active = sum(ncells_of.values())
    all_plans = list(fault_plans)
    if chaos is not None:
        all_plans += chaos.fault_plans()
    injector = FaultInjector(all_plans, total_active) if all_plans else None
    record_event = chaos.record if chaos is not None else None

    def on_retry() -> None:
        stats.msg_retries += 1

    dt = np.dtype(app.value_dtype)
    pool = config.place_pool
    # pooled segment leases duck-type ShmArena (create/bytes_mapped/
    # close); close() returns the segments to the pool's free list
    # instead of unlinking, so the next job re-leases the same mappings
    arena = pool.segment_lease() if pool is not None else ShmArena()
    try:
        values, values_name = arena.create((dag.height, dag.width), dt, "values")
        finished, finished_name = arena.create(
            (dag.height, dag.width), np.uint8, "finished"
        )
        shm_gauge = (
            registry.gauge(
                "dpx10_shm_bytes_mapped",
                "bytes of shared-memory plane segments currently mapped",
            )
            if registry.enabled
            else None
        )
        if shm_gauge is not None:
            shm_gauge.set(arena.bytes_mapped)
        # fresh forks happen after the planes exist; pooled workers were
        # forked long before, which is fine — they attach the segments
        # by name at init time, not by fork inheritance. Message chaos
        # is excluded by shm eligibility, so the pipes here are always
        # raw and the pool is always usable when configured
        with _tphase(trace, "lease places"):
            procs, lease_pool = _acquire_procs(
                config, ctx, record_event=record_event, on_retry=on_retry
            )
        stats.warm_start = lease_pool is not None
        trace_ctx = _trace_ctx(trace)
        try:
            alive = sorted(procs)

            def home_of(u: Coord, d) -> int:
                if tiled is None:
                    return d.place_of(*u)
                return d.place_of(*tiled.grid.origin(*u))

            with _tphase(trace, "partition"):
                dist = config.make_dist(dag.region, alive)
                owner: Dict[Coord, int] = {
                    u: home_of(u, dist) for lv in unit_levels for u in lv
                }

            def owner_array() -> np.ndarray:
                """The owner map resolved to a unit-grid array (-1 =
                inactive) — Dist objects hold closures and cannot cross
                the pipe, so workers get this instead."""
                if tiled is None:
                    arr = np.full((dag.height, dag.width), -1, np.int32)
                else:
                    arr = np.full((tiled.grid.nti, tiled.grid.ntj), -1, np.int32)
                for u, p in owner.items():
                    arr[u] = p
                return arr

            autokernel_spec = None
            if (
                config.autokernel
                and tiled is not None
                and app.value_dtype is not None
                and not config.sanitize
            ):
                # classify + probe once here on the master; workers get
                # the picklable spec and re-emit without re-analysis
                from repro.analysis.codegen import build_autokernel

                master_kernel, _cls = build_autokernel(app, dag)
                if master_kernel is not None:
                    autokernel_spec = master_kernel.spec
            meta = {
                "values": values_name,
                "finished": finished_name,
                "shape": (dag.height, dag.width),
                "dtype": dt.str,
                "tile_shape": (
                    tuple(config.tile_shape) if tiled is not None else None
                ),
                "autokernel": autokernel_spec,
                "owners": owner_array(),
            }
            for p in alive:
                procs[p].request(("init", app, dag, meta, p, trace_ctx))

            depth_of: Dict[Coord, int] = {
                u: d for d, lv in enumerate(unit_levels) for u in lv
            }
            computed: Set[Coord] = set()

            def compute_level(units: List[Coord]) -> None:
                """One bulk-synchronous step: ship unit indices only."""
                if config.pace is not None:
                    # serving-layer fairness gate: may block until the
                    # weighted-fair scheduler grants this batch its turn
                    t_pace0 = trace.now() if trace is not None else 0.0
                    config.pace(sum(ncells_of[u] for u in units))
                    if trace is not None:
                        t_pace1 = trace.now()
                        if t_pace1 - t_pace0 > 1e-6:
                            trace.record_span(
                                Span("pace wait", t_pace0, t_pace1, "pace")
                            )
                by_place: Dict[int, List[Coord]] = defaultdict(list)
                for u in units:
                    by_place[owner[u]].append(u)
                throttled: Dict[int, float] = {}
                if chaos is not None and chaos.has_throttles:
                    for p in by_place:
                        throttled[p] = chaos.throttle_batch(
                            p, sum(ncells_of[u] for u in by_place[p])
                        )
                for p, own in by_place.items():
                    procs[p].send_request((kind_msg, own))
                for p in by_place:
                    reply = procs[p].recv_reply()
                    assert reply[0] == "done"
                    stats.per_place_executed[p] = (
                        stats.per_place_executed.get(p, 0) + reply[1]
                    )
                    if straggler is not None and len(reply) > 2:
                        # fold in the master-side throttle sleep: the
                        # worker's own timer cannot see it
                        straggler.observe(
                            p,
                            reply[2] + throttled.get(p, 0.0),
                            sum(ncells_of[u] for u in by_place[p]),
                        )
                stats.completions += sum(ncells_of[u] for u in units)
                computed.update(units)

            def zero_unit(u: Coord) -> None:
                """Reset a lost unit's plane region before its recompute."""
                if tiled is None:
                    values[u] = 0
                    finished[u] = 0
                    return
                rows, cols = tiled.cells_of(*u)
                if len(rows):
                    values[rows, cols] = 0
                    finished[rows, cols] = 0

            def handle_victims(
                victims: Sequence[int], pending: Dict[int, Set[Coord]]
            ) -> None:
                if lease_pool is None and (
                    0 in victims or not procs[0].alive
                ):
                    raise PlaceZeroDeadError()
                for v in set(victims):
                    if procs[v].alive:
                        logger.warning("SIGKILL place %d process", v)
                        procs[v].kill()
                dead = {p for p in procs if not procs[p].alive}
                replaced: Set[int] = set()
                if lease_pool is not None:
                    # warm restart: swap each corpse for a pooled spare
                    # initialized as the same logical place (it attaches
                    # the live planes and the current owner map by name)
                    # — ownership is unchanged, only the dead place's
                    # finished units are zeroed and recomputed
                    for p in sorted(dead):
                        spare = lease_pool.take_spare(procs[p])
                        if spare is None:
                            break
                        spare.bind_run(on_retry)
                        spare.request(
                            (
                                "init",
                                app,
                                dag,
                                dict(meta, owners=owner_array()),
                                p,
                                trace_ctx,
                            )
                        )
                        procs[p] = spare
                        replaced.add(p)
                        stats.pool_restarts += 1
                        logger.warning("place %d restarted from pool", p)
                unreplaced = dead - replaced
                if 0 in unreplaced or not procs[0].alive:
                    raise PlaceZeroDeadError()
                survivors = [p for p in sorted(procs) if procs[p].alive]
                if not survivors:
                    raise AllPlacesDeadError("every place process died")
                if unreplaced:
                    new_dist = config.make_dist(dag.region, survivors)
                for u, p in owner.items():
                    if p in unreplaced:
                        owner[u] = home_of(u, new_dist)
                    if p in dead and u in computed:
                        computed.discard(u)
                        zero_unit(u)
                        pending.setdefault(depth_of[u], set()).add(u)
                if unreplaced:
                    # survivors track the re-homed ownership so their
                    # halo accounting (and nothing else) stays truthful;
                    # pool replacements got the current map at init
                    arr = owner_array()
                    for p in survivors:
                        procs[p].request(("redist", arr))

            def poll_faults() -> List[int]:
                if injector is None:
                    return []
                victims = injector.poll_completions(stats.completions)
                if victims and chaos is not None:
                    chaos.record("kill", len(victims))
                return victims

            def recover(first_victims: List[int]) -> None:
                stats.recoveries += 1
                if chaos is not None:
                    chaos.begin_recovery_pass()
                with _tphase(trace, "recovery", "recovery"):
                    pending: Dict[int, Set[Coord]] = {}
                    handle_victims(first_victims, pending)
                    progress = 0
                    while pending:
                        d = min(pending)
                        batch = sorted(pending.pop(d))
                        compute_level(batch)
                        progress += len(batch)
                        more: List[int] = []
                        if chaos is not None:
                            more += chaos.poll_recovery(progress)
                        more += poll_faults()
                        if more:
                            handle_victims(more, pending)

            with _tphase(trace, "execute"):
                level_idx = 0
                while level_idx < len(unit_levels):
                    compute_level(unit_levels[level_idx])
                    level_idx += 1
                    victims = poll_faults()
                    if victims:
                        recover(victims)

            # no collect round trip: the results already live in the
            # plane. Merge each survivor's metrics snapshot (and its
            # normalized trace buffer) and fold its shm read accounting
            # into the master's network stats (the snapshot is a plain
            # dict, so this works even with the NULL registry)
            for p in sorted(procs):
                if procs[p].alive:
                    if trace is not None:
                        _merge_worker_trace(trace, procs[p])
                    snapshot = procs[p].request(("stats",))[1]
                    registry.merge(snapshot)
                    for label_values, seconds in snapshot.get(
                        "dpx10_mp_worker_compute_seconds_total", {}
                    ).get("values", []):
                        stats.worker_compute_seconds[int(label_values[0])] = (
                            seconds
                        )
                    for _lv, nbytes in snapshot.get(
                        "dpx10_mp_shm_read_bytes_total", {}
                    ).get("values", []):
                        stats.network_bytes += int(nbytes)
                    for _lv, nbatches in snapshot.get(
                        "dpx10_mp_shm_read_batches_total", {}
                    ).get("values", []):
                        stats.network_messages += int(nbatches)
            done_cells = int(np.count_nonzero(finished))
            if done_cells != total_active:
                raise DPX10Error(
                    f"{total_active - done_cells} vertices missing after run"
                )
            stats.final_alive_places = sum(
                1 for pr in procs.values() if pr.alive
            )
            if shm_gauge is not None:
                shm_gauge.set(arena.bytes_mapped)
            if registry.enabled:
                _publish_master_metrics(registry, stats)
            # copy the planes out before the segments unlink
            return (
                PlaneResults(values.copy(), finished.astype(bool)),
                stats,
            )
        finally:
            _release_procs(procs, lease_pool)
    finally:
        arena.close()
