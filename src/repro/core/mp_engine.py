"""The multiprocessing engine: places as real OS processes.

X10 realizes places as processes; the ``inline``/``threaded`` engines fold
them into one Python process. This engine does it for real:

* every place is a ``multiprocessing.Process`` holding its partition of
  the vertex matrix in its own address space;
* cross-place dependency values travel as actual pickled bytes over pipes
  (master-relayed rather than peer-to-peer — the one simplification, and
  the network accounting records the true transfer sizes);
* a fault is a genuine ``SIGKILL`` of a place process, detected by the
  master, and recovery reassigns the dead partition to survivors and
  recomputes it — the paper's section VI-D protocol, against a real
  process corpse.

Execution is **level-synchronous**: the master groups vertices by
topological depth and drives one level at a time; within a level every
place computes its cells in parallel (true multi-core parallelism — no
GIL across processes). This is a bulk-synchronous rendering of the same
DAG; per-vertex scheduling strategies and the FIFO cache are inline/
threaded-engine concepts and do not apply here.

Selected with ``DPX10Config(engine="mp")``. Sizes up to ~10^5 vertices
are practical; the per-level pickling round-trip dominates beyond that.
Because apps and DAGs cross the pipe, both must be picklable —
module-level classes, not closures or test-local definitions.
"""

from __future__ import annotations

import os
import pickle
import signal
import multiprocessing as mp
from collections import defaultdict
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.apgas.failure import FaultInjector, FaultPlan
from repro.core.api import DPX10App, Vertex
from repro.core.config import DPX10Config
from repro.core.dag import Dag
from repro.errors import (
    AllPlacesDeadError,
    DPX10Error,
    PlaceZeroDeadError,
)
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.util.logging import get_logger

__all__ = ["run_mp", "MPRunStats"]

logger = get_logger("core.mp_engine")

Coord = Tuple[int, int]

_JOIN_TIMEOUT_S = 10.0


class MPRunStats:
    """Accounting the master collects during an mp-engine run."""

    def __init__(self) -> None:
        self.completions = 0
        self.network_bytes = 0
        self.network_messages = 0
        self.recoveries = 0
        self.per_place_executed: Dict[int, int] = {}
        self.levels = 0
        self.final_alive_places = 0
        #: compute-loop seconds measured inside each surviving place
        #: process (shipped back as a metrics snapshot on the reply
        #: channel at collect time; dead places' accounting is lost)
        self.worker_compute_seconds: Dict[int, float] = {}


def _worker_main(place_id: int, conn) -> None:
    """The place process: owns values for its coords, serves the master."""
    import time

    app: Optional[DPX10App] = None
    dag: Optional[Dag] = None
    values: Dict[Coord, Any] = {}
    # the worker's own registry: per-process accounting that ships back to
    # the master as a snapshot over the reply channel ("stats" request)
    registry = MetricsRegistry()
    compute_seconds = registry.counter(
        "dpx10_mp_worker_compute_seconds_total",
        "seconds spent in the compute loop, per place process",
        ("place",),
    ).labels(place_id)
    cells_computed = registry.counter(
        "dpx10_mp_worker_cells_total",
        "cells computed per place process",
        ("place",),
    ).labels(place_id)
    levels_served = registry.counter(
        "dpx10_mp_worker_levels_total",
        "level batches served per place process",
        ("place",),
    ).labels(place_id)
    try:
        while True:
            msg = conn.recv()
            kind = msg[0]
            if kind == "init":
                _, app, dag = msg
                values = {}
                conn.send(("ok",))
            elif kind == "compute":
                # compute the given cells; boundary holds remote dep values
                _, cells, boundary = msg
                assert app is not None and dag is not None
                t0 = time.perf_counter()
                for i, j in cells:
                    deps = [
                        d
                        for d in dag.get_dependency(i, j)
                        if dag.is_active(d.i, d.j)
                    ]
                    verts = []
                    for d in deps:
                        key = (d.i, d.j)
                        value = values.get(key, boundary.get(key))
                        verts.append(Vertex(d.i, d.j, value))
                    values[(i, j)] = app.compute(i, j, verts)
                compute_seconds.inc(time.perf_counter() - t0)
                cells_computed.inc(len(cells))
                levels_served.inc()
                conn.send(("done", len(cells)))
            elif kind == "fetch":
                _, coords = msg
                conn.send(("values", {c: values[c] for c in coords}))
            elif kind == "collect":
                conn.send(("values", dict(values)))
            elif kind == "stats":
                conn.send(("stats", registry.collect()))
            elif kind == "stop":
                conn.send(("bye",))
                return
            else:  # pragma: no cover - protocol guard
                conn.send(("error", f"unknown message {kind!r}"))
                return
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - teardown races
        return


class _PlaceProc:
    """Master-side handle for one place process."""

    def __init__(self, place_id: int, ctx) -> None:
        self.place_id = place_id
        self.conn, child = ctx.Pipe()
        self.proc = ctx.Process(
            target=_worker_main, args=(place_id, child), daemon=True
        )
        self.proc.start()
        child.close()
        self.alive = True

    def request(self, msg: tuple) -> tuple:
        """Send and await a reply; raises DPX10Error if the process died."""
        try:
            self.conn.send(msg)
            reply = self.conn.recv()
            return reply
        except (BrokenPipeError, EOFError, OSError) as exc:
            self.alive = False
            raise DPX10Error(f"place {self.place_id} process died") from exc

    def kill(self) -> None:
        if self.proc.pid is not None:
            os.kill(self.proc.pid, signal.SIGKILL)
        self.proc.join(timeout=_JOIN_TIMEOUT_S)
        self.alive = False

    def stop(self) -> None:
        if not self.alive:
            return
        try:
            self.conn.send(("stop",))
            self.conn.recv()
        except (BrokenPipeError, EOFError, OSError):
            pass
        self.proc.join(timeout=_JOIN_TIMEOUT_S)
        self.alive = False


def _topological_levels(dag: Dag) -> List[List[Coord]]:
    """Group active cells by topological depth (Kahn by generations)."""
    active = [(i, j) for i, j in dag.region if dag.is_active(i, j)]
    active_set = set(active)
    indeg: Dict[Coord, int] = {}
    for i, j in active:
        indeg[(i, j)] = sum(
            1 for d in dag.get_dependency(i, j) if (d.i, d.j) in active_set
        )
    frontier = [c for c in active if indeg[c] == 0]
    levels: List[List[Coord]] = []
    done = 0
    while frontier:
        levels.append(frontier)
        done += len(frontier)
        nxt: List[Coord] = []
        for i, j in frontier:
            for a in dag.get_anti_dependency(i, j):
                key = (a.i, a.j)
                if key in indeg:
                    indeg[key] -= 1
                    if indeg[key] == 0:
                        nxt.append(key)
        frontier = nxt
    if done != len(active):
        raise DPX10Error(
            f"only {done} of {len(active)} vertices reachable: cyclic pattern"
        )
    return levels


def _publish_master_metrics(registry: MetricsRegistry, stats: MPRunStats) -> None:
    """Record the master-side accounting as named instruments."""
    registry.counter(
        "dpx10_net_messages_total", "cross-place messages relayed by the master"
    ).set(stats.network_messages)
    registry.counter(
        "dpx10_net_bytes_total", "cross-place bytes relayed by the master"
    ).set(stats.network_bytes)
    registry.counter(
        "dpx10_completions_total", "vertex completions (monotone across recoveries)"
    ).set(stats.completions)
    executed = registry.counter(
        "dpx10_vertices_computed_total",
        "vertices computed per place",
        ("place",),
    )
    for p, n in sorted(stats.per_place_executed.items()):
        executed.labels(p).set(n)
    registry.gauge(
        "dpx10_places_alive", "place processes alive at run end"
    ).set(stats.final_alive_places)
    registry.counter(
        "dpx10_mp_levels_total", "bulk-synchronous levels driven by the master"
    ).set(stats.levels)
    registry.counter(
        "dpx10_recoveries_total",
        "fault recoveries performed",
        ("mechanism",),
    ).labels("recovery").set(stats.recoveries)


def run_mp(
    app: DPX10App,
    dag: Dag,
    config: DPX10Config,
    fault_plans: Sequence[FaultPlan] = (),
    registry: MetricsRegistry = NULL_REGISTRY,
) -> Tuple[Dict[Coord, Any], MPRunStats]:
    """Execute the application on real place processes.

    Returns the complete ``{coord: value}`` result map plus run stats.
    Each place process keeps its own metrics registry; at gather time the
    master requests a snapshot over the reply channel and merges it into
    ``registry`` (counters add, histograms add bucket-wise), so
    per-process accounting survives the address-space boundary.
    """
    ctx = mp.get_context("fork" if hasattr(os, "fork") else "spawn")
    stats = MPRunStats()
    tiled = dag.coarsen(*config.tile_shape) if config.tiling_enabled else None
    if tiled is None:
        levels = _topological_levels(dag)
    else:
        # tile-granular: level-synchronize over the coarsened DAG, then
        # expand each tile to its cells in intra-tile wavefront order.
        # Tiles sharing a level have no tile edge, so every cross-tile
        # dependency resolves in an earlier level; in-tile dependencies
        # resolve because the worker computes cells in message order
        levels = []
        for tile_level in _topological_levels(tiled):
            cells: List[Coord] = []
            for t in tile_level:
                rows, cols = tiled.cells_of(*t)
                cells.extend(zip(rows.tolist(), cols.tolist()))
            levels.append(cells)
    stats.levels = len(levels)
    total_active = sum(len(lv) for lv in levels)
    injector = FaultInjector(list(fault_plans), total_active) if fault_plans else None

    procs: Dict[int, _PlaceProc] = {
        p: _PlaceProc(p, ctx) for p in range(config.nplaces)
    }
    try:
        alive = sorted(procs)

        def home_of(c: Coord, d) -> int:
            # tiled runs own cells at tile granularity (the tile origin's
            # place), so a tile is never split across processes and its
            # intra-tile dependencies stay process-local
            if tiled is None:
                return d.place_of(*c)
            return d.place_of(*tiled.grid.origin(*tiled.grid.tile_of(*c)))

        owner: Dict[Coord, int] = {}
        dist = config.make_dist(dag.region, alive)
        for i, j in dag.region:
            if dag.is_active(i, j):
                owner[(i, j)] = home_of((i, j), dist)
        for p in alive:
            procs[p].request(("init", app, dag))

        def compute_level(cells: List[Coord]) -> None:
            """One bulk-synchronous step over the alive places."""
            by_place: Dict[int, List[Coord]] = defaultdict(list)
            for c in cells:
                by_place[owner[c]].append(c)
            # boundary values: remote deps of each place's cells
            needs: Dict[int, Dict[int, Set[Coord]]] = defaultdict(
                lambda: defaultdict(set)
            )  # consumer place -> producer place -> coords
            for p, own_cells in by_place.items():
                for i, j in own_cells:
                    for d in dag.get_dependency(i, j):
                        key = (d.i, d.j)
                        if key in owner and owner[key] != p:
                            needs[p][owner[key]].add(key)
            boundary: Dict[int, Dict[Coord, Any]] = defaultdict(dict)
            for consumer, per_producer in needs.items():
                for producer, coords in per_producer.items():
                    reply = procs[producer].request(("fetch", sorted(coords)))
                    fetched = reply[1]
                    boundary[consumer].update(fetched)
                    nbytes = len(
                        pickle.dumps(fetched, protocol=pickle.HIGHEST_PROTOCOL)
                    )
                    stats.network_bytes += nbytes
                    stats.network_messages += 1
            for p, own_cells in by_place.items():
                procs[p].conn.send(("compute", own_cells, boundary.get(p, {})))
            for p in by_place:
                try:
                    reply = procs[p].conn.recv()
                except (EOFError, OSError) as exc:
                    procs[p].alive = False
                    raise DPX10Error(f"place {p} died mid-level") from exc
                assert reply[0] == "done"
                stats.per_place_executed[p] = (
                    stats.per_place_executed.get(p, 0) + reply[1]
                )
            stats.completions += len(cells)

        level_idx = 0
        while level_idx < len(levels):
            compute_level(levels[level_idx])
            level_idx += 1
            if injector is not None:
                victims = injector.poll_completions(stats.completions)
                if victims:
                    if 0 in victims or not procs[0].alive:
                        raise PlaceZeroDeadError()
                    for v in victims:
                        logger.warning("SIGKILL place %d process", v)
                        procs[v].kill()
                    # -- recovery (section VI-D against real corpses) --------
                    stats.recoveries += 1
                    dead = set(victims)
                    survivors = [p for p in sorted(procs) if procs[p].alive]
                    if not survivors:
                        raise AllPlacesDeadError("every place process died")
                    lost = sorted(c for c, p in owner.items() if p in dead)
                    new_dist = config.make_dist(dag.region, survivors)
                    for c in lost:
                        owner[c] = home_of(c, new_dist)
                    # recompute the dead partition's finished cells, oldest
                    # levels first, on their new owners
                    lost_set = set(lost)
                    for lv in levels[:level_idx]:
                        redo = [c for c in lv if c in lost_set]
                        if redo:
                            compute_level(redo)

        # gather everything for result binding, plus each surviving
        # worker's metrics snapshot (the cross-process metric merge)
        results: Dict[Coord, Any] = {}
        for p in sorted(procs):
            if procs[p].alive:
                reply = procs[p].request(("collect",))
                results.update(reply[1])
                snapshot = procs[p].request(("stats",))[1]
                registry.merge(snapshot)
                for label_values, seconds in snapshot.get(
                    "dpx10_mp_worker_compute_seconds_total", {}
                ).get("values", []):
                    stats.worker_compute_seconds[int(label_values[0])] = seconds
        missing = [c for c in owner if c not in results]
        if missing:
            raise DPX10Error(f"{len(missing)} vertices missing after run")
        stats.final_alive_places = sum(1 for pr in procs.values() if pr.alive)
        if registry.enabled:
            _publish_master_metrics(registry, stats)
        return results, stats
    finally:
        for proc in procs.values():
            proc.stop()
