"""The multiprocessing engine: places as real OS processes.

X10 realizes places as processes; the ``inline``/``threaded`` engines fold
them into one Python process. This engine does it for real:

* every place is a ``multiprocessing.Process`` holding its partition of
  the vertex matrix in its own address space;
* cross-place dependency values travel as actual pickled bytes over pipes
  (master-relayed rather than peer-to-peer — the one simplification, and
  the network accounting records the true transfer sizes);
* a fault is a genuine ``SIGKILL`` of a place process, detected by the
  master, and recovery reassigns the dead partition to survivors and
  recomputes it — the paper's section VI-D protocol, against a real
  process corpse.

Execution is **level-synchronous**: the master groups vertices by
topological depth and drives one level at a time; within a level every
place computes its cells in parallel (true multi-core parallelism — no
GIL across processes). This is a bulk-synchronous rendering of the same
DAG; per-vertex scheduling strategies and the FIFO cache are inline/
threaded-engine concepts and do not apply here.

**Message hardening.** Every request carries a monotone per-pipe sequence
number and every reply echoes it. Workers deduplicate by sequence number
— a request seen twice (a duplicated or retried message) is answered from
a small reply cache without re-executing — and the master waits on a
per-message timeout, resending the *same* envelope with exponential
backoff before declaring the place dead. Replies whose sequence number
does not match the request in flight are stale duplicates and are
discarded. On a healthy pipe none of this machinery fires (the master
blocks exactly as a plain ``recv`` would); under ``repro.chaos`` message
chaos (drop / duplicate / delay / reorder injected by
:class:`~repro.chaos.network.ChaosPipe`) it is what keeps the run exact.

Selected with ``DPX10Config(engine="mp")``. Sizes up to ~10^5 vertices
are practical; the per-level pickling round-trip dominates beyond that.
Because apps and DAGs cross the pipe, both must be picklable —
module-level classes, not closures or test-local definitions.
"""

from __future__ import annotations

import os
import pickle
import signal
import time
import multiprocessing as mp
from collections import defaultdict
from typing import Any, Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.apgas.failure import FaultInjector, FaultPlan
from repro.core.api import DPX10App, Vertex
from repro.core.config import DPX10Config
from repro.core.dag import Dag
from repro.errors import (
    AllPlacesDeadError,
    DPX10Error,
    PlaceZeroDeadError,
)
from repro.obs.metrics import NULL_REGISTRY, MetricsRegistry
from repro.util.logging import get_logger

__all__ = ["run_mp", "MPRunStats"]

logger = get_logger("core.mp_engine")

Coord = Tuple[int, int]

_JOIN_TIMEOUT_S = 10.0
#: worker-side reply cache depth: how many past sequence numbers a place
#: can still answer idempotently (covers any realistic retry window —
#: the master has at most one request in flight per pipe)
_REPLY_CACHE = 64


class MPRunStats:
    """Accounting the master collects during an mp-engine run."""

    def __init__(self) -> None:
        self.completions = 0
        self.network_bytes = 0
        self.network_messages = 0
        #: request retransmissions after a reply timeout (chaos drops, or
        #: a genuinely slow place); 0 on a healthy run
        self.msg_retries = 0
        self.recoveries = 0
        self.per_place_executed: Dict[int, int] = {}
        self.levels = 0
        self.final_alive_places = 0
        #: compute-loop seconds measured inside each surviving place
        #: process (shipped back as a metrics snapshot on the reply
        #: channel at collect time; dead places' accounting is lost)
        self.worker_compute_seconds: Dict[int, float] = {}


def _worker_main(place_id: int, conn) -> None:
    """The place process: owns values for its coords, serves the master.

    Every incoming message is ``(seq, kind, *payload)``; every reply is
    ``(seq, *body)``. Replies for the last :data:`_REPLY_CACHE` sequence
    numbers are cached so a retried or duplicated request is answered
    idempotently — in particular a duplicated ``compute`` never runs the
    user's kernel twice.
    """
    app: Optional[DPX10App] = None
    dag: Optional[Dag] = None
    values: Dict[Coord, Any] = {}
    replied: Dict[int, tuple] = {}
    # the worker's own registry: per-process accounting that ships back to
    # the master as a snapshot over the reply channel ("stats" request)
    registry = MetricsRegistry()
    compute_seconds = registry.counter(
        "dpx10_mp_worker_compute_seconds_total",
        "seconds spent in the compute loop, per place process",
        ("place",),
    ).labels(place_id)
    cells_computed = registry.counter(
        "dpx10_mp_worker_cells_total",
        "cells computed per place process",
        ("place",),
    ).labels(place_id)
    levels_served = registry.counter(
        "dpx10_mp_worker_levels_total",
        "level batches served per place process",
        ("place",),
    ).labels(place_id)
    dedup_hits = registry.counter(
        "dpx10_mp_worker_dedup_total",
        "duplicate requests answered from the reply cache, per place",
        ("place",),
    ).labels(place_id)
    try:
        while True:
            msg = conn.recv()
            seq, kind = msg[0], msg[1]
            cached = replied.get(seq)
            if cached is not None:
                # a duplicate delivery (chaos dup, or a master retry whose
                # original did arrive): resend the cached reply verbatim
                dedup_hits.inc()
                conn.send(cached)
                if kind == "stop":
                    return
                continue
            if kind == "init":
                _, _, app, dag = msg
                values = {}
                reply = (seq, "ok")
            elif kind == "compute":
                # compute the given cells; boundary holds remote dep values
                _, _, cells, boundary = msg
                assert app is not None and dag is not None
                t0 = time.perf_counter()
                for i, j in cells:
                    deps = [
                        d
                        for d in dag.get_dependency(i, j)
                        if dag.is_active(d.i, d.j)
                    ]
                    verts = []
                    for d in deps:
                        key = (d.i, d.j)
                        value = values.get(key, boundary.get(key))
                        verts.append(Vertex(d.i, d.j, value))
                    values[(i, j)] = app.compute(i, j, verts)
                compute_seconds.inc(time.perf_counter() - t0)
                cells_computed.inc(len(cells))
                levels_served.inc()
                reply = (seq, "done", len(cells))
            elif kind == "fetch":
                _, _, coords = msg
                reply = (seq, "values", {c: values[c] for c in coords})
            elif kind == "collect":
                reply = (seq, "values", dict(values))
            elif kind == "stats":
                reply = (seq, "stats", registry.collect())
            elif kind == "stop":
                conn.send((seq, "bye"))
                return
            else:  # pragma: no cover - protocol guard
                conn.send((seq, "error", f"unknown message {kind!r}"))
                return
            replied[seq] = reply
            if len(replied) > _REPLY_CACHE:
                del replied[min(replied)]
            conn.send(reply)
    except (EOFError, KeyboardInterrupt):  # pragma: no cover - teardown races
        return


class _PlaceProc:
    """Master-side handle for one place process.

    Owns the per-pipe sequence counter and the retry-with-backoff reply
    loop. With ``message=None`` (no chaos) the pipe is raw and
    :meth:`recv_reply` blocks exactly like a plain ``recv``; with a
    :class:`~repro.chaos.schedule.MessageChaos` the connection is wrapped
    in a :class:`~repro.chaos.network.ChaosPipe` and the timeout/retry
    budget from the chaos block is enforced per message.
    """

    def __init__(
        self,
        place_id: int,
        ctx,
        *,
        message=None,
        chaos_seed: int = 0,
        record_event: Optional[Callable[[str], None]] = None,
        on_retry: Optional[Callable[[], None]] = None,
    ) -> None:
        self.place_id = place_id
        self.raw, child = ctx.Pipe()
        if message is not None:
            from repro.chaos.network import DROPPED, ChaosPipe

            self.conn = ChaosPipe(
                self.raw,
                message,
                seed=chaos_seed * 1_000_003 + place_id,
                record_event=record_event,
            )
            self._dropped: object = DROPPED
            self.timeout_s: Optional[float] = message.timeout_s
            self.max_retries = message.max_retries
            self.backoff_s = message.backoff_s
        else:
            self.conn = self.raw
            self._dropped = object()  # never matches a real reply
            self.timeout_s = None
            self.max_retries = 1
            self.backoff_s = 0.0
        self._on_retry = on_retry or (lambda: None)
        self._seq = 0
        self._pending: Optional[tuple] = None
        self.proc = ctx.Process(
            target=_worker_main, args=(place_id, child), daemon=True
        )
        self.proc.start()
        child.close()
        self.alive = True

    def _next_seq(self) -> int:
        self._seq += 1
        return self._seq

    def _died(self, exc: BaseException) -> None:
        self.alive = False
        raise DPX10Error(f"place {self.place_id} process died") from exc

    # -- the hardened request/reply protocol -----------------------------------
    def send_request(self, body: tuple) -> None:
        """Send one sequence-numbered request (reply via recv_reply)."""
        msg = (self._next_seq(),) + body
        self._pending = msg
        try:
            self.conn.send(msg)
        except (BrokenPipeError, OSError) as exc:
            self._died(exc)

    def recv_reply(self) -> tuple:
        """Await the reply to the last request; retry with backoff.

        Replies carrying a stale sequence number (late duplicates of an
        earlier exchange) are discarded. A chaos-dropped reply surfaces
        as the DROPPED sentinel and is treated as silence, feeding the
        timeout path. After ``max_retries`` timed-out attempts the place
        is declared dead.
        """
        assert self._pending is not None, "recv_reply without send_request"
        seq = self._pending[0]
        attempts = 0
        while True:
            if self.timeout_s is None:
                # chaos-free: block forever, as a plain pipe recv would
                try:
                    reply = self.conn.recv()
                except (EOFError, OSError) as exc:
                    self._died(exc)
                if reply is self._dropped or reply[0] != seq:
                    continue
                self._pending = None
                return tuple(reply[1:])
            deadline = time.monotonic() + self.timeout_s
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    if not self.conn.poll(remaining):
                        break
                    reply = self.conn.recv()
                except (EOFError, OSError) as exc:
                    self._died(exc)
                if reply is self._dropped or reply[0] != seq:
                    continue  # lost on the wire / stale duplicate
                self._pending = None
                return tuple(reply[1:])
            attempts += 1
            if attempts >= self.max_retries or not self.proc.is_alive():
                self._died(
                    TimeoutError(
                        f"no reply from place {self.place_id} after "
                        f"{attempts} attempts"
                    )
                )
            # resend the SAME envelope: the worker's reply cache makes
            # the retry idempotent whichever side lost the message
            self._on_retry()
            time.sleep(self.backoff_s * (2 ** (attempts - 1)))
            try:
                self.conn.send(self._pending)
            except (BrokenPipeError, OSError) as exc:
                self._died(exc)

    def request(self, body: tuple) -> tuple:
        """Send and await a reply; raises DPX10Error if the place died."""
        self.send_request(body)
        return self.recv_reply()

    # -- lifecycle ---------------------------------------------------------------
    def kill(self) -> None:
        if self.proc.pid is not None:
            os.kill(self.proc.pid, signal.SIGKILL)
        self.proc.join(timeout=_JOIN_TIMEOUT_S)
        self.alive = False

    def stop(self) -> None:
        if not self.alive:
            return
        try:
            # teardown bypasses the chaos wrapper: stop must not be
            # dropped, and stale duplicate replies are drained here
            seq = self._next_seq()
            self.raw.send((seq, "stop"))
            while True:
                reply = self.raw.recv()
                if reply[0] == seq:
                    break
        except (BrokenPipeError, EOFError, OSError):
            pass
        self.proc.join(timeout=_JOIN_TIMEOUT_S)
        self.alive = False


def _topological_levels(dag: Dag) -> List[List[Coord]]:
    """Group active cells by topological depth (Kahn by generations)."""
    active = [(i, j) for i, j in dag.region if dag.is_active(i, j)]
    active_set = set(active)
    indeg: Dict[Coord, int] = {}
    for i, j in active:
        indeg[(i, j)] = sum(
            1 for d in dag.get_dependency(i, j) if (d.i, d.j) in active_set
        )
    frontier = [c for c in active if indeg[c] == 0]
    levels: List[List[Coord]] = []
    done = 0
    while frontier:
        levels.append(frontier)
        done += len(frontier)
        nxt: List[Coord] = []
        for i, j in frontier:
            for a in dag.get_anti_dependency(i, j):
                key = (a.i, a.j)
                if key in indeg:
                    indeg[key] -= 1
                    if indeg[key] == 0:
                        nxt.append(key)
        frontier = nxt
    if done != len(active):
        raise DPX10Error(
            f"only {done} of {len(active)} vertices reachable: cyclic pattern"
        )
    return levels


def _publish_master_metrics(registry: MetricsRegistry, stats: MPRunStats) -> None:
    """Record the master-side accounting as named instruments."""
    registry.counter(
        "dpx10_net_messages_total", "cross-place messages relayed by the master"
    ).set(stats.network_messages)
    registry.counter(
        "dpx10_net_bytes_total", "cross-place bytes relayed by the master"
    ).set(stats.network_bytes)
    registry.counter(
        "dpx10_msg_retries_total",
        "message retransmissions (timeouts / modelled drops)",
    ).set(stats.msg_retries)
    registry.counter(
        "dpx10_completions_total", "vertex completions (monotone across recoveries)"
    ).set(stats.completions)
    executed = registry.counter(
        "dpx10_vertices_computed_total",
        "vertices computed per place",
        ("place",),
    )
    for p, n in sorted(stats.per_place_executed.items()):
        executed.labels(p).set(n)
    registry.gauge(
        "dpx10_places_alive", "place processes alive at run end"
    ).set(stats.final_alive_places)
    registry.counter(
        "dpx10_mp_levels_total", "bulk-synchronous levels driven by the master"
    ).set(stats.levels)
    registry.counter(
        "dpx10_recoveries_total",
        "fault recoveries performed",
        ("mechanism",),
    ).labels("recovery").set(stats.recoveries)


def run_mp(
    app: DPX10App,
    dag: Dag,
    config: DPX10Config,
    fault_plans: Sequence[FaultPlan] = (),
    registry: MetricsRegistry = NULL_REGISTRY,
    chaos=None,
) -> Tuple[Dict[Coord, Any], MPRunStats]:
    """Execute the application on real place processes.

    Returns the complete ``{coord: value}`` result map plus run stats.
    Each place process keeps its own metrics registry; at gather time the
    master requests a snapshot over the reply channel and merges it into
    ``registry`` (counters add, histograms add bucket-wise), so
    per-process accounting survives the address-space boundary.

    ``chaos`` is an optional :class:`~repro.chaos.controller.
    ChaosController`: its kill plans merge into the fault injector, its
    recovery-kill triggers are polled between recovery redo batches, its
    throttles slow a place's level batches, and its message block wraps
    every master-side pipe in a :class:`~repro.chaos.network.ChaosPipe`.
    """
    ctx = mp.get_context("fork" if hasattr(os, "fork") else "spawn")
    stats = MPRunStats()
    tiled = dag.coarsen(*config.tile_shape) if config.tiling_enabled else None
    if tiled is None:
        levels = _topological_levels(dag)
    else:
        # tile-granular: level-synchronize over the coarsened DAG, then
        # expand each tile to its cells in intra-tile wavefront order.
        # Tiles sharing a level have no tile edge, so every cross-tile
        # dependency resolves in an earlier level; in-tile dependencies
        # resolve because the worker computes cells in message order
        levels = []
        for tile_level in _topological_levels(tiled):
            cells: List[Coord] = []
            for t in tile_level:
                rows, cols = tiled.cells_of(*t)
                cells.extend(zip(rows.tolist(), cols.tolist()))
            levels.append(cells)
    stats.levels = len(levels)
    total_active = sum(len(lv) for lv in levels)
    all_plans = list(fault_plans)
    if chaos is not None:
        all_plans += chaos.fault_plans()
    injector = FaultInjector(all_plans, total_active) if all_plans else None

    message = chaos.message if chaos is not None else None
    record_event = chaos.record if chaos is not None else None

    def on_retry() -> None:
        stats.msg_retries += 1

    procs: Dict[int, _PlaceProc] = {
        p: _PlaceProc(
            p,
            ctx,
            message=message,
            chaos_seed=chaos.schedule.seed if chaos is not None else 0,
            record_event=record_event,
            on_retry=on_retry,
        )
        for p in range(config.nplaces)
    }
    try:
        alive = sorted(procs)

        def home_of(c: Coord, d) -> int:
            # tiled runs own cells at tile granularity (the tile origin's
            # place), so a tile is never split across processes and its
            # intra-tile dependencies stay process-local
            if tiled is None:
                return d.place_of(*c)
            return d.place_of(*tiled.grid.origin(*tiled.grid.tile_of(*c)))

        owner: Dict[Coord, int] = {}
        dist = config.make_dist(dag.region, alive)
        for i, j in dag.region:
            if dag.is_active(i, j):
                owner[(i, j)] = home_of((i, j), dist)
        for p in alive:
            procs[p].request(("init", app, dag))

        #: topological depth of every active cell — recovery keys its
        #: redo batches on this so dependencies always recompute first
        depth_of: Dict[Coord, int] = {
            c: d for d, lv in enumerate(levels) for c in lv
        }
        #: every cell whose value currently lives on an alive place
        computed: Set[Coord] = set()

        def compute_level(cells: List[Coord]) -> None:
            """One bulk-synchronous step over the alive places."""
            by_place: Dict[int, List[Coord]] = defaultdict(list)
            for c in cells:
                by_place[owner[c]].append(c)
            # boundary values: remote deps of each place's cells
            needs: Dict[int, Dict[int, Set[Coord]]] = defaultdict(
                lambda: defaultdict(set)
            )  # consumer place -> producer place -> coords
            for p, own_cells in by_place.items():
                for i, j in own_cells:
                    for d in dag.get_dependency(i, j):
                        key = (d.i, d.j)
                        if key in owner and owner[key] != p:
                            needs[p][owner[key]].add(key)
            boundary: Dict[int, Dict[Coord, Any]] = defaultdict(dict)
            for consumer, per_producer in needs.items():
                for producer, coords in per_producer.items():
                    reply = procs[producer].request(("fetch", sorted(coords)))
                    fetched = reply[1]
                    boundary[consumer].update(fetched)
                    nbytes = len(
                        pickle.dumps(fetched, protocol=pickle.HIGHEST_PROTOCOL)
                    )
                    stats.network_bytes += nbytes
                    stats.network_messages += 1
            if chaos is not None and chaos.has_throttles:
                for p in by_place:
                    chaos.throttle_batch(p, len(by_place[p]))
            for p, own_cells in by_place.items():
                procs[p].send_request(
                    ("compute", own_cells, boundary.get(p, {}))
                )
            for p in by_place:
                reply = procs[p].recv_reply()
                assert reply[0] == "done"
                stats.per_place_executed[p] = (
                    stats.per_place_executed.get(p, 0) + reply[1]
                )
            stats.completions += len(cells)
            computed.update(cells)

        def handle_victims(
            victims: Sequence[int], pending: Dict[int, Set[Coord]]
        ) -> None:
            """Kill the victims, re-home their cells, queue lost work.

            ``pending`` maps topological depth to the set of finished
            cells that must recompute; the drain loop below consumes it
            in ascending depth order so dependencies always exist before
            their consumers ask for them.
            """
            if 0 in victims or not procs[0].alive:
                raise PlaceZeroDeadError()
            for v in set(victims):
                if procs[v].alive:
                    logger.warning("SIGKILL place %d process", v)
                    procs[v].kill()
            dead = {p for p in procs if not procs[p].alive}
            survivors = [p for p in sorted(procs) if procs[p].alive]
            if not survivors:
                raise AllPlacesDeadError("every place process died")
            new_dist = config.make_dist(dag.region, survivors)
            for c, p in owner.items():
                if p in dead:
                    owner[c] = home_of(c, new_dist)
                    if c in computed:
                        computed.discard(c)
                        pending.setdefault(depth_of[c], set()).add(c)

        def poll_faults() -> List[int]:
            """Injector kills due at the current completion count."""
            if injector is None:
                return []
            victims = injector.poll_completions(stats.completions)
            if victims and chaos is not None:
                chaos.record("kill", len(victims))
            return victims

        def recover(first_victims: List[int]) -> None:
            """Section VI-D against real corpses, chaos-aware.

            Drains the lost finished cells in topological-depth order,
            polling the injector and the chaos controller's mid-recovery
            kill triggers between batches: a place dying *while this
            recovery is in flight* simply folds its lost cells into the
            same drain, which terminates because the alive set strictly
            shrinks (ending, at worst, in PlaceZeroDeadError or
            AllPlacesDeadError — never a hang).
            """
            stats.recoveries += 1
            if chaos is not None:
                chaos.begin_recovery_pass()
            pending: Dict[int, Set[Coord]] = {}
            handle_victims(first_victims, pending)
            progress = 0
            while pending:
                d = min(pending)
                batch = sorted(pending.pop(d))
                compute_level(batch)
                progress += len(batch)
                more: List[int] = []
                if chaos is not None:
                    more += chaos.poll_recovery(progress)
                more += poll_faults()
                if more:
                    handle_victims(more, pending)

        level_idx = 0
        while level_idx < len(levels):
            compute_level(levels[level_idx])
            level_idx += 1
            victims = poll_faults()
            if victims:
                recover(victims)

        # gather everything for result binding, plus each surviving
        # worker's metrics snapshot (the cross-process metric merge)
        results: Dict[Coord, Any] = {}
        for p in sorted(procs):
            if procs[p].alive:
                reply = procs[p].request(("collect",))
                results.update(reply[1])
                snapshot = procs[p].request(("stats",))[1]
                registry.merge(snapshot)
                for label_values, seconds in snapshot.get(
                    "dpx10_mp_worker_compute_seconds_total", {}
                ).get("values", []):
                    stats.worker_compute_seconds[int(label_values[0])] = seconds
        missing = [c for c in owner if c not in results]
        if missing:
            raise DPX10Error(f"{len(missing)} vertices missing after run")
        stats.final_alive_places = sum(1 for pr in procs.values() if pr.alive)
        if registry.enabled:
            _publish_master_metrics(registry, stats)
        return results, stats
    finally:
        for proc in procs.values():
            proc.stop()
