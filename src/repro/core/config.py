"""Runtime configuration, covering every knob in the paper's Refinements list.

* **Distribution of DAG** — ``distribution`` (kind name) or ``custom_dist``;
* **Initialization of DAG** — the pattern's ``is_active`` plus the app's
  ``init_value`` (see :mod:`repro.core.api`);
* **Scheduling strategy** — ``scheduler``: local / random / mincomm;
* **Cache size** — ``cache_size`` (0 disables the remote-vertex cache);
* **Restore manner** — ``restore_manner``: "discard" (default; recompute
  remote results after a failure) or "copy" (transfer them, for apps whose
  compute is dearer than communication).

``nplaces`` mirrors ``X10_NPLACES`` and ``threads_per_place`` mirrors
``X10_NTHREADS`` from the paper's experimental setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.dist.dist import Dist
from repro.dist.region import Region2D
from repro.util.validation import require

__all__ = ["DPX10Config"]

_ENGINES = ("inline", "threaded", "mp")
_SCHEDULERS = ("local", "random", "mincomm")
_DIST_KINDS = (
    "block_rows",
    "block_cols",
    "block_flat",
    "cyclic_rows",
    "cyclic_cols",
    "block_cyclic",
)
_RESTORE = ("discard", "copy")


@dataclass
class DPX10Config:
    """All runtime knobs with paper-faithful defaults."""

    #: number of places (X10_NPLACES)
    nplaces: int = 4
    #: execution engine: deterministic "inline", concurrent "threaded", or
    #: "mp" — real place processes with level-synchronous execution (see
    #: repro.core.mp_engine)
    engine: str = "inline"
    #: worker threads per place (X10_NTHREADS); threaded engine only
    threads_per_place: int = 2
    #: distribution kind; the paper's default splices by column
    distribution: str = "block_cols"
    #: block shape for the block_cyclic distribution
    dist_block: tuple[int, int] = (1, 1)
    #: optional custom distribution factory: (region, alive_place_ids) -> Dist
    custom_dist: Optional[Callable[[Region2D, Sequence[int]], Dist]] = None
    #: scheduling strategy: local (default), random, or mincomm
    scheduler: str = "local"
    #: remote-vertex FIFO cache capacity per place; 0 disables
    cache_size: int = 64
    #: bytes per vertex value, used for communication accounting
    value_nbytes: int = 8
    #: recovery behaviour for finished vertices homed on remote places
    restore_manner: str = "discard"
    #: fault-tolerance mechanism: "recovery" is the paper's new method;
    #: "snapshot" is the Resilient-X10 periodic-snapshot baseline the
    #: paper argues against (provided for comparison)
    ft_mode: str = "recovery"
    #: completions between periodic snapshots (ft_mode="snapshot");
    #: 0 means only the initial (empty) snapshot is ever taken
    snapshot_interval: int = 0
    #: RNG seed (random scheduler, workloads)
    seed: int = 0
    #: run Dag.validate() before executing (recommended for custom patterns)
    validate: bool = False
    #: runtime dependency-race sanitizer: while each compute() runs, every
    #: vertex-store/cache read is cross-checked against the declared
    #: dependency list and violations raise DependencyRaceError naming the
    #: cell, offset, and owning/executing place (see repro.analysis). Adds
    #: a guard around every compute(); keep off when benchmarking.
    sanitize: bool = False
    #: record a per-vertex execution timeline (see repro.core.trace);
    #: adds measurable per-vertex overhead, keep off when benchmarking
    trace: bool = False
    #: enable the metrics registry (repro.obs): named counters/gauges/
    #: histograms scraped from the runtime, exportable as Prometheus text
    #: and embedded in trace exports. Collection is pull-based, so the
    #: per-vertex hot path is unchanged; disabled (default) costs nothing.
    metrics: bool = False
    #: use this repro.obs.metrics.MetricsRegistry instead of creating one
    #: (implies metrics=True); lets a live dashboard or an external
    #: scraper watch the run while it executes
    metrics_registry: Optional[object] = None
    #: called as ``on_progress(completions, total_active)`` every
    #: ``progress_interval`` completions (0 disables). Completions are
    #: monotone across recoveries, so they can exceed the total under
    #: faults.
    on_progress: Optional[Callable[[int, int], None]] = None
    progress_interval: int = 0
    #: spill vertex values to disk-backed arrays in this directory (the
    #: paper's future work: "spilling some data to local disk to enable
    #: computations on large scale of DP problems"). Requires a typed
    #: ``value_dtype``; object-valued apps silently stay in RAM.
    spill_dir: Optional[str] = None
    #: inline engine only: execute the pattern's precomputed topological
    #: order directly, skipping indegree bookkeeping and ready lists. An
    #: optimization extension; requires the pattern to provide
    #: ``static_order()`` (all stencils, knapsack, full_row, triangular do)
    static_schedule: bool = False
    #: tile-granular execution: block the matrix into ``(tile_h, tile_w)``
    #: tiles and schedule, fetch, and place whole tiles instead of single
    #: cells (see docs/TILING.md). The cell-level pattern is coarsened to a
    #: tile-level DAG (``Dag.coarsen``, symbolically verified acyclic), a
    #: tile's remote halo is fetched in one batch per producing place, and
    #: apps may supply a vectorized ``compute_tile`` kernel. ``None`` and
    #: ``(1, 1)`` both select the legacy per-vertex path, bit-for-bit.
    #: Supported by the inline, threaded and mp engines.
    tile_shape: Optional[tuple[int, int]] = None
    #: chaos-engineering schedule (see repro.chaos): a seeded composite of
    #: kills, mid-recovery kills, slow-place throttles and message chaos.
    #: ``None`` (default) injects nothing. Accepts a
    #: repro.chaos.schedule.ChaosSchedule; its kill events merge with any
    #: explicit ``fault_plans``, its throttles/recovery kills drive the
    #: ChaosController, and its ``message`` block perturbs the mp message
    #: pipes (real delay/drop/dup/reorder) or the in-process NetworkModel
    #: (modelled). Results must be — and are tested to be — unchanged.
    chaos: Optional[object] = None
    #: zero-copy shared-memory data plane (see repro.core.shm and
    #: docs/TILING.md "Transport"). ``None`` (default) resolves to "on
    #: where it pays and is supported": the mp engine backs its vertex
    #: planes with multiprocessing.shared_memory segments so workers read
    #: owned cells and halo strips as NumPy views instead of pickled pipe
    #: payloads, while the in-process engines keep plain arrays. ``True``
    #: additionally backs the in-process VertexStore value/finished
    #: arrays with segments. ``False`` forces the pickled pipe transport
    #: everywhere. Regardless of the setting, object-dtype apps, spilled
    #: stores, unsupported platforms and mp runs under *message* chaos
    #: (whose ChaosPipe semantics must be preserved) fall back to pipes.
    shm: Optional[bool] = None
    #: tiled path only: compile ``compute()`` into a vectorized NumPy tile
    #: kernel (repro.analysis: lift to IR, classify, emit) and use it in
    #: place of the per-vertex loop. Requires ``tile_shape`` and a typed
    #: ``value_dtype``; apps the classifier demotes to OPAQUE (see
    #: ``python -m repro analyze``) and sanitized runs keep the
    #: interpreted path, which remains the differential-testing oracle.
    #: A generated kernel takes precedence over a hand-written
    #: ``compute_tile``.
    autokernel: bool = False
    #: tiled path only: when a tile finishes, asynchronously pre-fetch
    #: the halo strips of the next tiles queued at that place (double-
    #: buffered per worker) so fetch latency overlaps compute; the
    #: synchronous batched fetch remains the correctness fallback. Hits
    #: and misses are observable as dpx10_halo_prefetch_{hits,misses}_total.
    halo_prefetch: bool = True
    #: let idle workers steal ready vertices from other places' lists.
    #: An extension beyond the paper (its future work cites X10
    #: work-stealing schedulers [24, 25]); results are unchanged, load
    #: balance and communication shift.
    work_stealing: bool = False
    #: serving-layer pacing hook (see repro.serve.scheduler): called with
    #: the number of cells about to execute before every tile / level
    #: batch is dispatched. The callback may *block* — that is how the
    #: job server imposes weighted-fair tile-level scheduling across
    #: concurrent jobs. ``None`` (default) dispatches immediately; batch
    #: composition and results are unchanged either way.
    pace: Optional[Callable[[int], None]] = None
    #: mp engine only: lease pre-forked place processes (and pooled
    #: shared-memory plane segments) from this repro.serve.pool.PlacePool
    #: instead of forking per run — the warm-start path the job server
    #: amortizes across requests. Leased places are re-initialized per
    #: run and returned (or replaced, if a fault killed them) at the end.
    #: Runs under *message* chaos fall back to fresh processes, because
    #: the chaos pipe wrapper must be installed at fork time.
    place_pool: Optional[object] = None

    def __post_init__(self) -> None:
        require(self.nplaces >= 1, f"nplaces must be >= 1, got {self.nplaces}")
        require(
            self.engine in _ENGINES,
            f"engine must be one of {_ENGINES}, got {self.engine!r}",
        )
        require(
            self.threads_per_place >= 1,
            f"threads_per_place must be >= 1, got {self.threads_per_place}",
        )
        require(
            self.custom_dist is not None or self.distribution in _DIST_KINDS,
            f"distribution must be one of {_DIST_KINDS}, got {self.distribution!r}",
        )
        require(
            self.scheduler in _SCHEDULERS,
            f"scheduler must be one of {_SCHEDULERS}, got {self.scheduler!r}",
        )
        require(self.cache_size >= 0, f"cache_size must be >= 0, got {self.cache_size}")
        require(
            self.value_nbytes >= 1,
            f"value_nbytes must be >= 1, got {self.value_nbytes}",
        )
        require(
            self.restore_manner in _RESTORE,
            f"restore_manner must be one of {_RESTORE}, got {self.restore_manner!r}",
        )
        require(
            self.ft_mode in ("recovery", "snapshot"),
            f"ft_mode must be 'recovery' or 'snapshot', got {self.ft_mode!r}",
        )
        require(
            self.snapshot_interval >= 0,
            f"snapshot_interval must be >= 0, got {self.snapshot_interval}",
        )
        require(
            self.progress_interval >= 0,
            f"progress_interval must be >= 0, got {self.progress_interval}",
        )
        require(
            not (self.static_schedule and self.engine != "inline"),
            "static_schedule requires the inline engine",
        )
        require(
            self.shm is None or isinstance(self.shm, bool),
            f"shm must be None, True or False, got {self.shm!r}",
        )
        if self.chaos is not None:
            # imported lazily: repro.chaos depends on repro.core for its
            # harness, so the config layer cannot import it at module scope
            from repro.chaos.schedule import ChaosSchedule

            require(
                isinstance(self.chaos, ChaosSchedule),
                f"chaos must be a repro.chaos.ChaosSchedule, got {type(self.chaos).__name__}",
            )
        if self.tile_shape is not None:
            require(
                len(tuple(self.tile_shape)) == 2
                and all(isinstance(t, int) and t >= 1 for t in self.tile_shape),
                f"tile_shape must be a pair of ints >= 1, got {self.tile_shape!r}",
            )
            require(
                not (self.static_schedule and self.tiling_enabled),
                "static_schedule and tile_shape are mutually exclusive "
                "(the tiled engine has its own schedule)",
            )
        require(
            not self.autokernel or self.tiling_enabled,
            "autokernel=True requires tile-granular execution "
            "(tile_shape=(th, tw) with th*tw > 1)",
        )

    @property
    def tiling_enabled(self) -> bool:
        """Whether the tile-granular engine is selected.

        ``tile_shape=(1, 1)`` is the degenerate one-cell tile and routes
        through the legacy per-vertex path unchanged.
        """
        return self.tile_shape is not None and tuple(self.tile_shape) != (1, 1)

    def make_dist(self, region: Region2D, alive_place_ids: Sequence[int]) -> Dist:
        """Build the configured distribution over the given alive places."""
        if self.custom_dist is not None:
            return self.custom_dist(region, alive_place_ids)
        return Dist.make(
            self.distribution,
            region,
            alive_place_ids,
            block_h=self.dist_block[0],
            block_w=self.dist_block[1],
        )
