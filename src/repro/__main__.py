"""Command-line interface: ``python -m repro <command>``.

Solve the shipped DP applications or regenerate the paper's evaluation
figures without writing any code:

.. code-block:: bash

    python -m repro lcs ABCBDAB BDCABA --places 4
    python -m repro sw GATTACA GCATGCT --engine threaded
    python -m repro lps character
    python -m repro knapsack --items 12 --capacity 40 --seed 3
    python -m repro matrix-chain --n 8
    python -m repro tree-knapsack --nodes 14 --capacity 20 --seed 1
    python -m repro tree-mis --nodes 14 --seed 1
    python -m repro msa3 GATTACA GCATGCT ACGTACG
    python -m repro patterns
    python -m repro fig10 --scale small
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro import (
    DPX10Config,
    make_chain_dims,
    make_knapsack_instance,
    solve_knapsack,
    solve_lcs,
    solve_lps,
    solve_matrix_chain,
    solve_nw,
    solve_sw,
)
from repro.bench import (
    fig10_scalability,
    fig11_size_scaling,
    fig12_overhead,
    fig13_recovery,
    format_series,
)
from repro.bench.figures import FIG10_NODES
from repro.patterns import PATTERNS


def _add_runtime_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--places", type=int, default=4, help="number of places")
    p.add_argument(
        "--engine", choices=["inline", "threaded"], default="inline"
    )
    p.add_argument(
        "--scheduler", choices=["local", "random", "mincomm"], default="local"
    )
    p.add_argument("--cache-size", type=int, default=64)


def _config(args: argparse.Namespace) -> DPX10Config:
    return DPX10Config(
        nplaces=args.places,
        engine=args.engine,
        scheduler=args.scheduler,
        cache_size=args.cache_size,
    )


def _print_report(report) -> None:
    print(f"  vertices computed : {report.completions}")
    print(f"  cross-place bytes : {report.network_bytes}")
    print(f"  cache hit rate    : {report.cache_hit_rate:.1%}")
    print(f"  wall time         : {report.wall_time:.3f}s")


def _cmd_lcs(args) -> int:
    app, report = solve_lcs(args.x, args.y, _config(args))
    print(f"LCS({args.x!r}, {args.y!r}) = {app.subsequence!r} (length {app.length})")
    _print_report(report)
    return 0


def _cmd_sw(args) -> int:
    app, report = solve_sw(args.x, args.y, _config(args))
    print(f"Smith-Waterman best local score: {app.best_score}")
    _print_report(report)
    return 0


def _cmd_nw(args) -> int:
    app, report = solve_nw(args.x, args.y, _config(args))
    print(f"Needleman-Wunsch global score: {app.score}")
    _print_report(report)
    return 0


def _cmd_lps(args) -> int:
    app, report = solve_lps(args.s, _config(args))
    print(f"Longest palindromic subsequence of {args.s!r}: length {app.length}")
    _print_report(report)
    return 0


def _cmd_knapsack(args) -> int:
    weights, values = make_knapsack_instance(
        args.items, args.capacity, seed=args.seed
    )
    app, report = solve_knapsack(weights, values, args.capacity, _config(args))
    print(f"0/1 Knapsack ({args.items} items, capacity {args.capacity}, "
          f"seed {args.seed}): best value {app.best_value}")
    print(f"  chosen items      : {app.chosen_items}")
    _print_report(report)
    return 0


def _cmd_matrix_chain(args) -> int:
    dims = make_chain_dims(args.n, seed=args.seed)
    app, report = solve_matrix_chain(dims, _config(args))
    print(f"Matrix chain of {args.n} matrices (dims {dims}):")
    print(f"  minimal multiplications: {app.min_multiplications}")
    _print_report(report)
    return 0


def _cmd_substring(args) -> int:
    from repro import solve_common_substring

    app, report = solve_common_substring(args.x, args.y, _config(args))
    print(f"Longest common substring: {app.substring!r} (length {app.length})")
    _print_report(report)
    return 0


def _cmd_cyk(args) -> int:
    from repro import CNFGrammar, solve_cyk

    grammar = CNFGrammar.balanced_parentheses()
    app, report = solve_cyk(grammar, args.s, _config(args))
    verdict = "derivable" if app.derivable else "NOT derivable"
    print(f"{args.s!r} is {verdict} by the balanced-parentheses grammar")
    _print_report(report)
    return 0


def _cmd_egg_drop(args) -> int:
    from repro import solve_egg_drop

    app, report = solve_egg_drop(args.eggs, args.floors, _config(args))
    print(f"Egg drop ({args.eggs} eggs, {args.floors} floors): "
          f"{app.trials} trials in the worst case")
    _print_report(report)
    return 0


def _cmd_tree_knapsack(args) -> int:
    from repro import make_tree_instance, solve_tree_knapsack

    parents, weights, values = make_tree_instance(args.nodes, seed=args.seed)
    app, report = solve_tree_knapsack(
        parents, weights, values, args.capacity, _config(args)
    )
    print(f"Tree knapsack ({args.nodes} nodes, capacity {args.capacity}, "
          f"seed {args.seed}): best value {app.best_value}")
    _print_report(report)
    return 0


def _cmd_tree_mis(args) -> int:
    from repro import make_tree_instance, solve_tree_mis

    parents, weights, _ = make_tree_instance(args.nodes, seed=args.seed)
    app, report = solve_tree_mis(parents, weights, _config(args))
    print(f"Tree max-weight independent set ({args.nodes} nodes, "
          f"seed {args.seed}): best weight {app.best_weight}")
    _print_report(report)
    return 0


def _cmd_msa3(args) -> int:
    from repro import solve_msa3

    app, report = solve_msa3(args.x, args.y, args.z, config=_config(args))
    print(f"3-way MSA sum-of-pairs score of {args.x!r}, {args.y!r}, "
          f"{args.z!r}: {app.best_score}")
    _print_report(report)
    return 0


def _cmd_patterns(args) -> int:
    print("Built-in DAG patterns (paper Figure 5):")
    for name in sorted(PATTERNS):
        cls = PATTERNS[name]
        doc = (cls.__doc__ or "").strip().splitlines()[0]
        print(f"  {name:14s} {doc}")
    if args.show:
        cls = PATTERNS[args.show]
        dag = cls(9, 9, 2) if args.show == "banded" else cls(9, 9)
        print(f"\n{args.show}: dependencies of the centre cell "
              f"(@ = cell, o = dependency)")
        print(dag.render_stencil())
    return 0


def _cmd_figure(args) -> int:
    if args.figure == "fig10":
        data = fig10_scalability(args.scale)
        print(format_series(
            f"Figure 10: execution time vs nodes ({args.scale} scale)",
            "nodes",
            FIG10_NODES,
            {a: [s[n] for n in FIG10_NODES] for a, s in data.items()},
        ))
        for a, s in data.items():
            print(f"  {a}: speedup 2->12 = {s[2] / s[12]:.2f}x")
    elif args.figure == "fig11":
        data = fig11_size_scaling(args.scale)
        sizes = sorted(next(iter(data.values())))
        print(format_series(
            f"Figure 11: execution time vs size on 10 nodes ({args.scale})",
            "V",
            sizes,
            {a: [s[v] for v in sizes] for a, s in data.items()},
        ))
    elif args.figure == "fig12":
        data = fig12_overhead(args.scale)
        sizes = sorted(next(iter(data.values())))
        print(format_series(
            f"Figure 12: DPX10/X10 overhead ratio ({args.scale})",
            "V",
            sizes,
            {f"{n} nodes": [row[v][2] for v in sizes] for n, row in data.items()},
            unit="x",
            precision=3,
        ))
    else:
        data = fig13_recovery(args.scale)
        sizes = sorted(next(iter(data.values())))
        print(format_series(
            f"Figure 13(a): recovery seconds ({args.scale})",
            "V",
            sizes,
            {f"{n} nodes": [row[v][0] for v in sizes] for n, row in data.items()},
        ))
        print()
        print(format_series(
            f"Figure 13(b): normalized one-fault time ({args.scale})",
            "V",
            sizes,
            {f"{n} nodes": [row[v][1] for v in sizes] for n, row in data.items()},
            unit="x",
        ))
    return 0


# Every subsystem that ships subcommands registers here, in one table:
# (module, registration function). Each function takes the subparsers
# object and calls ``sub.add_parser(...)`` for its commands. Keeping the
# table explicit (rather than scattering imports through build_parser)
# is what the docs-vs-CLI consistency test checks against.
SUBSYSTEM_PARSERS: "tuple[tuple[str, str], ...]" = (
    ("repro.analysis.cli", "add_lint_parser"),
    ("repro.analysis.cli", "add_analyze_parser"),
    ("repro.obs.cli", "add_obs_parser"),
    ("repro.chaos.cli", "add_chaos_parser"),
    ("repro.serve.cli", "add_serve_parser"),
)


def _register_subsystem_parsers(sub) -> None:
    import importlib

    for module_name, fn_name in SUBSYSTEM_PARSERS:
        getattr(importlib.import_module(module_name), fn_name)(sub)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="DPX10 reproduction: DP apps and paper-figure harnesses",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("lcs", help="longest common subsequence")
    p.add_argument("x")
    p.add_argument("y")
    _add_runtime_args(p)
    p.set_defaults(fn=_cmd_lcs)

    p = sub.add_parser("sw", help="Smith-Waterman local alignment")
    p.add_argument("x")
    p.add_argument("y")
    _add_runtime_args(p)
    p.set_defaults(fn=_cmd_sw)

    p = sub.add_parser("nw", help="Needleman-Wunsch global alignment")
    p.add_argument("x")
    p.add_argument("y")
    _add_runtime_args(p)
    p.set_defaults(fn=_cmd_nw)

    p = sub.add_parser("lps", help="longest palindromic subsequence")
    p.add_argument("s")
    _add_runtime_args(p)
    p.set_defaults(fn=_cmd_lps)

    p = sub.add_parser("knapsack", help="0/1 knapsack (random instance)")
    p.add_argument("--items", type=int, default=10)
    p.add_argument("--capacity", type=int, default=30)
    p.add_argument("--seed", type=int, default=0)
    _add_runtime_args(p)
    p.set_defaults(fn=_cmd_knapsack)

    p = sub.add_parser("matrix-chain", help="matrix-chain ordering (2D/1D)")
    p.add_argument("--n", type=int, default=8, help="number of matrices")
    p.add_argument("--seed", type=int, default=0)
    _add_runtime_args(p)
    p.set_defaults(fn=_cmd_matrix_chain)

    p = sub.add_parser("substring", help="longest common substring")
    p.add_argument("x")
    p.add_argument("y")
    _add_runtime_args(p)
    p.set_defaults(fn=_cmd_substring)

    p = sub.add_parser("cyk", help="CYK parse (balanced parentheses)")
    p.add_argument("s")
    _add_runtime_args(p)
    p.set_defaults(fn=_cmd_cyk)

    p = sub.add_parser("egg-drop", help="egg-drop puzzle (custom pattern)")
    p.add_argument("--eggs", type=int, default=2)
    p.add_argument("--floors", type=int, default=36)
    _add_runtime_args(p)
    p.set_defaults(fn=_cmd_egg_drop)

    p = sub.add_parser("tree-knapsack", help="tree knapsack (random tree)")
    p.add_argument("--nodes", type=int, default=12)
    p.add_argument("--capacity", type=int, default=20)
    p.add_argument("--seed", type=int, default=0)
    _add_runtime_args(p)
    p.set_defaults(fn=_cmd_tree_knapsack)

    p = sub.add_parser("tree-mis", help="tree max-weight independent set")
    p.add_argument("--nodes", type=int, default=12)
    p.add_argument("--seed", type=int, default=0)
    _add_runtime_args(p)
    p.set_defaults(fn=_cmd_tree_mis)

    p = sub.add_parser("msa3", help="3-way MSA (3-D Needleman-Wunsch)")
    p.add_argument("x")
    p.add_argument("y")
    p.add_argument("z")
    _add_runtime_args(p)
    p.set_defaults(fn=_cmd_msa3)

    p = sub.add_parser("patterns", help="list the built-in DAG patterns")
    p.add_argument(
        "--show", metavar="NAME", default=None, help="render NAME's stencil"
    )
    p.set_defaults(fn=_cmd_patterns)

    _register_subsystem_parsers(sub)

    for fig in ("fig10", "fig11", "fig12", "fig13"):
        p = sub.add_parser(fig, help=f"regenerate the paper's {fig} series")
        p.add_argument("--scale", choices=["small", "paper"], default="small")
        p.set_defaults(fn=_cmd_figure, figure=fig)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
