"""Shared utilities: deterministic RNG, timing, validation helpers."""

from repro.util.rng import derive_seed, seeded_rng
from repro.util.timer import Timer
from repro.util.validation import require

__all__ = ["derive_seed", "seeded_rng", "Timer", "require"]
