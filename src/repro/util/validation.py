"""Argument-validation helpers shared across modules."""

from __future__ import annotations

from typing import NoReturn, Type

from repro.errors import ConfigurationError, DPX10Error

__all__ = ["require", "fail"]


def require(
    condition: bool,
    message: str,
    exc: Type[DPX10Error] = ConfigurationError,
) -> None:
    """Raise ``exc(message)`` unless ``condition`` holds."""
    if not condition:
        raise exc(message)


def fail(message: str, exc: Type[DPX10Error] = ConfigurationError) -> NoReturn:
    """Unconditionally raise ``exc(message)``."""
    raise exc(message)
