"""Deterministic random-number helpers.

Every stochastic component in the library (random scheduler, workload
generators, fault plans) draws from a generator produced here so that runs
are reproducible bit-for-bit given a seed.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["seeded_rng", "derive_seed"]


def derive_seed(base_seed: int, *keys: object) -> int:
    """Derive a stable child seed from ``base_seed`` and a key path.

    Uses SHA-256 over the textual representation, so the same
    ``(base_seed, keys)`` always yields the same child seed, independent of
    process, platform and ``PYTHONHASHSEED``.
    """
    h = hashlib.sha256()
    h.update(str(int(base_seed)).encode())
    for k in keys:
        h.update(b"\x1f")
        h.update(repr(k).encode())
    return int.from_bytes(h.digest()[:8], "little")


def seeded_rng(seed: int, *keys: object) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed`` (+ key path)."""
    if keys:
        seed = derive_seed(seed, *keys)
    return np.random.default_rng(seed)
