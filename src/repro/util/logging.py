"""Library logging: namespaced, silent by default.

Every module logs under the ``repro`` namespace; applications opt in with
``logging.basicConfig`` or :func:`enable_debug_logging`. The runtime logs
phase transitions, fault events and recovery passes — the events an
operator of a distributed run would want in a post-mortem.
"""

from __future__ import annotations

import logging

__all__ = ["get_logger", "enable_debug_logging"]

_ROOT = "repro"


def get_logger(name: str) -> logging.Logger:
    """A logger under the library namespace (``repro.<name>``)."""
    if name.startswith(_ROOT):
        return logging.getLogger(name)
    return logging.getLogger(f"{_ROOT}.{name}")


def enable_debug_logging(level: int = logging.DEBUG) -> None:
    """Attach a stderr handler to the library's root logger.

    Convenience for examples and debugging sessions; library code never
    calls this.
    """
    logger = logging.getLogger(_ROOT)
    logger.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(
            logging.Formatter("%(asctime)s %(name)s %(levelname)s: %(message)s")
        )
        logger.addHandler(handler)
