"""Lightweight wall-clock timing used by the benchmark harness."""

from __future__ import annotations

import time

__all__ = ["Timer"]


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     pass
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc: object) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start
        self._start = None
