"""Recovery-time model (paper section VI-D / Figure 13a).

One recovery pass touches every vertex: finished vertices still held by
surviving places are restored into the new distributed array, and every
unfinished vertex is re-initialized (indegree reset). The pass "is
executed in parallel on all alive places", so

.. code-block:: none

    T_recover = total_vertices * t_recover / alive_places

``t_recover`` is calibrated in :mod:`repro.sim.costmodel` from Figure
13a's 4-node point (500 M vertices, 3 surviving nodes = 6 places, 65 s);
the same constant then reproduces the figure's two properties: linear
growth in the vertex count, and the 8-node curve sitting at roughly half
the 4-node curve.
"""

from __future__ import annotations

from repro.sim.costmodel import CostModel
from repro.util.validation import require

__all__ = ["recovery_time"]


def recovery_time(total_cells: int, alive_places: int, cost: CostModel) -> float:
    """Seconds to rebuild the distributed DAG over ``alive_places``."""
    require(total_cells >= 0, "total_cells must be >= 0")
    require(alive_places >= 1, "need at least one alive place")
    return total_cells * cost.t_recover / alive_places
