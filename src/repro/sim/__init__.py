"""Discrete-event cluster simulator for paper-scale experiments.

The paper evaluates DPX10 on Tianhe-1A (12-core nodes, InfiniBand QDR)
with 10^8–10^9-vertex DAGs — far beyond what per-vertex Python execution
can reach. This package runs the *same scheduling decisions* (DAG pattern,
distribution, worker/core structure, fault recovery protocol) as an
event-driven simulation over matrix tiles, with a cost model calibrated to
the paper's hardware era. It reproduces the **shapes** of Figures 10–13:
speedup saturation, linear size scaling, framework overhead ratio, and
recovery cost; absolute seconds are model outputs, not measurements.

Entry points:

* :func:`repro.sim.engine.simulate` — fault-free makespan of one app run;
* :func:`repro.sim.engine.simulate_with_fault` — mid-run node failure,
  recovery, and resumed execution;
* :class:`repro.sim.cluster.ClusterSpec` — node/core/network description
  (``ClusterSpec.tianhe1a(nodes)`` gives the paper's setup);
* :class:`repro.sim.costmodel.CostModel` — calibrated per-app constants.
"""

from repro.sim.cluster import ClusterSpec
from repro.sim.costmodel import CostModel
from repro.sim.engine import SimResult, simulate, simulate_with_fault
from repro.sim.recovery_model import recovery_time
from repro.sim.tiles import TileGrid

__all__ = [
    "ClusterSpec",
    "CostModel",
    "SimResult",
    "simulate",
    "simulate_with_fault",
    "recovery_time",
    "TileGrid",
]
