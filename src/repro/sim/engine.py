"""The discrete-event simulation engine.

:func:`simulate` runs one application DAG to completion on a cluster:
tiles become ready when their tile-dependencies finish, ready tiles are
assigned to the earliest-free worker thread of their owning place, and the
makespan is the last completion. This is classic list scheduling over the
same DAG/distribution structure the real runtime uses.

:func:`simulate_with_fault` reproduces the paper's recovery experiment
(Figure 13): run until a node dies mid-execution, lose that node's tiles
(and, under the default "discard" restore manner, any finished tile whose
home moves when the bands are recomputed over the survivors), pay the
recovery pass, then resume on the surviving cluster.
"""

from __future__ import annotations

import heapq
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Tuple

from repro.core.dag import Dag
from repro.errors import SimulationError
from repro.sim.cluster import ClusterSpec
from repro.sim.costmodel import CostModel
from repro.sim.recovery_model import recovery_time
from repro.sim.tiles import TileGrid, TileId
from repro.util.validation import require

__all__ = [
    "SimResult",
    "FaultSimResult",
    "MultiFaultSimResult",
    "SnapshotSimResult",
    "simulate",
    "simulate_with_fault",
    "simulate_with_faults",
    "simulate_with_fault_snapshot",
]


@dataclass
class SimResult:
    """Outcome of one fault-free simulated run."""

    makespan: float
    total_cells: int
    ntiles: int
    #: sum of per-tile execution times (the work the cluster performed)
    work_seconds: float
    #: portion of the work spent on remote dependency fetches
    comm_seconds: float
    nplaces: int
    workers: int
    #: completion log [(finish_time, tile)] in completion order
    completions: List[Tuple[float, TileId]] = field(default_factory=list)
    #: busy seconds per place
    busy_by_place: Dict[int, float] = field(default_factory=dict)

    @property
    def parallel_efficiency(self) -> float:
        if self.makespan == 0:
            return 1.0
        return self.work_seconds / (self.makespan * self.workers)

    def place_utilization(self) -> Dict[int, float]:
        """Busy fraction per place over the makespan."""
        if self.makespan == 0:
            return {}
        per_place_capacity = self.makespan * (self.workers / max(1, self.nplaces))
        return {
            p: min(1.0, busy / per_place_capacity)
            for p, busy in sorted(self.busy_by_place.items())
        }

    def completion_profile(self, buckets: int = 20) -> List[int]:
        """Tile completions per virtual-time bucket — the wavefront width.

        Same analysis as the real runtime's trace, over simulated time.
        """
        if not self.completions or buckets < 1:
            return [0] * max(buckets, 0)
        span = self.makespan or 1e-12
        out = [0] * buckets
        for finish, _ in self.completions:
            k = min(buckets - 1, int(finish / span * buckets))
            out[k] += 1
        return out


@dataclass
class FaultSimResult:
    """Outcome of a run with one mid-execution node failure."""

    no_fault_makespan: float
    fail_time: float
    recovery_seconds: float
    resume_makespan: float
    tiles_preserved: int
    tiles_lost: int

    @property
    def total(self) -> float:
        return self.fail_time + self.recovery_seconds + self.resume_makespan

    @property
    def normalized(self) -> float:
        """Execution time relative to the fault-free run (Figure 13b)."""
        return self.total / self.no_fault_makespan if self.no_fault_makespan else 1.0


@dataclass
class MultiFaultSimResult:
    """Outcome of a run with a sequence of node failures."""

    no_fault_makespan: float
    #: execution seconds of each segment (up to its fault, last to finish)
    segments: List[float]
    #: recovery seconds paid after each fault
    recoveries: List[float]
    surviving_nodes: int

    @property
    def total(self) -> float:
        return sum(self.segments) + sum(self.recoveries)

    @property
    def normalized(self) -> float:
        return self.total / self.no_fault_makespan if self.no_fault_makespan else 1.0


def _run_schedule(
    grid: TileGrid,
    cluster: ClusterSpec,
    cost: CostModel,
    places: Sequence[int],
    done: FrozenSet[TileId],
) -> SimResult:
    """List-schedule every not-yet-done tile over the given places."""
    pending = [t for t in grid.tiles if t not in done]
    indeg: Dict[TileId, int] = {}
    dependents: Dict[TileId, List[TileId]] = defaultdict(list)
    for t in pending:
        deps = [d for d in grid.deps(t) if d not in done]
        indeg[t] = len(deps)
        for d in deps:
            dependents[d].append(t)

    core_free: Dict[int, List[float]] = {
        pid: [0.0] * cluster.threads_per_place for pid in places
    }
    events: List[Tuple[float, TileId]] = []
    work = comm = 0.0
    busy: Dict[int, float] = {pid: 0.0 for pid in places}

    def schedule(tile: TileId, ready_time: float) -> None:
        nonlocal work, comm
        pid = grid.place_of(tile, places)
        heap = core_free[pid]
        start = max(heapq.heappop(heap), ready_time)
        fetch_s = grid.remote_fetches(tile, cost, places) * cost.t_msg
        dur = grid.cells(tile) * cost.t_cell + fetch_s
        finish = start + dur
        heapq.heappush(heap, finish)
        heapq.heappush(events, (finish, tile))
        work += dur
        comm += fetch_s
        busy[pid] += dur

    for t in pending:
        if indeg[t] == 0:
            schedule(t, 0.0)

    completions: List[Tuple[float, TileId]] = []
    while events:
        finish, tile = heapq.heappop(events)
        completions.append((finish, tile))
        for u in dependents.get(tile, ()):  # may schedule new work
            indeg[u] -= 1
            if indeg[u] == 0:
                schedule(u, finish)

    if len(completions) != len(pending):
        raise SimulationError(
            f"simulated schedule stalled: {len(completions)}/{len(pending)} tiles ran"
        )
    makespan = completions[-1][0] if completions else 0.0
    return SimResult(
        makespan=makespan,
        total_cells=grid.total_cells,
        ntiles=len(grid.tiles),
        work_seconds=work,
        comm_seconds=comm,
        nplaces=len(places),
        workers=len(places) * cluster.threads_per_place,
        completions=completions,
        busy_by_place=busy,
    )


def simulate(
    dag: Dag,
    cluster: ClusterSpec,
    cost: CostModel,
    tile_size: int = 96,
    dist: str = "block_cols",
) -> SimResult:
    """Fault-free simulated execution of ``dag`` on ``cluster``."""
    grid = TileGrid(dag, tile_size, cluster.nplaces, dist)
    return _run_schedule(
        grid, cluster, cost, places=list(range(cluster.nplaces)), done=frozenset()
    )


def simulate_with_fault(
    dag: Dag,
    cluster: ClusterSpec,
    cost: CostModel,
    fail_node: int,
    at_fraction: float = 0.5,
    restore_manner: str = "discard",
    tile_size: int = 96,
    dist: str = "block_cols",
) -> FaultSimResult:
    """One node dies after ``at_fraction`` of the cells completed.

    Follows the runtime's recovery protocol: everything on the dead node's
    places is lost; finished tiles on survivors are preserved in place if
    their band assignment is unchanged under the survivor distribution,
    else copied ("copy") or discarded for recomputation ("discard").
    """
    require(0.0 <= at_fraction <= 1.0, "at_fraction must be in [0, 1]")
    require(restore_manner in ("discard", "copy"), "bad restore_manner")
    require(0 <= fail_node < cluster.nodes, "fail_node out of range")
    require(cluster.nodes >= 2, "need a surviving node")

    grid = TileGrid(dag, tile_size, cluster.nplaces, dist)
    all_places = list(range(cluster.nplaces))
    base = _run_schedule(grid, cluster, cost, all_places, frozenset())

    # the failure instant: when at_fraction of cells have completed
    target = at_fraction * grid.total_cells
    fail_time = 0.0
    finished_at_fail: List[TileId] = []
    done_cells = 0
    for finish, tile in base.completions:
        if done_cells >= target:
            break
        done_cells += grid.cells(tile)
        finished_at_fail.append(tile)
        fail_time = finish

    dead = set(
        range(
            fail_node * cluster.places_per_node,
            (fail_node + 1) * cluster.places_per_node,
        )
    )
    survivors = [p for p in all_places if p not in dead]

    preserved = []
    for tile in finished_at_fail:
        old_home = grid.place_of(tile, all_places)
        if old_home in dead:
            continue  # lost with the node
        if restore_manner == "copy" or grid.place_of(tile, survivors) == old_home:
            preserved.append(tile)
    lost = len(finished_at_fail) - len(preserved)

    rec_s = recovery_time(grid.total_cells, len(survivors), cost)
    resume = _run_schedule(grid, cluster, cost, survivors, frozenset(preserved))
    return FaultSimResult(
        no_fault_makespan=base.makespan,
        fail_time=fail_time,
        recovery_seconds=rec_s,
        resume_makespan=resume.makespan,
        tiles_preserved=len(preserved),
        tiles_lost=lost,
    )


def simulate_with_faults(
    dag: Dag,
    cluster: ClusterSpec,
    cost: CostModel,
    failures: Sequence[Tuple[int, float]],
    restore_manner: str = "discard",
    tile_size: int = 96,
    dist: str = "block_cols",
) -> MultiFaultSimResult:
    """A sequence of node failures: ``failures = [(node, at_fraction), ...]``.

    Each entry kills ``node`` once the global finished-cell count reaches
    ``at_fraction`` of the total. After every fault the recovery protocol
    runs (survivor redistribution + preserved/discarded results) and
    execution resumes, exactly like the runtime's multi-recovery loop.
    """
    require(restore_manner in ("discard", "copy"), "bad restore_manner")
    ordered = sorted(failures, key=lambda nf: nf[1])
    seen_nodes = [n for n, _ in ordered]
    require(len(set(seen_nodes)) == len(seen_nodes), "a node can only die once")
    require(
        len(ordered) < cluster.nodes,
        "at least one node must survive the fault sequence",
    )
    for node, frac in ordered:
        require(0 <= node < cluster.nodes, f"no node {node}")
        require(0.0 <= frac <= 1.0, "at_fraction must be in [0, 1]")

    grid = TileGrid(dag, tile_size, cluster.nplaces, dist)
    places = list(range(cluster.nplaces))
    base = _run_schedule(grid, cluster, cost, places, frozenset())

    done: frozenset = frozenset()
    done_cells = 0
    segments: List[float] = []
    recoveries: List[float] = []
    for node, frac in ordered:
        segment = _run_schedule(grid, cluster, cost, places, done)
        target = frac * grid.total_cells
        t_fail = 0.0
        newly_finished: List[TileId] = []
        cells = done_cells
        for finish, tile in segment.completions:
            if cells >= target:
                break
            cells += grid.cells(tile)
            newly_finished.append(tile)
            t_fail = finish
        dead = set(
            range(
                node * cluster.places_per_node,
                (node + 1) * cluster.places_per_node,
            )
        )
        survivors = [p for p in places if p not in dead]
        finished_total = set(done) | set(newly_finished)
        preserved = set()
        for tile in finished_total:
            old_home = grid.place_of(tile, places)
            if old_home in dead:
                continue
            if restore_manner == "copy" or grid.place_of(tile, survivors) == old_home:
                preserved.add(tile)
        segments.append(t_fail)
        recoveries.append(recovery_time(grid.total_cells, len(survivors), cost))
        places = survivors
        done = frozenset(preserved)
        done_cells = sum(grid.cells(t) for t in done)

    final = _run_schedule(grid, cluster, cost, places, done)
    segments.append(final.makespan)
    return MultiFaultSimResult(
        no_fault_makespan=base.makespan,
        segments=segments,
        recoveries=recoveries,
        surviving_nodes=len(places) // cluster.places_per_node,
    )


@dataclass
class SnapshotSimResult:
    """Outcome of a snapshot-FT run with one node failure (the baseline)."""

    no_fault_makespan: float
    #: checkpointing overhead paid before the fault
    checkpoint_seconds: float
    fail_time: float
    restore_seconds: float
    resume_makespan: float
    snapshots_taken: int

    @property
    def total(self) -> float:
        return (
            self.fail_time
            + self.checkpoint_seconds
            + self.restore_seconds
            + self.resume_makespan
        )

    @property
    def normalized(self) -> float:
        return self.total / self.no_fault_makespan if self.no_fault_makespan else 1.0


def simulate_with_fault_snapshot(
    dag: Dag,
    cluster: ClusterSpec,
    cost: CostModel,
    fail_node: int,
    at_fraction: float = 0.5,
    checkpoint_every: float = 0.1,
    tile_size: int = 96,
    dist: str = "block_cols",
) -> SnapshotSimResult:
    """The periodic-snapshot baseline (section VI-D) at cluster scale.

    Checkpoints fire every ``checkpoint_every`` fraction of progress and
    copy every finished cell to stable storage (costed like the recovery
    pass: parallel over places at ``t_recover`` per cell). On the fault,
    the run rolls back to the last checkpoint — progress since it is lost
    even on healthy places — restores from stable storage, and resumes on
    the survivors.
    """
    require(0.0 <= at_fraction <= 1.0, "at_fraction must be in [0, 1]")
    require(0.0 < checkpoint_every <= 1.0, "checkpoint_every must be in (0, 1]")
    require(0 <= fail_node < cluster.nodes, "fail_node out of range")
    require(cluster.nodes >= 2, "need a surviving node")

    grid = TileGrid(dag, tile_size, cluster.nplaces, dist)
    all_places = list(range(cluster.nplaces))
    base = _run_schedule(grid, cluster, cost, all_places, frozenset())

    target = at_fraction * grid.total_cells
    fail_time = 0.0
    done_cells = 0
    finished_at_fail: List[TileId] = []
    for finish, tile in base.completions:
        if done_cells >= target:
            break
        done_cells += grid.cells(tile)
        finished_at_fail.append(tile)
        fail_time = finish

    # checkpoints completed strictly before the fault
    ckpt_step = checkpoint_every * grid.total_cells
    n_ckpts = int(done_cells / ckpt_step)
    # each checkpoint copies everything finished so far: model the k-th as
    # k * ckpt_step cells, in parallel over all places
    ckpt_cells = sum(k * ckpt_step for k in range(1, n_ckpts + 1))
    checkpoint_seconds = ckpt_cells * cost.t_recover / cluster.nplaces

    # roll back to the last checkpoint: keep only its tiles (oldest first)
    keep_cells = n_ckpts * ckpt_step
    preserved: List[TileId] = []
    acc = 0.0
    for tile in finished_at_fail:
        if acc >= keep_cells:
            break
        acc += grid.cells(tile)
        preserved.append(tile)

    dead = set(
        range(
            fail_node * cluster.places_per_node,
            (fail_node + 1) * cluster.places_per_node,
        )
    )
    survivors = [p for p in all_places if p not in dead]
    # restore = re-distribute the checkpointed cells over the survivors
    restore_seconds = acc * cost.t_recover / len(survivors)
    resume = _run_schedule(grid, cluster, cost, survivors, frozenset(preserved))
    return SnapshotSimResult(
        no_fault_makespan=base.makespan,
        checkpoint_seconds=checkpoint_seconds,
        fail_time=fail_time,
        restore_seconds=restore_seconds,
        resume_makespan=resume.makespan,
        snapshots_taken=n_ckpts,
    )
