"""Cluster descriptions for the simulator.

The paper's setup (section VIII): "Each computing node of Tianhe-1A ...
has dual 2.93GHz Intel Xeon 5670 six-core processors (total 12 cores per
node / 24 hardware threads) ... connected with InfiniBand QDR ...
``X10_NTHREADS`` to 6 ... ``X10_NPLACES`` was twice the number of
computing nodes" — i.e. 2 places per node, 6 worker threads per place,
12 workers per node.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validation import require

__all__ = ["ClusterSpec"]


@dataclass(frozen=True)
class ClusterSpec:
    """A homogeneous cluster: nodes x (places x worker threads) + network."""

    nodes: int
    places_per_node: int = 2  # X10_NPLACES / nodes
    threads_per_place: int = 6  # X10_NTHREADS
    #: per-message network latency, seconds (InfiniBand QDR class)
    alpha: float = 2.0e-6
    #: network bandwidth, bytes/second
    beta: float = 3.2e9

    def __post_init__(self) -> None:
        require(self.nodes >= 1, f"need >= 1 node, got {self.nodes}")
        require(self.places_per_node >= 1, "places_per_node must be >= 1")
        require(self.threads_per_place >= 1, "threads_per_place must be >= 1")
        require(self.alpha >= 0 and self.beta > 0, "bad network parameters")

    @property
    def nplaces(self) -> int:
        return self.nodes * self.places_per_node

    @property
    def workers(self) -> int:
        """Total worker threads (equals hardware cores in the paper)."""
        return self.nplaces * self.threads_per_place

    @classmethod
    def tianhe1a(cls, nodes: int) -> "ClusterSpec":
        """The paper's Tianhe-1A configuration for ``nodes`` nodes."""
        return cls(nodes=nodes)

    def without_node(self, node: int) -> "ClusterSpec":
        """The surviving cluster after one node fails."""
        require(0 <= node < self.nodes, f"no node {node} in {self.nodes}-node cluster")
        require(self.nodes >= 2, "cannot lose the only node")
        return ClusterSpec(
            nodes=self.nodes - 1,
            places_per_node=self.places_per_node,
            threads_per_place=self.threads_per_place,
            alpha=self.alpha,
            beta=self.beta,
        )
