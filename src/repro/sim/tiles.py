"""Tile decomposition of a DP matrix for the cluster simulator.

The simulator executes the DAG at tile granularity: a ``tile_size`` x
``tile_size`` block of cells is one schedulable task whose dependencies
come from the pattern's ``tile_deps``. Tiles are assigned to places in
contiguous column bands (the paper's default column splicing) or row
bands, and each tile's cost combines its active-cell compute time with an
estimate of its remote dependency fetches.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.dag import Dag
from repro.patterns.base import StencilDag
from repro.sim.costmodel import CostModel
from repro.util.validation import require

__all__ = ["TileGrid", "active_cells_in_rect"]

TileId = Tuple[int, int]


def active_cells_in_rect(dag: Dag, r0: int, r1: int, c0: int, c1: int) -> int:
    """Active cells of ``dag`` inside ``[r0, r1) x [c0, c1)``.

    Delegates to :meth:`repro.core.dag.Dag.active_cells_in_rect`, which
    shaped patterns override with closed forms.
    """
    return dag.active_cells_in_rect(r0, r1, c0, c1)


class TileGrid:
    """A ``dag`` blocked into tiles, mapped onto places."""

    def __init__(
        self,
        dag: Dag,
        tile_size: int,
        nplaces: int,
        dist: str = "block_cols",
    ) -> None:
        require(tile_size >= 1, f"tile_size must be >= 1, got {tile_size}")
        require(nplaces >= 1, f"nplaces must be >= 1, got {nplaces}")
        require(
            dist in ("block_cols", "block_rows"),
            f"simulator supports block_cols/block_rows, got {dist!r}",
        )
        self.dag = dag
        self.tile_size = tile_size
        self.nplaces = nplaces
        self.dist = dist
        self.nti = -(-dag.height // tile_size)
        self.ntj = -(-dag.width // tile_size)
        self._cells: Dict[TileId, int] = {}
        tiles: List[TileId] = []
        for ti in range(self.nti):
            r0, r1 = self._row_span(ti)
            for tj in range(self.ntj):
                c0, c1 = self._col_span(tj)
                n = active_cells_in_rect(dag, r0, r1, c0, c1)
                if n > 0:
                    tiles.append((ti, tj))
                    self._cells[(ti, tj)] = n
        self.tiles = tiles
        self.total_cells = sum(self._cells.values())

    # -- geometry -------------------------------------------------------------
    def _row_span(self, ti: int) -> Tuple[int, int]:
        r0 = ti * self.tile_size
        return r0, min(r0 + self.tile_size, self.dag.height)

    def _col_span(self, tj: int) -> Tuple[int, int]:
        c0 = tj * self.tile_size
        return c0, min(c0 + self.tile_size, self.dag.width)

    def cells(self, tile: TileId) -> int:
        return self._cells[tile]

    # -- placement ---------------------------------------------------------------
    def place_of(self, tile: TileId, places: Optional[Sequence[int]] = None) -> int:
        """The place owning ``tile`` under contiguous band splitting.

        ``places`` defaults to ``range(nplaces)``; recovery passes the
        surviving subset and the bands are recomputed over it, exactly as
        the runtime builds a new Dist over the alive places.
        """
        ids = list(places) if places is not None else list(range(self.nplaces))
        n = len(ids)
        axis = self.ntj if self.dist == "block_cols" else self.nti
        k = tile[1] if self.dist == "block_cols" else tile[0]
        base, extra = divmod(axis, n)
        # band b covers [offset(b), offset(b+1)) where the first `extra`
        # bands are one wider
        wide_span = (base + 1) * extra
        if k < wide_span:
            b = k // (base + 1)
        else:
            b = extra + (k - wide_span) // base if base > 0 else n - 1
        return ids[min(b, n - 1)]

    # -- dependencies ----------------------------------------------------------------
    def deps(self, tile: TileId) -> List[TileId]:
        return [
            d
            for d in self.dag.tile_deps(tile[0], tile[1], self.nti, self.ntj)
            if d in self._cells
        ]

    # -- communication estimate ---------------------------------------------------------
    def remote_fetches(
        self,
        tile: TileId,
        cost: CostModel,
        places: Optional[Sequence[int]] = None,
    ) -> float:
        """Estimated remote dependency fetches charged to ``tile``.

        * stencil patterns: cells on the place-boundary edge of the tile
          fetch across the band boundary (``fetches_per_boundary_cell``
          folds in the cache's de-duplication);
        * ``full_row`` / ``triangular``: every cell reads O(row) remote
          data — modelled as all but the local band's share;
        * ``knapsack``: the data-dependent jump ``(i-1, j - w)`` crosses
          the column band with probability ~ ``E[w] * nplaces / width``.
        """
        ti, tj = tile
        n_cells = self._cells[tile]
        nplaces = len(places) if places is not None else self.nplaces
        name = getattr(self.dag, "pattern_name", type(self.dag).__name__)

        if name in ("full_row", "triangular"):
            return n_cells * (nplaces - 1) / max(1, nplaces)

        fetches = 0.0
        if isinstance(self.dag, StencilDag):
            offsets = self.dag.offsets
            if self.dist == "block_cols" and any(dj < 0 for _, dj in offsets):
                if tj > 0 and self.place_of((ti, tj - 1), places) != self.place_of(
                    tile, places
                ):
                    r0, r1 = self._row_span(ti)
                    c0, _ = self._col_span(tj)
                    boundary = active_cells_in_rect(self.dag, r0, r1, c0, c0 + 1)
                    fetches += boundary * cost.fetches_per_boundary_cell
            if self.dist == "block_rows" and any(di < 0 for di, _ in offsets):
                if ti > 0 and self.place_of((ti - 1, tj), places) != self.place_of(
                    tile, places
                ):
                    r0, _ = self._row_span(ti)
                    c0, c1 = self._col_span(tj)
                    boundary = active_cells_in_rect(self.dag, r0, r0 + 1, c0, c1)
                    fetches += boundary * cost.fetches_per_boundary_cell
            # the interval pattern's (+1, dj) offsets read downward: under
            # block_rows those cross the band below
            if self.dist == "block_rows" and any(di > 0 for di, _ in offsets):
                if ti + 1 < self.nti and self.place_of(
                    (ti + 1, tj), places
                ) != self.place_of(tile, places):
                    _, r1 = self._row_span(ti)
                    c0, c1 = self._col_span(tj)
                    boundary = active_cells_in_rect(self.dag, r1 - 1, r1, c0, c1)
                    fetches += boundary * cost.fetches_per_boundary_cell
            return fetches

        if name == "KnapsackDag" or type(self.dag).__name__ == "KnapsackDag":
            if ti == 0:
                return 0.0
            if self.dist == "block_cols":
                p_cross = min(1.0, cost.knapsack_weight_fraction * nplaces)
                return n_cells * p_cross
            # block_rows: both deps read the previous row band's boundary
            if self.place_of((ti - 1, tj), places) != self.place_of(tile, places):
                r0, _ = self._row_span(ti)
                c0, c1 = self._col_span(tj)
                return 2.0 * active_cells_in_rect(self.dag, r0, r0 + 1, c0, c1)
            return 0.0

        # unknown custom pattern: assume stencil-like left boundary
        if tj > 0 and self.place_of((ti, tj - 1), places) != self.place_of(tile, places):
            r0, r1 = self._row_span(ti)
            return (r1 - r0) * cost.fetches_per_boundary_cell
        return 0.0

    def exec_time(
        self,
        tile: TileId,
        cost: CostModel,
        places: Optional[Sequence[int]] = None,
    ) -> float:
        """Modelled seconds to execute ``tile`` on one worker thread."""
        return self._cells[tile] * cost.t_cell + self.remote_fetches(
            tile, cost, places
        ) * cost.t_msg
