"""The simulator's cost model and its per-application calibration.

Every constant is an *effective* per-vertex or per-message cost for the
paper's stack (Native X10 2.5.1, socket runtime, Tianhe-1A nodes):

* ``t_vertex`` — user ``compute()`` plus X10 activity spawn per vertex.
  DP cells are tiny (a few max/add ops); the ~10 µs magnitude is
  dominated by per-vertex activity management and dependency retrieval.
  It is pinned by the paper's only absolute numbers: recovery takes 13-65 s
  (Figure 13a) yet one fault only moderately inflates total time
  (Figure 13b), so execution must sit well above recovery — ~10 µs/vertex
  puts a 300 M-vertex run in the hundreds of seconds, consistent with both.
* ``framework_overhead`` — DPX10's extra bookkeeping per vertex over a
  hand-written X10 program: DAG/pattern dispatch, indegree updates, ready
  list, finish counting. Calibrated to 12 % so that the simulated
  DPX10/X10 ratio spans the paper's 1.02–1.12 once communication (paid by
  both) dilutes it (Figure 12b).
* ``dep_factor`` — extra dependency-resolution work for irregular
  patterns; the paper singles out 0/1KP: "it needs more time to resolve
  the dependencies" (Figure 11).
* ``t_msg`` — effective cost per remote dependency fetch (synchronous
  pull of a vertex value through the cache layer, socket runtime).
* ``remote_dep_fraction`` hooks — how much of a tile's cells fetch
  remotely; pattern/distribution-specific, see :mod:`repro.sim.tiles`.
* ``t_recover`` — per-vertex recovery cost (restore finished + reinit
  unfinished), executed in parallel over surviving places. Calibrated
  from Figure 13a: 500 M vertices, 4 nodes (6 surviving places) -> 65 s
  gives 7.8e-7 s; the same constant then predicts ~28 s on 8 nodes,
  matching the paper's ~30 s.

Calibration targets (shape, not absolute seconds) and where they land are
recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.validation import require

__all__ = ["CostModel"]


@dataclass(frozen=True)
class CostModel:
    """Calibrated per-app cost constants for the simulator."""

    #: seconds of compute + activity management per vertex
    t_vertex: float
    #: DPX10 bookkeeping as a fraction of t_vertex (0 for the native baseline)
    framework_overhead: float = 0.12
    #: extra dependency-resolution factor (irregular patterns)
    dep_factor: float = 0.0
    #: seconds of stall per remote dependency fetch — the socket-runtime
    #: round trip plus waiting for the producing activity to surface at
    #: the remote place (tens of activity slots, not raw wire latency)
    t_msg: float = 200e-6
    #: bytes per vertex value on the wire
    value_nbytes: int = 8
    #: seconds per vertex of recovery work (per surviving place, parallel)
    t_recover: float = 7.8e-7
    #: expected weight / capacity ratio (knapsack jump reach)
    knapsack_weight_fraction: float = 0.004
    #: effective fetches per boundary cell (cache collapses the diagonal
    #: stencil's 2-3 crossing reads into ~1; set 3.0 for cacheless runs)
    fetches_per_boundary_cell: float = 1.0

    def __post_init__(self) -> None:
        require(self.t_vertex > 0, "t_vertex must be > 0")
        require(self.framework_overhead >= 0, "framework_overhead must be >= 0")
        require(self.dep_factor >= 0, "dep_factor must be >= 0")
        require(self.t_msg >= 0, "t_msg must be >= 0")
        require(self.t_recover >= 0, "t_recover must be >= 0")

    @property
    def t_cell(self) -> float:
        """Effective seconds per vertex including framework work."""
        return self.t_vertex * (1.0 + self.framework_overhead) * (1.0 + self.dep_factor)

    def native(self) -> "CostModel":
        """The hand-written (no-framework) baseline of Figure 12."""
        return replace(self, framework_overhead=0.0)

    def cacheless(self) -> "CostModel":
        """Disable the remote-vertex cache (Figure 12's configuration)."""
        return replace(self, fetches_per_boundary_cell=3.0)

    # -- application presets -------------------------------------------------------
    @classmethod
    def for_app(cls, app: str) -> "CostModel":
        """Calibrated constants for the four evaluation applications."""
        presets = {
            # SWLAG computes three recurrences (H, E, F) per vertex
            "swlag": cls(t_vertex=12.5e-6),
            # SW/MTP are single-value stencil recurrences
            "sw": cls(t_vertex=10.0e-6),
            "mtp": cls(t_vertex=9.5e-6),
            # LPS: the interval pattern's three cross-band reads see
            # almost no FIFO-cache reuse (reuse distance spans the whole
            # column band), so fetches stay fine-grained and expensive
            "lps": cls(t_vertex=10.5e-6, t_msg=600e-6, fetches_per_boundary_cell=3.0),
            # 0/1KP: cheap compute but costly, data-dependent dependency
            # resolution and scattered remote reads
            "knapsack": cls(t_vertex=9.0e-6, dep_factor=0.30),
        }
        require(app in presets, f"unknown app {app!r}; known: {sorted(presets)}")
        return presets[app]
