"""Causal model over an :class:`~repro.core.trace.ExecutionTrace`.

Three layers, all post-mortem-friendly (they work on live traces and on
traces round-tripped through the Chrome-trace / JSONL exporters):

1. **Blocking graph / critical path** — tile events are linked by the
   dependency offsets the runtime stashed in ``trace.meta`` (coarsened
   ``tile_offsets`` for tiled runs, the DAG's cell offsets for
   per-vertex stencil runs). :func:`critical_path` walks backwards from
   the last-finishing event, at each step following the dependency that
   finished latest — the chain that actually determined wall-clock time.

2. **Latency waterfall** — :func:`waterfall` classifies every instant of
   every place's timeline into exactly one category (``compute`` >
   ``halo-wait`` > ``pacing`` > ``recovery`` > ``idle``, by priority) so
   per-place categories sum to the run window *exactly*; runtime-global
   spans (partition, schedule, lease, queue, admission, recovery) are
   totaled in a separate row. :func:`attribution` flattens this into
   fractions of total place-time.

3. **Straggler / limplock detection** — :class:`StragglerDetector` keeps
   rolling per-place per-cell service baselines and flags places whose
   windowed median exceeds ``k``× the fleet median (with an absolute-excess floor so
   microsecond noise never alarms), publishing ``dpx10_straggler{place}``
   gauges; :func:`detect_stragglers` applies the same rule to a finished
   trace.

:func:`explain_text` and :func:`diff_text` render the human surfaces
behind ``python -m repro obs explain`` / ``repro obs diff``.
"""

from __future__ import annotations

import statistics
import threading
from collections import deque
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.trace import ExecutionTrace, Span, TraceEvent

__all__ = [
    "classify_span",
    "critical_path",
    "critical_path_fraction",
    "waterfall",
    "attribution",
    "causal_summary",
    "detect_stragglers",
    "StragglerDetector",
    "explain_text",
    "diff_text",
]

#: waterfall categories in priority order (earlier wins an overlap)
PLACE_CATEGORIES = ("compute", "halo-wait", "pacing", "recovery")
#: runtime-global categories (the serve/master row of the waterfall)
RUNTIME_CATEGORIES = (
    "queue", "admission", "lease", "partition", "schedule",
    "pacing", "recovery", "collect", "other",
)

#: container spans that merely wrap other work — excluded from attribution
_CONTAINER_NAMES = ("execute", "run")


def classify_span(span: Span) -> Optional[str]:
    """Map a span to a waterfall category, or ``None`` for containers."""
    name = span.name
    if span.category == "halo":
        return "halo-wait"
    if span.category == "pace" or name.startswith("pace"):
        return "pacing"
    if span.category == "recovery" or name.startswith("recovery"):
        return "recovery"
    if span.category == "serve":
        head = name.split(":", 1)[0]
        if head in ("admission", "queue", "lease"):
            return head
        if head in _CONTAINER_NAMES:
            return None
        return "other"
    if name in ("partition", "schedule", "collect"):
        return name
    if name.startswith("lease") or name.startswith("pool"):
        return "lease"
    if name.split(":", 1)[0] in _CONTAINER_NAMES:
        return None
    return "other"


# ---------------------------------------------------------------------------
# interval algebra (closed-open intervals, merged unions)
# ---------------------------------------------------------------------------

def _union(intervals: Iterable[Tuple[float, float]]) -> List[Tuple[float, float]]:
    ivs = sorted((s, e) for s, e in intervals if e > s)
    out: List[Tuple[float, float]] = []
    for s, e in ivs:
        if out and s <= out[-1][1]:
            if e > out[-1][1]:
                out[-1] = (out[-1][0], e)
        else:
            out.append((s, e))
    return out


def _subtract(
    ivs: Sequence[Tuple[float, float]],
    holes: Sequence[Tuple[float, float]],
) -> List[Tuple[float, float]]:
    """``ivs`` minus ``holes`` (both pre-merged unions)."""
    out: List[Tuple[float, float]] = []
    for s, e in ivs:
        cur = s
        for hs, he in holes:
            if he <= cur:
                continue
            if hs >= e:
                break
            if hs > cur:
                out.append((cur, hs))
            cur = max(cur, he)
            if cur >= e:
                break
        if cur < e:
            out.append((cur, e))
    return out


def _total(ivs: Iterable[Tuple[float, float]]) -> float:
    return sum(e - s for s, e in ivs)


# ---------------------------------------------------------------------------
# critical path
# ---------------------------------------------------------------------------

def _event_key(e: TraceEvent) -> Tuple[int, int]:
    return e.tile if e.tile is not None else (e.i, e.j)


def _dep_offsets(trace: ExecutionTrace) -> List[Tuple[int, int]]:
    offs = trace.meta.get("tile_offsets") or trace.meta.get("offsets") or []
    return [(int(a), int(b)) for a, b in offs]


def critical_path(trace: ExecutionTrace) -> List[TraceEvent]:
    """The dependency chain that determined wall-clock time.

    Starts at the latest-finishing tile/vertex event and repeatedly steps
    to the dependency (per ``trace.meta`` offsets) that finished last,
    until an event with no recorded dependencies (the DAG's source
    corner) is reached. Returned in execution order. Every consecutive
    pair is a real dependency edge of the (tiled) DAG, so the result is
    a dependency-respecting chain by construction. Without dependency
    metadata the single longest event is returned as a degenerate path.
    """
    events = trace.events
    if not events:
        return []
    by_key: Dict[Tuple[int, int], TraceEvent] = {}
    for e in events:
        k = _event_key(e)
        prev = by_key.get(k)
        if prev is None or e.end > prev.end:
            by_key[k] = e
    offsets = _dep_offsets(trace)
    cur = max(events, key=lambda e: e.end)
    if not offsets:
        return [max(events, key=lambda e: e.duration)]
    path = [cur]
    seen = {_event_key(cur)}
    while True:
        ck = _event_key(path[-1])
        deps = [
            by_key[(ck[0] + a, ck[1] + b)]
            for a, b in offsets
            if (ck[0] + a, ck[1] + b) in by_key
        ]
        deps = [d for d in deps if _event_key(d) not in seen]
        if not deps:
            break
        nxt = max(deps, key=lambda e: e.end)
        path.append(nxt)
        seen.add(_event_key(nxt))
    path.reverse()
    return path


def critical_path_fraction(trace: ExecutionTrace) -> float:
    """Fraction of the run window spent inside critical-path events."""
    path = critical_path(trace)
    if not path:
        return 0.0
    t0, t1, _ = _window(trace)
    wall = t1 - t0
    if wall <= 0:
        return 0.0
    return min(1.0, _total(_union((e.start, e.end) for e in path)) / wall)


# ---------------------------------------------------------------------------
# waterfall + attribution
# ---------------------------------------------------------------------------

def _window(trace: ExecutionTrace) -> Tuple[float, float, bool]:
    pts: List[float] = []
    for e in trace.events:
        pts.extend((e.start, e.end))
    for s in trace.spans:
        pts.extend((s.start, s.end))
    if not pts:
        return 0.0, 0.0, False
    return min(pts), max(pts), True


def waterfall(trace: ExecutionTrace) -> Dict[str, object]:
    """Per-place latency breakdown with exact-sum categories.

    Returns ``{"t0", "t1", "wall", "places": {place: {category:
    seconds}}, "runtime": {category: seconds}}``. For each place the
    categories (including ``idle``) sum to ``wall`` exactly: compute
    intervals win overlaps, then halo waits, pacer stalls and recovery;
    whatever remains is idle. The ``runtime`` row totals runtime-global
    spans (queue/admission/lease/partition/schedule/recovery/...) and may
    overlap place rows — it explains the master, not the places.
    """
    t0, t1, ok = _window(trace)
    wall = t1 - t0
    events = trace.events
    spans = trace.spans
    places: Dict[int, Dict[str, float]] = {}
    if ok and wall > 0:
        span_cats: Dict[int, Dict[str, List[Tuple[float, float]]]] = {}
        for s in spans:
            if s.place < 0:
                continue
            cat = classify_span(s)
            if cat in PLACE_CATEGORIES:
                span_cats.setdefault(s.place, {}).setdefault(cat, []).append(
                    (s.start, s.end)
                )
        for p in sorted({e.exec_place for e in events} | set(span_cats)):
            covered: List[Tuple[float, float]] = []
            row: Dict[str, float] = {}
            for cat in PLACE_CATEGORIES:
                if cat == "compute":
                    ivs = _union(
                        (e.start, e.end) for e in events if e.exec_place == p
                    )
                else:
                    ivs = _union(span_cats.get(p, {}).get(cat, []))
                ivs = _subtract(ivs, covered)
                row[cat] = _total(ivs)
                covered = _union(covered + ivs)
            row["idle"] = max(0.0, wall - _total(covered))
            places[p] = row
    runtime: Dict[str, float] = {}
    for s in spans:
        if s.place >= 0 and s.category != "serve":
            continue
        cat = classify_span(s)
        if cat is None:
            continue
        runtime[cat] = runtime.get(cat, 0.0) + s.duration
    return {"t0": t0, "t1": t1, "wall": wall, "places": places,
            "runtime": runtime}


def attribution(trace: ExecutionTrace) -> Dict[str, float]:
    """Category → fraction of total place-time (sums to 1.0 with places).

    The denominator is ``nplaces × wall``; every instant of every place
    is attributed to exactly one category, so the fractions sum to 1.0
    up to float rounding — the property the acceptance audit checks.
    """
    wf = waterfall(trace)
    places: Dict[int, Dict[str, float]] = wf["places"]  # type: ignore[assignment]
    wall = float(wf["wall"])  # type: ignore[arg-type]
    if not places or wall <= 0:
        return {}
    denom = wall * len(places)
    out: Dict[str, float] = {}
    for row in places.values():
        for cat, sec in row.items():
            out[cat] = out.get(cat, 0.0) + sec / denom
    return out


# ---------------------------------------------------------------------------
# straggler / limplock detection
# ---------------------------------------------------------------------------

#: default flag rule: median per-cell service ≥ K× fleet median ...
#: (the per-place statistic is a *median* so one OS-descheduled tile
#: cannot fake a limplock, while a real throttle slows every tile and
#: shifts it fully; clean fleets then sit near 1× and an injected
#: throttle lands at 10×+, so 5.0 splits the two with margin)
DEFAULT_K = 5.0
#: ... and at least this much absolute excess per cell (guards against
#: flagging sub-microsecond noise on clean runs; a chaos ThrottleSpec's
#: capped batch sleep still clears it comfortably — 0.05s over a 1024-
#: cell tile is ~49µs/cell of injected excess)
DEFAULT_MIN_EXCESS_S = 2e-5


def _weighted_median(pairs) -> float:
    """Median of (value, weight) pairs: the value of the middle *unit* of
    weight. With per-cell service times weighted by tile cell counts this
    is "the service time of the median cell" — a tiny remainder tile's
    inflated per-cell overhead carries only its few cells of weight, so
    it cannot drag a place's statistic the way a real limplock (which
    slows every cell) does."""
    items = sorted(pairs)
    half = sum(w for _, w in items) / 2.0
    acc = 0.0
    for v, w in items:
        acc += w
        if acc >= half:
            return v
    return items[-1][0]


def _flag_ratios(
    stats: Dict[int, float], k: float, min_excess_s: float
) -> Dict[int, float]:
    if len(stats) < 2:
        return {}
    med = statistics.median(stats.values())
    out: Dict[int, float] = {}
    for p, m in stats.items():
        ratio = m / med if med > 0 else float("inf") if m > 0 else 0.0
        if ratio >= k and (m - med) >= min_excess_s:
            out[p] = ratio
    return out


def detect_stragglers(
    trace: ExecutionTrace,
    k: float = DEFAULT_K,
    min_excess_s: float = DEFAULT_MIN_EXCESS_S,
) -> Dict[int, float]:
    """Post-mortem straggler scan: place → ratio over fleet median.

    Uses the cell-weighted *median* per-cell service time of each
    place's events (tiles or vertices) — robust both to a single
    stalled tile (which a mean would let fake a limplock) and to tiny
    remainder edge tiles whose fixed per-tile overhead inflates their
    per-cell cost; a place is flagged when it exceeds ``k``× the fleet
    median *and* the per-cell excess tops ``min_excess_s``.
    """
    samples: Dict[int, list] = {}
    for e in trace.events:
        cells = max(1, e.cells)
        samples.setdefault(e.exec_place, []).append(
            (e.duration / cells, cells)
        )
    stats = {p: _weighted_median(v) for p, v in samples.items()}
    return _flag_ratios(stats, k, min_excess_s)


class StragglerDetector:
    """Rolling per-place service-time baseline with live gauge export.

    ``observe(place, seconds, cells)`` feeds one tile (or mp level-batch)
    service measurement; the detector keeps a bounded window of
    ``(per-cell time, cells)`` samples per place and re-evaluates the
    ``k×`` fleet-median rule on cell-weighted medians, publishing
    ``dpx10_straggler{place}`` gauges (ratio when flagged, 0 otherwise)
    that the live dashboard renders as alerts. Thread-safe; all
    hot-path work is a deque append plus a small cell-weighted median
    per place over the fleet.
    """

    def __init__(
        self,
        registry=None,
        k: float = DEFAULT_K,
        window: int = 64,
        min_samples: int = 3,
        min_excess_s: float = DEFAULT_MIN_EXCESS_S,
    ) -> None:
        self.k = k
        self.min_samples = min_samples
        self.min_excess_s = min_excess_s
        self._win: Dict[int, deque] = {}
        self._window = window
        self._lock = threading.Lock()
        self._flagged: Dict[int, float] = {}
        self._gauge = None
        if registry is not None and getattr(registry, "enabled", False):
            self._gauge = registry.gauge(
                "dpx10_straggler",
                "Per-place straggler ratio over the fleet-median tile "
                "service time; 0 when healthy, >= k when flagged.",
                labelnames=("place",),
            )

    def observe(self, place: int, seconds: float, cells: int = 1) -> None:
        cells = max(1, cells)
        with self._lock:
            win = self._win.get(place)
            if win is None:
                win = self._win[place] = deque(maxlen=self._window)
            win.append((seconds / cells, cells))
            stats = {
                p: _weighted_median(w)
                for p, w in self._win.items()
                if len(w) >= self.min_samples
            }
            flagged = _flag_ratios(stats, self.k, self.min_excess_s)
            self._flagged = flagged
            if self._gauge is not None:
                for p in stats:
                    self._gauge.labels(place=str(p)).set(flagged.get(p, 0.0))

    def flagged(self) -> Dict[int, float]:
        """Currently flagged places → ratio over the fleet median."""
        with self._lock:
            return dict(self._flagged)


# ---------------------------------------------------------------------------
# summaries + human surfaces
# ---------------------------------------------------------------------------

def causal_summary(trace: ExecutionTrace) -> Dict[str, object]:
    """JSON-able causal digest for the exporters and the serve layer."""
    path = critical_path(trace)
    wf = waterfall(trace)
    attr = attribution(trace)
    return {
        "trace_id": trace.trace_id,
        "critical_path": [
            {
                "tile": list(e.tile) if e.tile is not None else None,
                "i": e.i, "j": e.j,
                "place": e.exec_place,
                "start": e.start, "end": e.end,
                "cells": e.cells,
            }
            for e in path
        ],
        "critical_path_fraction": critical_path_fraction(trace),
        "wall": wf["wall"],
        "attribution": attr,
        "waterfall": {
            "places": {str(p): row for p, row in wf["places"].items()},
            "runtime": wf["runtime"],
        },
        "stragglers": {str(p): r for p, r in detect_stragglers(trace).items()},
    }


def _fmt_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return "  ".join(c.rjust(w) for c, w in zip(cells, widths))


def explain_text(
    trace: ExecutionTrace,
    top: int = 10,
) -> str:
    """Waterfall + critical path + stragglers, rendered for a terminal."""
    wf = waterfall(trace)
    wall = float(wf["wall"])  # type: ignore[arg-type]
    places: Dict[int, Dict[str, float]] = wf["places"]  # type: ignore[assignment]
    lines = [
        f"trace {trace.trace_id}  wall={wall * 1e3:.1f}ms  "
        f"places={len(places)}  events={len(trace.events)}"
    ]
    cats = list(PLACE_CATEGORIES) + ["idle"]
    if places:
        lines.append("")
        lines.append("latency waterfall (seconds per place; rows sum to wall):")
        widths = [7] + [max(9, len(c) + 1) for c in cats]
        lines.append(_fmt_row(["place"] + cats, widths))
        for p, row in sorted(places.items()):
            lines.append(
                _fmt_row(
                    [str(p)] + [f"{row.get(c, 0.0):.4f}" for c in cats], widths
                )
            )
    runtime: Dict[str, float] = wf["runtime"]  # type: ignore[assignment]
    if runtime:
        rt = "  ".join(
            f"{k}={v:.4f}s" for k, v in sorted(runtime.items(), key=lambda kv: -kv[1])
        )
        lines.append(f"runtime spans: {rt}")
    path = critical_path(trace)
    frac = critical_path_fraction(trace)
    lines.append("")
    if path:
        lines.append(
            f"critical path: {len(path)} events, "
            f"{sum(e.duration for e in path) * 1e3:.1f}ms "
            f"({frac * 100.0:.1f}% of wall)"
        )
        ranked = sorted(path, key=lambda e: -e.duration)[:top]
        for n, e in enumerate(ranked, 1):
            what = f"tile {e.tile}" if e.tile is not None else f"cell ({e.i},{e.j})"
            share = e.duration / wall * 100.0 if wall > 0 else 0.0
            lines.append(
                f"  {n:2d}. {what} place {e.exec_place}  "
                f"{e.duration * 1e3:.2f}ms  [{share:.1f}% of wall]"
            )
    else:
        lines.append("critical path: (no events)")
    stragglers = detect_stragglers(trace)
    if stragglers:
        worst = ", ".join(
            f"place {p} at {r:.1f}x fleet median"
            for p, r in sorted(stragglers.items(), key=lambda kv: -kv[1])
        )
        lines.append(f"stragglers: {worst}")
    else:
        lines.append("stragglers: none")
    return "\n".join(lines)


def diff_text(
    name_a: str,
    trace_a: ExecutionTrace,
    name_b: str,
    trace_b: ExecutionTrace,
) -> str:
    """Regression triage: category/wall/critical-path deltas of two runs."""
    wf_a, wf_b = waterfall(trace_a), waterfall(trace_b)
    wall_a, wall_b = float(wf_a["wall"]), float(wf_b["wall"])  # type: ignore[arg-type]
    lines = [
        f"A: {name_a}  wall={wall_a * 1e3:.1f}ms  ({trace_a.trace_id})",
        f"B: {name_b}  wall={wall_b * 1e3:.1f}ms  ({trace_b.trace_id})",
    ]
    if wall_a > 0:
        lines.append(
            f"wall delta: {(wall_b - wall_a) * 1e3:+.1f}ms "
            f"({(wall_b - wall_a) / wall_a * 100.0:+.1f}%)"
        )
    def _totals(wf) -> Dict[str, float]:
        out: Dict[str, float] = {}
        for row in wf["places"].values():
            for c, v in row.items():
                out[c] = out.get(c, 0.0) + v
        for c, v in wf["runtime"].items():
            out[f"runtime:{c}"] = out.get(f"runtime:{c}", 0.0) + v
        return out
    ta, tb = _totals(wf_a), _totals(wf_b)
    lines.append("")
    lines.append("category totals (sum over places, seconds):")
    for cat in sorted(set(ta) | set(tb), key=lambda c: -(tb.get(c, 0.0) - ta.get(c, 0.0))):
        a, b = ta.get(cat, 0.0), tb.get(cat, 0.0)
        lines.append(f"  {cat:>18s}  A={a:.4f}  B={b:.4f}  delta={b - a:+.4f}")
    fa, fb = critical_path_fraction(trace_a), critical_path_fraction(trace_b)
    lines.append(
        f"critical-path fraction: A={fa * 100.0:.1f}%  B={fb * 100.0:.1f}%  "
        f"delta={(fb - fa) * 100.0:+.1f}pp"
    )
    sa, sb = detect_stragglers(trace_a), detect_stragglers(trace_b)
    if sa or sb:
        lines.append(f"stragglers: A={sorted(sa) or 'none'}  B={sorted(sb) or 'none'}")
    return "\n".join(lines)
