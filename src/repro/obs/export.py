"""Trace exporters: Chrome trace-event JSON, JSONL streams, and loaders.

Three interchange formats for one :class:`~repro.core.trace.ExecutionTrace`
(plus an optional metrics snapshot from
:meth:`~repro.obs.metrics.MetricsRegistry.collect`):

* **Chrome trace-event JSON** (:func:`chrome_trace` /
  :func:`write_chrome_trace`) — the ``{"traceEvents": [...]}`` object
  format loadable in Perfetto or ``chrome://tracing``. Vertex/tile events
  and spans become complete (``"ph": "X"``) events; places become named
  threads of process 0; runtime-global phase spans live in process 1
  ("runtime"). The metrics snapshot and run accounting ride in
  ``otherData`` so a trace file is a self-contained post-mortem.
* **JSONL** (:func:`write_jsonl` / :func:`read_jsonl`) — one JSON object
  per line (``event`` / ``span`` / ``metrics`` records), append-friendly
  and greppable.
* **Loaders** (:func:`load_chrome_trace`, :func:`trace_from_chrome`,
  :func:`read_jsonl`) — both formats round-trip back into an
  ``ExecutionTrace`` so every analysis (utilization, Gantt, wavefront
  profile) works on a file exactly as on a live trace.

``scripts/check_trace_schema.py`` validates exported Chrome traces in CI.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.core.trace import ExecutionTrace, Span, TraceEvent

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "load_chrome_trace",
    "trace_from_chrome",
    "write_jsonl",
    "read_jsonl",
]

#: pid of place-level events (one named tid per place)
PLACES_PID = 0
#: pid of runtime-global phase spans
RUNTIME_PID = 1
#: tid used inside RUNTIME_PID for phase spans
PHASE_TID = 0
#: tid used inside RUNTIME_PID for the mirrored critical-path row
CRITICAL_PATH_TID = 1


def _event_name(e: TraceEvent) -> str:
    if e.tile is not None:
        return f"tile ({e.tile[0]},{e.tile[1]})"
    return f"cell ({e.i},{e.j})"


def _jsonable_meta(meta: Dict[str, object]) -> Dict[str, object]:
    """Round-trip trace.meta through JSON semantics (tuples -> lists)."""
    return json.loads(json.dumps(meta))


def chrome_trace(
    trace: ExecutionTrace,
    metrics: Optional[Dict[str, dict]] = None,
    report: Optional[Dict[str, object]] = None,
    causal: Optional[Dict[str, object]] = None,
) -> dict:
    """Build the Chrome trace-event object for one traced run.

    Timestamps are microseconds relative to the trace origin (the
    trace-event format's native unit). ``causal`` (a
    :func:`repro.obs.causal.causal_summary` dict) rides in ``otherData``;
    when present, events on the critical path are marked with
    ``args.critical_path`` and mirrored onto a dedicated
    "critical path" thread so Perfetto renders the chain as its own row.
    """
    events: List[dict] = []
    cp_keys = set()
    if causal:
        for step in causal.get("critical_path", []):
            key = (
                tuple(step["tile"]) if step.get("tile") is not None
                else (step["i"], step["j"])
            )
            cp_keys.add((key, round(float(step["start"]), 9)))
    places = sorted(
        {e.exec_place for e in trace.events}
        | {s.place for s in trace.spans if s.place >= 0}
    )
    events.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": PLACES_PID,
            "tid": 0,
            "args": {"name": "places"},
        }
    )
    events.append(
        {
            "name": "process_name",
            "ph": "M",
            "pid": RUNTIME_PID,
            "tid": PHASE_TID,
            "args": {"name": "runtime"},
        }
    )
    for p in places:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": PLACES_PID,
                "tid": p,
                "args": {"name": f"place {p}"},
            }
        )
    if cp_keys:
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": RUNTIME_PID,
                "tid": CRITICAL_PATH_TID,
                "args": {"name": "critical path"},
            }
        )
    for e in trace.events:
        args = {"i": e.i, "j": e.j, "home_place": e.home_place, "cells": e.cells}
        if e.tile is not None:
            args["tile"] = list(e.tile)
        on_cp = bool(cp_keys) and (
            (e.tile if e.tile is not None else (e.i, e.j)),
            round(e.start, 9),
        ) in cp_keys
        if on_cp:
            args["critical_path"] = True
        events.append(
            {
                "name": _event_name(e),
                "cat": "tile" if e.tile is not None else "vertex",
                "ph": "X",
                "ts": e.start * 1e6,
                "dur": max(0.0, e.duration) * 1e6,
                "pid": PLACES_PID,
                "tid": e.exec_place,
                "args": args,
            }
        )
        if on_cp:
            # mirror the step onto its own thread so the chain renders as
            # one contiguous row in Perfetto
            events.append(
                {
                    "name": _event_name(e),
                    "cat": "critical-path",
                    "ph": "X",
                    "ts": e.start * 1e6,
                    "dur": max(0.0, e.duration) * 1e6,
                    "pid": RUNTIME_PID,
                    "tid": CRITICAL_PATH_TID,
                    "args": dict(args),
                }
            )
    for s in trace.spans:
        sargs: Dict[str, object] = {"place": s.place}
        if s.span_id is not None:
            sargs["span_id"] = s.span_id
        if s.parent_id is not None:
            sargs["parent_id"] = s.parent_id
        events.append(
            {
                "name": s.name,
                "cat": s.category,
                "ph": "X",
                "ts": s.start * 1e6,
                "dur": max(0.0, s.duration) * 1e6,
                "pid": RUNTIME_PID if s.place < 0 else PLACES_PID,
                "tid": PHASE_TID if s.place < 0 else s.place,
                "args": sargs,
            }
        )
    other: Dict[str, object] = {
        "format": "dpx10-trace",
        "version": 1,
        "trace_id": trace.trace_id,
    }
    if trace.meta:
        other["meta"] = _jsonable_meta(trace.meta)
    if metrics:
        other["metrics"] = metrics
    if report:
        other["report"] = report
    if causal:
        other["causal"] = causal
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def write_chrome_trace(
    path: str,
    trace: ExecutionTrace,
    metrics: Optional[Dict[str, dict]] = None,
    report: Optional[Dict[str, object]] = None,
    causal: Optional[Dict[str, object]] = None,
) -> dict:
    doc = chrome_trace(trace, metrics=metrics, report=report, causal=causal)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
    return doc


def trace_from_chrome(doc: dict) -> Tuple[ExecutionTrace, Dict[str, dict]]:
    """Rebuild ``(ExecutionTrace, metrics_snapshot)`` from a Chrome trace
    object produced by :func:`chrome_trace`."""
    other = doc.get("otherData", {})
    trace = ExecutionTrace(trace_id=other.get("trace_id"))
    meta = other.get("meta")
    if isinstance(meta, dict):
        trace.meta.update(meta)
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") != "X":
            continue
        cat = ev.get("cat", "")
        if cat == "critical-path":
            # mirrored duplicates of place-thread events; skip on load
            continue
        start = ev["ts"] / 1e6
        end = start + ev.get("dur", 0) / 1e6
        if cat in ("vertex", "tile"):
            args = ev.get("args", {})
            trace.record(
                TraceEvent(
                    i=int(args.get("i", 0)),
                    j=int(args.get("j", 0)),
                    home_place=int(args.get("home_place", ev["tid"])),
                    exec_place=int(ev["tid"]),
                    start=start,
                    end=end,
                    tile=tuple(args["tile"]) if args.get("tile") else None,
                    cells=int(args.get("cells", 1)),
                )
            )
        else:
            args = ev.get("args", {})
            trace.record_span(
                Span(
                    name=ev.get("name", "span"),
                    start=start,
                    end=end,
                    category=cat or "phase",
                    place=int(args.get("place", -1)),
                    span_id=args.get("span_id"),
                    parent_id=args.get("parent_id"),
                )
            )
    metrics = other.get("metrics", {})
    return trace, metrics


def load_chrome_trace(path: str) -> Tuple[ExecutionTrace, Dict[str, dict]]:
    with open(path, encoding="utf-8") as fh:
        return trace_from_chrome(json.load(fh))


# -- JSONL ---------------------------------------------------------------------------
def write_jsonl(
    path: str,
    trace: ExecutionTrace,
    metrics: Optional[Dict[str, dict]] = None,
    causal: Optional[Dict[str, object]] = None,
) -> int:
    """Write one JSON object per line; returns the number of lines.

    A leading ``meta`` record carries the trace id, ``trace.meta`` (the
    dependency/tiling context the causal analyzer needs) and — when given —
    the :func:`repro.obs.causal.causal_summary` dict. It is only emitted
    when there is something to carry, so dependency-free traces keep the
    historical events+spans+metrics line layout.
    """
    lines = 0
    with open(path, "w", encoding="utf-8") as fh:
        if trace.meta or causal:
            rec: Dict[str, object] = {
                "type": "meta",
                "trace_id": trace.trace_id,
                "meta": _jsonable_meta(trace.meta),
            }
            if causal:
                rec["causal"] = causal
            fh.write(json.dumps(rec) + "\n")
            lines += 1
        for e in trace.events:
            rec = {
                "type": "event",
                "i": e.i,
                "j": e.j,
                "home_place": e.home_place,
                "exec_place": e.exec_place,
                "start": e.start,
                "end": e.end,
                "cells": e.cells,
            }
            if e.tile is not None:
                rec["tile"] = list(e.tile)
            fh.write(json.dumps(rec) + "\n")
            lines += 1
        for s in trace.spans:
            srec: Dict[str, object] = {
                "type": "span",
                "name": s.name,
                "category": s.category,
                "place": s.place,
                "start": s.start,
                "end": s.end,
            }
            if s.span_id is not None:
                srec["span_id"] = s.span_id
            if s.parent_id is not None:
                srec["parent_id"] = s.parent_id
            fh.write(json.dumps(srec) + "\n")
            lines += 1
        if metrics:
            fh.write(json.dumps({"type": "metrics", "data": metrics}) + "\n")
            lines += 1
    return lines


def read_jsonl(path: str) -> Tuple[ExecutionTrace, Dict[str, dict]]:
    """Rebuild ``(ExecutionTrace, metrics_snapshot)`` from a JSONL export."""
    trace = ExecutionTrace()
    metrics: Dict[str, dict] = {}
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            kind = rec.get("type")
            if kind == "event":
                trace.record(
                    TraceEvent(
                        i=rec["i"],
                        j=rec["j"],
                        home_place=rec["home_place"],
                        exec_place=rec["exec_place"],
                        start=rec["start"],
                        end=rec["end"],
                        tile=tuple(rec["tile"]) if rec.get("tile") else None,
                        cells=rec.get("cells", 1),
                    )
                )
            elif kind == "span":
                trace.record_span(
                    Span(
                        name=rec["name"],
                        start=rec["start"],
                        end=rec["end"],
                        category=rec.get("category", "phase"),
                        place=rec.get("place", -1),
                        span_id=rec.get("span_id"),
                        parent_id=rec.get("parent_id"),
                    )
                )
            elif kind == "meta":
                if rec.get("trace_id"):
                    trace.trace_id = rec["trace_id"]
                if isinstance(rec.get("meta"), dict):
                    trace.meta.update(rec["meta"])
            elif kind == "metrics":
                metrics = rec.get("data", {})
    return trace, metrics
