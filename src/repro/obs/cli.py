"""``python -m repro obs`` — run instrumented workloads and inspect exports.

Four subcommands:

* ``obs run`` — execute a built-in app (Smith-Waterman, LPS, LCS) with
  tracing and metrics on, optionally watch it on the live dashboard, and
  export the run as Chrome trace JSON / JSONL / Prometheus text (with the
  causal summary embedded). The post-mortem summary printed at the end is
  rendered from the exported data, so it doubles as a faithfulness check
  of the export pipeline.
* ``obs summary <file>`` — re-render that summary from a trace file
  (``.json`` Chrome trace or ``.jsonl`` stream) without re-running.
* ``obs explain <file>`` — causal post-mortem: latency waterfall,
  weighted critical path, per-category attribution and straggler flags
  (see :mod:`repro.obs.causal`).
* ``obs diff <a> <b>`` — compare two traces category-by-category to
  answer "why is run B slower than run A?".

Examples::

    python -m repro obs run --app sw --size 64 --export trace.json
    python -m repro obs run --app lps --size 200 --tile 32x32 --live
    python -m repro obs summary trace.json
    python -m repro obs explain trace.json
    python -m repro obs diff fast.json slow.json
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Tuple

from repro.core.config import DPX10Config
from repro.core.trace import ExecutionTrace
from repro.obs.causal import causal_summary, diff_text, explain_text
from repro.obs.dashboard import LiveDashboard, summary_text
from repro.obs.export import (
    load_chrome_trace,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import MetricsRegistry, render_prometheus

__all__ = ["add_obs_parser"]

_APPS = ("sw", "lps", "lcs")


def _parse_tile(spec: Optional[str]) -> Optional[Tuple[int, int]]:
    if spec is None:
        return None
    h, _, w = spec.lower().partition("x")
    return (int(h), int(w or h))


def _random_text(seed: int, n: int, alphabet: str) -> str:
    from repro.util.rng import seeded_rng

    rng = seeded_rng(seed, "obs", alphabet, n)
    return "".join(alphabet[k] for k in rng.integers(0, len(alphabet), size=n))


def _run_app(name: str, size: int, seed: int, config: DPX10Config):
    if name == "sw":
        from repro.apps.smith_waterman import solve_sw

        s1 = _random_text(seed, size, "ACGT")
        s2 = _random_text(seed + 1, size, "ACGT")
        app, report = solve_sw(s1, s2, config)
        return report, f"best local score {int(app.best_score)}"
    if name == "lps":
        from repro.apps.lps import solve_lps

        s = _random_text(seed, size, "abcd")
        app, report = solve_lps(s, config)
        return report, f"LPS length {int(app.length)}"
    from repro.apps.lcs import solve_lcs

    x = _random_text(seed, size, "ACGT")
    y = _random_text(seed + 1, size, "ACGT")
    app, report = solve_lcs(x, y, config)
    return report, f"LCS length {int(app.length)}"


def _cmd_run(args: argparse.Namespace) -> int:
    registry = MetricsRegistry()
    config = DPX10Config(
        nplaces=args.places,
        engine=args.engine,
        tile_shape=_parse_tile(args.tile),
        trace=True,
        metrics_registry=registry,
        seed=args.seed,
    )
    if args.live:
        with LiveDashboard(registry, interval=args.interval):
            report, headline = _run_app(args.app, args.size, args.seed, config)
    else:
        report, headline = _run_app(args.app, args.size, args.seed, config)

    print(f"{args.app} ({args.size}x{args.size}, {args.engine}): {headline}")
    trace = report.trace if report.trace is not None else ExecutionTrace()
    causal = causal_summary(trace) if trace.events else None
    if args.export:
        write_chrome_trace(
            args.export, trace, metrics=report.metrics,
            report=report.to_dict(), causal=causal,
        )
        print(f"chrome trace -> {args.export}")
    if args.jsonl:
        n = write_jsonl(args.jsonl, trace, metrics=report.metrics, causal=causal)
        print(f"jsonl ({n} lines) -> {args.jsonl}")
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as fh:
            fh.write(render_prometheus(report.metrics or {}))
        print(f"prometheus text -> {args.metrics_out}")
    print()
    print(summary_text(trace, report.metrics))
    return 0


def _load_trace(path: str):
    if path.endswith(".jsonl"):
        return read_jsonl(path)
    return load_chrome_trace(path)


def _print_paged(text: str) -> int:
    try:
        print(text)
    except BrokenPipeError:
        # downstream pager/head closed the pipe; point stdout at devnull so
        # the interpreter's exit-time flush doesn't raise again
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
    return 0


def _cmd_summary(args: argparse.Namespace) -> int:
    trace, metrics = _load_trace(args.file)
    return _print_paged(summary_text(trace, metrics))


def _cmd_explain(args: argparse.Namespace) -> int:
    trace, _ = _load_trace(args.file)
    return _print_paged(explain_text(trace, top=args.top))


def _cmd_diff(args: argparse.Namespace) -> int:
    trace_a, _ = _load_trace(args.a)
    trace_b, _ = _load_trace(args.b)
    return _print_paged(diff_text(args.a, trace_a, args.b, trace_b))


def add_obs_parser(sub) -> None:
    """Register the ``obs`` subcommand on the ``python -m repro`` parser."""
    p = sub.add_parser(
        "obs", help="observability: instrumented runs, dashboards, exports"
    )
    obs_sub = p.add_subparsers(dest="obs_command", required=True)

    r = obs_sub.add_parser("run", help="run an app with tracing + metrics on")
    r.add_argument("--app", choices=_APPS, default="sw")
    r.add_argument("--size", type=int, default=64, help="problem size N (NxN-ish)")
    r.add_argument("--places", type=int, default=4)
    r.add_argument(
        "--engine", choices=["inline", "threaded", "mp"], default="threaded"
    )
    r.add_argument(
        "--tile", metavar="HxW", default=None,
        help="tile shape, e.g. 32x32 (default: per-vertex)",
    )
    r.add_argument("--seed", type=int, default=0)
    r.add_argument("--live", action="store_true", help="live dashboard on stderr")
    r.add_argument(
        "--interval", type=float, default=0.25, help="dashboard refresh seconds"
    )
    r.add_argument("--export", metavar="PATH", help="write Chrome trace JSON")
    r.add_argument("--jsonl", metavar="PATH", help="write JSONL event stream")
    r.add_argument(
        "--metrics-out", metavar="PATH", help="write Prometheus text exposition"
    )
    r.set_defaults(fn=_cmd_run)

    s = obs_sub.add_parser(
        "summary", help="post-mortem summary of an exported trace"
    )
    s.add_argument("file", help="Chrome trace .json or .jsonl export")
    s.set_defaults(fn=_cmd_summary)

    e = obs_sub.add_parser(
        "explain",
        help="causal post-mortem: waterfall, critical path, stragglers",
    )
    e.add_argument("file", help="Chrome trace .json or .jsonl export")
    e.add_argument(
        "--top", type=int, default=10,
        help="critical-path steps to print (default 10)",
    )
    e.set_defaults(fn=_cmd_explain)

    d = obs_sub.add_parser(
        "diff", help="compare two traces: why is B slower than A?"
    )
    d.add_argument("a", help="baseline trace (.json or .jsonl)")
    d.add_argument("b", help="comparison trace (.json or .jsonl)")
    d.set_defaults(fn=_cmd_diff)
