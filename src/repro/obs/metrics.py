"""Process-wide metrics registry: counters, gauges and histograms.

The runtime's accounting used to be scattered over ad-hoc fields
(``RunReport.cache_hits``, ``NetworkStats.bytes``, per-cache counters,
``MPRunStats``); this module gives every quantity one name in one schema:

* **Counter** — a monotone total (``dpx10_cache_hits_total``);
* **Gauge** — a point-in-time value (``dpx10_places_alive``);
* **Histogram** — a distribution over fixed buckets
  (``dpx10_recovery_seconds``, ``dpx10_halo_fetch_bytes``).

Instruments are grouped into label **families**: ``registry.counter(
"dpx10_cache_hits_total", labelnames=("place",)).labels(place=0).inc()``.
A family with no label names acts as its own single child.

Three properties drive the design:

* **Near-zero cost when disabled.** ``MetricsRegistry(enabled=False)``
  (and the shared :data:`NULL_REGISTRY`) hands out the same no-op
  singletons for every instrument request — no allocation, no branches on
  the hot path beyond one cheap method call.
* **Pull-based collection.** Components that already keep tight local
  counters (the FIFO cache, the network model) are *scraped* by collector
  callbacks at :meth:`MetricsRegistry.collect` time instead of paying an
  extra write per event.
* **Mergeable snapshots.** ``collect()`` returns a plain picklable dict;
  :meth:`MetricsRegistry.merge` folds one into another (counters add,
  gauges take the incoming value, histograms add bucket-wise) — the mp
  engine ships worker-process snapshots back over the reply channel and
  merges them into the master registry.

Export formats live next door: Prometheus text exposition here
(:func:`render_prometheus`), Chrome trace / JSONL in
:mod:`repro.obs.export`.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Family",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "DEFAULT_SECONDS_BUCKETS",
    "DEFAULT_BYTES_BUCKETS",
    "render_prometheus",
    "merge_snapshots",
]

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")

#: latency-flavoured default buckets (seconds), recovery to full runs
DEFAULT_SECONDS_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)
#: transfer-size default buckets (bytes), one value to a large halo strip
DEFAULT_BYTES_BUCKETS = (
    64, 256, 1024, 4096, 16384, 65536, 262144, 1048576,
)


class Counter:
    """A monotone total. One child of a counter family."""

    __slots__ = ("value",)
    kind = "counter"

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount

    def set(self, value: int | float) -> None:
        """Overwrite the total — for pull-time collectors that scrape an
        authoritative component counter, not for instrumented code."""
        self.value = value


class Gauge:
    """A point-in-time value. One child of a gauge family."""

    __slots__ = ("value",)
    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0

    def set(self, value: int | float) -> None:
        self.value = value

    def inc(self, amount: int | float = 1) -> None:
        self.value += amount


class Histogram:
    """A distribution over fixed upper-bound buckets (Prometheus ``le``
    semantics: an observation equal to a bound lands in that bound's
    bucket; anything above the last bound lands in the +Inf bucket)."""

    __slots__ = ("bounds", "counts", "sum", "count")
    kind = "histogram"

    def __init__(self, bounds: Sequence[float] = DEFAULT_SECONDS_BUCKETS) -> None:
        self.bounds: Tuple[float, ...] = tuple(sorted(bounds))
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def value(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


class _NullInstrument:
    """Shared no-op stand-in for every instrument and family when the
    registry is disabled. All mutators do nothing; ``labels`` returns the
    same singleton, so the disabled hot path allocates nothing."""

    __slots__ = ()
    kind = "null"
    value = 0

    def inc(self, amount: int | float = 1) -> None:
        pass

    def set(self, value: int | float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def labels(self, *values, **kv) -> "_NullInstrument":
        return self


NULL_INSTRUMENT = _NullInstrument()

_FACTORIES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class Family:
    """All children (label combinations) of one named instrument.

    A family with empty ``labelnames`` has exactly one child (key ``()``),
    and the family proxies ``inc``/``set``/``observe`` straight to it so
    unlabelled instruments read naturally.
    """

    __slots__ = ("name", "help", "kind", "labelnames", "_children", "_kwargs", "_lock")

    def __init__(
        self,
        name: str,
        help: str,
        kind: str,
        labelnames: Sequence[str] = (),
        **kwargs,
    ) -> None:
        self.name = name
        self.help = help
        self.kind = kind
        self.labelnames = tuple(labelnames)
        self._children: Dict[Tuple[str, ...], object] = {}
        self._kwargs = kwargs
        self._lock = threading.Lock()
        if not self.labelnames:
            self._children[()] = _FACTORIES[kind](**kwargs)

    def labels(self, *values, **kv):
        """The child for one label combination, created on first use.

        Accepts positional values in ``labelnames`` order or keywords:
        ``fam.labels(place=3)`` and ``fam.labels(3)`` are the same child.
        """
        if kv:
            if values:
                raise ValueError("pass label values positionally or by name, not both")
            values = tuple(kv[n] for n in self.labelnames)
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} takes labels {self.labelnames}, got {values!r}"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, _FACTORIES[self.kind](**self._kwargs))
        return child

    # unlabelled convenience: the family is its own single child
    def inc(self, amount: int | float = 1) -> None:
        self.labels().inc(amount)

    def set(self, value: int | float) -> None:
        self.labels().set(value)

    def observe(self, value: float) -> None:
        self.labels().observe(value)

    @property
    def value(self):
        return self.labels().value

    def items(self) -> List[Tuple[Tuple[str, ...], object]]:
        with self._lock:
            return sorted(self._children.items())


class MetricsRegistry:
    """Named instruments plus pull-time collectors, with one snapshot/merge
    schema shared across processes.

    >>> reg = MetricsRegistry()
    >>> hits = reg.counter("cache_hits_total", "hits", labelnames=("place",))
    >>> hits.labels(place=0).inc(3)
    >>> reg.collect()["cache_hits_total"]["values"]
    [[['0'], 3]]
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._families: Dict[str, Family] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []
        self._lock = threading.Lock()

    # -- instrument creation (idempotent by name) ---------------------------------
    def _family(self, name: str, help: str, kind: str, labelnames, **kwargs):
        if not self.enabled:
            return NULL_INSTRUMENT
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        fam = self._families.get(name)
        if fam is None:
            with self._lock:
                fam = self._families.get(name)
                if fam is None:
                    fam = Family(name, help, kind, labelnames, **kwargs)
                    self._families[name] = fam
        if fam.kind != kind or fam.labelnames != tuple(labelnames):
            raise ValueError(
                f"metric {name!r} already registered as {fam.kind} with "
                f"labels {fam.labelnames}"
            )
        return fam

    def counter(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        return self._family(name, help, "counter", labelnames)

    def gauge(self, name: str, help: str = "", labelnames: Sequence[str] = ()):
        return self._family(name, help, "gauge", labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_SECONDS_BUCKETS,
    ):
        return self._family(name, help, "histogram", labelnames, bounds=buckets)

    # -- pull-time collectors -------------------------------------------------------
    def register_collector(self, fn: Callable[["MetricsRegistry"], None]) -> None:
        """Register a callback run at every :meth:`collect` to scrape live
        component state into instruments (no per-event write cost)."""
        if self.enabled:
            with self._lock:
                self._collectors.append(fn)

    # -- snapshot / merge / render ----------------------------------------------------
    def collect(self) -> Dict[str, dict]:
        """Run the collectors and return a plain-dict snapshot.

        Shape: ``{name: {"kind", "help", "labelnames", "values":
        [[label_values, value], ...]}}`` where a histogram's value is its
        ``{"bounds", "counts", "sum", "count"}`` dict. JSON- and
        pickle-safe.
        """
        if not self.enabled:
            return {}
        with self._lock:
            collectors = list(self._collectors)
        for fn in collectors:
            fn(self)
        out: Dict[str, dict] = {}
        with self._lock:
            families = sorted(self._families.items())
        for name, fam in families:
            out[name] = {
                "kind": fam.kind,
                "help": fam.help,
                "labelnames": list(fam.labelnames),
                "values": [[list(k), child.value] for k, child in fam.items()],
            }
        return out

    def merge(self, snapshot: Dict[str, dict]) -> None:
        """Fold a snapshot from another registry (typically another
        process) into this one: counters add, gauges take the incoming
        value, histograms add bucket-wise."""
        if not self.enabled or not snapshot:
            return
        for name, data in snapshot.items():
            kind = data["kind"]
            if kind == "histogram":
                bounds = None
                for _, value in data["values"]:
                    bounds = value["bounds"]
                    break
                fam = self.histogram(
                    name, data.get("help", ""), data.get("labelnames", ()),
                    buckets=bounds if bounds is not None else DEFAULT_SECONDS_BUCKETS,
                )
            elif kind == "gauge":
                fam = self.gauge(name, data.get("help", ""), data.get("labelnames", ()))
            else:
                fam = self.counter(name, data.get("help", ""), data.get("labelnames", ()))
            for label_values, value in data["values"]:
                child = fam.labels(*label_values)
                if kind == "counter":
                    child.inc(value)
                elif kind == "gauge":
                    child.set(value)
                else:
                    if tuple(value["bounds"]) != child.bounds:
                        raise ValueError(
                            f"histogram {name!r} bucket bounds differ; cannot merge"
                        )
                    for k, n in enumerate(value["counts"]):
                        child.counts[k] += n
                    child.sum += value["sum"]
                    child.count += value["count"]

    def render_prometheus(self) -> str:
        """Prometheus text exposition format of the current state."""
        return render_prometheus(self.collect())


#: the shared disabled registry: every instrument request returns the
#: no-op singleton, ``collect()`` returns ``{}``
NULL_REGISTRY = MetricsRegistry(enabled=False)


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format:
    backslash, double quote and newline must be escaped inside ``"..."``."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    """Escape ``# HELP`` text: backslash and newline (quotes stay raw)."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _label_str(labelnames: Iterable[str], values: Iterable[str]) -> str:
    pairs = [f'{n}="{_escape_label_value(v)}"' for n, v in zip(labelnames, values)]
    return "{" + ",".join(pairs) + "}" if pairs else ""


def _fmt(value: float) -> str:
    if isinstance(value, float) and value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return str(value)


def render_prometheus(snapshot: Dict[str, dict]) -> str:
    """Render a :meth:`MetricsRegistry.collect` snapshot as Prometheus
    text exposition (``# HELP`` / ``# TYPE`` headers, cumulative ``le``
    buckets for histograms)."""
    lines: List[str] = []
    for name in sorted(snapshot):
        data = snapshot[name]
        kind, labelnames = data["kind"], data["labelnames"]
        if data.get("help"):
            lines.append(f"# HELP {name} {_escape_help(data['help'])}")
        lines.append(f"# TYPE {name} {kind}")
        for label_values, value in data["values"]:
            if kind == "histogram":
                cum = 0
                for bound, count in zip(value["bounds"], value["counts"]):
                    cum += count
                    labels = _label_str(
                        list(labelnames) + ["le"], list(label_values) + [_fmt(bound)]
                    )
                    lines.append(f"{name}_bucket{labels} {cum}")
                cum += value["counts"][-1]
                labels = _label_str(
                    list(labelnames) + ["le"], list(label_values) + ["+Inf"]
                )
                lines.append(f"{name}_bucket{labels} {cum}")
                base = _label_str(labelnames, label_values)
                lines.append(f"{name}_sum{base} {_fmt(value['sum'])}")
                lines.append(f"{name}_count{base} {value['count']}")
            else:
                labels = _label_str(labelnames, label_values)
                lines.append(f"{name}{labels} {_fmt(value)}")
    return "\n".join(lines) + ("\n" if lines else "")


def merge_snapshots(*snapshots: Optional[Dict[str, dict]]) -> Dict[str, dict]:
    """Merge snapshot dicts without a live registry (post-mortem tools)."""
    reg = MetricsRegistry()
    for snap in snapshots:
        if snap:
            reg.merge(snap)
    return reg.collect()


def scalar(snapshot: Dict[str, dict], name: str, default: float = 0) -> float:
    """Sum of a counter/gauge over all its label combinations."""
    data = snapshot.get(name)
    if not data or data["kind"] == "histogram":
        return default
    return sum(v for _, v in data["values"]) if data["values"] else default


def by_label(snapshot: Dict[str, dict], name: str, label: str) -> Dict[str, float]:
    """``{label_value: value}`` for a single-label counter/gauge family."""
    data = snapshot.get(name)
    if not data or label not in data["labelnames"]:
        return {}
    idx = data["labelnames"].index(label)
    out: Dict[str, float] = {}
    for label_values, value in data["values"]:
        key = label_values[idx]
        out[key] = out.get(key, 0) + value
    return out
