"""Run dashboards: a live-refreshing terminal view and post-mortem summaries.

:class:`LiveDashboard` polls a :class:`~repro.obs.metrics.MetricsRegistry`
on a background thread while a run executes and redraws a compact panel —
progress, wavefront rate, per-place work bars, cache hit rate, network
volume. It is pull-only: the workers never wait on the dashboard, and a
run without one pays nothing.

:func:`summary_text` renders the same quantities post-mortem from an
exported trace + metrics snapshot (``python -m repro obs summary``), and
is deliberately computed from the *exported* data only — if the summary
matches the live ``RunReport``, the export pipeline is faithful.
"""

from __future__ import annotations

import sys
import threading
import time
from typing import Dict, Optional, TextIO

from repro.core.trace import ExecutionTrace
from repro.obs.metrics import MetricsRegistry, by_label, scalar

__all__ = ["LiveDashboard", "summary_text", "bar"]


def bar(fraction: float, width: int = 24) -> str:
    """An ASCII bar: ``bar(0.5, 8)`` -> ``'####....'``."""
    fraction = max(0.0, min(1.0, fraction))
    filled = round(fraction * width)
    return "#" * filled + "." * (width - filled)


def _fmt_bytes(n: float) -> str:
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024 or unit == "GiB":
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024
    return f"{n:.1f}GiB"  # pragma: no cover - unreachable


def render_panel(
    snapshot: Dict[str, dict],
    *,
    completions_per_s: float = 0.0,
    width: int = 24,
) -> str:
    """Render one dashboard frame from a metrics snapshot."""
    done = scalar(snapshot, "dpx10_completions_total")
    total = scalar(snapshot, "dpx10_vertices_active")
    hits = scalar(snapshot, "dpx10_cache_hits_total")
    misses = scalar(snapshot, "dpx10_cache_misses_total")
    lookups = hits + misses
    executed = by_label(snapshot, "dpx10_vertices_computed_total", "place")
    lines = []
    frac = done / total if total else 0.0
    lines.append(
        f"progress  |{bar(frac, width)}| {int(done)}/{int(total)} "
        f"({frac:6.1%})  {completions_per_s:,.0f} cells/s"
    )
    peak = max(executed.values(), default=0) or 1
    for place in sorted(executed, key=int):
        n = executed[place]
        lines.append(f"place {int(place):3d} |{bar(n / peak, width)}| {int(n)} executed")
    lines.append(
        f"cache     |{bar(hits / lookups if lookups else 0.0, width)}| "
        f"{hits / lookups if lookups else 0.0:6.1%} hit rate "
        f"({int(hits)}/{int(lookups)})"
    )
    lines.append(
        f"network   {int(scalar(snapshot, 'dpx10_net_messages_total'))} msgs, "
        f"{_fmt_bytes(scalar(snapshot, 'dpx10_net_bytes_total'))}"
        + (
            f"   recoveries: {int(scalar(snapshot, 'dpx10_recoveries_total'))}"
            if scalar(snapshot, "dpx10_recoveries_total")
            else ""
        )
    )
    stragglers = {
        place: ratio
        for place, ratio in by_label(snapshot, "dpx10_straggler", "place").items()
        if ratio > 0
    }
    if stragglers:
        worst = ", ".join(
            f"place {int(p)} at {r:.1f}x median"
            for p, r in sorted(stragglers.items(), key=lambda kv: -kv[1])
        )
        lines.append(f"ALERT     stragglers: {worst}")
    return "\n".join(lines)


class LiveDashboard:
    """Background refresher that redraws :func:`render_panel` in place.

    >>> from repro.obs.metrics import MetricsRegistry
    >>> import io
    >>> reg = MetricsRegistry()
    >>> dash = LiveDashboard(reg, stream=io.StringIO(), interval=0.01)
    >>> with dash:
    ...     pass
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        stream: Optional[TextIO] = None,
        interval: float = 0.25,
        width: int = 24,
        ansi: Optional[bool] = None,
    ) -> None:
        self.registry = registry
        self.stream = stream if stream is not None else sys.stderr
        self.interval = interval
        self.width = width
        if ansi is None:
            ansi = bool(getattr(self.stream, "isatty", lambda: False)())
        self.ansi = ansi
        self.frames = 0
        self._prev_done = 0.0
        self._prev_t = time.perf_counter()
        self._last_lines = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    # -- lifecycle -----------------------------------------------------------------
    def start(self) -> "LiveDashboard":
        self._thread = threading.Thread(
            target=self._loop, name="obs-dashboard", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        self.refresh()  # final frame with the run's closing numbers

    def __enter__(self) -> "LiveDashboard":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- drawing --------------------------------------------------------------------
    def refresh(self) -> None:
        snapshot = self.registry.collect()
        now = time.perf_counter()
        done = scalar(snapshot, "dpx10_completions_total")
        dt = now - self._prev_t
        rate = (done - self._prev_done) / dt if dt > 0 else 0.0
        self._prev_done, self._prev_t = done, now
        panel = render_panel(snapshot, completions_per_s=rate, width=self.width)
        if self.ansi and self._last_lines:
            # move the cursor up over the previous frame and repaint
            self.stream.write(f"\x1b[{self._last_lines}F\x1b[J")
        self.stream.write(panel + "\n")
        try:
            self.stream.flush()
        except (OSError, ValueError):  # pragma: no cover - closed stream at exit
            pass
        self._last_lines = panel.count("\n") + 1
        self.frames += 1

    def _loop(self) -> None:
        while not self._stop.wait(self.interval):
            self.refresh()


def summary_text(
    trace: ExecutionTrace,
    metrics: Optional[Dict[str, dict]] = None,
    gantt_width: int = 60,
    buckets: int = 24,
) -> str:
    """Post-mortem digest of an exported run (trace + metrics snapshot)."""
    metrics = metrics or {}
    lines = ["== run summary =="]
    events = trace.events
    cells = sum(e.cells for e in events)
    lines.append(
        f"events: {len(events)} ({cells} cells), span {trace.span * 1e3:.1f}ms"
    )

    util = trace.utilization()
    if util:
        lines.append("per-place utilization (busy-time fraction of span):")
        for place, frac in util.items():
            lines.append(f"  place {place:3d} |{bar(frac)}| {frac:6.1%}")

    hits = scalar(metrics, "dpx10_cache_hits_total")
    misses = scalar(metrics, "dpx10_cache_misses_total")
    lookups = hits + misses
    if lookups:
        lines.append(
            f"cache: {int(hits)} hits / {int(misses)} misses "
            f"({hits / lookups:.1%} hit rate)"
        )
    pf_hits = scalar(metrics, "dpx10_halo_prefetch_hits_total")
    pf_misses = scalar(metrics, "dpx10_halo_prefetch_misses_total")
    pf_tiles = pf_hits + pf_misses
    if pf_tiles:
        lines.append(
            f"halo prefetch: {int(pf_hits)}/{int(pf_tiles)} tiles covered "
            f"({pf_hits / pf_tiles:.1%} hit rate)"
        )
    msgs = scalar(metrics, "dpx10_net_messages_total")
    if msgs:
        lines.append(
            f"network: {int(msgs)} messages, "
            f"{_fmt_bytes(scalar(metrics, 'dpx10_net_bytes_total'))}"
        )
    recoveries = scalar(metrics, "dpx10_recoveries_total")
    if recoveries:
        lines.append(f"recoveries: {int(recoveries)}")

    totals = trace.phase_totals()
    if totals:
        lines.append("phase totals:")
        peak = max(totals.values()) or 1.0
        for name, seconds in sorted(totals.items(), key=lambda kv: -kv[1]):
            lines.append(
                f"  {name:<16s} |{bar(seconds / peak)}| {seconds * 1e3:8.2f}ms"
            )

    profile = trace.completion_profile(buckets=buckets)
    if any(profile):
        peak = max(profile)
        spark = "".join(
            " .:-=+*#%@"[min(9, int(n / peak * 9))] if peak else " "
            for n in profile
        )
        lines.append(f"wavefront |{spark}| peak {peak} completions/bucket")

    if events:
        lines.append("")
        lines.append(trace.render_gantt(width=gantt_width))
    return "\n".join(lines)
