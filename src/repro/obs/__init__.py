"""``repro.obs`` — the unified observability layer.

One coherent stack replaces the ad-hoc stat fields that used to be
scattered across the runtime:

* :mod:`repro.obs.metrics` — the process-wide **metrics registry**
  (counters, gauges, histograms with labels; no-op singletons when
  disabled; picklable snapshots that merge across processes);
* the **span layer** in :mod:`repro.core.trace` — phase-level intervals
  (partition, schedule, execute, halo fetch, recovery) recorded alongside
  per-vertex/tile events;
* :mod:`repro.obs.export` — Chrome trace-event JSON (Perfetto /
  ``chrome://tracing``), JSONL event streams, Prometheus text exposition;
* :mod:`repro.obs.dashboard` — the live terminal dashboard and the
  post-mortem summary renderer behind ``python -m repro obs``;
* :mod:`repro.obs.causal` — **causal analysis**: latency waterfall,
  weighted critical path, per-category attribution, straggler detection
  (``python -m repro obs explain`` / ``obs diff``).

Opt in per run with ``DPX10Config(metrics=True, trace=True)``; the run
report then carries ``report.metrics`` (a snapshot) next to
``report.trace``. See ``docs/OBSERVABILITY.md`` for the instrument
catalogue and overhead budget.
"""

from repro.obs.causal import (
    StragglerDetector,
    attribution,
    causal_summary,
    critical_path,
    critical_path_fraction,
    detect_stragglers,
    diff_text,
    explain_text,
    waterfall,
)
from repro.obs.dashboard import LiveDashboard, summary_text
from repro.obs.export import (
    chrome_trace,
    load_chrome_trace,
    read_jsonl,
    trace_from_chrome,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    MetricsRegistry,
    NULL_REGISTRY,
    merge_snapshots,
    render_prometheus,
)

__all__ = [
    "MetricsRegistry",
    "NULL_REGISTRY",
    "merge_snapshots",
    "render_prometheus",
    "chrome_trace",
    "write_chrome_trace",
    "load_chrome_trace",
    "trace_from_chrome",
    "write_jsonl",
    "read_jsonl",
    "LiveDashboard",
    "summary_text",
    "causal_summary",
    "critical_path",
    "critical_path_fraction",
    "waterfall",
    "attribution",
    "detect_stragglers",
    "StragglerDetector",
    "explain_text",
    "diff_text",
]
