"""A pattern-generic differential probe application.

The shipped apps cover a handful of patterns; the chaos battery needs a
correctness oracle for *every* built-in pattern under every engine.
:class:`ChaosProbeApp` is that app: a hash-like recurrence defined on any
DAG shape whose per-cell value mixes the cell coordinate with its
dependency values through **commutative** modular arithmetic, so the
result is independent of dependency gather order, scheduling, tiling and
engine — but sensitive to any wrong, missing or stale dependency value.

:func:`probe_oracle` evaluates the identical recurrence serially with a
plain Kahn topological sweep (no runtime machinery), in the spirit of
``repro.apps.serial``.

``buggy_recompute=True`` plants an artificial wrong-answer bug: any cell
computed more than once *in the same process* (i.e. recomputed after a
fault) returns a perturbed value. Chaos schedules with at least one
effective kill expose it; fault-free runs pass. The shrinker acceptance
test uses it to prove minimal reproducing schedules are found.

Module-level and closure-free, so it pickles across the mp engine's
process boundary.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np

from repro.core.api import DPX10App, Vertex
from repro.core.dag import Dag

__all__ = ["ChaosProbeApp", "probe_oracle"]

Coord = Tuple[int, int]

_P = 1_000_000_007


def _mix(i: int, j: int, salt: int, values: Sequence[int]) -> int:
    """The probe recurrence: commutative over ``values``."""
    base = (i * 1_000_003 + j * 7_919 + salt * 104_729 + 17) % _P
    s = 0
    prod = 1
    for v in values:
        v = int(v) % _P
        s = (s + v) % _P
        prod = (prod * (v + 7)) % _P
    return (base + s + prod) % _P


class ChaosProbeApp(DPX10App[int]):
    """Order-insensitive hash recurrence over an arbitrary pattern."""

    value_dtype = np.int64

    def __init__(self, salt: int = 0, buggy_recompute: bool = False) -> None:
        self.salt = salt
        self.buggy_recompute = buggy_recompute
        self._seen: Dict[Coord, int] = {}
        self.checksum: int = 0

    def compute(self, i: int, j: int, vertices: Sequence[Vertex[int]]) -> int:
        result = _mix(i, j, self.salt, [v.get_result() for v in vertices])
        if self.buggy_recompute:
            n = self._seen.get((i, j), 0)
            self._seen[(i, j)] = n + 1
            if n:  # recomputation after a fault returns a corrupted value
                result = (result + 1) % _P
        return result

    def app_finished(self, dag: Dag[int]) -> None:
        acc = 0
        for i, j in dag.region:
            if dag.is_active(i, j):
                acc = (acc * 31 + int(dag.get_vertex(i, j).get_result())) % _P
        self.checksum = acc


def probe_oracle(dag: Dag, salt: int = 0) -> Dict[Coord, int]:
    """Serial reference for :class:`ChaosProbeApp` over ``dag``.

    A dependency-counting Kahn sweep using only the pattern's declared
    edges — no distribution, scheduling, caching or recovery code.
    """
    active = [(i, j) for i, j in dag.region if dag.is_active(i, j)]
    active_set = set(active)
    values: Dict[Coord, int] = {}
    indeg: Dict[Coord, int] = {}
    for i, j in active:
        indeg[(i, j)] = sum(
            1 for d in dag.get_dependency(i, j) if (d.i, d.j) in active_set
        )
    frontier = [c for c in active if indeg[c] == 0]
    while frontier:
        nxt = []
        for i, j in frontier:
            deps = [
                values[(d.i, d.j)]
                for d in dag.get_dependency(i, j)
                if (d.i, d.j) in active_set
            ]
            values[(i, j)] = _mix(i, j, salt, deps)
            for a in dag.get_anti_dependency(i, j):
                key = (a.i, a.j)
                if key in indeg:
                    indeg[key] -= 1
                    if indeg[key] == 0:
                        nxt.append(key)
        frontier = nxt
    if len(values) != len(active):
        raise ValueError(
            f"probe oracle stalled: {len(values)}/{len(active)} cells "
            "(cyclic pattern?)"
        )
    return values
